// Shared machinery for the figure benchmarks (Figs. 5, 7, 9 and the
// ablations): build each competitor, run the paper's Collection workload
// under the virtual-time simulator across a thread sweep, and print
// throughput normalized over the sequential baseline — the exact y-axis
// of the paper's figures.
//
// Environment knobs (all optional):
//   DEMOTX_LIST_SIZE   initial elements (default 512; paper used 4096)
//   DEMOTX_CYCLES      virtual duration per data point (default 300000)
//   DEMOTX_MAX_THREADS highest thread count in the sweep (default 64)
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "mem/epoch.hpp"
#include "stm/runtime.hpp"
#include "sync/seq_list.hpp"
#include "sync/set_interface.hpp"

namespace demotx::bench {

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

struct Series {
  std::string name;
  std::function<std::unique_ptr<ISet>()> make;
};

struct FigureConfig {
  harness::WorkloadConfig workload;
  std::uint64_t duration_cycles = 300'000;
  std::vector<int> threads = {1, 2, 4, 8, 16, 32, 64};

  static FigureConfig from_env() {
    FigureConfig cfg;
    const long n = env_long("DEMOTX_LIST_SIZE", 512);
    cfg.workload.initial_size = n;
    cfg.workload.key_range = 2 * n;
    cfg.duration_cycles =
        static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 300'000));
    const long mt = env_long("DEMOTX_MAX_THREADS", 64);
    std::vector<int> ts;
    for (int t : cfg.threads)
      if (t <= mt) ts.push_back(t);
    cfg.threads = ts.empty() ? std::vector<int>{1} : ts;
    return cfg;
  }
};

// Throughput of the unsynchronized sequential list at one thread: the
// normalization denominator of every figure.
inline double sequential_baseline(const FigureConfig& cfg) {
  sync::SeqList seq;
  harness::prefill(seq, cfg.workload);
  harness::SimOptions opts;
  opts.duration_cycles = cfg.duration_cycles;
  return harness::run_sim_workload(seq, cfg.workload, 1, opts).throughput;
}

struct CellResult {
  double speedup = 0.0;
  harness::DriverResult raw;
};

// Runs every series at every thread count; returns results[series][thread].
inline std::vector<std::vector<CellResult>> run_sweep(
    const FigureConfig& cfg, const std::vector<Series>& series,
    double seq_throughput) {
  std::vector<std::vector<CellResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (int threads : cfg.threads) {
      auto set = series[s].make();
      harness::prefill(*set, cfg.workload);
      harness::SimOptions opts;
      opts.duration_cycles = cfg.duration_cycles;
      harness::DriverResult r =
          harness::run_sim_workload(*set, cfg.workload, threads, opts);
      // Post-run consistency check: the workload must leave the structure
      // coherent, or the numbers are meaningless.
      const long expect = cfg.workload.initial_size + r.net_adds;
      if (set->unsafe_size() != expect) {
        std::cerr << "CONSISTENCY FAILURE: " << series[s].name << " @"
                  << threads << " threads: size " << set->unsafe_size()
                  << " != " << expect << "\n";
        std::exit(1);
      }
      CellResult cell;
      cell.speedup = seq_throughput > 0 ? r.throughput / seq_throughput : 0;
      cell.raw = r;
      results[s].push_back(cell);
      mem::EpochManager::instance().drain();
    }
  }
  return results;
}

inline void print_speedup_table(const std::string& tag,
                                const FigureConfig& cfg,
                                const std::vector<Series>& series,
                                const std::vector<std::vector<CellResult>>& r) {
  std::vector<std::string> headers{"threads"};
  for (const Series& s : series) headers.push_back(s.name);
  harness::Table t(headers);
  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    std::vector<std::string> row{std::to_string(cfg.threads[ti])};
    for (std::size_t s = 0; s < series.size(); ++s)
      row.push_back(harness::Table::num(r[s][ti].speedup, 2));
    t.add_row(row);
  }
  std::cout << "throughput normalized over sequential (speedup):\n";
  t.print(std::cout);
  t.print_csv(std::cout, tag);
}

inline void print_abort_table(const FigureConfig& cfg,
                              const std::vector<Series>& series,
                              const std::vector<std::vector<CellResult>>& r) {
  std::vector<std::string> headers{"threads"};
  for (const Series& s : series) headers.push_back(s.name);
  harness::Table t(headers);
  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    std::vector<std::string> row{std::to_string(cfg.threads[ti])};
    for (std::size_t s = 0; s < series.size(); ++s)
      row.push_back(harness::Table::num(r[s][ti].raw.stm.abort_ratio(), 3));
    t.add_row(row);
  }
  std::cout << "\nSTM abort ratio (aborts / attempts; 0 for non-STM):\n";
  t.print(std::cout);

  // Certification-abort breakdown at the top of the sweep: the
  // object-ops tier trades kCommitValidation (structural cell conflicts)
  // for the rarer kObjectConflict (semantic key conflicts) — the gap
  // between the two columns is the figure's mechanism.
  harness::Table reasons({"series", "commit-validation", "object-conflict",
                          "read-validation", "locked"});
  const std::size_t ti = cfg.threads.size() - 1;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& st = r[s][ti].raw.stm;
    const auto reason = [&st](stm::AbortReason why) {
      return std::to_string(
          st.aborts_by_reason[static_cast<int>(why)]);
    };
    reasons.add_row({series[s].name,
                     reason(stm::AbortReason::kCommitValidation),
                     reason(stm::AbortReason::kObjectConflict),
                     reason(stm::AbortReason::kReadValidation),
                     reason(stm::AbortReason::kLockedByOther)});
  }
  std::cout << "\nabort reasons at " << cfg.threads[ti]
            << " threads (0 for non-STM):\n";
  reasons.print(std::cout);
}

// Commit/validation fast-path counters per series at the highest thread
// count of the sweep (where the fast paths matter): timebase extensions,
// the summary-ring outcomes, read-set dedups, and PR 1's clock/gate
// counters — so a figure run shows validation behaviour per semantics
// next to its speedup numbers.
inline void print_validation_table(
    const FigureConfig& cfg, const std::vector<Series>& series,
    const std::vector<std::vector<CellResult>>& r) {
  harness::Table t({"series", "extensions", "summary_skips",
                    "summary_fallbacks", "ring_overflows", "readset_dedups",
                    "clock_adopts", "gate_waits", "shard_conflicts",
                    "epoch_bumps", "remote_line_hits", "desc_heap_bytes",
                    "obj_commutes", "obj_key_conflicts", "obj_ring_hits"});
  const std::size_t ti = cfg.threads.size() - 1;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& st = r[s][ti].raw.stm;
    t.add_row({series[s].name, std::to_string(st.extensions),
               std::to_string(st.summary_skips),
               std::to_string(st.summary_fallbacks),
               std::to_string(st.ring_overflows),
               std::to_string(st.readset_dedups),
               std::to_string(st.clock_adopts),
               std::to_string(st.gate_waits),
               std::to_string(st.shard_conflicts),
               std::to_string(st.epoch_bumps),
               std::to_string(st.remote_line_hits),
               std::to_string(st.desc_heap_bytes),
               std::to_string(st.obj_commutes),
               std::to_string(st.obj_key_conflicts),
               std::to_string(st.obj_ring_hits)});
  }
  std::cout << "\ncommit/validation fast-path counters at "
            << cfg.threads[ti] << " threads (0 for non-STM):\n";
  t.print(std::cout);
}

inline void print_workload_banner(const FigureConfig& cfg) {
  std::cout << "collection workload: " << cfg.workload.initial_size
            << " initial elements, key range " << cfg.workload.key_range
            << ", " << cfg.workload.contains_pct << "% contains, "
            << cfg.workload.add_pct + cfg.workload.remove_pct << "% updates, "
            << cfg.workload.size_pct << "% size; "
            << cfg.duration_cycles << " virtual cycles per point\n"
            << "(simulator: ideal N-way machine, one shared access per "
               "cycle per thread — see DESIGN.md)\n\n";
}

}  // namespace demotx::bench
