// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Hybrid HTM/STM (paper Sec. 1: "a best-effort hardware component that
// needs to be complemented by software transactions" [10-13], and the
// BlueGene/Q remark — highly tuned hardware transactions serve only
// workloads that fit them).
//
// The modeled hardware transaction reads/writes with no software
// instrumentation but aborts when its footprint exceeds the capacity.
// Two regimes on the collection workload:
//   * a SMALL set (fits the capacity): hardware attempts commit and the
//     hybrid crushes pure software;
//   * the DEFAULT set (parses overflow the capacity): every hybrid
//     operation pays the doomed hardware attempt and falls back —
//     best-effort HTM buys nothing, exactly the paper's point that
//     software transactions remain necessary.
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "sync/set_interface.hpp"

using namespace demotx;
using namespace demotx::bench;

namespace {

// Adapter: every operation goes through atomically_hybrid.
class HybridList final : public ISet {
 public:
  HybridList()
      : inner_(ds::TxList::Options{stm::Semantics::kClassic,
                                   stm::Semantics::kClassic}) {}
  bool contains(long k) override {
    return stm::atomically_hybrid([&](stm::Tx&) { return inner_.contains(k); });
  }
  bool add(long k) override {
    return stm::atomically_hybrid([&](stm::Tx&) { return inner_.add(k); });
  }
  bool remove(long k) override {
    return stm::atomically_hybrid([&](stm::Tx&) { return inner_.remove(k); });
  }
  long size() override {
    return stm::atomically_hybrid([&](stm::Tx&) { return inner_.size(); },
                                  stm::Semantics::kSnapshot);
  }
  long unsafe_size() override { return inner_.unsafe_size(); }
  [[nodiscard]] const char* name() const override { return "hybrid"; }

 private:
  ds::TxList inner_;
};

void run_regime(const char* title, const char* tag, FigureConfig cfg) {
  harness::banner(std::cout, title);
  print_workload_banner(cfg);
  std::cout << "modeled HTM capacity: "
            << stm::Runtime::instance().config.htm_capacity
            << " locations, " << stm::Runtime::instance().config.htm_retries
            << " hardware attempts before fallback\n\n";
  const std::vector<Series> series{
      {"hybrid(htm+stm)", [] { return std::make_unique<HybridList>(); }},
      {"software classic", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"software mixed", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
  };
  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table(tag, cfg, series, results);
  const std::size_t last = cfg.threads.size() - 1;
  const auto& hs = results[0][last].raw.stm;
  std::cout << "\nhybrid at " << cfg.threads[last]
            << " threads: " << hs.htm_commits << " hardware commits, "
            << hs.htm_fallbacks << " software fallbacks\n";
}

}  // namespace

int main() {
  FigureConfig small = FigureConfig::from_env();
  small.workload.initial_size = 32;  // parses fit the HTM capacity
  small.workload.key_range = 64;
  run_regime("Hybrid HTM — small set (fits hardware capacity)",
             "hybrid_small", small);

  FigureConfig big = FigureConfig::from_env();  // default 512: overflows
  run_regime("Hybrid HTM — default set (parses overflow the capacity)",
             "hybrid_big", big);

  std::cout << "\n(the capacity cliff is the paper's Sec. 1 argument: "
               "best-effort hardware\n transactions only serve workloads "
               "that fit them; everything else needs the\n software "
               "semantics this library democratizes)\n";
  return 0;
}
