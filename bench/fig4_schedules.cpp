// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Figure 4 + Sections 3.1/3.2/4.2 — the expressiveness analysis.
//
// Part 1 (Fig. 4): enumerate all interleavings of
//     Pt = transaction{r(x) r(y) r(z)},  P1 = transaction{w(x)},
//     P2 = transaction{w(z)}
// and report, for each acceptance criterion, how many of the (all
// correct) schedules are precluded.  The paper states 20 schedules with
// 20% precluded by opacity; exact enumeration of its own condition
// (Pt≺P1 ∧ P1≺P2 ∧ P2≺Pt) yields 3/20 = 15% — see EXPERIMENTS.md.  The
// operational protocols bracket that bound: plain TL2 precludes 50%,
// TL2+extension 30%, elastic (window 2) 25%, elastic (window 1) 0%.
//
// Part 2 (Sec. 3.1): the atomicity relation of the hand-over-hand lock
// program vs. the transaction block (chain vs. transitive closure).
//
// Part 3 (Sec. 4.2): verdicts on history H under every checker.
//
// Part 4 (extension): acceptance-ratio sweep for k-read parses.
#include <iostream>

#include "harness/report.hpp"
#include "sched/atomicity.hpp"
#include "sched/checkers.hpp"
#include "sched/enumerate.hpp"
#include "sched/history.hpp"

using namespace demotx;
using namespace demotx::sched;
using demotx::stm::Semantics;

namespace {

std::vector<Program> fig4_programs(int reads) {
  Program pt;
  for (int i = 0; i < reads; ++i) pt.push_back(rd(0, i));
  return {pt, {wr(1, 0)}, {wr(2, reads - 1)}};
}

struct Criterion {
  std::string name;
  std::function<bool(const History&)> accepts;
};

std::vector<Criterion> criteria() {
  auto proto = [](std::vector<Semantics> sems, std::size_t window,
                  bool ext) {
    ProtocolOptions o;
    o.semantics = std::move(sems);
    o.elastic_window = window;
    o.enable_extension = ext;
    return o;
  };
  return {
      {"serializable",
       [](const History& h) { return conflict_serializable(h); }},
      {"opaque (strict-ser.)",
       [](const History& h) { return view_strictly_serializable(h); }},
      {"classic protocol (TL2)",
       [proto](const History& h) {
         return protocol_accepts(h, proto({}, 2, false)).accepted;
       }},
      {"classic + extension",
       [proto](const History& h) {
         return protocol_accepts(h, proto({}, 2, true)).accepted;
       }},
      {"elastic Pt (window 2)",
       [proto](const History& h) {
         return protocol_accepts(
                    h, proto({Semantics::kElastic, Semantics::kClassic,
                              Semantics::kClassic},
                             2, false))
             .accepted;
       }},
      {"elastic Pt (window 1)",
       [proto](const History& h) {
         return protocol_accepts(
                    h, proto({Semantics::kElastic, Semantics::kClassic,
                              Semantics::kClassic},
                             1, false))
             .accepted;
       }},
  };
}

}  // namespace

int main() {
  harness::banner(std::cout, "Fig. 4 — schedules precluded by transactional "
                             "semantics");
  {
    const auto programs = fig4_programs(3);
    const auto crits = criteria();
    const auto total = interleaving_count(programs);
    std::cout << "Pt = tx{r(x) r(y) r(z)}, P1 = tx{w(x)}, P2 = tx{w(z)}: "
              << total << " interleavings, all correct for a linked list\n\n";
    harness::Table t({"criterion", "accepted", "precluded", "precluded %"});
    for (const Criterion& c : crits) {
      int ok = 0;
      for_each_interleaving(programs, [&](const History& h) {
        if (c.accepts(h)) ++ok;
      });
      const int precluded = static_cast<int>(total) - ok;
      t.add_row({c.name, std::to_string(ok), std::to_string(precluded),
                 harness::Table::num(100.0 * precluded / double(total), 1)});
    }
    t.print(std::cout);
    t.print_csv(std::cout, "fig4");
    std::cout << "\n(paper Fig. 4 reports 20% precluded by opacity; its own "
                 "condition\n Pt<P1, P1<P2, P2<Pt matches exactly 3 "
                 "schedules = 15% — see EXPERIMENTS.md)\n";
  }

  harness::banner(std::cout, "Sec. 3.1 — the atomicity relation");
  {
    const std::vector<std::string> names{"x", "y", "z"};
    const Program p = {lk(0, 0), rd(0, 0), lk(0, 1), rd(0, 1), ul(0, 0),
                       lk(0, 2), rd(0, 2), ul(0, 1), ul(0, 2)};
    const auto lock_rel = lock_atomicity(p);
    const auto tx_rel = transaction_atomicity(p);
    const std::size_t n = access_events(p).size();
    std::cout << "P  = lock(x) r(x) lock(y) r(y) unlock(x) lock(z) r(z) "
                 "unlock(y) unlock(z)\n"
              << "Pt = transaction{ r(x) r(y) r(z) }\n\n"
              << "lock program guarantees:      " << to_string(lock_rel, p, &names)
              << "\n"
              << "  transitively closed: "
              << (is_transitively_closed(lock_rel, n) ? "yes" : "NO") << "\n"
              << "transaction guarantees:       " << to_string(tx_rel, p, &names)
              << "\n"
              << "  equals closure of lock rel: "
              << (tx_rel == transitive_closure(lock_rel, n) ? "yes" : "no")
              << "\n";
  }

  harness::banner(std::cout, "Sec. 4.2 — history H");
  {
    const std::vector<std::string> names{"h", "n", "t"};
    const History h = {rd(0, 0), rd(0, 1), rd(1, 0), rd(1, 1),
                       wr(1, 0), rd(0, 2), wr(0, 1)};
    std::cout << "H = " << to_string(h, &names) << "   (i = tx 0, j = tx 1)\n\n"
              << "serializable:            "
              << (conflict_serializable(h) ? "yes" : "no") << "\n"
              << "opaque (strict-ser.):    "
              << (view_strictly_serializable(h) ? "yes" : "no") << "\n";
    ProtocolOptions all_classic;
    std::cout << "classic protocol:        "
              << (protocol_accepts(h, all_classic).accepted ? "accepted"
                                                            : "rejected")
              << "\n";
    ProtocolOptions elastic_i;
    elastic_i.semantics = {Semantics::kElastic, Semantics::kClassic};
    const ProtocolResult r = protocol_accepts(h, elastic_i);
    std::cout << "elastic i, classic j:    "
              << (r.accepted ? "accepted" : "rejected") << " with "
              << r.total_cuts << " cut(s)  — f(H) = (r(h)i r(n)i | ... r(t)i "
                                 "w(n)i)\n";
  }

  harness::banner(std::cout,
                  "extension — acceptance ratio for k-read parses");
  {
    harness::Table t({"k reads", "schedules", "classic %", "classic+ext %",
                      "elastic(w2) %", "elastic(w1) %"});
    for (int k = 2; k <= 6; ++k) {
      const auto programs = fig4_programs(k);
      const auto crits = criteria();
      const double total = static_cast<double>(interleaving_count(programs));
      std::vector<int> ok(crits.size(), 0);
      for_each_interleaving(programs, [&](const History& h) {
        for (std::size_t c = 2; c < crits.size(); ++c)
          if (crits[c].accepts(h)) ++ok[c];
      });
      t.add_row({std::to_string(k),
                 std::to_string(static_cast<int>(total)),
                 harness::Table::num(100.0 * ok[2] / total, 1),
                 harness::Table::num(100.0 * ok[3] / total, 1),
                 harness::Table::num(100.0 * ok[4] / total, 1),
                 harness::Table::num(100.0 * ok[5] / total, 1)});
    }
    t.print(std::cout);
    t.print_csv(std::cout, "fig4ext");
    std::cout << "\n(the longer the parse, the more schedules classic "
                 "transactions lose;\n elastic acceptance is driven by the "
                 "window, not the parse length)\n";
  }
  return 0;
}
