// demotx:expert-file: benchmark: A/B harness flips Config::object_ops between series by design
// Object-level multi-version STM tier vs. the elastic cell tier on the
// paper's Collection workloads (the Fig. 5/7 setup: hash set, mostly
// reads plus updates and an atomic size).
//
// Both series run the SAME typed container (ds::TxHashSet, elastic
// parse + snapshot size) — the only difference is the representation the
// container latches at construction:
//
//   elastic     cell tier: chain parses build structural read sets, the
//               per-bucket counter write joins every update, and a commit
//               anywhere in a bucket can invalidate an unrelated lookup.
//   object-ops  semantic tier: operations log key-level intent, commit
//               certifies by value (commuting overtakes pass), and the
//               per-object version rings serve snapshot sizes at rv.
//
// The mechanism to check: object-ops converts kCommitValidation aborts
// (structural false conflicts) into the much rarer kObjectConflict
// (true key collisions certified by value), so throughput keeps scaling
// where the cell tier flattens.  Two mixes: the paper's 10%-update mix
// and an update-heavy mix where structural conflicts dominate.
//
// Emits the figure tables plus a JSON report (stdout and argv[1]).
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/fig_common.hpp"
#include "ds/tx_hashset.hpp"

using namespace demotx;
using namespace demotx::bench;

namespace {

struct Mix {
  const char* name;
  int contains_pct, add_pct, remove_pct, size_pct;
};

void json_series(std::ostream& os, const FigureConfig& cfg, const Series& s,
                 const std::vector<CellResult>& cells) {
  os << "      {\"series\": \"" << s.name << "\", \"points\": [\n";
  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    const auto& st = cells[ti].raw.stm;
    const auto reason = [&st](stm::AbortReason why) {
      return st.aborts_by_reason[static_cast<int>(why)];
    };
    os << "        {\"threads\": " << cfg.threads[ti]
       << ", \"speedup\": " << cells[ti].speedup
       << ", \"ops\": " << cells[ti].raw.total_ops
       << ", \"commits\": " << st.commits << ", \"aborts\": " << st.aborts
       << ", \"abort_ratio\": " << st.abort_ratio()
       << ", \"commit_validation\": "
       << reason(stm::AbortReason::kCommitValidation)
       << ", \"object_conflict\": "
       << reason(stm::AbortReason::kObjectConflict)
       << ", \"obj_commutes\": " << st.obj_commutes
       << ", \"obj_key_conflicts\": " << st.obj_key_conflicts
       << ", \"obj_ring_hits\": " << st.obj_ring_hits << "}"
       << (ti + 1 < cfg.threads.size() ? ",\n" : "\n");
  }
  os << "      ]}";
}

}  // namespace

int main(int argc, char** argv) {
  harness::banner(std::cout,
                  "Fig. MV-OSTM — object-ops tier vs. elastic cell tier");

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;

  const Mix mixes[] = {
      {"fig5-read-heavy", 80, 5, 5, 10},
      {"fig7-update-heavy", 50, 20, 20, 10},
  };
  const std::vector<Series> series{
      {"elastic", [&rt] {
         rt.config.object_ops = false;
         return std::make_unique<ds::TxHashSet>();
       }},
      {"object-ops", [&rt] {
         rt.config.object_ops = true;
         return std::make_unique<ds::TxHashSet>();
       }},
  };

  std::ostringstream json;
  json << "{\n  \"bench\": \"fig_mvostm\",\n  \"mixes\": [\n";

  bool obj_wins_a_mix = false;
  bool obj_cuts_aborts = false;
  for (std::size_t m = 0; m < std::size(mixes); ++m) {
    FigureConfig cfg = FigureConfig::from_env();
    cfg.workload.contains_pct = mixes[m].contains_pct;
    cfg.workload.add_pct = mixes[m].add_pct;
    cfg.workload.remove_pct = mixes[m].remove_pct;
    cfg.workload.size_pct = mixes[m].size_pct;

    std::cout << "\n=== mix " << mixes[m].name << " ===\n";
    print_workload_banner(cfg);
    const double seq = sequential_baseline(cfg);
    const auto results = run_sweep(cfg, series, seq);
    print_speedup_table(std::string("mvostm_") + mixes[m].name, cfg, series,
                        results);
    print_abort_table(cfg, series, results);
    print_validation_table(cfg, series, results);

    const std::size_t last = cfg.threads.size() - 1;
    const double ratio = results[1][last].speedup /
                         std::max(results[0][last].speedup, 1e-9);
    std::cout << "\nat " << cfg.threads[last]
              << " threads: object-ops / elastic = "
              << harness::Table::num(ratio, 2) << "x, abort ratio "
              << harness::Table::num(results[0][last].raw.stm.abort_ratio(), 3)
              << " -> "
              << harness::Table::num(results[1][last].raw.stm.abort_ratio(), 3)
              << "\n";
    if (ratio > 1.0) obj_wins_a_mix = true;
    if (results[1][last].raw.stm.abort_ratio() <
        results[0][last].raw.stm.abort_ratio())
      obj_cuts_aborts = true;

    json << (m != 0 ? ",\n" : "") << "    {\"mix\": \"" << mixes[m].name
         << "\", \"contains_pct\": " << mixes[m].contains_pct
         << ", \"update_pct\": " << mixes[m].add_pct + mixes[m].remove_pct
         << ", \"size_pct\": " << mixes[m].size_pct << ", \"series\": [\n";
    for (std::size_t s = 0; s < series.size(); ++s) {
      json_series(json, cfg, series[s], results[s]);
      json << (s + 1 < series.size() ? ",\n" : "\n");
    }
    json << "    ]}";
  }
  rt.config = saved;

  json << "\n  ],\n  \"object_ops_wins_a_mix\": "
       << (obj_wins_a_mix ? "true" : "false")
       << ",\n  \"object_ops_cuts_aborts\": "
       << (obj_cuts_aborts ? "true" : "false") << "\n}\n";

  std::cout << "\n" << json.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << json.str();
  }
  // The win/abort claims only hold where the cell tier's structural
  // conflicts bite — a truncated smoke sweep (DEMOTX_MAX_THREADS=2)
  // cannot falsify them, so only a full-width run enforces them.
  const bool full_sweep = env_long("DEMOTX_MAX_THREADS", 64) >= 64;
  return !full_sweep || (obj_wins_a_mix && obj_cuts_aborts) ? 0 : 1;
}
