// demotx:expert-file: benchmark: drives the svc tier-map scenario, whose request classes name every semantics tier by design
// KV service scenario figure: append-to-reply latency percentiles and
// goodput under an open-loop arrival sweep, mixed-tier vs. all-classic.
//
//     interarrival {96, 48, 24, 12, 6} cycles  x  {mixed, classic}
//
// Each point boots a fresh transactional KV service (src/svc/): worker
// foms advance queued requests one transaction attempt per tick, an
// injector fiber paces seeded-exponential arrivals over multiplexed
// sessions — open loop, so tightening the interarrival gap pushes the
// service into overload instead of slowing the clients down.  The
// mixed series maps request classes onto the semantics tiers (elastic
// point ops, snapshot scans, classic transfers, irrevocable admin);
// the classic series forces every class onto kClassic — the A/B that
// isolates what the tier map buys at saturation: snapshot scans stop
// competing for certification against transfers, so fewer ticks are
// wasted on aborts, the queue drains faster, and fewer requests are
// shed by the deadline.
//
// Every point must pass the service reply oracle (monotone sessions,
// conserved bank total, no acked-then-lost put, no shed effect) or the
// benchmark exits nonzero — throughput of a wrong service is not a
// result.
//
// Runs under the virtual-time simulator (one-core container; DESIGN.md,
// Substitutions).  Output is JSON (stdout, and argv[1] if given):
//
//   { "bench": "fig_kvservice", "mode": "sim",
//     "workers": W, "sessions": S, "queue_cap": Q, "deadline": D,
//     "requests_per_point": "max(8, cycles/gap)",
//     "results": [ { "series": "mixed"|"classic", "points": [
//         { "interarrival": G, "requests": N, "acked": A, "shed": S,
//           "duration": C, "goodput": R, "abort_ratio": X,
//           "classes": [ { "class": "get", "acked": N, "attempts": N,
//                          "aborts": N, "p50": L, "p95": L, "p99": L,
//                          "max": L }, ... ] }, ... ] } ],
//     "summary": { "mixed_goodput_overload": R,
//                  "classic_goodput_overload": R,
//                  "mixed_over_classic_goodput_overload": R,
//                  "mixed_over_classic_acked_overload": R,
//                  "classic_over_mixed_scan_p99_overload": R } }
//
// goodput is acked replies per kilocycle; latencies are virtual cycles
// from arrival to acknowledgment (queueing + retries + commit).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mem/epoch.hpp"
#include "svc/kvservice.hpp"
#include "svc/openloop.hpp"

using namespace demotx;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

constexpr std::uint64_t kGaps[] = {96, 48, 24, 12, 6};
constexpr std::size_t kNumGaps = sizeof(kGaps) / sizeof(kGaps[0]);
constexpr std::uint64_t kDeadline = 4096;
constexpr std::uint64_t kQueueCap = 64;

struct Point {
  std::uint64_t gap = 0;
  std::uint64_t requests = 0;
  std::uint64_t acked = 0;
  std::uint64_t shed = 0;
  std::uint64_t duration = 0;
  double goodput = 0.0;      // acked per kilocycle
  double abort_ratio = 0.0;  // aborts / attempts, all classes
  std::uint64_t cls_acked[svc::kNumReqClasses] = {};
  std::uint64_t cls_attempts[svc::kNumReqClasses] = {};
  std::uint64_t cls_aborts[svc::kNumReqClasses] = {};
  std::uint64_t p50[svc::kNumReqClasses] = {};
  std::uint64_t p95[svc::kNumReqClasses] = {};
  std::uint64_t p99[svc::kNumReqClasses] = {};
  std::uint64_t lat_max[svc::kNumReqClasses] = {};
};

Point run_point(std::uint64_t gap, bool all_classic, int workers,
                std::uint64_t cycles, std::uint64_t seed) {
  // DEMOTX_SVC_SESSIONS and DEMOTX_SVC_DURABLE pass through from the
  // environment (a durable run A/Bs the tier map with acks gated on
  // group-commit durability); the sweep axes and the figure's fixed
  // shape override the rest.
  svc::SvcConfig cfg = svc::SvcConfig::from_env();
  cfg.workers = workers;
  cfg.queue_cap = kQueueCap;
  cfg.deadline_cycles = kDeadline;
  cfg.mean_interarrival = gap;
  cfg.total_requests = std::max<std::uint64_t>(8, cycles / gap);
  cfg.bank_keys = 16;
  cfg.keys_per_session = 2;
  cfg.initial_balance = 100;
  cfg.all_classic = all_classic;

  svc::KvService s(cfg, seed);
  const svc::OpenLoopResult r = svc::run_open_loop(s);
  if (r.hit_limit) {
    std::cerr << "CYCLE-LIMIT FAILURE: gap=" << gap
              << (all_classic ? " classic" : " mixed") << " never drained\n";
    std::exit(1);
  }
  std::string why;
  if (!s.check_replies(&why)) {
    std::cerr << "ORACLE FAILURE: gap=" << gap
              << (all_classic ? " classic" : " mixed") << ": " << why << "\n";
    std::exit(1);
  }

  svc::SvcStats& st = s.stats();
  Point p;
  p.gap = gap;
  p.requests = st.arrived;
  p.acked = st.acked_total();
  p.shed = st.shed_total();
  p.duration = r.cycles;
  p.goodput = r.goodput;
  std::uint64_t attempts = 0, aborts = 0;
  for (int c = 0; c < svc::kNumReqClasses; ++c) {
    p.cls_acked[c] = st.acked[c];
    p.cls_attempts[c] = st.attempts[c];
    p.cls_aborts[c] = st.aborts[c];
    attempts += st.attempts[c];
    aborts += st.aborts[c];
    p.p50[c] = st.lat[c].p50();
    p.p95[c] = st.lat[c].p95();
    p.p99[c] = st.lat[c].p99();
    p.lat_max[c] = st.lat[c].max();
  }
  p.abort_ratio = attempts == 0 ? 0.0
                                : static_cast<double>(aborts) /
                                      static_cast<double>(attempts);
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  os << "      {\"interarrival\": " << p.gap << ", \"requests\": "
     << p.requests << ", \"acked\": " << p.acked << ", \"shed\": " << p.shed
     << ", \"duration\": " << p.duration << ", \"goodput\": " << p.goodput
     << ", \"abort_ratio\": " << p.abort_ratio << ",\n       \"classes\": [";
  for (int c = 0; c < svc::kNumReqClasses; ++c) {
    if (c != 0) os << ",";
    os << "\n        {\"class\": \""
       << svc::to_string(static_cast<svc::ReqClass>(c))
       << "\", \"acked\": " << p.cls_acked[c]
       << ", \"attempts\": " << p.cls_attempts[c]
       << ", \"aborts\": " << p.cls_aborts[c] << ", \"p50\": " << p.p50[c]
       << ", \"p95\": " << p.p95[c] << ", \"p99\": " << p.p99[c]
       << ", \"max\": " << p.lat_max[c] << "}";
  }
  os << "]}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 60'000));
  const int workers = static_cast<int>(
      std::min<long>(env_long("DEMOTX_MAX_THREADS", 4), 64));

  std::ostringstream out;
  out << "{\n  \"bench\": \"fig_kvservice\",\n  \"mode\": \"sim\",\n"
      << "  \"workers\": " << workers << ",\n  \"sessions\": 16,\n"
      << "  \"queue_cap\": " << kQueueCap << ",\n  \"deadline\": "
      << kDeadline << ",\n  \"cycles_per_point\": " << cycles
      << ",\n  \"results\": [\n";

  // points[series][gap]; series 0 = mixed, 1 = classic.
  Point pts[2][kNumGaps];
  const char* names[2] = {"mixed", "classic"};
  for (int s = 0; s < 2; ++s) {
    if (s != 0) out << ",\n";
    out << "    {\"series\": \"" << names[s] << "\", \"points\": [\n";
    for (std::size_t g = 0; g < kNumGaps; ++g) {
      std::cerr << names[s] << " interarrival=" << kGaps[g] << "...\n";
      pts[s][g] = run_point(kGaps[g], /*all_classic=*/s == 1, workers, cycles,
                            1000 + 10 * g);
      if (g != 0) out << ",\n";
      json_point(out, pts[s][g]);
    }
    out << "\n    ]}";
  }

  // Overload = the tightest interarrival of the sweep.
  const Point& mo = pts[0][kNumGaps - 1];
  const Point& co = pts[1][kNumGaps - 1];
  const auto ratio = [](double a, double b) { return b == 0.0 ? 0.0 : a / b; };
  const int scan = static_cast<int>(svc::ReqClass::kScan);
  out << "\n  ],\n  \"summary\": {\n"
      << "    \"mixed_goodput_overload\": " << mo.goodput << ",\n"
      << "    \"classic_goodput_overload\": " << co.goodput << ",\n"
      << "    \"mixed_over_classic_goodput_overload\": "
      << ratio(mo.goodput, co.goodput) << ",\n"
      << "    \"mixed_over_classic_acked_overload\": "
      << ratio(static_cast<double>(mo.acked), static_cast<double>(co.acked))
      << ",\n"
      << "    \"classic_over_mixed_scan_p99_overload\": "
      << ratio(static_cast<double>(co.p99[scan]),
               static_cast<double>(mo.p99[scan]))
      << "\n  }\n}\n";

  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
  }
  return 0;
}
