// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Ablation — every synchronization technique the paper discusses, on a
// size-free workload (20% updates, no size operations) so the lock-based
// and lock-free baselines, which have no atomic size, compete on equal
// terms (Sec. 2/3's qualitative comparison made quantitative):
// coarse lock, hand-over-hand (Algorithm 3), lazy list, Harris-Michael
// lock-free (EBR and hazard-pointer reclamation), copy-on-write, and the
// classic/elastic transactional lists.
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "sync/coarse_list.hpp"
#include "sync/cow_array_set.hpp"
#include "sync/hoh_list.hpp"
#include "sync/lazy_list.hpp"
#include "sync/lockfree_list.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout,
                  "Ablation — all synchronization techniques, no size ops");
  FigureConfig cfg = FigureConfig::from_env();
  cfg.workload.contains_pct = 80;
  cfg.workload.add_pct = 10;
  cfg.workload.remove_pct = 10;
  cfg.workload.size_pct = 0;
  print_workload_banner(cfg);

  const std::vector<Series> series{
      {"coarse", [] { return std::make_unique<sync::CoarseList>(); }},
      {"hand-over-hand", [] { return std::make_unique<sync::HohList>(); }},
      {"lazy", [] { return std::make_unique<sync::LazyList>(); }},
      {"lockfree(ebr)", [] { return std::make_unique<sync::LockFreeList>(); }},
      {"lockfree(hp)",
       [] { return std::make_unique<sync::LockFreeListHp>(); }},
      {"cow", [] { return std::make_unique<sync::CowArraySet>(); }},
      {"classic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"elastic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kClassic});
       }},
  };

  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table("ablation_baselines", cfg, series, results);
  print_abort_table(cfg, series, results);
  std::cout << "\n(the paper's Sec. 3.3 point: hand-tuned lock-based and "
               "lock-free code beats classic transactions; elastic "
               "transactions close much of the gap while keeping sequential "
               "code and composition)\n";
  return 0;
}
