// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Ablation — contention hotspots (the paper's Sec. 1 lineage: Reuter's
// high-traffic data elements, escrow [25]/[26]): the same collection
// workload with the key distribution skewed toward a hot prefix of the
// list.  Hotspots squeeze optimistic concurrency: classic transactions
// collapse first, the elastic/snapshot mix degrades more gracefully, and
// the lazy lock-based list shrugs (its writers only lock two nodes).
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "sync/lazy_list.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout, "Ablation — key-distribution hotspots");
  FigureConfig base = FigureConfig::from_env();
  base.threads = {32};  // fixed parallelism; the sweep is over skew

  const std::vector<Series> series{
      {"classic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"mixed(el+snap)", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
      {"lazy-list", [] { return std::make_unique<sync::LazyList>(); }},
  };

  std::vector<std::string> headers{"skew"};
  for (const Series& s : series) headers.push_back(s.name);
  harness::Table speed(headers);
  harness::Table aborts(headers);

  for (double skew : {0.0, 0.25, 0.5, 1.0}) {
    FigureConfig cfg = base;
    cfg.workload.skew = skew;
    const double seq = sequential_baseline(cfg);
    const auto r = run_sweep(cfg, series, seq);
    std::vector<std::string> srow{harness::Table::num(skew, 2)};
    std::vector<std::string> arow = srow;
    for (std::size_t s = 0; s < series.size(); ++s) {
      srow.push_back(harness::Table::num(r[s][0].speedup, 2));
      arow.push_back(harness::Table::num(r[s][0].raw.stm.abort_ratio(), 3));
    }
    speed.add_row(srow);
    aborts.add_row(arow);
  }

  std::cout << "speedup over the (equally skewed) sequential list at 32 "
               "threads:\n";
  speed.print(std::cout);
  speed.print_csv(std::cout, "ablation_hotspot");
  std::cout << "\nabort ratio:\n";
  aborts.print(std::cout);
  std::cout << "\n(skew s concentrates accesses near the list head with "
               "density ~ u^(1+4s);\n note: hot keys sit early in the "
               "list, so ops also get shorter — all speedups are\n "
               "relative to the equally-skewed sequential run; classic "
               "degrades the most)\n";
  return 0;
}
