// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Commit-path scalability sweep: tiny update transactions, 1..64
// threads, A/B-ing the four commit-path configurations
//
//     {GV1, GV4} clock  x  {counter, distributed} irrevocability gate
//
// over two workloads:
//
//   disjoint — every thread updates only its own cache-line-padded
//              cells, so the ONLY shared state a commit touches is the
//              commit-path globals.  This isolates clock/gate ping-pong,
//              which is exactly what the distributed gate + GV4 clock
//              remove.
//   shared   — all threads update a handful of common cells (real data
//              conflicts, CM involvement) and one thread periodically
//              runs an irrevocable transaction, closing the gate.
//
// By default the sweep runs under the virtual-time simulator — this
// container has one core, so wall-clock scalability is unmeasurable
// (DESIGN.md, Substitutions) — using the simulator's queued hot-line
// model for the commit-path globals.  DEMOTX_REAL=1 switches to real OS
// threads against the wall clock for multicore hosts.
//
// Output is JSON (stdout, and argv[1] if given) so successive PRs can
// track commit-path scalability as a trajectory:
//
//   { "bench": "micro_commit_scaling", "mode": "sim"|"real",
//     "threads": [...], "cycles_per_point": N,
//     "results": [ { "workload": ..., "clock": ..., "gate": ...,
//                    "points": [ { "threads": T, "commits": C,
//                                  "aborts": A, "duration": D,
//                                  "throughput": X, "clock_adopts": N,
//                                  "gate_waits": N, "wfilter_hits": N,
//                                  "wfilter_skips": N }, ... ] }, ... ],
//     "summary": { "disjoint_gv4_distributed_over_gv1_counter_at_max": R } }
//
// duration/throughput are virtual cycles and commits per kilocycle in
// sim mode, nanoseconds and commits per microsecond in real mode.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using stm::ClockScheme;
using stm::GateScheme;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

struct CommitConfig {
  const char* clock_name;
  const char* gate_name;
  ClockScheme clock;
  GateScheme gate;
};

constexpr CommitConfig kConfigs[] = {
    {"gv1", "counter", ClockScheme::kGv1, GateScheme::kCounter},
    {"gv1", "distributed", ClockScheme::kGv1, GateScheme::kDistributed},
    {"gv4", "counter", ClockScheme::kGv4, GateScheme::kCounter},
    {"gv4", "distributed", ClockScheme::kGv4, GateScheme::kDistributed},
};

struct Point {
  int threads = 0;
  std::uint64_t commits = 0;
  std::uint64_t duration = 0;  // virtual cycles (sim) / nanoseconds (real)
  double throughput = 0.0;     // commits/kcycle (sim) / commits/us (real)
  stm::TxStats stats;
};

// One transaction of the disjoint workload: increment this thread's own
// kCellsPerThread cells (each TVar's Cell is alignas(64), so threads
// share no data line — only the commit-path globals).
constexpr int kCellsPerThread = 4;
constexpr int kSharedCells = 4;

class Workload {
 public:
  Workload(bool disjoint, int threads)
      : disjoint_(disjoint), threads_(threads) {
    const int n = disjoint ? threads * kCellsPerThread : kSharedCells;
    for (int i = 0; i < n; ++i)
      cells_.push_back(std::make_unique<stm::TVar<long>>(0));
  }

  // Runs one transaction for logical thread `id`, iteration `i`.
  void run_one(int id, long i) {
    if (disjoint_) {
      auto* mine = &cells_[static_cast<std::size_t>(id) * kCellsPerThread];
      stm::atomically([&](stm::Tx& tx) {
        for (int k = 0; k < kCellsPerThread; ++k)
          mine[k]->set(tx, mine[k]->get(tx) + 1);
      });
      return;
    }
    if (id == 0 && (i & 31) == 0) {
      // Periodically close the gate: the irrevocability drain is the
      // slow path the distributed layout must keep correct (and cheap
      // enough) under load.
      stm::atomically_irrevocable([&](stm::Tx& tx) {
        cells_[0]->set(tx, cells_[0]->get(tx) + 1);
      });
      return;
    }
    const std::size_t a = static_cast<std::size_t>(id + i) % kSharedCells;
    const std::size_t b = (a + 1) % kSharedCells;
    stm::atomically([&](stm::Tx& tx) {
      cells_[a]->set(tx, cells_[a]->get(tx) + 1);
      cells_[b]->set(tx, cells_[b]->get(tx) + 1);
    });
  }

 private:
  bool disjoint_;
  int threads_;
  std::vector<std::unique_ptr<stm::TVar<long>>> cells_;
};

Point run_sim_point(bool disjoint, int threads, std::uint64_t cycles) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(disjoint, threads);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(threads), 0);

  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = cycles * 64 + 4'000'000;  // deadlock brake only
  vt::Scheduler sched(opts);
  for (int t = 0; t < threads; ++t) {
    sched.spawn([&w, &commits, cycles](int id) {
      long i = 0;
      while (vt::sim_now() < cycles) {
        w.run_one(id, i++);
        ++commits[static_cast<std::size_t>(id)];
      }
    });
  }
  sched.run();

  Point p;
  p.threads = threads;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = sched.cycles();
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

Point run_real_point(bool disjoint, int threads, std::uint64_t ms) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(disjoint, threads);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(threads), 0);
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  vt::run_threads(threads, [&](int id) {
    long i = 0;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      w.run_one(id, i++);
      ++n;
      if ((n & 63u) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
                .count() >= static_cast<long>(ms))
          stop.store(true, std::memory_order_relaxed);
      }
    }
    commits[static_cast<std::size_t>(id)] = n;
  });
  const auto t1 = std::chrono::steady_clock::now();

  Point p;
  p.threads = threads;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  os << "        {\"threads\": " << p.threads << ", \"commits\": " << p.commits
     << ", \"aborts\": " << p.stats.aborts << ", \"duration\": " << p.duration
     << ", \"throughput\": " << p.throughput
     << ", \"clock_adopts\": " << p.stats.clock_adopts
     << ", \"gate_waits\": " << p.stats.gate_waits
     << ", \"wfilter_hits\": " << p.stats.wfilter_hits
     << ", \"wfilter_skips\": " << p.stats.wfilter_skips << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bool real = env_long("DEMOTX_REAL", 0) != 0;
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 150'000));
  const auto ms = static_cast<std::uint64_t>(env_long("DEMOTX_MS", 50));
  const long max_threads = env_long("DEMOTX_MAX_THREADS", 64);
  std::vector<int> threads;
  for (int t : {1, 2, 4, 8, 16, 32, 64})
    if (t <= max_threads) threads.push_back(t);

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;

  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_commit_scaling\",\n  \"mode\": \""
      << (real ? "real" : "sim") << "\",\n  \"threads\": [";
  for (std::size_t i = 0; i < threads.size(); ++i)
    out << (i != 0 ? ", " : "") << threads[i];
  out << "],\n  \"" << (real ? "ms_per_point" : "cycles_per_point")
      << "\": " << (real ? ms : cycles) << ",\n  \"results\": [\n";

  // summary input: disjoint throughput at max threads per config
  double at_max[4] = {0, 0, 0, 0};

  bool first_series = true;
  for (const bool disjoint : {true, false}) {
    for (std::size_t c = 0; c < 4; ++c) {
      const CommitConfig& cc = kConfigs[c];
      rt.config.clock_scheme = cc.clock;
      rt.config.gate_scheme = cc.gate;
      if (!first_series) out << ",\n";
      first_series = false;
      out << "    {\"workload\": \"" << (disjoint ? "disjoint" : "shared")
          << "\", \"clock\": \"" << cc.clock_name << "\", \"gate\": \""
          << cc.gate_name << "\", \"points\": [\n";
      for (std::size_t t = 0; t < threads.size(); ++t) {
        std::cerr << (disjoint ? "disjoint" : "shared") << " "
                  << cc.clock_name << "+" << cc.gate_name << " @"
                  << threads[t] << " threads...\n";
        const Point p = real ? run_real_point(disjoint, threads[t], ms)
                             : run_sim_point(disjoint, threads[t], cycles);
        if (t != 0) out << ",\n";
        json_point(out, p);
        if (disjoint && t + 1 == threads.size()) at_max[c] = p.throughput;
      }
      out << "\n    ]}";
    }
  }
  rt.config = saved;

  // gv4+distributed (index 3) over gv1+counter (index 0), disjoint
  // workload, highest thread count: the headline commit-path ratio.
  const double ratio = at_max[0] > 0 ? at_max[3] / at_max[0] : 0.0;
  out << "\n  ],\n  \"summary\": "
      << "{\"disjoint_gv4_distributed_over_gv1_counter_at_max\": " << ratio
      << "}\n}\n";

  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  std::cerr << "disjoint @" << threads.back()
            << " threads: gv4+distributed / gv1+counter = " << ratio << "\n";
  return 0;
}
