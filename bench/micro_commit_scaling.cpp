// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Commit-path scalability sweep: tiny update transactions, 1..256
// threads, A/B-ing the commit-path configurations
//
//     {GV1, GV4, sharded} clock  x  {counter, distributed} irrevocability
//     gate                       x  {off, on} NUMA sim model
//
// over two workloads:
//
//   disjoint — every thread updates only its own cache-line-padded
//              cells, so the ONLY shared state a commit touches is the
//              commit-path globals.  This isolates clock/gate ping-pong,
//              which is exactly what the distributed gate + GV4 clock
//              reduce and the sharded epoch/slice clock removes: with
//              the sharded scheme, disjoint committers RMW their own
//              shard word's line instead of one global clock line.
//   shared   — all threads update a handful of common cells (real data
//              conflicts, CM involvement) and one thread periodically
//              runs an irrevocable transaction, closing the gate.
//
// The NUMA axis (DEMOTX_NUMA_DOMAINS homes, remote RMWs cost
// DEMOTX_NUMA_COST service cycles) runs for the disjoint workload only:
// it models the cross-socket cost of the commit-path globals, which the
// shared workload's data conflicts would drown.  Slot s's own clock
// shard is domain-local by construction (both map through the same
// residue), so NUMA-on widens the sharded scheme's edge — the global
// clock line ping-pongs across sockets, shard words never leave home.
//
// By default the sweep runs under the virtual-time simulator — this
// container has one core, so wall-clock scalability is unmeasurable
// (DESIGN.md, Substitutions) — using the simulator's queued hot-line
// model for the commit-path globals.  DEMOTX_REAL=1 switches to real OS
// threads against the wall clock for multicore hosts.
//
// Output is JSON (stdout, and argv[1] if given) so successive PRs can
// track commit-path scalability as a trajectory:
//
//   { "bench": "micro_commit_scaling", "mode": "sim"|"real",
//     "threads": [...], "cycles_per_point": N,
//     "results": [ { "workload": ..., "clock": ..., "gate": ...,
//                    "numa": "off"|"on",
//                    "points": [ { "threads": T, "commits": C,
//                                  "aborts": A, "duration": D,
//                                  "throughput": X, "clock_adopts": N,
//                                  "gate_waits": N, "wfilter_hits": N,
//                                  "wfilter_skips": N,
//                                  "shard_conflicts": N, "epoch_bumps": N,
//                                  "remote_line_hits": N,
//                                  "desc_heap_bytes": N,
//                                  "shard_grants_max": N,
//                                  "shard_skew": S }, ... ] }, ... ],
//     "summary": {
//       "disjoint_gv4_distributed_over_gv1_counter_at_max": R,
//       "disjoint_sharded_distributed_over_gv1_distributed_at_128_numa_on":
//           R } }
//
// shard_skew is max-over-mean of per-shard grants during the point (1.0
// = perfectly balanced; only meaningful for the sharded clock).
// duration/throughput are virtual cycles and commits per kilocycle in
// sim mode, nanoseconds and commits per microsecond in real mode.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using stm::ClockScheme;
using stm::GateScheme;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

struct CommitConfig {
  const char* clock_name;
  const char* gate_name;
  ClockScheme clock;
  GateScheme gate;
};

constexpr CommitConfig kConfigs[] = {
    {"gv1", "counter", ClockScheme::kGv1, GateScheme::kCounter},
    {"gv1", "distributed", ClockScheme::kGv1, GateScheme::kDistributed},
    {"gv4", "counter", ClockScheme::kGv4, GateScheme::kCounter},
    {"gv4", "distributed", ClockScheme::kGv4, GateScheme::kDistributed},
    {"sharded", "counter", ClockScheme::kSharded, GateScheme::kCounter},
    {"sharded", "distributed", ClockScheme::kSharded,
     GateScheme::kDistributed},
};
constexpr std::size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);

struct Point {
  int threads = 0;
  std::uint64_t commits = 0;
  std::uint64_t duration = 0;  // virtual cycles (sim) / nanoseconds (real)
  double throughput = 0.0;     // commits/kcycle (sim) / commits/us (real)
  std::uint64_t shard_grants_max = 0;
  double shard_skew = 0.0;  // max/mean per-shard grants (1.0 = balanced)
  stm::TxStats stats;
};

using ShardSnapshot = std::array<std::uint64_t, stm::kClockShards>;

ShardSnapshot shard_snapshot() {
  auto& rt = stm::Runtime::instance();
  ShardSnapshot g{};
  for (std::size_t s = 0; s < stm::kClockShards; ++s)
    g[s] = rt.shard_grants(s);
  return g;
}

// Per-point shard-skew stats from the lifetime grant counters: delta the
// snapshot taken before the point, then max-over-mean of the deltas.
void fill_shard_stats(Point& p, const ShardSnapshot& before) {
  const ShardSnapshot after = shard_snapshot();
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < stm::kClockShards; ++s) {
    const std::uint64_t d = after[s] - before[s];
    total += d;
    if (d > p.shard_grants_max) p.shard_grants_max = d;
  }
  p.shard_skew =
      total == 0 ? 0.0
                 : static_cast<double>(p.shard_grants_max) *
                       static_cast<double>(stm::kClockShards) /
                       static_cast<double>(total);
}

// One transaction of the disjoint workload: increment this thread's own
// kCellsPerThread cells (each TVar's Cell is alignas(64), so threads
// share no data line — only the commit-path globals).
constexpr int kCellsPerThread = 4;
constexpr int kSharedCells = 4;

class Workload {
 public:
  Workload(bool disjoint, int threads)
      : disjoint_(disjoint), threads_(threads) {
    const int n = disjoint ? threads * kCellsPerThread : kSharedCells;
    for (int i = 0; i < n; ++i)
      cells_.push_back(std::make_unique<stm::TVar<long>>(0));
  }

  // Runs one transaction for logical thread `id`, iteration `i`.
  void run_one(int id, long i) {
    if (disjoint_) {
      auto* mine = &cells_[static_cast<std::size_t>(id) * kCellsPerThread];
      stm::atomically([&](stm::Tx& tx) {
        for (int k = 0; k < kCellsPerThread; ++k)
          mine[k]->set(tx, mine[k]->get(tx) + 1);
      });
      return;
    }
    if (id == 0 && (i & 31) == 0) {
      // Periodically close the gate: the irrevocability drain is the
      // slow path the distributed layout must keep correct (and cheap
      // enough) under load.
      stm::atomically_irrevocable([&](stm::Tx& tx) {
        cells_[0]->set(tx, cells_[0]->get(tx) + 1);
      });
      return;
    }
    const std::size_t a = static_cast<std::size_t>(id + i) % kSharedCells;
    const std::size_t b = (a + 1) % kSharedCells;
    stm::atomically([&](stm::Tx& tx) {
      cells_[a]->set(tx, cells_[a]->get(tx) + 1);
      cells_[b]->set(tx, cells_[b]->get(tx) + 1);
    });
  }

 private:
  bool disjoint_;
  int threads_;
  std::vector<std::unique_ptr<stm::TVar<long>>> cells_;
};

Point run_sim_point(bool disjoint, int threads, std::uint64_t cycles) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  const ShardSnapshot before = shard_snapshot();
  Workload w(disjoint, threads);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(threads), 0);

  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = cycles * 64 + 4'000'000;  // deadlock brake only
  vt::Scheduler sched(opts);
  for (int t = 0; t < threads; ++t) {
    sched.spawn([&w, &commits, cycles](int id) {
      long i = 0;
      while (vt::sim_now() < cycles) {
        w.run_one(id, i++);
        ++commits[static_cast<std::size_t>(id)];
      }
    });
  }
  sched.run();

  Point p;
  p.threads = threads;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = sched.cycles();
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  fill_shard_stats(p, before);
  mem::EpochManager::instance().drain();
  return p;
}

Point run_real_point(bool disjoint, int threads, std::uint64_t ms) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  const ShardSnapshot before = shard_snapshot();
  Workload w(disjoint, threads);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(threads), 0);
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  vt::run_threads(threads, [&](int id) {
    long i = 0;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      w.run_one(id, i++);
      ++n;
      if ((n & 63u) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
                .count() >= static_cast<long>(ms))
          stop.store(true, std::memory_order_relaxed);
      }
    }
    commits[static_cast<std::size_t>(id)] = n;
  });
  const auto t1 = std::chrono::steady_clock::now();

  Point p;
  p.threads = threads;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  fill_shard_stats(p, before);
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  os << "        {\"threads\": " << p.threads << ", \"commits\": " << p.commits
     << ", \"aborts\": " << p.stats.aborts << ", \"duration\": " << p.duration
     << ", \"throughput\": " << p.throughput
     << ", \"clock_adopts\": " << p.stats.clock_adopts
     << ", \"gate_waits\": " << p.stats.gate_waits
     << ", \"wfilter_hits\": " << p.stats.wfilter_hits
     << ", \"wfilter_skips\": " << p.stats.wfilter_skips
     << ", \"shard_conflicts\": " << p.stats.shard_conflicts
     << ", \"epoch_bumps\": " << p.stats.epoch_bumps
     << ", \"remote_line_hits\": " << p.stats.remote_line_hits
     << ", \"desc_heap_bytes\": " << p.stats.desc_heap_bytes
     << ", \"shard_grants_max\": " << p.shard_grants_max
     << ", \"shard_skew\": " << p.shard_skew << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bool real = env_long("DEMOTX_REAL", 0) != 0;
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 150'000));
  const auto ms = static_cast<std::uint64_t>(env_long("DEMOTX_MS", 50));
  const long max_threads = env_long("DEMOTX_MAX_THREADS", 256);
  const int numa_domains =
      static_cast<int>(env_long("DEMOTX_NUMA_DOMAINS", 4));
  std::vector<int> threads;
  for (int t : {1, 2, 4, 8, 16, 32, 64, 128, 256})
    if (t <= max_threads) threads.push_back(t);

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;

  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_commit_scaling\",\n  \"mode\": \""
      << (real ? "real" : "sim") << "\",\n  \"threads\": [";
  for (std::size_t i = 0; i < threads.size(); ++i)
    out << (i != 0 ? ", " : "") << threads[i];
  out << "],\n  \"" << (real ? "ms_per_point" : "cycles_per_point")
      << "\": " << (real ? ms : cycles)
      << ",\n  \"numa_domains\": " << numa_domains << ",\n  \"results\": [\n";

  // summary inputs: disjoint throughput per config — at the sweep's max
  // (NUMA off, the legacy headline) and at 128 threads with NUMA on (the
  // sharded clock's headline; falls back to the highest swept count when
  // the sweep stops short of 128).
  double at_max_off[kNumConfigs] = {};
  double at_128_on[kNumConfigs] = {};

  bool first_series = true;
  for (const bool numa : {false, true}) {
    rt.config.numa_domains = numa ? numa_domains : 1;
    for (const bool disjoint : {true, false}) {
      // The NUMA axis models the cross-socket cost of the commit-path
      // globals; the shared workload's data conflicts would drown it.
      if (numa && !disjoint) continue;
      for (std::size_t c = 0; c < kNumConfigs; ++c) {
        const CommitConfig& cc = kConfigs[c];
        rt.config.clock_scheme = cc.clock;
        rt.config.gate_scheme = cc.gate;
        if (!first_series) out << ",\n";
        first_series = false;
        out << "    {\"workload\": \"" << (disjoint ? "disjoint" : "shared")
            << "\", \"clock\": \"" << cc.clock_name << "\", \"gate\": \""
            << cc.gate_name << "\", \"numa\": \"" << (numa ? "on" : "off")
            << "\", \"points\": [\n";
        for (std::size_t t = 0; t < threads.size(); ++t) {
          std::cerr << (disjoint ? "disjoint" : "shared") << " "
                    << cc.clock_name << "+" << cc.gate_name << " numa="
                    << (numa ? "on" : "off") << " @" << threads[t]
                    << " threads...\n";
          const Point p = real ? run_real_point(disjoint, threads[t], ms)
                               : run_sim_point(disjoint, threads[t], cycles);
          if (t != 0) out << ",\n";
          json_point(out, p);
          if (disjoint && !numa && t + 1 == threads.size())
            at_max_off[c] = p.throughput;
          if (disjoint && numa &&
              (threads[t] == 128 || (threads[t] < 128 &&
                                     t + 1 == threads.size())))
            at_128_on[c] = p.throughput;
        }
        out << "\n    ]}";
      }
    }
  }
  rt.config = saved;

  // Legacy headline: gv4+distributed (index 3) over gv1+counter (index
  // 0), disjoint workload, highest thread count, NUMA off.
  const double ratio =
      at_max_off[0] > 0 ? at_max_off[3] / at_max_off[0] : 0.0;
  // PR 6 headline: sharded+distributed (index 5) over gv1+distributed
  // (index 1), disjoint workload, 128 threads, NUMA on — the acceptance
  // bar is >= 1.5x.
  const double sharded_ratio =
      at_128_on[1] > 0 ? at_128_on[5] / at_128_on[1] : 0.0;
  out << "\n  ],\n  \"summary\": "
      << "{\"disjoint_gv4_distributed_over_gv1_counter_at_max\": " << ratio
      << ",\n              "
      << "\"disjoint_sharded_distributed_over_gv1_distributed_at_128_numa_on"
      << "\": " << sharded_ratio << "}\n}\n";

  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  std::cerr << "disjoint @" << threads.back()
            << " threads (numa off): gv4+distributed / gv1+counter = "
            << ratio << "\n"
            << "disjoint @128 threads (numa on): sharded+distributed / "
               "gv1+distributed = "
            << sharded_ratio << "\n";
  return 0;
}
