// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Figure 7 — "Throughput (normalized over the sequential one) of elastic
// and classic transactions, the classic transactions alone and the
// existing concurrent collection."
//
// Paper setup: as Fig. 5, but contains/add/remove run as ELASTIC
// transactions while size stays CLASSIC (the atomic snapshot of the
// count).  Paper result: the combination peaks 3.5x above classic alone
// and 1.6x above the collection, but degrades between 32 and 64 threads
// because the classic size keeps aborting against concurrent updates
// (the "toxic transaction" effect the paper conjectures).
#include <algorithm>
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "sync/cow_array_set.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout,
                  "Fig. 7 — elastic+classic mix vs. classic vs. collection");
  const FigureConfig cfg = FigureConfig::from_env();
  print_workload_banner(cfg);

  const std::vector<Series> series{
      {"elastic+classic", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kClassic});
       }},
      {"classic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"collection(cow)", [] { return std::make_unique<sync::CowArraySet>(); }},
  };

  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table("fig7", cfg, series, results);
  print_abort_table(cfg, series, results);
  print_validation_table(cfg, series, results);

  double best_mix = 0, best_classic = 0, best_cow = 0;
  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    best_mix = std::max(best_mix, results[0][ti].speedup);
    best_classic = std::max(best_classic, results[1][ti].speedup);
    best_cow = std::max(best_cow, results[2][ti].speedup);
  }
  std::cout << "\nbest elastic+classic / best classic = "
            << harness::Table::num(best_mix / std::max(best_classic, 1e-9), 2)
            << "x   (paper: 3.5x)\n"
            << "best elastic+classic / best collection = "
            << harness::Table::num(best_mix / std::max(best_cow, 1e-9), 2)
            << "x   (paper: 1.6x)\n";
  const std::size_t last = cfg.threads.size() - 1;
  if (cfg.threads.size() >= 2 &&
      results[0][last].speedup < results[0][last - 1].speedup) {
    std::cout << "elastic+classic degrades at " << cfg.threads[last]
              << " threads (paper: slow-down between 32 and 64 from "
                 "repeatedly aborting classic size operations)\n";
  }
  return 0;
}
