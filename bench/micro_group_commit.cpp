// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Group-commit ablation: goodput vs. acknowledgment latency as the
// flush batch grows.
//
//     {1, 2, 4, 8, 16, 32} batch  x  {gv1, sharded} clock
//
// Committers run disjoint tiny updates over WAL-registered cells with
// the durable logger attached, so every commit appends a redo record
// and blocks in await_durable until a flush leader forces its batch.
// batch=1 is the DEMOTX_GROUP_COMMIT=1 control — a synchronous flush
// per commit, the no-group-commit baseline the batched columns are read
// against.  The clock axis matters because the leader stamps its group
// with ONE clock grant: under gv1 that grant contends with every
// committer's RMW on the global clock line, under the sharded scheme it
// lands on the leader's own shard word.
//
// The interval knob (Config::group_commit_interval) is held fixed: the
// leader's deadline only bounds tail latency when the batch never
// fills, and sweeping both axes would conflate the two effects.
// Checkpointing is off (checkpoint_every=0) so ack latency measures the
// log path alone, not folding.
//
// Runs under the virtual-time simulator (one-core container; DESIGN.md,
// Substitutions).  Output is JSON (stdout, and argv[1] if given):
//
//   { "bench": "micro_group_commit", "mode": "sim",
//     "threads": T, "cycles_per_point": N, "interval": I,
//     "results": [ { "clock": ..., "points": [
//         { "batch": B, "commits": C, "duration": D, "goodput": G,
//           "records": N, "flushes": N, "group_grants": N,
//           "acks": N, "ack_lat_mean": M, "ack_lat_max": X }, ... ] } ],
//     "summary": { "gv1_goodput_batch8_over_batch1": R,
//                  "sharded_goodput_batch8_over_batch1": R,
//                  "gv1_ack_lat_mean_batch8_over_batch1": R,
//                  "sharded_ack_lat_mean_batch8_over_batch1": R } }
//
// goodput is commits per kilocycle; ack_lat_* are virtual cycles from
// record append to acknowledgment (the durability wait a caller of
// atomically() actually experiences).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dur/wal.hpp"
#include "mem/epoch.hpp"
#include "stm/durability.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

constexpr std::uint64_t kBatches[] = {1, 2, 4, 8, 16, 32};
constexpr int kCellsPerThread = 2;

struct Point {
  std::uint64_t batch = 0;
  std::uint64_t commits = 0;
  std::uint64_t duration = 0;  // virtual cycles
  double goodput = 0.0;        // commits per kilocycle
  double ack_lat_mean = 0.0;
  dur::WalStats wal;
};

// One sim run: `threads` committers increment their own registered
// cells until the cycle budget, every commit logged and awaited.
Point run_point(std::uint64_t batch, int threads, std::uint64_t cycles) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  stm::cell_uid_reset();
  stm::obj_uid_reset();

  dur::WalManager& wal = dur::WalManager::instance();
  wal.reset();
  std::vector<std::unique_ptr<stm::Cell>> cells;
  for (int i = 0; i < threads * kCellsPerThread; ++i) {
    cells.push_back(std::make_unique<stm::Cell>());
    wal.register_cell(cells.back().get());
  }
  stm::set_commit_logger(&wal);

  std::vector<std::uint64_t> commits(static_cast<std::size_t>(threads), 0);
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = cycles * 64 + 4'000'000;  // deadlock brake only
  vt::Scheduler sched(opts);
  for (int t = 0; t < threads; ++t) {
    sched.spawn([&cells, &commits, cycles](int id) {
      auto* mine = &cells[static_cast<std::size_t>(id) * kCellsPerThread];
      while (vt::sim_now() < cycles) {
        stm::atomically([&](stm::Tx& tx) {
          for (int k = 0; k < kCellsPerThread; ++k)
            tx.write_word(*mine[k], tx.read_word(*mine[k]) + 1);
        });
        ++commits[static_cast<std::size_t>(id)];
      }
    });
  }
  sched.run();
  stm::set_commit_logger(nullptr);

  Point p;
  p.batch = batch;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = sched.cycles();
  p.goodput = p.duration == 0 ? 0.0
                              : static_cast<double>(p.commits) * 1000.0 /
                                    static_cast<double>(p.duration);
  p.wal = wal.stats();
  p.ack_lat_mean = p.wal.acks == 0
                       ? 0.0
                       : static_cast<double>(p.wal.ack_lat_sum) /
                             static_cast<double>(p.wal.acks);
  wal.reset();
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  os << "      {\"batch\": " << p.batch << ", \"commits\": " << p.commits
     << ", \"duration\": " << p.duration << ", \"goodput\": " << p.goodput
     << ", \"records\": " << p.wal.records
     << ", \"flushes\": " << p.wal.flushes
     << ", \"group_grants\": " << p.wal.group_grants
     << ", \"acks\": " << p.wal.acks
     << ", \"ack_lat_mean\": " << p.ack_lat_mean
     << ", \"ack_lat_max\": " << p.wal.ack_lat_max << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 60'000));
  // 8 committers by default so the batch=8 column can actually fill; a
  // batch larger than the committer count is deadline-bound by
  // construction (the tail of the sweep shows exactly that collapse).
  const int threads = static_cast<int>(
      std::min<long>(env_long("DEMOTX_MAX_THREADS", 8), 64));
  constexpr std::uint64_t kInterval = 128;

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;
  rt.config.group_commit_interval = kInterval;
  rt.config.checkpoint_every = 0;

  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_group_commit\",\n  \"mode\": \"sim\",\n"
      << "  \"threads\": " << threads
      << ",\n  \"cycles_per_point\": " << cycles
      << ",\n  \"interval\": " << kInterval << ",\n  \"results\": [\n";

  struct Series {
    const char* name;
    stm::ClockScheme clock;
  };
  constexpr Series kSeries[] = {
      {"gv1", stm::ClockScheme::kGv1},
      {"sharded", stm::ClockScheme::kSharded},
  };

  double goodput_b1[2] = {}, goodput_b8[2] = {};
  double lat_b1[2] = {}, lat_b8[2] = {};
  for (std::size_t s = 0; s < 2; ++s) {
    rt.config.clock_scheme = kSeries[s].clock;
    if (s != 0) out << ",\n";
    out << "    {\"clock\": \"" << kSeries[s].name << "\", \"points\": [\n";
    bool first = true;
    for (const std::uint64_t batch : kBatches) {
      std::cerr << kSeries[s].name << " batch=" << batch << "...\n";
      rt.config.group_commit_batch = batch;
      const Point p = run_point(batch, threads, cycles);
      if (batch == 1) { goodput_b1[s] = p.goodput; lat_b1[s] = p.ack_lat_mean; }
      if (batch == 8) { goodput_b8[s] = p.goodput; lat_b8[s] = p.ack_lat_mean; }
      if (!first) out << ",\n";
      first = false;
      json_point(out, p);
    }
    out << "\n    ]}";
  }

  const auto ratio = [](double a, double b) { return b == 0.0 ? 0.0 : a / b; };
  out << "\n  ],\n  \"summary\": {\n"
      << "    \"gv1_goodput_batch8_over_batch1\": "
      << ratio(goodput_b8[0], goodput_b1[0]) << ",\n"
      << "    \"sharded_goodput_batch8_over_batch1\": "
      << ratio(goodput_b8[1], goodput_b1[1]) << ",\n"
      << "    \"gv1_ack_lat_mean_batch8_over_batch1\": "
      << ratio(lat_b8[0], lat_b1[0]) << ",\n"
      << "    \"sharded_ack_lat_mean_batch8_over_batch1\": "
      << ratio(lat_b8[1], lat_b1[1]) << "\n  }\n}\n";

  rt.config = saved;
  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
  }
  return 0;
}
