// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Snapshot-path scalability sweep: long read-only snapshot scans under
// update churn, 1..64 reader threads, A/B-ing the per-cell version ring
// depth
//
//     {2 (paper baseline), 4, 8}  x  {churn on, churn off}.
//
// The workload isolates what the deeper ring is for: the Fig. 9 abort
// storm where a location is overwritten more than depth-1 times between a
// snapshot reader's start and its arrival at the cell, exhausting the
// kept history ("the snapshot transaction may have to abort if the older
// version is still too recent").  Each READER snapshot-sums a shared
// 256-cell array in index order; two WRITER threads walk a 16-cell hot
// set at the TAIL of that order, overwriting each hot cell kBurst times
// in consecutive small commits (each commit pushes one ring generation),
// then pausing.  The pacing is tuned so a hot cell collects ~2
// generations during one reader lifetime: the paper's depth 2 keeps one
// backup and aborts, depth 4 keeps three and is almost always rescued,
// depth 8 never exhausts.  Churn-off rows are the control: all depths
// must agree within noise there (the ring costs nothing when idle), which
// is also the A/B evidence that depth 2 itself did not move.
//
// By default the sweep runs under the virtual-time simulator (this
// container has one core; see DESIGN.md, Substitutions); DEMOTX_REAL=1
// switches to real OS threads against the wall clock.
//
// Output is JSON (stdout, and argv[1] if given):
//
//   { "bench": "micro_snapshot_scaling", "mode": "sim"|"real",
//     "readers": [...], "depths": [2, 4, 8], "cycles_per_point": N,
//     "results": [ { "depth": D, "churn": true|false,
//                    "points": [ { "readers": T, "commits": C,
//                                  "aborts": A, "duration": D,
//                                  "throughput": X, "ring_serves": N,
//                                  "deep_serves": N, "too_old": N,
//                                  "race": N, "locked": N }, ... ] }, ... ],
//     "summary": { "depth4_over_depth2_at_max": R,
//                  "depth8_over_depth2_at_max": R,
//                  "nochurn_depth8_over_depth2_at_max": R } }
//
// throughput counts READER commits only — per kilocycle (sim) or per
// microsecond (real); writer commits are load, not output.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

constexpr int kWriters = 2;
constexpr int kCells = 256;   // snapshot scan length
constexpr int kHot = 16;      // churned cells, last in scan order
constexpr int kBurst = 3;     // consecutive overwrites per hot-cell visit
constexpr int kPause = 448;   // writer cool-down accesses between bursts

struct Point {
  int readers = 0;
  std::uint64_t commits = 0;   // reader commits only
  std::uint64_t duration = 0;  // virtual cycles (sim) / nanoseconds (real)
  double throughput = 0.0;     // commits/kcycle (sim) / commits/us (real)
  stm::TxStats stats;
};

class Workload {
 public:
  explicit Workload(bool churn) : churn_(churn) {
    for (int i = 0; i < kCells; ++i)
      cells_.push_back(std::make_unique<stm::TVar<long>>(1));
  }

  // One read-only snapshot transaction over the whole array, in index
  // order — the hot tail is reached last, maximizing the churn the ring
  // must bridge.
  long run_reader() {
    return stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
      long sum = 0;
      for (auto& c : cells_) sum += c->get(tx);
      return sum;
    });
  }

  // One writer iteration: kBurst single-cell commits on the next hot cell
  // (each commit pushes one ring generation), then a cool-down so a hot
  // cell collects about two generations per reader lifetime.
  void run_writer(int id, long i) {
    if (!churn_) {
      vt::access();  // idle control: writers only burn cycles
      return;
    }
    const std::size_t hot = kCells - kHot +
                            static_cast<std::size_t>(id + i) % kHot;
    for (int b = 0; b < kBurst; ++b) {
      stm::atomically([&](stm::Tx& tx) {
        auto& c = cells_[hot];
        c->set(tx, c->get(tx) + 1);
      });
    }
    for (int p = 0; p < kPause; ++p) vt::access();
  }

 private:
  bool churn_;
  std::vector<std::unique_ptr<stm::TVar<long>>> cells_;
};

Point run_sim_point(int readers, bool churn, std::uint64_t cycles) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(churn);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(readers), 0);

  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = cycles * 64 + 4'000'000;  // deadlock brake only
  vt::Scheduler sched(opts);
  for (int t = 0; t < readers + kWriters; ++t) {
    sched.spawn([&w, &commits, cycles, readers](int id) {
      if (id < readers) {
        while (vt::sim_now() < cycles) {
          (void)w.run_reader();
          ++commits[static_cast<std::size_t>(id)];
        }
      } else {
        long i = 0;
        while (vt::sim_now() < cycles) w.run_writer(id, i++);
      }
    });
  }
  sched.run();

  Point p;
  p.readers = readers;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = sched.cycles();
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

Point run_real_point(int readers, bool churn, std::uint64_t ms) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(churn);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(readers), 0);
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  vt::run_threads(readers + kWriters, [&](int id) {
    long i = 0;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (id < readers) {
        (void)w.run_reader();
        ++n;
      } else {
        w.run_writer(id, i);
      }
      if ((++i & 63) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
                .count() >= static_cast<long>(ms))
          stop.store(true, std::memory_order_relaxed);
      }
    }
    if (id < readers) commits[static_cast<std::size_t>(id)] = n;
  });
  const auto t1 = std::chrono::steady_clock::now();

  Point p;
  p.readers = readers;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  auto reason = [&](stm::AbortReason r) {
    return p.stats.aborts_by_reason[static_cast<int>(r)];
  };
  os << "        {\"readers\": " << p.readers << ", \"commits\": " << p.commits
     << ", \"aborts\": " << p.stats.aborts << ", \"duration\": " << p.duration
     << ", \"throughput\": " << p.throughput
     << ", \"ring_serves\": " << p.stats.snapshot_old_reads
     << ", \"deep_serves\": " << p.stats.snapshot_ring_hits
     << ", \"too_old\": " << reason(stm::AbortReason::kSnapshotTooOld)
     << ", \"race\": " << reason(stm::AbortReason::kSnapshotRace)
     << ", \"locked\": " << reason(stm::AbortReason::kLockedByOther) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bool real = env_long("DEMOTX_REAL", 0) != 0;
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 60'000));
  const auto ms = static_cast<std::uint64_t>(env_long("DEMOTX_MS", 50));
  const long max_threads = env_long("DEMOTX_MAX_THREADS", 64);
  std::vector<int> readers;
  for (int t : {1, 8, 32, 64})
    if (t <= max_threads) readers.push_back(t);
  const std::vector<std::size_t> depths{2, 4, 8};

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;

  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_snapshot_scaling\",\n  \"mode\": \""
      << (real ? "real" : "sim") << "\",\n  \"readers\": [";
  for (std::size_t i = 0; i < readers.size(); ++i)
    out << (i != 0 ? ", " : "") << readers[i];
  out << "],\n  \"depths\": [";
  for (std::size_t i = 0; i < depths.size(); ++i)
    out << (i != 0 ? ", " : "") << depths[i];
  out << "],\n  \"" << (real ? "ms_per_point" : "cycles_per_point")
      << "\": " << (real ? ms : cycles) << ",\n  \"results\": [\n";

  // summary input: throughput at max readers per (depth index, churn)
  double at_max[3][2] = {{0}};

  bool first_series = true;
  for (std::size_t d = 0; d < depths.size(); ++d) {
    for (const bool churn : {true, false}) {
      rt.config.snapshot_depth = depths[d];
      if (!first_series) out << ",\n";
      first_series = false;
      out << "    {\"depth\": " << depths[d] << ", \"churn\": "
          << (churn ? "true" : "false") << ", \"points\": [\n";
      for (std::size_t t = 0; t < readers.size(); ++t) {
        std::cerr << "depth=" << depths[d] << (churn ? " churn" : " idle")
                  << " @" << readers[t] << " readers...\n";
        const Point p = real ? run_real_point(readers[t], churn, ms)
                             : run_sim_point(readers[t], churn, cycles);
        if (t != 0) out << ",\n";
        json_point(out, p);
        if (t + 1 == readers.size()) at_max[d][churn ? 0 : 1] = p.throughput;
      }
      out << "\n    ]}";
    }
  }
  rt.config = saved;

  const double r4 = at_max[0][0] > 0 ? at_max[1][0] / at_max[0][0] : 0.0;
  const double r8 = at_max[0][0] > 0 ? at_max[2][0] / at_max[0][0] : 0.0;
  const double rid = at_max[0][1] > 0 ? at_max[2][1] / at_max[0][1] : 0.0;
  out << "\n  ],\n  \"summary\": "
      << "{\"depth4_over_depth2_at_max\": " << r4
      << ",\n              \"depth8_over_depth2_at_max\": " << r8
      << ",\n              \"nochurn_depth8_over_depth2_at_max\": " << rid
      << "}\n}\n";

  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  std::cerr << "churn @" << readers.back()
            << " readers: depth4/depth2 = " << r4 << ", depth8/depth2 = " << r8
            << "; idle depth8/depth2 = " << rid << "\n";
  return 0;
}
