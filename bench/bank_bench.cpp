// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// The bank benchmark (paper Sec. 4.3 invokes its "balance operations" as
// the canonical toxic transaction; citation [40] is the testbed it comes
// from): transfer transactions move money between two random accounts
// while balance transactions sum every account.
//
// Series:
//   all-classic      — transfers and balances both classic: balances are
//                      toxic (abort against every concurrent transfer);
//   balance-snapshot — transfers classic, balances snapshot: the
//                      democratized fix, balances always commit;
//   irrevocable-bal  — balances run irrevocably: they never abort but
//                      serialize every transfer behind the token (the
//                      heavy-handed alternative, for contrast).
#include <iostream>
#include <memory>
#include <vector>

#include "bench/fig_common.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using namespace demotx::bench;

namespace {

struct Bank {
  explicit Bank(int n) {
    for (int i = 0; i < n; ++i)
      accounts.push_back(std::make_unique<stm::TVar<long>>(1000));
  }
  std::vector<std::unique_ptr<stm::TVar<long>>> accounts;
};

enum class BalanceMode { kClassic, kSnapshot, kIrrevocable };

struct Result {
  double ops_per_kcycle = 0;
  double abort_ratio = 0;
  bool sound = true;
};

Result run_bank(int threads, BalanceMode mode, std::uint64_t cycles,
                int accounts_n) {
  Bank bank(accounts_n);
  stm::Runtime::instance().reset_stats();
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(threads), 0);
  std::atomic<bool> unsound{false};
  const long expected_total = 1000L * accounts_n;

  vt::Scheduler sched;
  for (int t = 0; t < threads; ++t) {
    sched.spawn([&, t](int id) {
      std::uint64_t rng = 0xabc + static_cast<std::uint64_t>(id) * 7919;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      while (sched.cycles() < cycles) {
        if (next() % 10 == 0) {  // 10% balances
          auto body = [&](stm::Tx& tx) {
            long sum = 0;
            for (auto& a : bank.accounts) sum += a->get(tx);
            return sum;
          };
          long sum = 0;
          switch (mode) {
            case BalanceMode::kClassic:
              sum = stm::atomically(body);
              break;
            case BalanceMode::kSnapshot:
              sum = stm::atomically(stm::Semantics::kSnapshot, body);
              break;
            case BalanceMode::kIrrevocable:
              sum = stm::atomically_irrevocable(body);
              break;
          }
          if (sum != expected_total) unsound.store(true);
        } else {  // transfers
          const auto a = static_cast<std::size_t>(
              next() % static_cast<std::uint64_t>(accounts_n));
          const auto b = static_cast<std::size_t>(
              next() % static_cast<std::uint64_t>(accounts_n));
          const long amt = static_cast<long>(next() % 20);
          stm::atomically([&](stm::Tx& tx) {
            bank.accounts[a]->set(tx, bank.accounts[a]->get(tx) - amt);
            bank.accounts[b]->set(tx, bank.accounts[b]->get(tx) + amt);
          });
        }
        ++ops[static_cast<std::size_t>(t)];
      }
    });
  }
  sched.run();

  Result r;
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  r.ops_per_kcycle = sched.cycles() == 0
                         ? 0
                         : 1000.0 * static_cast<double>(total) /
                               static_cast<double>(sched.cycles());
  r.abort_ratio = stm::Runtime::instance().aggregate_stats().abort_ratio();
  long final_total = 0;
  for (auto& a : bank.accounts) final_total += a->unsafe_load();
  r.sound = !unsound.load() && final_total == expected_total;
  mem::EpochManager::instance().drain();
  return r;
}

}  // namespace

int main() {
  harness::banner(std::cout,
                  "Bank benchmark — toxic balances vs the democratized fix");
  const auto accounts_n = static_cast<int>(env_long("DEMOTX_ACCOUNTS", 64));
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 200'000));
  const auto max_threads = env_long("DEMOTX_MAX_THREADS", 64);
  std::cout << accounts_n << " accounts, 90% transfers / 10% balances, "
            << cycles << " cycles per point\n\n";

  harness::Table speed(
      {"threads", "all-classic", "balance-snapshot", "irrevocable-bal"});
  harness::Table aborts(
      {"threads", "all-classic", "balance-snapshot", "irrevocable-bal"});
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    if (threads > max_threads) break;
    std::vector<std::string> srow{std::to_string(threads)};
    std::vector<std::string> arow = srow;
    for (BalanceMode mode : {BalanceMode::kClassic, BalanceMode::kSnapshot,
                             BalanceMode::kIrrevocable}) {
      const Result r = run_bank(threads, mode, cycles, accounts_n);
      if (!r.sound) {
        std::cerr << "SOUNDNESS FAILURE at " << threads << " threads\n";
        return 1;
      }
      srow.push_back(harness::Table::num(r.ops_per_kcycle, 2));
      arow.push_back(harness::Table::num(r.abort_ratio, 3));
    }
    speed.add_row(srow);
    aborts.add_row(arow);
  }
  std::cout << "throughput (ops per kilocycle):\n";
  speed.print(std::cout);
  speed.print_csv(std::cout, "bank");
  std::cout << "\nabort ratio:\n";
  aborts.print(std::cout);
  std::cout << "\n(every balance must equal the bank's total — verified on "
               "every run; the paper's\n Sec. 4.3 conjecture is the "
               "all-classic column's collapse)\n";
  return 0;
}
