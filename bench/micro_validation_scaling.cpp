// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Validation-path scalability sweep: long readers, 1..64 reader threads,
// A/B-ing the two validation schemes
//
//     {scan, summary}  x  {extension off, extension on}
//
// over read-set sizes {16, 64, 256, 1024}.
//
// The workload isolates what the commit write-summary ring is for: the
// O(read-set) revalidation that a TL2-style STM pays on every timebase
// extension (and every update-commit validation).  Each READER runs a
// read-only transaction over its own cache-line-padded cells, pausing a
// few times to read the most recently bumped cell of a shared trigger
// pool; the trigger's fresh version forces an extension, whose
// revalidation is the measured cost:
//
//   scan    — every extension rescans the whole read set so far
//             (batched + prefetched, but still O(read set) cell lines),
//   summary — the ring answers from O(commits-since-rv) slot reads; an
//             intersecting union degrades to the filter-gated probe of
//             only the entries the range's commits may have written.
//
// Two WRITER threads supply the clock traffic and ring contents: a
// stream of small transactions over 4 hot cells, plus the rotating
// trigger bumps.  Trigger cells are bumped once per full rotation of a
// 64-cell pool, so a logged trigger is never invalidated mid-run —
// extensions are exercised, conflicts are not (the abort-path A/B lives
// in the fig benches and ablation_stm).
//
// By default the sweep runs under the virtual-time simulator (this
// container has one core; see DESIGN.md, Substitutions), where a shared
// access costs one cycle, a private read-set line costs 1/4 cycle, and
// the ring line is a queued resource.  DEMOTX_REAL=1 switches to real OS
// threads against the wall clock.
//
// Output is JSON (stdout, and argv[1] if given):
//
//   { "bench": "micro_validation_scaling", "mode": "sim"|"real",
//     "readers": [...], "readset_sizes": [...], "cycles_per_point": N,
//     "results": [ { "scheme": ..., "extension": ..., "readset": R,
//                    "points": [ { "readers": T, "commits": C,
//                                  "aborts": A, "duration": D,
//                                  "throughput": X, "extensions": N,
//                                  "summary_skips": N,
//                                  "summary_fallbacks": N,
//                                  "ring_overflows": N,
//                                  "readset_dedups": N }, ... ] }, ... ],
//     "summary": { "summary_over_scan_ext_on_rss256_at_max": R,
//                  "summary_over_scan_ext_on_rss1024_at_max": R } }
//
// throughput counts READER commits only — per kilocycle (sim) or per
// microsecond (real); writer commits are load, not output.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using stm::ValidationScheme;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

constexpr int kWriters = 2;
constexpr int kHotCells = 4;
constexpr int kTriggerPool = 64;
constexpr int kTriggerReads = 6;  // extension opportunities per reader tx

struct Point {
  int readers = 0;
  std::uint64_t commits = 0;   // reader commits only
  std::uint64_t duration = 0;  // virtual cycles (sim) / nanoseconds (real)
  double throughput = 0.0;     // commits/kcycle (sim) / commits/us (real)
  stm::TxStats stats;
};

class Workload {
 public:
  Workload(int readers, int readset)
      : readers_(readers), readset_(readset) {
    for (int i = 0; i < kHotCells; ++i)
      hot_.push_back(std::make_unique<stm::TVar<long>>(0));
    for (int i = 0; i < kTriggerPool; ++i)
      triggers_.push_back(std::make_unique<stm::TVar<long>>(0));
    for (int i = 0; i < readers * readset; ++i)
      cells_.push_back(std::make_unique<stm::TVar<long>>(1));
    // One trigger bump per ~readset/32 writer commits keeps the bump
    // interval (bump_every * ~35-cycle writer txs / kWriters) near a
    // sixth of a reader's lifetime (~3.3 cycles per read), so most
    // trigger reads find a fresh version and extend — while a full
    // 64-bump pool rotation far outlives any reader, so a logged trigger
    // is never invalidated.
    bump_every_ = readset / 32;
    if (bump_every_ < 1) bump_every_ = 1;
  }

  // One read-only reader transaction: the private scan, interrupted by
  // kTriggerReads reads of the freshest trigger cell.
  long run_reader(int id) {
    auto* mine = &cells_[static_cast<std::size_t>(id) * readset_];
    const int stride = readset_ / kTriggerReads;
    return stm::atomically([&](stm::Tx& tx) {
      long sum = 0;
      for (int i = 0; i < readset_; ++i) {
        sum += mine[i]->get(tx);
        if (stride > 0 && i % stride == stride - 1) {
          vt::access();  // shared read of the trigger cursor
          const int t = wpos_.load(std::memory_order_acquire);
          sum += triggers_[static_cast<std::size_t>(t)]->get(tx);
        }
      }
      return sum;
    });
  }

  // One writer iteration: a small hot-cell transaction, plus the rotating
  // trigger bump every bump_every_ commits.
  void run_writer(int id, long i) {
    const std::size_t a = static_cast<std::size_t>(id + i) % kHotCells;
    const std::size_t b = (a + 2) % kHotCells;
    stm::atomically([&](stm::Tx& tx) {
      hot_[a]->set(tx, hot_[a]->get(tx) + 1);
      hot_[b]->set(tx, hot_[b]->get(tx) + 1);
    });
    if (i % bump_every_ == 0) {
      vt::access();
      const int next =
          (wpos_.load(std::memory_order_relaxed) + 1) % kTriggerPool;
      stm::atomically([&](stm::Tx& tx) {
        auto& c = triggers_[static_cast<std::size_t>(next)];
        c->set(tx, c->get(tx) + 1);
      });
      vt::access();
      wpos_.store(next, std::memory_order_release);
    }
  }

 private:
  int readers_;
  int readset_;
  long bump_every_;
  std::atomic<int> wpos_{0};
  std::vector<std::unique_ptr<stm::TVar<long>>> hot_;
  std::vector<std::unique_ptr<stm::TVar<long>>> triggers_;
  std::vector<std::unique_ptr<stm::TVar<long>>> cells_;
};

Point run_sim_point(int readers, int readset, std::uint64_t cycles) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(readers, readset);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(readers), 0);

  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = cycles * 64 + 4'000'000;  // deadlock brake only
  vt::Scheduler sched(opts);
  for (int t = 0; t < readers + kWriters; ++t) {
    sched.spawn([&w, &commits, cycles, readers](int id) {
      if (id < readers) {
        while (vt::sim_now() < cycles) {
          (void)w.run_reader(id);
          ++commits[static_cast<std::size_t>(id)];
        }
      } else {
        long i = 0;
        while (vt::sim_now() < cycles) w.run_writer(id, i++);
      }
    });
  }
  sched.run();

  Point p;
  p.readers = readers;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = sched.cycles();
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

Point run_real_point(int readers, int readset, std::uint64_t ms) {
  auto& rt = stm::Runtime::instance();
  rt.reset_stats();
  Workload w(readers, readset);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(readers), 0);
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  vt::run_threads(readers + kWriters, [&](int id) {
    long i = 0;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (id < readers) {
        (void)w.run_reader(id);
        ++n;
      } else {
        w.run_writer(id, i++);
      }
      if ((++i & 63) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
                .count() >= static_cast<long>(ms))
          stop.store(true, std::memory_order_relaxed);
      }
    }
    if (id < readers) commits[static_cast<std::size_t>(id)] = n;
  });
  const auto t1 = std::chrono::steady_clock::now();

  Point p;
  p.readers = readers;
  for (std::uint64_t c : commits) p.commits += c;
  p.duration = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  p.throughput = p.duration == 0 ? 0.0
                                 : static_cast<double>(p.commits) * 1000.0 /
                                       static_cast<double>(p.duration);
  p.stats = rt.aggregate_stats();
  mem::EpochManager::instance().drain();
  return p;
}

void json_point(std::ostream& os, const Point& p) {
  os << "        {\"readers\": " << p.readers << ", \"commits\": " << p.commits
     << ", \"aborts\": " << p.stats.aborts << ", \"duration\": " << p.duration
     << ", \"throughput\": " << p.throughput
     << ", \"extensions\": " << p.stats.extensions
     << ", \"summary_skips\": " << p.stats.summary_skips
     << ", \"summary_fallbacks\": " << p.stats.summary_fallbacks
     << ", \"ring_overflows\": " << p.stats.ring_overflows
     << ", \"readset_dedups\": " << p.stats.readset_dedups << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bool real = env_long("DEMOTX_REAL", 0) != 0;
  const auto cycles =
      static_cast<std::uint64_t>(env_long("DEMOTX_CYCLES", 60'000));
  const auto ms = static_cast<std::uint64_t>(env_long("DEMOTX_MS", 50));
  const long max_threads = env_long("DEMOTX_MAX_THREADS", 64);
  std::vector<int> readers;
  for (int t : {1, 8, 32, 64})
    if (t <= max_threads) readers.push_back(t);
  const std::vector<int> readsets{16, 64, 256, 1024};

  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;
  rt.config.clock_scheme = stm::ClockScheme::kGv1;  // the ring's home turf

  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_validation_scaling\",\n  \"mode\": \""
      << (real ? "real" : "sim") << "\",\n  \"readers\": [";
  for (std::size_t i = 0; i < readers.size(); ++i)
    out << (i != 0 ? ", " : "") << readers[i];
  out << "],\n  \"readset_sizes\": [";
  for (std::size_t i = 0; i < readsets.size(); ++i)
    out << (i != 0 ? ", " : "") << readsets[i];
  out << "],\n  \"" << (real ? "ms_per_point" : "cycles_per_point")
      << "\": " << (real ? ms : cycles) << ",\n  \"results\": [\n";

  // summary input: throughput at max readers, ext on, per (scheme, rss)
  double at_max[2][4] = {{0}};

  bool first_series = true;
  for (const bool summary : {false, true}) {
    for (const bool extension : {false, true}) {
      for (std::size_t rs = 0; rs < readsets.size(); ++rs) {
        rt.config.validation_scheme =
            summary ? ValidationScheme::kSummary : ValidationScheme::kScan;
        rt.config.enable_extension = extension;
        if (!first_series) out << ",\n";
        first_series = false;
        out << "    {\"scheme\": \"" << (summary ? "summary" : "scan")
            << "\", \"extension\": " << (extension ? "true" : "false")
            << ", \"readset\": " << readsets[rs] << ", \"points\": [\n";
        for (std::size_t t = 0; t < readers.size(); ++t) {
          std::cerr << (summary ? "summary" : "scan")
                    << (extension ? "+ext" : "") << " rss=" << readsets[rs]
                    << " @" << readers[t] << " readers...\n";
          const Point p = real ? run_real_point(readers[t], readsets[rs], ms)
                               : run_sim_point(readers[t], readsets[rs], cycles);
          if (t != 0) out << ",\n";
          json_point(out, p);
          if (extension && t + 1 == readers.size())
            at_max[summary ? 1 : 0][rs] = p.throughput;
        }
        out << "\n    ]}";
      }
    }
  }
  rt.config = saved;

  const double r256 =
      at_max[0][2] > 0 ? at_max[1][2] / at_max[0][2] : 0.0;
  const double r1024 =
      at_max[0][3] > 0 ? at_max[1][3] / at_max[0][3] : 0.0;
  out << "\n  ],\n  \"summary\": "
      << "{\"summary_over_scan_ext_on_rss256_at_max\": " << r256
      << ",\n              \"summary_over_scan_ext_on_rss1024_at_max\": "
      << r1024 << "}\n}\n";

  std::cout << out.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << out.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  std::cerr << "ext-on @" << readers.back()
            << " readers: summary/scan = " << r256 << " (rss 256), " << r1024
            << " (rss 1024)\n";
  return 0;
}
