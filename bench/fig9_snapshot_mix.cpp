// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Figure 9 — "Throughput (normalized over the sequential one) of the
// mixed transactions, the classic transaction and the collection
// package."
//
// Paper setup: the full democratized mix — contains/add/remove ELASTIC,
// size SNAPSHOT (read-only multiversion over the two versions every
// updater maintains).  Paper result: 4.3x over classic (TL2) and 1.9x
// over the collection at 64 threads; slower than the collection at low
// parallelism (polymorphic overhead) but scales to the maximum number of
// hardware threads because snapshot sizes commit against concurrent
// updates instead of aborting.
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "sync/cow_array_set.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout,
                  "Fig. 9 — mixed (elastic+snapshot) vs. classic vs. "
                  "collection");
  const FigureConfig cfg = FigureConfig::from_env();
  print_workload_banner(cfg);

  const std::vector<Series> series{
      {"mixed(el+snap)", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
      {"classic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"collection(cow)", [] { return std::make_unique<sync::CowArraySet>(); }},
  };

  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table("fig9", cfg, series, results);
  print_abort_table(cfg, series, results);
  print_validation_table(cfg, series, results);

  const std::size_t last = cfg.threads.size() - 1;
  // Satellite view of the snapshot path: which reads the version ring
  // served and why the ones that aborted gave up (distinct AbortReason
  // per failure mode, not one lumped "snapshot abort").
  std::vector<std::pair<std::string, const stm::TxStats*>> attr;
  for (std::size_t s = 0; s < series.size(); ++s)
    attr.emplace_back(series[s].name, &results[s][last].raw.stm);
  std::cout << "\nsnapshot ring serves and abort attribution at "
            << cfg.threads[last] << " threads:\n";
  harness::snapshot_abort_table(attr).print(std::cout);

  const double vs_classic = results[0][last].speedup /
                            std::max(results[1][last].speedup, 1e-9);
  const double vs_cow = results[0][last].speedup /
                        std::max(results[2][last].speedup, 1e-9);
  std::cout << "\nat " << cfg.threads[last] << " threads: mixed / classic = "
            << harness::Table::num(vs_classic, 2)
            << "x   (paper: 4.3x)\n"
            << "at " << cfg.threads[last] << " threads: mixed / collection = "
            << harness::Table::num(vs_cow, 2) << "x   (paper: 1.9x)\n"
            << "snapshot old-version reads at " << cfg.threads[last]
            << " threads: " << results[0][last].raw.stm.snapshot_old_reads
            << " (the mechanism that keeps size committing)\n";
  return 0;
}
