// Figure 5 — "Throughput (normalized over the sequential one) of classic
// transactions and the existing concurrent collection."
//
// Paper setup: Collection benchmark, 2^12 elements, 10% updates, 10%
// size, TL2 (classic transactions, all four operations) vs. the
// java.util.concurrent copyOnWriteArraySet, on a 64-way Niagara 2.
// Paper result: the existing collection performs 2.2x faster than classic
// transactions on 64 threads.
//
// Here: our TL2-style classic STM list vs. sync::CowArraySet under the
// virtual-time simulator (DESIGN.md documents the substitution).  The
// shape to check: the COW collection clearly beats the classic-only STM
// at high thread counts, because classic size/parse transactions keep
// aborting under updates while COW reads and O(1) sizes never wait.
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "sync/cow_array_set.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout, "Fig. 5 — classic transactions vs. existing "
                             "concurrent collection");
  const FigureConfig cfg = FigureConfig::from_env();
  print_workload_banner(cfg);

  const std::vector<Series> series{
      {"classic-tx", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kClassic, stm::Semantics::kClassic});
       }},
      {"collection(cow)", [] { return std::make_unique<sync::CowArraySet>(); }},
  };

  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table("fig5", cfg, series, results);
  print_abort_table(cfg, series, results);
  print_validation_table(cfg, series, results);

  const std::size_t last = cfg.threads.size() - 1;
  const double ratio = results[1][last].speedup /
                       std::max(results[0][last].speedup, 1e-9);
  std::cout << "\nat " << cfg.threads[last]
            << " threads: collection / classic = "
            << harness::Table::num(ratio, 2)
            << "x   (paper: 2.2x on 64 Niagara threads)\n";
  return 0;
}
