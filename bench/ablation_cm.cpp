// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Ablation — contention managers (paper Sec. 2.2: conflict resolution is
// a pluggable service).  Runs the collection workload on the mixed-
// semantics list under each CM policy.
#include <iostream>

#include <algorithm>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "stm/runtime.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout, "Ablation — contention-manager policies "
                             "(all-classic, update-heavy, short list)");
  FigureConfig cfg = FigureConfig::from_env();
  // Policies only differ under heavy conflict: run the abort-prone
  // all-classic configuration on a short, update-heavy list.
  cfg.workload.initial_size = std::min<long>(cfg.workload.initial_size, 64);
  cfg.workload.key_range = 2 * cfg.workload.initial_size;
  cfg.workload.contains_pct = 40;
  cfg.workload.add_pct = 20;
  cfg.workload.remove_pct = 20;
  cfg.workload.size_pct = 20;
  print_workload_banner(cfg);

  auto make_mixed = [] {
    return std::make_unique<ds::TxList>(ds::TxList::Options{
        stm::Semantics::kClassic, stm::Semantics::kClassic});
  };

  const std::vector<stm::CmPolicy> policies{
      stm::CmPolicy::kSuicide, stm::CmPolicy::kBackoff, stm::CmPolicy::kPolite,
      stm::CmPolicy::kGreedy, stm::CmPolicy::kKarma};

  const double seq = sequential_baseline(cfg);
  std::vector<std::string> headers{"threads"};
  for (auto p : policies) headers.push_back(to_string(p));
  harness::Table speed(headers);
  harness::Table aborts(headers);

  const stm::CmPolicy saved = stm::Runtime::instance().config.cm;
  std::vector<std::vector<CellResult>> per_policy;
  for (auto p : policies) {
    stm::Runtime::instance().config.cm = p;
    per_policy.push_back(run_sweep(cfg, {{to_string(p), make_mixed}}, seq)[0]);
  }
  stm::Runtime::instance().config.cm = saved;

  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    std::vector<std::string> srow{std::to_string(cfg.threads[ti])};
    std::vector<std::string> arow = srow;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      srow.push_back(harness::Table::num(per_policy[p][ti].speedup, 2));
      arow.push_back(
          harness::Table::num(per_policy[p][ti].raw.stm.abort_ratio(), 3));
    }
    speed.add_row(srow);
    aborts.add_row(arow);
  }
  std::cout << "throughput normalized over sequential (speedup):\n";
  speed.print(std::cout);
  speed.print_csv(std::cout, "ablation_cm");
  std::cout << "\nabort ratio:\n";
  aborts.print(std::cout);
  std::cout << "\n(all policies must be sound and live; they differ in how "
               "much work conflicts waste)\n";
  return 0;
}
