// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Ablation — the STM design choices DESIGN.md calls out:
//   1. timebase extension on/off for the classic configuration (plain TL2
//      vs LSA-style reads);
//   2. elastic window capacity 1/2/4/8 (how much hand-over-hand atomicity
//      the parse keeps);
//   3. one vs two versions per location (without the backup pair the
//      snapshot size starves — the mechanism behind Fig. 9).
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_list.hpp"
#include "stm/runtime.hpp"

using namespace demotx;
using namespace demotx::bench;

namespace {

std::unique_ptr<ISet> classic_list() {
  return std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kClassic, stm::Semantics::kClassic});
}
std::unique_ptr<ISet> elastic_list() {
  return std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kClassic});
}
std::unique_ptr<ISet> mixed_list() {
  return std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kSnapshot});
}

void print_one(const std::string& tag, const FigureConfig& cfg,
               const std::vector<std::string>& names,
               const std::vector<std::vector<CellResult>>& cells) {
  std::vector<std::string> headers{"threads"};
  headers.insert(headers.end(), names.begin(), names.end());
  harness::Table t(headers);
  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    std::vector<std::string> row{std::to_string(cfg.threads[ti])};
    for (const auto& series : cells)
      row.push_back(harness::Table::num(series[ti].speedup, 2));
    t.add_row(row);
  }
  t.print(std::cout);
  t.print_csv(std::cout, tag);
}

}  // namespace

int main() {
  FigureConfig cfg = FigureConfig::from_env();
  auto& rt = stm::Runtime::instance();
  const stm::Config saved = rt.config;
  const double seq = sequential_baseline(cfg);

  harness::banner(std::cout, "Ablation 1 — timebase extension (classic)");
  {
    std::vector<std::vector<CellResult>> cells;
    rt.config.enable_extension = false;
    cells.push_back(run_sweep(cfg, {{"tl2", classic_list}}, seq)[0]);
    rt.config.enable_extension = true;
    cells.push_back(run_sweep(cfg, {{"tl2+ext", classic_list}}, seq)[0]);
    rt.config = saved;
    print_one("ablation_ext", cfg, {"plain TL2", "with extension"}, cells);
    std::cout << "\n(extension absorbs read-validation aborts by sliding the "
                 "snapshot forward)\n";
  }

  harness::banner(std::cout, "Ablation 2 — elastic window capacity");
  {
    std::vector<std::vector<CellResult>> cells;
    std::vector<std::string> names;
    for (std::size_t w : {1u, 2u, 4u, 8u}) {
      rt.config.elastic_window = w;
      names.push_back("window " + std::to_string(w));
      cells.push_back(run_sweep(cfg, {{names.back(), elastic_list}}, seq)[0]);
    }
    rt.config = saved;
    print_one("ablation_window", cfg, names, cells);
    std::cout << "\n(larger windows validate more of the parse: fewer cuts, "
                 "more aborts; window 2 is the paper's prev/curr pair)\n";
  }

  harness::banner(std::cout,
                  "Ablation 3 — lazy (TL2 write-back) vs eager "
                  "(encounter-time write-through)");
  {
    std::vector<std::vector<CellResult>> cells;
    rt.config.eager_writes = false;
    cells.push_back(run_sweep(cfg, {{"lazy", mixed_list}}, seq)[0]);
    rt.config.eager_writes = true;
    cells.push_back(run_sweep(cfg, {{"eager", mixed_list}}, seq)[0]);
    rt.config = saved;
    print_one("ablation_eager", cfg, {"lazy (write-back)",
                                      "eager (write-through)"}, cells);
    std::cout << "\n(eager detects write-write conflicts at encounter time "
                 "but holds locks across\n the transaction body — "
                 "write-back wins on parse-heavy workloads)\n";
  }

  harness::banner(std::cout, "Ablation 4 — one vs two versions per location");
  {
    std::vector<std::vector<CellResult>> cells;
    rt.config.maintain_old_versions = true;
    cells.push_back(run_sweep(cfg, {{"2 versions", mixed_list}}, seq)[0]);
    rt.config.maintain_old_versions = false;
    cells.push_back(run_sweep(cfg, {{"1 version", mixed_list}}, seq)[0]);
    rt.config = saved;
    print_one("ablation_versions", cfg, {"2 versions", "1 version"}, cells);
    std::cout << "\nsnapshot old-version reads (2-version config, per point):";
    for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti)
      std::cout << " " << cells[0][ti].raw.stm.snapshot_old_reads;
    std::cout << "\n(with a single version every concurrently-overwritten "
                 "read aborts the snapshot — Fig. 9's scaling disappears)\n";
  }
  return 0;
}
