// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Ablation — mixed semantics across data structures: the flat list the
// paper benchmarks, the hash set (short chains + per-bucket counters:
// size becomes O(buckets)), and the skip list (logarithmic parses).
// Shows that the semantics mix is structure-agnostic and that structure
// choice dwarfs synchronization choice once parses shorten.
#include <iostream>

#include "bench/fig_common.hpp"
#include "ds/tx_hashset.hpp"
#include "ds/tx_bst.hpp"
#include "ds/tx_list.hpp"
#include "ds/tx_skiplist.hpp"

using namespace demotx;
using namespace demotx::bench;

int main() {
  harness::banner(std::cout, "Ablation — mixed semantics across structures");
  FigureConfig cfg = FigureConfig::from_env();
  print_workload_banner(cfg);

  const std::vector<Series> series{
      {"tx-list", [] {
         return std::make_unique<ds::TxList>(ds::TxList::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
      {"tx-hashset", [] {
         ds::TxHashSet::Options o;
         o.buckets = 64;
         return std::make_unique<ds::TxHashSet>(o);
       }},
      {"tx-skiplist", [] {
         return std::make_unique<ds::TxSkipList>(ds::TxSkipList::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
      {"tx-bst", [] {
         return std::make_unique<ds::TxBst>(ds::TxBst::Options{
             stm::Semantics::kElastic, stm::Semantics::kSnapshot});
       }},
  };

  const double seq = sequential_baseline(cfg);
  const auto results = run_sweep(cfg, series, seq);
  print_speedup_table("ablation_structures", cfg, series, results);
  print_abort_table(cfg, series, results);
  std::cout << "\n(speedups are still normalized over the sequential LIST: "
               "hash set and skip list\n also gain from asymptotics, not "
               "just concurrency)\n";
  return 0;
}
