// demotx:expert-file: benchmark: measures every semantics tier and config ablation by design
// Microbenchmarks (google-benchmark, real time): the raw cost of the STM
// primitives on this machine — transaction begin/commit, reads and writes
// under each semantics, contention-manager-free single-thread paths, and
// the reclamation primitives.  These are the constants behind the
// simulator's cost model (DESIGN.md).
#include <benchmark/benchmark.h>

#include "ds/tx_list.hpp"
#include "mem/epoch.hpp"
#include "mem/hazard.hpp"
#include "stm/stm.hpp"

using namespace demotx;
using stm::Semantics;

namespace {

void BM_EmptyTransaction(benchmark::State& state) {
  for (auto _ : state) {
    stm::atomically([](stm::Tx&) {});
  }
}
BENCHMARK(BM_EmptyTransaction);

void BM_ReadOnlyTx(benchmark::State& state) {
  stm::TVar<long> v[8];
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    long sum = stm::atomically([&](stm::Tx& tx) {
      long s = 0;
      for (std::size_t i = 0; i < n; ++i) s += v[i].get(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReadOnlyTx)->Arg(1)->Arg(4)->Arg(8);

void BM_ElasticReadOnlyTx(benchmark::State& state) {
  stm::TVar<long> v[8];
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    long sum = stm::atomically(Semantics::kElastic, [&](stm::Tx& tx) {
      long s = 0;
      for (std::size_t i = 0; i < n; ++i) s += v[i].get(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ElasticReadOnlyTx)->Arg(1)->Arg(4)->Arg(8);

void BM_SnapshotReadOnlyTx(benchmark::State& state) {
  stm::TVar<long> v[8];
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    long sum = stm::atomically(Semantics::kSnapshot, [&](stm::Tx& tx) {
      long s = 0;
      for (std::size_t i = 0; i < n; ++i) s += v[i].get(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotReadOnlyTx)->Arg(1)->Arg(4)->Arg(8);

void BM_UpdateTx(benchmark::State& state) {
  stm::TVar<long> v[8];
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stm::atomically([&](stm::Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) v[i].set(tx, v[i].get(tx) + 1);
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpdateTx)->Arg(1)->Arg(4)->Arg(8);

void BM_ListContains(benchmark::State& state) {
  ds::TxList list(ds::TxList::Options{Semantics::kElastic,
                                      Semantics::kSnapshot});
  const long n = state.range(0);
  for (long k = 0; k < n; ++k) list.add(k);
  long key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.contains(key));
    key = (key + 7) % n;
  }
}
BENCHMARK(BM_ListContains)->Arg(64)->Arg(512);

void BM_ListSnapshotSize(benchmark::State& state) {
  ds::TxList list(ds::TxList::Options{Semantics::kElastic,
                                      Semantics::kSnapshot});
  for (long k = 0; k < state.range(0); ++k) list.add(k);
  for (auto _ : state) benchmark::DoNotOptimize(list.size());
}
BENCHMARK(BM_ListSnapshotSize)->Arg(64)->Arg(512);

void BM_EpochGuard(benchmark::State& state) {
  for (auto _ : state) {
    mem::EpochManager::Guard g;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EpochGuard);

void BM_EpochRetire(benchmark::State& state) {
  auto& mgr = mem::EpochManager::instance();
  for (auto _ : state) mgr.retire(new long(1));
  mgr.drain();
}
BENCHMARK(BM_EpochRetire);

void BM_HazardProtect(benchmark::State& state) {
  std::atomic<long*> src{new long(7)};
  auto& dom = mem::HazardDomain::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dom.protect(0, src));
    dom.clear(0);
  }
  delete src.load();
}
BENCHMARK(BM_HazardProtect);

}  // namespace

BENCHMARK_MAIN();
