#include "harness/report.hpp"

#include <cstdint>
#include <cstdio>
#include <ostream>

#include "stm/stats.hpp"

namespace demotx::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(long v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  ";
    rule.append(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os, const std::string& tag) const {
  os << "CSV," << tag;
  for (const auto& h : headers_) os << ',' << h;
  os << '\n';
  for (const auto& row : rows_) {
    os << "CSV," << tag;
    for (const auto& cell : row) os << ',' << cell;
    os << '\n';
  }
}

void banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==\n\n";
}

Table snapshot_abort_table(
    const std::vector<std::pair<std::string, const stm::TxStats*>>& rows) {
  Table t({"series", "ring_serves", "deep_serves", "too_old", "race",
           "locked"});
  for (const auto& [label, st] : rows) {
    auto reason = [&](stm::AbortReason r) {
      return Table::num(st->aborts_by_reason[static_cast<int>(r)]);
    };
    t.add_row({label, Table::num(st->snapshot_old_reads),
               Table::num(st->snapshot_ring_hits),
               reason(stm::AbortReason::kSnapshotTooOld),
               reason(stm::AbortReason::kSnapshotRace),
               reason(stm::AbortReason::kLockedByOther)});
  }
  return t;
}

}  // namespace demotx::harness
