#include "harness/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/runtime.hpp"
#include "vt/scheduler.hpp"

namespace demotx::harness {

namespace {

void fold_outcomes(DriverResult& r, const std::vector<ThreadOutcome>& outs) {
  bool first_size = true;
  for (const ThreadOutcome& o : outs) {
    r.total_ops += o.ops;
    r.net_adds += o.net_adds;
    r.sizes_observed += o.sizes_observed;
    if (o.sizes_observed == 0) continue;
    if (first_size) {
      r.min_size_seen = o.min_size_seen;
      r.max_size_seen = o.max_size_seen;
      first_size = false;
    } else {
      r.min_size_seen = std::min(r.min_size_seen, o.min_size_seen);
      r.max_size_seen = std::max(r.max_size_seen, o.max_size_seen);
    }
  }
}

}  // namespace

DriverResult run_sim_workload(ISet& set, const WorkloadConfig& cfg,
                              int threads, const SimOptions& opts) {
  stm::Runtime::instance().reset_stats();
  std::vector<ThreadOutcome> outcomes(static_cast<std::size_t>(threads));

  vt::Scheduler::Options sopts;
  sopts.policy = vt::Scheduler::Policy::kRoundRobin;
  sopts.seed = opts.scheduler_seed;
  // Deadlock brake far beyond the duration; fibers stop themselves.
  sopts.max_cycles = opts.duration_cycles * 64 + 10'000'000;
  vt::Scheduler sched(sopts);

  for (int t = 0; t < threads; ++t) {
    sched.spawn([&, t](int id) {
      OpGenerator gen(cfg, id);
      ThreadOutcome& out = outcomes[static_cast<std::size_t>(t)];
      while (sched.cycles() < opts.duration_cycles) run_op(set, gen, out);
    });
  }
  sched.run();

  DriverResult r;
  r.threads = threads;
  r.duration = sched.cycles();
  fold_outcomes(r, outcomes);
  r.throughput = r.duration == 0 ? 0.0
                                 : static_cast<double>(r.total_ops) * 1000.0 /
                                       static_cast<double>(r.duration);
  r.stm = stm::Runtime::instance().aggregate_stats();
  mem::EpochManager::instance().drain();  // quiescent between runs
  return r;
}

DriverResult run_real_workload(ISet& set, const WorkloadConfig& cfg,
                               int threads, const RealOptions& opts) {
  stm::Runtime::instance().reset_stats();
  std::vector<ThreadOutcome> outcomes(static_cast<std::size_t>(threads));
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  vt::run_threads(threads, [&](int id) {
    OpGenerator gen(cfg, id);
    ThreadOutcome& out = outcomes[static_cast<std::size_t>(id)];
    while (!stop.load(std::memory_order_relaxed)) {
      run_op(set, gen, out);
      if ((out.ops & 63u) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - t0)
                .count() >= static_cast<long>(opts.duration_ms))
          stop.store(true, std::memory_order_relaxed);
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  DriverResult r;
  r.threads = threads;
  r.duration = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  fold_outcomes(r, outcomes);
  r.throughput = r.duration == 0 ? 0.0
                                 : static_cast<double>(r.total_ops) * 1000.0 /
                                       static_cast<double>(r.duration);
  r.stm = stm::Runtime::instance().aggregate_stats();
  mem::EpochManager::instance().drain();
  return r;
}

}  // namespace demotx::harness
