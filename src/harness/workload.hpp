// The paper's Collection workload: contains / add / remove / size over an
// integer set, with "an update and a size ratio of 10% each" (Sec. 3.3).
//
// Updates split evenly between add and remove and the key range is twice
// the initial size, so the set stays near its initial size in steady
// state.  Generation is xorshift-based and seeded per logical thread:
// identical streams in simulation and real mode, fully reproducible.
#pragma once

#include <cmath>
#include <cstdint>

#include "sync/set_interface.hpp"

namespace demotx::harness {

struct WorkloadConfig {
  long initial_size = 512;  // paper: 2^12; simulator default 2^9 (DESIGN.md)
  long key_range = 1024;    // 2 * initial_size keeps ~50% occupancy
  int contains_pct = 80;
  int add_pct = 5;
  int remove_pct = 5;
  int size_pct = 10;
  // Key skew: 0 = uniform; s > 0 concentrates accesses near key 0 with
  // density ~ u^(1+4s) (a bounded-Pareto-style hotspot — the "high-traffic
  // data elements" of the paper's citation [25]).
  double skew = 0.0;
  std::uint64_t seed = 42;

  [[nodiscard]] bool valid() const {
    return contains_pct + add_pct + remove_pct + size_pct == 100 &&
           initial_size <= key_range;
  }
};

enum class OpKind : std::uint8_t { kContains, kAdd, kRemove, kSize };

class OpGenerator {
 public:
  OpGenerator(const WorkloadConfig& cfg, int thread_id)
      : cfg_(cfg),
        state_(cfg.seed * 0x9e3779b97f4a7c15ULL +
               static_cast<std::uint64_t>(thread_id + 1) * 0xbf58476d1ce4e5b9ULL) {
    if (state_ == 0) state_ = 1;
  }

  OpKind next_kind() {
    const auto r = static_cast<int>(next() % 100);
    if (r < cfg_.contains_pct) return OpKind::kContains;
    if (r < cfg_.contains_pct + cfg_.add_pct) return OpKind::kAdd;
    if (r < cfg_.contains_pct + cfg_.add_pct + cfg_.remove_pct)
      return OpKind::kRemove;
    return OpKind::kSize;
  }

  long next_key() {
    if (cfg_.skew <= 0.0) {
      return static_cast<long>(next() %
                               static_cast<std::uint64_t>(cfg_.key_range));
    }
    // u in (0,1]; exponent > 1 pushes mass toward small keys.
    const double u =
        (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
    const double x = std::pow(u, 1.0 + 4.0 * cfg_.skew);
    auto key = static_cast<long>(x * static_cast<double>(cfg_.key_range));
    return key >= cfg_.key_range ? cfg_.key_range - 1 : key;
  }

 private:
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  WorkloadConfig cfg_;
  std::uint64_t state_;
};

// Deterministically populates the set with cfg.initial_size distinct keys.
void prefill(ISet& set, const WorkloadConfig& cfg);

// Per-thread result of one run, used for post-run consistency checks.
struct ThreadOutcome {
  std::uint64_t ops = 0;
  long net_adds = 0;  // successful adds minus successful removes
  std::uint64_t sizes_observed = 0;
  long min_size_seen = 0;
  long max_size_seen = 0;
};

// Executes one operation against the set, updating the outcome.
void run_op(ISet& set, OpGenerator& gen, ThreadOutcome& out);

}  // namespace demotx::harness
