// Workload drivers.
//
// run_sim_workload — the figure-bench driver: N logical threads on the
// virtual-time scheduler run the Collection workload for a fixed virtual
// duration; throughput is committed operations per kilocycle.  With the
// round-robin policy this models an ideal N-way machine (DESIGN.md).
//
// run_real_workload — the same loop on real OS threads against the wall
// clock, for machines that do have cores to scale on.
#pragma once

#include <cstdint>

#include "harness/workload.hpp"
#include "stm/stats.hpp"
#include "sync/set_interface.hpp"

namespace demotx::harness {

struct DriverResult {
  int threads = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t duration = 0;    // virtual cycles (sim) or nanoseconds (real)
  double throughput = 0.0;       // ops per kilocycle (sim) or ops/µs (real)
  long net_adds = 0;             // sum over threads (for consistency checks)
  long min_size_seen = 0;
  long max_size_seen = 0;
  std::uint64_t sizes_observed = 0;
  demotx::stm::TxStats stm;      // aggregated STM counters (zero if non-STM)
};

struct SimOptions {
  std::uint64_t duration_cycles = 200'000;
  std::uint64_t scheduler_seed = 1;
};

DriverResult run_sim_workload(ISet& set, const WorkloadConfig& cfg,
                              int threads, const SimOptions& opts = {});

struct RealOptions {
  std::uint64_t duration_ms = 200;
};

DriverResult run_real_workload(ISet& set, const WorkloadConfig& cfg,
                               int threads, const RealOptions& opts = {});

}  // namespace demotx::harness
