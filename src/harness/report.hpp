// Tabular reporting for the figure benches: aligned console tables plus
// machine-readable CSV lines (prefixed "CSV,") so results can be plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace demotx::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(long v);
  static std::string num(int v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os, const std::string& tag) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output.
void banner(std::ostream& os, const std::string& title);

}  // namespace demotx::harness
