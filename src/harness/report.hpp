// Tabular reporting for the figure benches: aligned console tables plus
// machine-readable CSV lines (prefixed "CSV,") so results can be plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace demotx::stm {
struct TxStats;
}

namespace demotx::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(long v);
  static std::string num(int v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os, const std::string& tag) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output.
void banner(std::ostream& os, const std::string& title);

// Snapshot abort attribution: one row per series, separating the reads
// the version ring served (and how many only a deeper-than-paper ring
// could serve) from the three distinct ways a snapshot read gives up —
// history exhausted (snapshot-too-old), retry budget burnt by committers
// tearing the seqlock bracket (snapshot-race), and a stuck lock holder
// (locked-by-other).  Fig. 9's abort storms are diagnosed from this
// split: too-old scales with churn depth, race/locked with commit rate.
Table snapshot_abort_table(
    const std::vector<std::pair<std::string, const stm::TxStats*>>& rows);

}  // namespace demotx::harness
