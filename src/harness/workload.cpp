#include "harness/workload.hpp"

#include <algorithm>

namespace demotx::harness {

void prefill(ISet& set, const WorkloadConfig& cfg) {
  OpGenerator gen(cfg, /*thread_id=*/-7);  // off the worker seed path
  long added = 0;
  while (added < cfg.initial_size) {
    if (set.add(gen.next_key())) ++added;
  }
}

void run_op(ISet& set, OpGenerator& gen, ThreadOutcome& out) {
  switch (gen.next_kind()) {
    case OpKind::kContains:
      set.contains(gen.next_key());
      break;
    case OpKind::kAdd:
      if (set.add(gen.next_key())) ++out.net_adds;
      break;
    case OpKind::kRemove:
      if (set.remove(gen.next_key())) --out.net_adds;
      break;
    case OpKind::kSize: {
      const long s = set.size();
      if (out.sizes_observed == 0) {
        out.min_size_seen = out.max_size_seen = s;
      } else {
        out.min_size_seen = std::min(out.min_size_seen, s);
        out.max_size_seen = std::max(out.max_size_seen, s);
      }
      ++out.sizes_observed;
      break;
    }
  }
  ++out.ops;
}

}  // namespace demotx::harness
