// Percentile capture for the open-loop service benches.
//
// Closed-loop figures report throughput; a service under an open-loop
// arrival stream is judged by its append-to-reply LATENCY DISTRIBUTION
// (p50/p95/p99) and its goodput under overload, so the harness needs a
// sample sink that survives millions of requests without distorting the
// tail.  This one keeps every sample up to a fixed cap and then switches
// to deterministic reservoir sampling (Vitter's algorithm R with the
// sink's own xorshift stream — no global RNG, so a seeded run replays
// bit-identically); count / sum / max stay exact regardless.  Quantiles
// come from nth_element over the retained samples at read time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stm/stats.hpp"

namespace demotx::harness {

class PercentileSink {
 public:
  // Default cap: plenty for exact sub-percent quantiles, small enough
  // that a per-class sink costs well under a megabyte.
  explicit PercentileSink(std::size_t cap = 65536, std::uint64_t seed = 1)
      : cap_(cap == 0 ? 1 : cap), rng_(seed != 0 ? seed : 1) {}

  void add(std::uint64_t sample) {
    ++count_;
    sum_ = stm::TxStats::sat_add(sum_, sample);
    if (sample > max_) max_ = sample;
    if (samples_.size() < cap_) {
      samples_.push_back(sample);
      return;
    }
    // Reservoir: keep each of the `count_` samples with equal
    // probability cap_/count_.
    const std::uint64_t j = next() % count_;
    if (j < cap_) samples_[static_cast<std::size_t>(j)] = sample;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  // Quantile in [0, 1]; nearest-rank over the retained samples.
  // Non-const: partitions the retained buffer in place (cheap, and the
  // sink keeps absorbing samples afterwards).
  [[nodiscard]] std::uint64_t quantile(double q) {
    if (samples_.empty()) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    auto nth = samples_.begin() + static_cast<std::ptrdiff_t>(rank);
    std::nth_element(samples_.begin(), nth, samples_.end());
    return *nth;
  }

  [[nodiscard]] std::uint64_t p50() { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() { return quantile(0.99); }

  void reset() {
    samples_.clear();
    count_ = sum_ = max_ = 0;
  }

 private:
  std::uint64_t next() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }

  std::size_t cap_;
  std::uint64_t rng_;
  std::vector<std::uint64_t> samples_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace demotx::harness
