// demotx:expert-file: service layer — the request-class -> semantics-tier
// map and the irrevocable admin path are the scenario under test.
#include "svc/kvservice.hpp"

#include <cmath>
#include <cstdlib>

#include "dur/wal.hpp"
#include "stm/durability.hpp"
#include "vt/context.hpp"

namespace demotx::svc {

namespace {

// Point-op payloads encode their key and sequence number so the reply
// oracle can decode any value it finds: payload = key<<24 | seq.  Keys
// stay far below 2^24 sessions*keys and seq below 2^24 per session at
// every configuration the knobs admit.
constexpr unsigned kPayloadSeqBits = 24;

// Idle workers re-arm a polling timer instead of busy-spinning: an idle
// service must not burn virtual cycles (open-loop latency would absorb
// the spin), and under the heap policies the whole machine sleeps
// straight to the next arrival.
constexpr std::uint64_t kIdlePollCycles = 64;

}  // namespace

const char* to_string(ReqClass c) {
  switch (c) {
    case ReqClass::kGet: return "get";
    case ReqClass::kPut: return "put";
    case ReqClass::kScan: return "scan";
    case ReqClass::kTransfer: return "transfer";
    case ReqClass::kAdmin: return "admin";
  }
  return "?";
}

const char* to_string(FomState s) {
  switch (s) {
    case FomState::kQueued: return "queued";
    case FomState::kExecuting: return "executing";
    case FomState::kCommitting: return "committing";
    case FomState::kReplied: return "replied";
    case FomState::kShed: return "shed";
  }
  return "?";
}

SvcConfig SvcConfig::from_env() {
  SvcConfig cfg;
  const auto knob = [](const char* name, long lo, long hi, long fallback) {
    const char* v = std::getenv(name);
    return v == nullptr ? fallback
                        : stm::parse_env_knob(name, v, lo, hi, fallback);
  };
  cfg.workers = static_cast<int>(
      knob("DEMOTX_SVC_WORKERS", 1, 64, cfg.workers));
  cfg.sessions = static_cast<std::uint64_t>(knob(
      "DEMOTX_SVC_SESSIONS", 1, 1L << 16,
      static_cast<long>(cfg.sessions)));
  cfg.queue_cap = static_cast<std::uint64_t>(knob(
      "DEMOTX_SVC_QUEUE", 1, 1L << 20, static_cast<long>(cfg.queue_cap)));
  cfg.deadline_cycles = static_cast<std::uint64_t>(knob(
      "DEMOTX_SVC_DEADLINE", 0, 1L << 40,
      static_cast<long>(cfg.deadline_cycles)));
  cfg.mean_interarrival = static_cast<std::uint64_t>(knob(
      "DEMOTX_SVC_RATE", 1, 1L << 20,
      static_cast<long>(cfg.mean_interarrival)));
  cfg.total_requests = static_cast<std::uint64_t>(knob(
      "DEMOTX_SVC_REQUESTS", 1, 1L << 30,
      static_cast<long>(cfg.total_requests)));
  cfg.durable = knob("DEMOTX_SVC_DURABLE", 0, 1, cfg.durable ? 1 : 0) != 0;
  return cfg;
}

KvService::KvService(const SvcConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed != 0 ? seed : 1) {
  session_owner_.assign(static_cast<std::size_t>(cfg_.sessions), nullptr);
  issued_seq_.assign(static_cast<std::size_t>(cfg_.sessions), 0);
  replied_seq_.assign(static_cast<std::size_t>(cfg_.sessions), 0);
  acked_put_max_.assign(kv_cells(), 0);
}

void KvService::setup() {
  const std::size_t n = epoch_index() + 1;
  cells_.clear();
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cells_.push_back(std::make_unique<stm::Cell>());
  for (std::uint64_t i = 0; i < cfg_.bank_keys; ++i)
    cells_[static_cast<std::size_t>(i)]->unsafe_store(cfg_.initial_balance);
  if (cfg_.durable) {
    dur::WalManager& wal = dur::WalManager::instance();
    for (auto& c : cells_) wal.register_cell(c.get());
    stm::set_commit_logger(&wal);
    logger_attached_ = true;
  }
}

void KvService::teardown() {
  if (logger_attached_) {
    stm::set_commit_logger(nullptr);
    logger_attached_ = false;
  }
}

stm::Semantics KvService::tier_for(ReqClass c) const {
  if (cfg_.all_classic) return stm::Semantics::kClassic;
  switch (c) {
    case ReqClass::kGet:
    case ReqClass::kPut:
      return stm::Semantics::kElastic;
    case ReqClass::kScan:
      return stm::Semantics::kSnapshot;
    case ReqClass::kTransfer:
    case ReqClass::kAdmin:  // irrevocable classic (tick() special-cases it)
      return stm::Semantics::kClassic;
  }
  return stm::Semantics::kClassic;
}

std::uint64_t KvService::next(std::uint64_t& rng) const {
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  return rng;
}

std::uint64_t KvService::gap(std::uint64_t& rng) const {
  // Exponential interarrival via inverse transform over the seeded
  // stream — an open-loop Poisson-ish arrival process whose bursts do
  // not thin out when the service lags.  Deterministic per seed.
  const double u =
      (static_cast<double>(next(rng) >> 11) + 1.0) / 9007199254740993.0;
  const double g = -static_cast<double>(cfg_.mean_interarrival) * std::log(u);
  if (g < 1.0) return 1;
  return static_cast<std::uint64_t>(g);
}

Request KvService::synthesize(std::uint64_t& rng) {
  Request r;
  const auto p = static_cast<int>(next(rng) % 100);
  if (p < cfg_.get_pct) {
    r.cls = ReqClass::kGet;
  } else if (p < cfg_.get_pct + cfg_.put_pct) {
    r.cls = ReqClass::kPut;
  } else if (p < cfg_.get_pct + cfg_.put_pct + cfg_.scan_pct) {
    r.cls = ReqClass::kScan;
  } else if (p <
             cfg_.get_pct + cfg_.put_pct + cfg_.scan_pct + cfg_.transfer_pct) {
    r.cls = ReqClass::kTransfer;
  } else {
    r.cls = ReqClass::kAdmin;
  }
  r.session = static_cast<std::uint32_t>(next(rng) % cfg_.sessions);
  r.seq = ++issued_seq_[r.session];
  switch (r.cls) {
    case ReqClass::kGet:
    case ReqClass::kPut:
      // Session-owned key: one writer per key, so acked-put dominance is
      // checkable per cell.
      r.key = cfg_.bank_keys + r.session * cfg_.keys_per_session +
              next(rng) % cfg_.keys_per_session;
      if (r.cls == ReqClass::kPut)
        r.value = (r.key << kPayloadSeqBits) |
                  (r.seq & ((1u << kPayloadSeqBits) - 1));
      break;
    case ReqClass::kTransfer:
      r.key = next(rng) % cfg_.bank_keys;
      r.key2 = next(rng) % cfg_.bank_keys;
      if (r.key2 == r.key) r.key2 = (r.key2 + 1) % cfg_.bank_keys;
      r.value = 1 + next(rng) % 8;
      break;
    case ReqClass::kScan:
    case ReqClass::kAdmin:
      break;
  }
  return r;
}

void KvService::injector_body() {
  std::uint64_t rng = seed_;
  std::uint64_t t = vt::sim_now();
  for (std::uint64_t i = 0; i < cfg_.total_requests; ++i) {
    t += gap(rng);
    vt::sleep_until(t);
    requests_.push_back(synthesize(rng));
    Request& r = requests_.back();
    r.arrive_at = vt::sim_now();
    r.deadline = cfg_.deadline_cycles == 0 ? UINT64_MAX
                                           : r.arrive_at + cfg_.deadline_cycles;
    ++stats_.arrived;
    vt::access();  // the queue append is a shared access
    if (queue_.size() >= cfg_.queue_cap) {
      shed(r, /*deadline=*/false);
    } else {
      queue_.push_back(&r);
      ++stats_.admitted;
    }
  }
  closed_ = true;
}

Request* KvService::pop_ready() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    Request* r = *it;
    Request* owner = session_owner_[r->session];
    // The in-flight guard: while a session has a fom in execution, its
    // later requests stay parked — this is what makes per-session
    // replies monotone regardless of abort/retry interleaving.
    if (owner != nullptr && owner != r) continue;
    queue_.erase(it);
    session_owner_[r->session] = r;
    ++active_;
    return r;
  }
  return nullptr;
}

void KvService::worker_body(int wid) {
  (void)wid;  // the fiber id doubles as the STM slot via thread_id()
  for (;;) {
    vt::access();  // scanning the run queue reads shared state
    Request* r = pop_ready();
    if (r == nullptr) {
      if (closed_ && queue_.empty() && active_ == 0) return;
      vt::sleep_until(vt::sim_now() + kIdlePollCycles);
      continue;
    }
    tick(*r);
    --active_;
  }
}

void KvService::tick(Request& r) {
  if (r.state == FomState::kQueued) r.state = FomState::kExecuting;
  // Deadline shedding happens strictly BEFORE an attempt can commit:
  // once certification succeeds the reply is owed (acked-then-lost is
  // the one illegal outcome; committed-but-unacked is crash-legal).
  if (vt::sim_now() > r.deadline) {
    shed(r, /*deadline=*/true);
    return;
  }
  const int c = idx(r.cls);
  ++stats_.attempts[c];
  if (r.cls == ReqClass::kAdmin && !cfg_.all_classic) {
    // The documented one-tick exception: the irrevocable token
    // serializes the admin op against every updater, so this single
    // tick commits by construction — there is no abort edge to re-park
    // on, and the body never re-executes.
    stm::atomically_irrevocable(
        [&](stm::Tx& tx) { r.result = admin_body(tx); });
    reply(r);
    return;
  }
  stm::Tx& tx = stm::Runtime::instance().tx_for_current_thread();
  tx.begin(tier_for(r.cls), r.attempt);
  try {
    run_body(tx, r);
    r.state = FomState::kCommitting;
    tx.commit();
  } catch (const stm::AbortTx& a) {
    tx.rollback(a.reason);
    ++stats_.aborts[c];
    ++r.attempt;
    // Certification lost: re-park at the FRONT (per-session order is
    // already guarded; front re-parking keeps the fom warm without
    // letting younger same-session requests starve it).
    r.state = FomState::kExecuting;
    queue_.push_front(&r);
    return;
  } catch (...) {
    // Simulator unwind (FiberStopped) or a usage error mid-attempt:
    // release the descriptor before propagating, as atomically() does.
    tx.rollback(stm::AbortReason::kUserException);
    throw;
  }
  reply(r);
}

void KvService::run_body(stm::Tx& tx, Request& r) {
  switch (r.cls) {
    case ReqClass::kGet:
      r.result = tx.read_word(*cells_[static_cast<std::size_t>(r.key)]);
      break;
    case ReqClass::kPut:
      tx.write_word(*cells_[static_cast<std::size_t>(r.key)], r.value);
      break;
    case ReqClass::kScan: {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < cfg_.bank_keys; ++i)
        sum += tx.read_word(*cells_[static_cast<std::size_t>(i)]);
      r.result = sum;
      break;
    }
    case ReqClass::kTransfer: {
      stm::Cell& from = *cells_[static_cast<std::size_t>(r.key)];
      stm::Cell& to = *cells_[static_cast<std::size_t>(r.key2)];
      const std::uint64_t f = tx.read_word(from);
      if (f >= r.value) {
        tx.write_word(from, f - r.value);
        tx.write_word(to, tx.read_word(to) + r.value);
        r.result = 1;
      } else {
        r.result = 0;  // insufficient funds: acked as a no-op
      }
      break;
    }
    case ReqClass::kAdmin:
      r.result = admin_body(tx);  // all_classic A/B arm only
      break;
  }
}

std::uint64_t KvService::admin_body(stm::Tx& tx) {
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < cfg_.bank_keys; ++i)
    sum += tx.read_word(*cells_[static_cast<std::size_t>(i)]);
  stm::Cell& epoch = *cells_[epoch_index()];
  tx.write_word(epoch, tx.read_word(epoch) + 1);
  return sum;
}

void KvService::reply(Request& r) {
  r.reply_at = vt::sim_now();
  r.state = FomState::kReplied;
  const int c = idx(r.cls);
  ++stats_.acked[c];
  stats_.lat[c].add(r.reply_at - r.arrive_at);
  if (replied_seq_[r.session] >= r.seq && !mono_violation_) {
    mono_violation_ = true;
    mono_why_ = "session " + std::to_string(r.session) + " acked seq " +
                std::to_string(r.seq) + " after seq " +
                std::to_string(replied_seq_[r.session]);
  }
  replied_seq_[r.session] = r.seq;
  switch (r.cls) {
    case ReqClass::kScan:
      if (r.result != expected_bank_total()) ++stats_.scan_inconsistent;
      break;
    case ReqClass::kAdmin:
      if (r.result != expected_bank_total()) ++stats_.admin_inconsistent;
      break;
    case ReqClass::kGet:
      if (r.result != 0 && (r.result >> kPayloadSeqBits) != r.key)
        ++stats_.get_inconsistent;
      break;
    case ReqClass::kPut: {
      const std::size_t slot = static_cast<std::size_t>(r.key - cfg_.bank_keys);
      if (r.value > acked_put_max_[slot]) acked_put_max_[slot] = r.value;
      break;
    }
    case ReqClass::kTransfer:
      break;
  }
  session_owner_[r.session] = nullptr;
}

void KvService::shed(Request& r, bool deadline) {
  r.state = FomState::kShed;
  if (deadline) {
    ++stats_.shed_deadline;
  } else {
    ++stats_.shed_queue;
  }
  if (r.cls == ReqClass::kPut) shed_puts_.push_back({r.key, r.value});
  if (session_owner_[r.session] == &r) session_owner_[r.session] = nullptr;
}

std::uint64_t KvService::unsafe_bank_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < cfg_.bank_keys; ++i)
    total += cells_[static_cast<std::size_t>(i)]->unsafe_value();
  return total;
}

bool KvService::check_replies(std::string* why) const {
  const auto fail = [why](std::string msg) {
    if (why != nullptr) *why = "kv-service: " + std::move(msg);
    return false;
  };
  if (mono_violation_) return fail("non-monotone replies: " + mono_why_);
  if (stats_.scan_inconsistent != 0)
    return fail(std::to_string(stats_.scan_inconsistent) +
                " scans saw a torn bank total (snapshot tier broken)");
  if (stats_.admin_inconsistent != 0)
    return fail(std::to_string(stats_.admin_inconsistent) +
                " admin ops saw a torn bank total");
  if (stats_.get_inconsistent != 0)
    return fail(std::to_string(stats_.get_inconsistent) +
                " gets returned another key's payload");
  if (stats_.arrived != stats_.acked_total() + stats_.shed_total())
    return fail("unresolved arrivals: " + std::to_string(stats_.arrived) +
                " arrived, " + std::to_string(stats_.acked_total()) +
                " acked + " + std::to_string(stats_.shed_total()) + " shed");
  const std::uint64_t total = unsafe_bank_total();
  if (total != expected_bank_total())
    return fail("bank total " + std::to_string(total) + " != " +
                std::to_string(expected_bank_total()) +
                " (transfer atomicity broken)");
  for (std::size_t s = 0; s < kv_cells(); ++s) {
    const std::uint64_t v = cells_[cfg_.bank_keys + s]->unsafe_value();
    const std::uint64_t key = cfg_.bank_keys + s;
    if (v != 0 && (v >> kPayloadSeqBits) != key)
      return fail("key " + std::to_string(key) +
                  " holds another key's payload " + std::to_string(v));
    // Puts per key come from one session in seq order, so the final
    // payload must dominate every acknowledged one — an acked put whose
    // payload exceeds the final value was acked and then lost.
    if (v < acked_put_max_[s])
      return fail("key " + std::to_string(key) + " final payload " +
                  std::to_string(v) + " < acked payload " +
                  std::to_string(acked_put_max_[s]) + " (acked-then-lost)");
  }
  // A shed request was dropped before any attempt committed: its unique
  // payload must never be server-visible.
  for (const auto& [key, value] : shed_puts_) {
    if (cells_[static_cast<std::size_t>(key)]->unsafe_value() == value)
      return fail("key " + std::to_string(key) + " holds shed payload " +
                  std::to_string(value) + " (shed put committed)");
  }
  return true;
}

}  // namespace demotx::svc
