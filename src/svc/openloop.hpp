// Open-loop driver for the KV service: builds a virtual-time scheduler,
// spawns the worker fibers plus the arrival injector, runs the stream to
// completion and reports goodput.  The svc tests and bench/fig_kvservice
// run every data point through here; the check/ workloads instead spawn
// the fiber bodies themselves so the explorer owns the scheduler.
#pragma once

#include <cstdint>

#include "svc/kvservice.hpp"
#include "vt/scheduler.hpp"

namespace demotx::svc {

struct OpenLoopOptions {
  vt::Scheduler::Policy policy = vt::Scheduler::Policy::kRoundRobin;
  std::uint64_t sched_seed = 1;           // for the exploration policies
  std::uint64_t max_cycles = 50'000'000;  // deadlock brake only
};

struct OpenLoopResult {
  std::uint64_t cycles = 0;
  bool hit_limit = false;
  double goodput = 0.0;  // acked replies per kilocycle
};

// Resets runtime stats (and, in durable mode, the WAL world and uid
// allocators), calls svc.setup(), runs the simulation, detaches the
// logger.  The service object carries the per-class stats afterwards.
OpenLoopResult run_open_loop(KvService& svc, const OpenLoopOptions& opts = {});

}  // namespace demotx::svc
