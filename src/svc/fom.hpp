// FOM-style request state machines for the transactional KV service.
//
// The service scenario (DESIGN.md, "svc") models a storage frontend the
// way Motr structures its request path: every request is a *fom* — a
// non-blocking state machine owned by a locality (here: a worker fiber)
// that advances in discrete ticks and never blocks the thread it runs
// on.  A tick is ONE transaction attempt against the STM: the worker
// begins a transaction in the request's mapped semantics tier, runs the
// body, and tries to commit.  On a certification abort the fom parks
// (state stays kExecuting, the request re-enters the run queue) and the
// worker picks another runnable fom — exactly the "park and wake, never
// spin" contract a fom scheduler enforces.
//
// States:
//
//   kQueued ──► kExecuting ──► kCommitting ──► kReplied
//      │             │  ▲            │
//      ▼             ▼  └────────────┘  (certification abort: re-park)
//    kShed ◄─────────┘
//
//   kQueued     admitted to the run queue, no attempt started yet
//   kExecuting  at least one attempt ran (or is running) and aborted
//   kCommitting the attempt's body finished; commit certification runs
//   kReplied    committed and acknowledged (reply_at stamped)
//   kShed       dropped by admission control (queue overflow) or by the
//               deadline check — always BEFORE any attempt committed, so
//               a shed request never has server-visible effects
//
// Shedding discipline: a request may be shed at arrival (bounded
// admission queue) or at the top of a tick (deadline passed), but never
// after tx.commit() returned — "committed but unacknowledged" can happen
// under a crash (and the durability oracle allows it); "acknowledged
// then lost" can not.
#pragma once

#include <cstdint>

namespace demotx::svc {

// Request classes and the semantics tier each one maps to (the paper's
// Sec. 5 tiers applied per request class rather than per programmer):
//
//   kGet / kPut   point ops       -> elastic (single-location window)
//   kScan         range analytics -> snapshot (read-only, old versions)
//   kTransfer     cross-key move  -> classic (opaque default)
//   kAdmin        epoch bump      -> irrevocable classic (runs exactly
//                                    once; the one tick that commits by
//                                    construction)
enum class ReqClass : int { kGet = 0, kPut, kScan, kTransfer, kAdmin };
inline constexpr int kNumReqClasses = 5;
const char* to_string(ReqClass c);

enum class FomState : int { kQueued = 0, kExecuting, kCommitting, kReplied, kShed };
const char* to_string(FomState s);

// One request fom.  Owned by the service's arena (stable address); the
// run queue and the per-session in-flight guard hold pointers into it.
struct Request {
  ReqClass cls = ReqClass::kGet;
  FomState state = FomState::kQueued;
  std::uint32_t session = 0;  // issuing client session
  std::uint32_t seq = 0;      // per-session sequence number, from 1
  std::uint64_t key = 0;      // absolute cell index (get/put/transfer src)
  std::uint64_t key2 = 0;     // transfer destination
  std::uint64_t value = 0;    // put payload / transfer amount
  std::uint64_t arrive_at = 0;
  std::uint64_t deadline = UINT64_MAX;  // absolute virtual time
  std::uint64_t reply_at = 0;
  std::uint64_t result = 0;   // get value / scan sum / transfer ok
  unsigned attempt = 0;       // transaction attempts consumed
};

}  // namespace demotx::svc
