// demotx:expert-file: service layer — maps request classes onto the
// semantics tiers (elastic point ops, snapshot scans, classic transfers,
// irrevocable admin) by design; the tier choices ARE the scenario.
//
// Transactional KV index service over the STM (DESIGN.md, "svc").
//
// The store is one flat cell table in three regions:
//
//   [0, bank_keys)                      "bank": transfer/scan/admin region,
//                                       every cell starts at initial_balance
//   [bank_keys, bank_keys + S*K)        point-op region: session s owns the
//                                       K keys [bank_keys + s*K, ...+K), so
//                                       each key has exactly one writer and
//                                       the reply oracle can reason about
//                                       last-acked values
//   [last]                              admin epoch counter
//
// Request foms (svc/fom.hpp) arrive from an open-loop injector fiber —
// arrivals are paced by vt::sleep_until with seeded exponential
// interarrival gaps and multiplexed over `sessions` client sessions, so
// load does not slow down when the service does (the overload regime the
// latency percentiles are about).  Worker fibers pop runnable foms under
// a per-session in-flight guard (at most one request per session in
// execution => replies are monotone in per-session sequence number) and
// advance each by one-transaction-attempt ticks.
//
// Admission control sheds at arrival when the run queue is full; the
// deadline check sheds at the top of a tick.  Both happen strictly
// before a commit, so a shed request never has server-visible effects —
// the check_replies() oracle verifies exactly that, plus reply
// consistency per tier (scans/admin sum to the conserved bank total,
// gets decode to their own key, acked puts survive in per-key order).
//
// With SvcConfig::durable set, every cell registers with the WAL and the
// commit logger attaches, so update commits append redo records and
// await group-commit durability before the fom acknowledges — an acked
// put then survives crash injection (the kv-service-dur check workload).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/percentile.hpp"
#include "stm/runtime.hpp"
#include "svc/fom.hpp"

namespace demotx::svc {

struct SvcConfig {
  int workers = 4;                      // worker fibers (STM slots 0..W-1)
  std::uint64_t sessions = 16;          // multiplexed client sessions
  std::uint64_t queue_cap = 64;         // admission bound on the run queue
  std::uint64_t deadline_cycles = 0;    // per-request budget; 0 = none
  std::uint64_t mean_interarrival = 64; // open-loop mean gap (cycles)
  std::uint64_t total_requests = 256;   // injector stops after this many
  std::uint64_t bank_keys = 16;         // transfer/scan region size
  std::uint64_t keys_per_session = 2;   // point-op keys owned per session
  std::uint64_t initial_balance = 100;  // bank cell starting value
  bool durable = false;                 // WAL-backed update commits
  bool all_classic = false;             // A/B control: every class classic
  // Request mix in percent of arrivals; the remainder after the first
  // four is admin.  Defaults skew toward point ops with a meaningful
  // scan share — the regime where the tier map pays.
  int get_pct = 30;
  int put_pct = 25;
  int scan_pct = 25;
  int transfer_pct = 18;

  // DEMOTX_SVC_* environment overrides, validated through
  // stm::parse_env_knob (same strict-parse / clamp / diagnose contract
  // as the runtime's own knobs).  See README for the knob table.
  static SvcConfig from_env();
};

struct SvcStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue = 0;     // dropped at arrival (queue full)
  std::uint64_t shed_deadline = 0;  // dropped at a tick (deadline passed)
  std::uint64_t acked[kNumReqClasses] = {};
  std::uint64_t attempts[kNumReqClasses] = {};
  std::uint64_t aborts[kNumReqClasses] = {};
  // Reply-consistency violations observed at acknowledgment time; the
  // oracle requires all three to stay zero.
  std::uint64_t scan_inconsistent = 0;
  std::uint64_t get_inconsistent = 0;
  std::uint64_t admin_inconsistent = 0;
  harness::PercentileSink lat[kNumReqClasses];  // append-to-reply cycles

  [[nodiscard]] std::uint64_t acked_total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t a : acked) t += a;
    return t;
  }
  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_queue + shed_deadline;
  }
};

class KvService {
 public:
  KvService(const SvcConfig& cfg, std::uint64_t seed);

  // Builds the cell table and (durable mode) registers it with the WAL
  // and attaches the commit logger.  Call on the driver thread before
  // the simulation runs; in the check/ workloads this is Workload::setup.
  void setup();
  // Detaches the commit logger (durable mode).  Idempotent.
  void teardown();

  // Fiber bodies.  Spawn `workers` worker fibers with ids 0..W-1 (they
  // double as STM slots) and ONE injector fiber (any id).
  void injector_body();
  void worker_body(int wid);

  [[nodiscard]] stm::Semantics tier_for(ReqClass c) const;
  [[nodiscard]] const SvcConfig& service_config() const { return cfg_; }
  [[nodiscard]] SvcStats& stats() { return stats_; }
  [[nodiscard]] const SvcStats& stats() const { return stats_; }

  // Service-level reply oracle (quiescent, after the simulation ends):
  //   - per-session replies acknowledged in sequence order;
  //   - every acked scan/admin saw the conserved bank total;
  //   - every acked get decodes to its own key;
  //   - bank total conserved in the final image;
  //   - final per-key values dominate the last acked put (no
  //     acked-then-lost) and never carry a shed put's payload;
  //   - arrivals fully resolved: arrived == acked + shed.
  bool check_replies(std::string* why) const;

  [[nodiscard]] std::uint64_t unsafe_bank_total() const;
  [[nodiscard]] std::uint64_t expected_bank_total() const {
    return cfg_.bank_keys * cfg_.initial_balance;
  }

 private:
  [[nodiscard]] static int idx(ReqClass c) { return static_cast<int>(c); }
  [[nodiscard]] std::size_t kv_cells() const {
    return static_cast<std::size_t>(cfg_.sessions * cfg_.keys_per_session);
  }
  [[nodiscard]] std::size_t epoch_index() const {
    return static_cast<std::size_t>(cfg_.bank_keys) + kv_cells();
  }

  std::uint64_t next(std::uint64_t& rng) const;
  std::uint64_t gap(std::uint64_t& rng) const;
  Request synthesize(std::uint64_t& rng);

  Request* pop_ready();
  void tick(Request& r);
  void run_body(stm::Tx& tx, Request& r);
  std::uint64_t admin_body(stm::Tx& tx);
  void reply(Request& r);
  void shed(Request& r, bool deadline);

  SvcConfig cfg_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<stm::Cell>> cells_;
  std::deque<Request> requests_;   // arena: stable addresses
  std::deque<Request*> queue_;     // run queue (FIFO; retries re-park at front)
  std::vector<Request*> session_owner_;      // per-session in-flight guard
  std::vector<std::uint32_t> issued_seq_;    // per-session last issued seq
  std::vector<std::uint32_t> replied_seq_;   // per-session last acked seq
  std::vector<std::uint64_t> acked_put_max_; // per kv cell: max acked payload
  std::vector<std::pair<std::uint64_t, std::uint64_t>> shed_puts_;
  bool closed_ = false;   // injector done: no more arrivals
  int active_ = 0;        // foms popped but not yet re-parked/resolved
  bool logger_attached_ = false;
  bool mono_violation_ = false;
  std::string mono_why_;
  SvcStats stats_;
};

}  // namespace demotx::svc
