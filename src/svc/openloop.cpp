#include "svc/openloop.hpp"

#include "dur/wal.hpp"
#include "mem/epoch.hpp"
#include "stm/objstm.hpp"
#include "stm/runtime.hpp"

namespace demotx::svc {

OpenLoopResult run_open_loop(KvService& svc, const OpenLoopOptions& opts) {
  stm::Runtime& rt = stm::Runtime::instance();
  rt.reset_stats();
  if (svc.service_config().durable) {
    // Fresh durable world: clear any previous registry and restart the
    // uid allocators BEFORE setup() constructs the cells, so log ids and
    // filter bits are allocation-order determined (replay-stable).
    dur::WalManager::instance().reset();
    stm::cell_uid_reset();
    stm::obj_uid_reset();
  }
  svc.setup();

  vt::Scheduler::Options sopts;
  sopts.policy = opts.policy;
  sopts.seed = opts.sched_seed;
  sopts.max_cycles = opts.max_cycles;
  vt::Scheduler sched(sopts);
  KvService* s = &svc;
  for (int w = 0; w < svc.service_config().workers; ++w)
    sched.spawn([s](int id) { s->worker_body(id); });
  sched.spawn([s](int) { s->injector_body(); });
  sched.run();

  OpenLoopResult r;
  r.cycles = sched.cycles();
  r.hit_limit = sched.hit_cycle_limit();
  r.goodput = r.cycles == 0
                  ? 0.0
                  : static_cast<double>(svc.stats().acked_total()) * 1000.0 /
                        static_cast<double>(r.cycles);
  svc.teardown();
  mem::EpochManager::instance().drain();
  return r;
}

}  // namespace demotx::svc
