// demotx:expert-file: durability tier interface: redo-log manager over the expert commit-logger hook; registry speaks raw Cell/ObjDesc by design
// Write-ahead redo log with batched group commit, checkpoint truncation
// and a deterministic crash/recovery path (ROADMAP item 3).
//
// The log is modeled entirely in memory as TWO word arrays, which is
// what makes crash injection exact under the vt simulator:
//
//   vol_  the volatile log tail.  Committers append here from inside
//         their pinned commit section (durability.hpp): reserve the
//         record's span in one indivisible step, write the payload
//         (yielding virtual cycles between words — these yields are the
//         schedulable windows every torn-write and mid-append
//         interleaving lives in), then SEAL the record by writing its
//         header word last and advancing the contiguous sealed
//         watermark.  The planted DEMOTX_CHECK_INJECT=torn-write bug
//         inverts exactly this order — seal first, payload after — so a
//         concurrent flush can force a garbage record.
//
//   dur_  the durable image: what survives a crash.  Only the group
//         flush appends here, one whole record per modeled device
//         barrier (records are force-atomic, like a sector append), with
//         a yield between records — so an injected crash mid-flush
//         durably keeps a PREFIX of the group: the crash-mid-group case.
//
// Group commit: the first committer to wait on an undurable record
// becomes the flush LEADER; it waits until Config::group_commit_batch
// commits are pending or Config::group_commit_interval cycles pass,
// drains every sealed record to dur_, then takes ONE clock grant
// (min_exclusive = the highest write version logged so far) and appends
// it as a group-stamp record — one sharded-clock grant stamps the whole
// group, amortizing the commit-clock line across the batch.  The stamp
// is a durable clock watermark, not an ordering bound: recovery restores
// the clock from max(stamps, record wvs), so a stamp lost to a crash
// costs nothing.
//
// Checkpoints: every Config::checkpoint_every flushes the leader folds
// the durable log into the base image and truncates the folded prefix in
// three separately-crashable steps (build staging / install / truncate);
// a crash between install and truncate leaves already-folded records in
// the log, which recovery must skip via the folded-words watermark —
// the crash-during-truncation edge case.
//
// Recovery (replay) is a pure function of a Capture — the frozen durable
// state the scheduler's on_crash hook grabbed — onto a canonical Image
// whose serialization is byte-comparable with the oracle's expectation
// (check/durability.cpp folds the side-recorded TRUE payloads instead).
//
// Concurrency: every member is plain (non-atomic) state.  All mutation
// happens either under the vt simulator (fibers share one OS thread; code
// between vt::access calls is indivisible) or single-threaded (setup /
// teardown / tests).  The manager is NOT usable from real concurrent
// OS threads, and nothing in the repo does so.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stm/durability.hpp"

namespace demotx::stm {
struct Cell;
struct ObjDesc;
}  // namespace demotx::stm

namespace demotx::dur {

// Record geometry.  A record is header + payload words; the header packs
// (length << 8 | kind) and doubles as the seal (0 = not yet sealed).
//   kCommit     [hdr, wv, ncells, nobjs, (cell_id, value) * ncells,
//                (obj_id, key, value) * nobjs]
//   kGroupStamp [hdr, stamp]
namespace rec {
inline constexpr std::uint64_t kCommit = 1;
inline constexpr std::uint64_t kGroupStamp = 2;
inline constexpr std::uint64_t header(std::uint64_t len, std::uint64_t kind) {
  return (len << 8) | kind;
}
inline constexpr std::uint64_t len_of(std::uint64_t h) { return h >> 8; }
inline constexpr std::uint64_t kind_of(std::uint64_t h) { return h & 0xffu; }
}  // namespace rec

// Canonical recoverable state: registered cells by id -> (version,
// value) and object entries by (object id, key) -> (version, value).
// Ordered maps so serialize() is sorted and two images are equal iff
// their serializations match word for word.
struct Image {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> cells;
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      objs;
  [[nodiscard]] std::vector<std::uint64_t> serialize() const;
};

// Ground truth for the durability oracle: the TRUE payload of every
// logged commit (immune to the torn-write inject, which only corrupts
// the log words), its position in the log, and whether the committer's
// ack wait returned before the crash.
struct SideRec {
  std::uint64_t lsn_end = 0;  // volatile-log offset one past the record
  std::uint64_t wv = 0;
  int slot = -1;
  bool acked = false;
  std::uint64_t t_logged = 0;        // append cycle (ack-latency base)
  std::vector<std::uint64_t> cells;  // (id, value) pairs, flattened
  std::vector<std::uint64_t> objs;   // (obj_id, key, value) triples
};

// The durable machine state frozen at the crash instant (or at
// quiescence, for non-crash verification): everything recovery may use,
// plus the side records only the ORACLE may use.
struct Capture {
  bool valid = false;
  bool crashed = false;
  Image base;                       // checkpoint base image
  std::vector<std::uint64_t> log;   // durable log (dur_) at capture
  std::uint64_t folded_words = 0;   // log prefix already folded into base
  std::uint64_t durable_lsn = 0;    // volatile-log durability watermark
  std::vector<SideRec> side;        // oracle ground truth
};

struct RecoveryResult {
  bool ok = false;
  std::string what;               // first structural/order violation
  std::uint64_t clock_floor = 0;  // max version/stamp replayed
  Image state;
  std::vector<std::uint64_t> image;  // state.serialize()
};

struct WalStats {
  std::uint64_t records = 0;         // commit records appended
  std::uint64_t records_forced = 0;  // records made durable
  std::uint64_t flushes = 0;
  std::uint64_t group_grants = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t truncated_words = 0;
  std::uint64_t acks = 0;
  std::uint64_t ack_lat_sum = 0;  // cycles from append to acknowledgment
  std::uint64_t ack_lat_max = 0;
};

class WalManager final : public stm::CommitLogger {
 public:
  static WalManager& instance();

  // Re-arms the log for a fresh run: clears both images, the registry,
  // side records, stats and any capture.  Single-threaded (pre-sim).
  void reset();
  [[nodiscard]] bool active() const { return active_; }

  // Registry: the durable state is exactly the registered cells and
  // objects; unregistered writes are volatile by contract.  Cells carry
  // their current (version, value) into the initial image, so they may
  // be pre-populated before registration.  Objects must be registered
  // EMPTY — their durable content is built entirely from logged
  // commits, which is what keeps object replay canonical.
  std::uint64_t register_cell(stm::Cell* c);
  std::uint64_t register_obj(stm::ObjDesc* o);

  // stm::CommitLogger
  std::uint64_t on_commit_log(int slot, std::uint64_t wv,
                              const stm::WriteEntry* wb, std::size_t nw,
                              const stm::ObjNetWrite* ob,
                              std::size_t no) override;
  void await_durable(int slot, std::uint64_t lsn) override;

  // Scheduler on_crash hook: freezes the durable image at this exact
  // virtual instant.  Runs on the scheduler stack, between fiber steps.
  void capture_crash_image();
  // Non-crash counterpart for end-of-run verification.
  void capture_quiescent_image();
  [[nodiscard]] const Capture& capture() const { return capture_; }
  [[nodiscard]] const Image& initial_image() const { return init_; }

  // Pure recovery: replays a captured durable image (base + log suffix)
  // into a fresh canonical state.  Never touches live cells; calling it
  // twice on the same capture returns identical results (idempotence).
  [[nodiscard]] static RecoveryResult replay(const Capture& cap);
  [[nodiscard]] RecoveryResult recover() const { return replay(capture_); }

  // Applies a recovered image onto the registered cells (version +
  // value + cleared rings) and restores the runtime clock past every
  // replayed version — the "fresh runtime" half of recovery.  Object
  // state stays canonical (rebuilding a container is its owner's job).
  void recover_apply(const RecoveryResult& r);

  [[nodiscard]] const WalStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t durable_lsn() const { return durable_lsn_; }
  [[nodiscard]] bool crash_seen() const { return crashed_; }

 private:
  WalManager() = default;

  void advance_sealed();
  std::uint64_t drain(int slot, unsigned cost);
  void flush(int slot);
  void lead(int slot);
  void maybe_checkpoint();
  void mark_acked(std::uint64_t lsn);

  bool active_ = false;
  bool crashed_ = false;

  // Registry.
  std::unordered_map<const stm::Cell*, std::uint64_t> cell_ids_;
  std::unordered_map<const stm::ObjDesc*, std::uint64_t> obj_ids_;
  std::vector<stm::Cell*> cells_by_id_;
  Image init_;  // state at registration time (oracle's fold base)

  // Volatile log.
  std::vector<std::uint64_t> vol_;
  std::uint64_t resv_end_ = 0;    // reserved words (appends in flight)
  std::uint64_t sealed_end_ = 0;  // contiguous fully-sealed prefix
  std::uint64_t max_logged_wv_ = 0;

  // Durable state.
  std::vector<std::uint64_t> dur_;
  std::uint64_t durable_lsn_ = 0;   // vol_ offset the flush has reached
  Image base_;                      // checkpoint base
  std::uint64_t folded_words_ = 0;  // dur_ prefix already inside base_

  // Group commit.
  int flush_leader_ = -1;
  std::uint64_t unflushed_commits_ = 0;

  // Oracle ground truth.
  std::vector<SideRec> side_;
  std::unordered_map<std::uint64_t, std::size_t> lsn_to_side_;

  Capture capture_;
  WalStats stats_;
};

}  // namespace demotx::dur
