// demotx:expert-file: durability tier implementation: WAL append from the pinned commit section, group-commit leader election, crash capture/recovery drive Config and raw object descriptors by design
#include "dur/wal.hpp"

#include <algorithm>

#include "stm/cell.hpp"
#include "stm/objops.hpp"
#include "stm/objstm.hpp"
#include "stm/runtime.hpp"
#include "stm/writeset.hpp"
#include "vt/context.hpp"

namespace demotx::dur {

namespace {

// Folds one record at `pos` into `img`; returns the position one past
// it.  Total on any input (garbage folds deterministically — that is
// what lets the oracle catch a torn record as a byte divergence), with
// structural and version-order validation reported through `chk` when
// present.  `maxv` accumulates the clock watermark.
struct FoldCheck {
  bool ok = true;
  std::string what;
};

void fold_fail(FoldCheck* chk, std::string what) {
  if (chk != nullptr && chk->ok) {
    chk->ok = false;
    chk->what = std::move(what);
  }
}

std::uint64_t fold_one(Image& img, const std::vector<std::uint64_t>& log,
                       std::uint64_t pos, std::uint64_t* maxv,
                       FoldCheck* chk) {
  const std::uint64_t h = log[pos];
  if (h == 0) {
    fold_fail(chk, "zero header word in durable log at offset " +
                       std::to_string(pos));
    return log.size();
  }
  const std::uint64_t len = rec::len_of(h);
  const std::uint64_t kind = rec::kind_of(h);
  if (len < 2 || pos + len > log.size()) {
    fold_fail(chk, "record overruns durable log at offset " +
                       std::to_string(pos));
    return log.size();
  }
  if (kind == rec::kGroupStamp) {
    if (len != 2) {
      fold_fail(chk, "malformed group stamp at offset " + std::to_string(pos));
      return pos + len;
    }
    if (maxv != nullptr) *maxv = std::max(*maxv, log[pos + 1]);
    return pos + len;
  }
  if (kind != rec::kCommit) {
    fold_fail(chk, "unknown record kind " + std::to_string(kind) +
                       " at offset " + std::to_string(pos));
    return pos + len;
  }
  const std::uint64_t wv = log[pos + 1];
  const std::uint64_t nc = log[pos + 2];
  const std::uint64_t no = log[pos + 3];
  if (4 + 2 * nc + 3 * no != len) {
    fold_fail(chk, "torn commit record (length/count mismatch) at offset " +
                       std::to_string(pos));
    return pos + len;
  }
  if (maxv != nullptr) *maxv = std::max(*maxv, wv);
  std::uint64_t p = pos + 4;
  for (std::uint64_t i = 0; i < nc; ++i, p += 2) {
    const std::uint64_t id = log[p];
    const std::uint64_t value = log[p + 1];
    auto it = img.cells.find(id);
    if (it == img.cells.end()) {
      fold_fail(chk, "commit record names unregistered cell id " +
                         std::to_string(id) + " at offset " +
                         std::to_string(pos));
      img.cells[id] = {wv, value};
      continue;
    }
    if (chk != nullptr && wv <= it->second.first) {
      fold_fail(chk, "version order regression at cell id " +
                         std::to_string(id) + ": wv " + std::to_string(wv) +
                         " after " + std::to_string(it->second.first));
    }
    it->second = {wv, value};
  }
  for (std::uint64_t i = 0; i < no; ++i, p += 3) {
    const auto key = std::make_pair(log[p], log[p + 1]);
    const std::uint64_t value = log[p + 2];
    auto it = img.objs.find(key);
    if (it != img.objs.end() && chk != nullptr && wv <= it->second.first) {
      fold_fail(chk, "version order regression at object " +
                         std::to_string(key.first) + " key " +
                         std::to_string(key.second) + ": wv " +
                         std::to_string(wv) + " after " +
                         std::to_string(it->second.first));
    }
    img.objs[key] = {wv, value};
  }
  return pos + len;
}

}  // namespace

std::vector<std::uint64_t> Image::serialize() const {
  std::vector<std::uint64_t> out;
  out.reserve(2 + 3 * cells.size() + 4 * objs.size());
  out.push_back(cells.size());
  for (const auto& [id, vv] : cells) {
    out.push_back(id);
    out.push_back(vv.first);
    out.push_back(vv.second);
  }
  out.push_back(objs.size());
  for (const auto& [ok, vv] : objs) {
    out.push_back(ok.first);
    out.push_back(ok.second);
    out.push_back(vv.first);
    out.push_back(vv.second);
  }
  return out;
}

WalManager& WalManager::instance() {
  static WalManager wal;
  return wal;
}

void WalManager::reset() {
  active_ = false;
  crashed_ = false;
  cell_ids_.clear();
  obj_ids_.clear();
  cells_by_id_.clear();
  init_ = Image{};
  vol_.clear();
  resv_end_ = 0;
  sealed_end_ = 0;
  max_logged_wv_ = 0;
  dur_.clear();
  durable_lsn_ = 0;
  base_ = Image{};
  folded_words_ = 0;
  flush_leader_ = -1;
  unflushed_commits_ = 0;
  side_.clear();
  lsn_to_side_.clear();
  capture_ = Capture{};
  stats_ = WalStats{};
}

std::uint64_t WalManager::register_cell(stm::Cell* c) {
  active_ = true;
  const std::uint64_t id = cells_by_id_.size() + 1;
  cell_ids_[c] = id;
  cells_by_id_.push_back(c);
  init_.cells[id] = {c->unsafe_version(), c->unsafe_value()};
  base_.cells[id] = init_.cells[id];
  return id;
}

std::uint64_t WalManager::register_obj(stm::ObjDesc* o) {
  active_ = true;
  const std::uint64_t id = obj_ids_.size() + 1;
  obj_ids_[o] = id;
  return id;
}

void WalManager::advance_sealed() {
  while (sealed_end_ < vol_.size() && vol_[sealed_end_] != 0) {
    const std::uint64_t len = rec::len_of(vol_[sealed_end_]);
    if (len < 2 || sealed_end_ + len > vol_.size()) break;
    sealed_end_ += len;
  }
}

std::uint64_t WalManager::on_commit_log(int slot, std::uint64_t wv,
                                        const stm::WriteEntry* wb,
                                        std::size_t nw,
                                        const stm::ObjNetWrite* ob,
                                        std::size_t no) {
  if (!active_) return 0;
  // Net values of the registered durable state only; anything else this
  // commit wrote is volatile by contract.  Locals, not members: the
  // yields below let other committers re-enter this function.
  std::vector<std::uint64_t> cells;
  std::vector<std::uint64_t> objs;
  for (std::size_t i = 0; i < nw; ++i) {
    auto it = cell_ids_.find(wb[i].cell);
    if (it == cell_ids_.end()) continue;
    cells.push_back(it->second);
    cells.push_back(wb[i].value);
  }
  for (std::size_t i = 0; i < no; ++i) {
    auto it = obj_ids_.find(ob[i].obj);
    if (it == obj_ids_.end()) continue;
    objs.push_back(it->second);
    objs.push_back(ob[i].key);
    objs.push_back(ob[i].value);
  }
  if (cells.empty() && objs.empty()) return 0;

  const std::uint64_t nc = cells.size() / 2;
  const std::uint64_t nob = objs.size() / 3;
  const std::uint64_t len = 4 + 2 * nc + 3 * nob;
  const bool torn = stm::Runtime::instance().config.inject_torn_write;

  // Reserve the span in one indivisible step so concurrent appends
  // never interleave words; then fill it with yields in between — the
  // windows a group flush (and a crash) can land in.
  const std::uint64_t start = resv_end_;
  resv_end_ += len;
  vol_.resize(resv_end_, 0);

  if (torn) {
    // PLANTED BUG (inject_torn_write): publish the record as flushable
    // before its payload exists.  A flush overlapping the append now
    // forces garbage; the durability oracle must catch the divergence.
    vol_[start] = rec::header(len, rec::kCommit);
    advance_sealed();
  }
  vol_[start + 1] = wv;
  vol_[start + 2] = nc;
  vol_[start + 3] = nob;
  std::uint64_t p = start + 4;
  for (const std::uint64_t w : cells) {
    vt::access();
    vol_[p++] = w;
  }
  for (const std::uint64_t w : objs) {
    vt::access();
    vol_[p++] = w;
  }
  vt::access();
  if (!torn) {
    vol_[start] = rec::header(len, rec::kCommit);
    advance_sealed();
  }
  max_logged_wv_ = std::max(max_logged_wv_, wv);
  ++unflushed_commits_;
  ++stats_.records;

  SideRec s;
  s.lsn_end = start + len;
  s.wv = wv;
  s.slot = slot;
  s.t_logged = vt::sim_now();
  s.cells = std::move(cells);
  s.objs = std::move(objs);
  lsn_to_side_[s.lsn_end] = side_.size();
  side_.push_back(std::move(s));
  return start + len;
}

void WalManager::mark_acked(std::uint64_t lsn) {
  auto it = lsn_to_side_.find(lsn);
  if (it == lsn_to_side_.end()) return;
  SideRec& s = side_[it->second];
  if (s.acked) return;
  s.acked = true;
  ++stats_.acks;
  const std::uint64_t lat = vt::sim_now() - s.t_logged;
  stats_.ack_lat_sum += lat;
  stats_.ack_lat_max = std::max(stats_.ack_lat_max, lat);
}

std::uint64_t WalManager::drain(int slot, unsigned cost) {
  (void)slot;
  std::uint64_t copied = 0;
  while (durable_lsn_ < sealed_end_) {
    // One whole record per modeled device barrier: forces are
    // record-atomic, crash windows live BETWEEN records — which is what
    // makes a mid-group crash durably keep the group's prefix.
    const std::uint64_t h = vol_[durable_lsn_];
    const std::uint64_t len = rec::len_of(h);
    dur_.insert(dur_.end(), vol_.begin() + static_cast<std::ptrdiff_t>(durable_lsn_),
                vol_.begin() + static_cast<std::ptrdiff_t>(durable_lsn_ + len));
    if (rec::kind_of(h) == rec::kCommit && unflushed_commits_ > 0)
      --unflushed_commits_;
    durable_lsn_ += len;
    ++copied;
    ++stats_.records_forced;
    vt::access(cost);
  }
  return copied;
}

void WalManager::flush(int slot) {
  const stm::Config& cfg = stm::Runtime::instance().config;
  const std::uint64_t copied = drain(slot, cfg.log_flush_cost);
  if (copied == 0) return;
  ++stats_.flushes;
  // One clock grant stamps the whole group: the leader pays a single
  // commit-clock (sharded: own-shard) RMW for the batch and logs the
  // granted timestamp as the group's durable clock watermark.
  // min_exclusive = the highest write version logged so far, so the
  // stamp dominates every record it follows; recovery still maxes over
  // record wvs, so a lost or trailing stamp costs nothing.
  const std::uint64_t stamp = stm::Runtime::instance().clock_advance(
      nullptr, nullptr, max_logged_wv_, slot);
  ++stats_.group_grants;
  const std::uint64_t s = resv_end_;
  resv_end_ += 2;
  vol_.resize(resv_end_, 0);
  vol_[s + 1] = stamp;
  vol_[s] = rec::header(2, rec::kGroupStamp);
  advance_sealed();
  // Pick the stamp up now if the log is contiguous to it (an in-flight
  // append before it defers both to the next flush — harmless).
  drain(slot, cfg.log_flush_cost);
  maybe_checkpoint();
}

void WalManager::lead(int slot) {
  const stm::Config& cfg = stm::Runtime::instance().config;
  // Wait for the batch to fill, bounded by the flush interval so a lone
  // committer is never stranded; a crash ends the wait (the flush that
  // follows only mutates post-crash volatile state — the captured image
  // is already frozen).
  const std::uint64_t deadline = vt::sim_now() + cfg.group_commit_interval;
  while (!crashed_ && !vt::stop_requested() &&
         unflushed_commits_ < cfg.group_commit_batch &&
         vt::sim_now() < deadline) {
    vt::access();
  }
  flush(slot);
}

void WalManager::await_durable(int slot, std::uint64_t lsn) {
  if (!active_ || lsn == 0) return;
  if (!vt::in_sim()) {
    // Setup/teardown transactions run without the scheduler: durability
    // is synchronous (flush per commit), so the sim always starts from
    // a fully durable base.
    flush(slot);
    mark_acked(lsn);
    return;
  }
  // Pinned: this wait yields but must never unwind (see the ack-point
  // comment in txdesc.cpp).  Unlike every other pinned region it is NOT
  // wait-free — it blocks on the flush leader's progress — so it must
  // bail out (unacknowledged) the moment the simulation stops: after
  // the brake or a crash the scheduler's baseline policies may never
  // again resume the fiber this wait depends on.
  vt::ScopedCritical crit(/*arm_now=*/true);
  while (durable_lsn_ < lsn) {
    if (crashed_ || vt::stop_requested()) return;  // never acknowledged
    if (flush_leader_ < 0) {
      flush_leader_ = slot;
      lead(slot);
      flush_leader_ = -1;
    } else {
      vt::access();
    }
  }
  if (!crashed_) mark_acked(lsn);
}

void WalManager::maybe_checkpoint() {
  const stm::Config& cfg = stm::Runtime::instance().config;
  if (cfg.checkpoint_every == 0) return;
  if (stats_.flushes % cfg.checkpoint_every != 0) return;
  if (crashed_ || !vt::in_sim()) {
    // Post-crash state is volatile noise; non-sim checkpointing would
    // run with no crash windows, so do it (setup-time logs stay small
    // enough without).
    return;
  }
  // Step 1: build the staging image — base + every durable record not
  // yet folded.  Indivisible; the fold is the same total fold recovery
  // uses, so recovered state is independent of checkpoint timing.
  Image staging = base_;
  std::uint64_t pos = folded_words_;
  while (pos < dur_.size()) pos = fold_one(staging, dur_, pos, nullptr, nullptr);
  const std::uint64_t staged = dur_.size();
  vt::access();  // crash window: staging built, nothing installed yet
  // Step 2: install the checkpoint.
  base_ = std::move(staging);
  folded_words_ = staged;
  ++stats_.checkpoints;
  vt::access();  // crash window: installed but NOT truncated — recovery
                 // must skip the already-folded prefix (folded_words_)
  // Step 3: truncate the folded prefix.
  stats_.truncated_words += folded_words_;
  dur_.erase(dur_.begin(), dur_.begin() + static_cast<std::ptrdiff_t>(folded_words_));
  folded_words_ = 0;
}

void WalManager::capture_crash_image() {
  crashed_ = true;
  if (!active_) return;
  capture_.valid = true;
  capture_.crashed = true;
  capture_.base = base_;
  capture_.log = dur_;
  capture_.folded_words = folded_words_;
  capture_.durable_lsn = durable_lsn_;
  capture_.side = side_;
}

void WalManager::capture_quiescent_image() {
  if (!active_) return;
  capture_.valid = true;
  capture_.crashed = false;
  capture_.base = base_;
  capture_.log = dur_;
  capture_.folded_words = folded_words_;
  capture_.durable_lsn = durable_lsn_;
  capture_.side = side_;
}

RecoveryResult WalManager::replay(const Capture& cap) {
  RecoveryResult r;
  if (!cap.valid) {
    r.what = "no captured durable image";
    return r;
  }
  r.state = cap.base;
  FoldCheck chk;
  std::uint64_t pos = cap.folded_words;
  while (pos < cap.log.size() && chk.ok)
    pos = fold_one(r.state, cap.log, pos, &r.clock_floor, &chk);
  for (const auto& [id, vv] : r.state.cells)
    r.clock_floor = std::max(r.clock_floor, vv.first);
  for (const auto& [ok, vv] : r.state.objs)
    r.clock_floor = std::max(r.clock_floor, vv.first);
  r.ok = chk.ok;
  r.what = chk.what;
  r.image = r.state.serialize();
  return r;
}

void WalManager::recover_apply(const RecoveryResult& r) {
  for (const auto& [id, vv] : r.state.cells) {
    if (id == 0 || id > cells_by_id_.size()) continue;
    stm::Cell* c = cells_by_id_[id - 1];
    c->vlock.store(stm::lockword::make_version(vv.first),
                   std::memory_order_relaxed);
    c->value.store(vv.second, std::memory_order_relaxed);
    c->clear_history();
  }
  stm::Runtime::instance().clock_restore_at_least(r.clock_floor);
}

}  // namespace demotx::dur
