#include "sched/enumerate.hpp"

namespace demotx::sched {

namespace {

void recurse(const std::vector<Program>& programs, std::vector<std::size_t>& at,
             History& prefix, const std::function<void(const History&)>& fn) {
  bool done = true;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    if (at[p] < programs[p].size()) {
      done = false;
      prefix.push_back(programs[p][at[p]]);
      ++at[p];
      recurse(programs, at, prefix, fn);
      --at[p];
      prefix.pop_back();
    }
  }
  if (done) fn(prefix);
}

}  // namespace

void for_each_interleaving(const std::vector<Program>& programs,
                           const std::function<void(const History&)>& fn) {
  std::vector<std::size_t> at(programs.size(), 0);
  History prefix;
  std::size_t total = 0;
  for (const Program& p : programs) total += p.size();
  prefix.reserve(total);
  recurse(programs, at, prefix, fn);
}

std::vector<History> all_interleavings(const std::vector<Program>& programs) {
  std::vector<History> out;
  for_each_interleaving(programs, [&](const History& h) { out.push_back(h); });
  return out;
}

std::uint64_t interleaving_count(const std::vector<Program>& programs) {
  // multinomial(sum; n1, n2, ...) computed incrementally as
  // prod over programs of C(running_total, ni).
  auto choose = [](std::uint64_t n, std::uint64_t k) {
    std::uint64_t r = 1;
    for (std::uint64_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
    return r;
  };
  std::uint64_t total = 0;
  std::uint64_t count = 1;
  for (const Program& p : programs) {
    total += p.size();
    count *= choose(total, p.size());
  }
  return count;
}

}  // namespace demotx::sched
