// The atomicity-relation analyzer of Sec. 3.1.
//
// The paper defines atomicity(π, π') over two accesses of one process and
// shows the key expressiveness gap:
//
//   * a lock-based program guarantees atomicity between two accesses iff
//     some held-lock interval covers both (and the interval's lock
//     protects a location one of them accesses) — a relation that is NOT
//     transitively closed (hand-over-hand: (rx,ry) and (ry,rz) but not
//     (rx,rz));
//   * a transaction block guarantees ALL pairs — the transitive closure —
//     and its open/close syntax cannot express anything weaker.
//
// This module computes both relations from a Program so tests and the
// Fig. 4 bench can exhibit the gap mechanically.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sched/history.hpp"

namespace demotx::sched {

// Unordered pair of access indices (positions among the program's
// read/write events, in program order), stored with first < second.
using AccessPair = std::pair<std::size_t, std::size_t>;
using AtomicityRelation = std::set<AccessPair>;

// Indices (into the program) of the read/write events, in order.
std::vector<std::size_t> access_events(const Program& p);

// Atomicity guaranteed by the program's explicit lock/unlock events.
AtomicityRelation lock_atomicity(const Program& p);

// Atomicity guaranteed by wrapping all accesses in one transaction: every
// pair.
AtomicityRelation transaction_atomicity(const Program& p);

// Transitive closure of a relation over the given number of accesses.
AtomicityRelation transitive_closure(const AtomicityRelation& r,
                                     std::size_t num_accesses);

bool is_transitively_closed(const AtomicityRelation& r,
                            std::size_t num_accesses);

// "{(r(x),r(y)), ...}" using the program's access events for labels.
std::string to_string(const AtomicityRelation& r, const Program& p,
                      const std::vector<std::string>* loc_names = nullptr);

}  // namespace demotx::sched
