// Interleaving enumeration for Fig. 4: all ways to shuffle the programs
// of several transactions while preserving each program's order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/history.hpp"

namespace demotx::sched {

// Invokes fn on every interleaving.  The number of interleavings is the
// multinomial coefficient (sum |Pi|)! / prod |Pi|!.
void for_each_interleaving(const std::vector<Program>& programs,
                           const std::function<void(const History&)>& fn);

// Materializes all interleavings (use only for small inputs).
std::vector<History> all_interleavings(const std::vector<Program>& programs);

// The multinomial count, computed without enumeration.
std::uint64_t interleaving_count(const std::vector<Program>& programs);

}  // namespace demotx::sched
