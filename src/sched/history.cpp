#include "sched/history.hpp"

#include <algorithm>

namespace demotx::sched {

int num_txs(const History& h) {
  int m = -1;
  for (const Event& e : h) m = std::max(m, e.tx);
  return m + 1;
}

int num_locs(const History& h) {
  int m = -1;
  for (const Event& e : h) m = std::max(m, e.loc);
  return m + 1;
}

std::string to_string(const History& h,
                      const std::vector<std::string>* loc_names) {
  static const char* kDefault[] = {"x", "y", "z", "u", "v", "w",
                                   "h", "n", "t", "a", "b", "c"};
  std::string out;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (i != 0) out += ' ';
    switch (e.op) {
      case Op::kRead:
        out += 'r';
        break;
      case Op::kWrite:
        out += 'w';
        break;
      case Op::kLock:
        out += "lock";
        break;
      case Op::kUnlock:
        out += "unlock";
        break;
    }
    out += '(';
    if (loc_names != nullptr && e.loc < static_cast<int>(loc_names->size())) {
      out += (*loc_names)[static_cast<std::size_t>(e.loc)];
    } else if (e.loc < 12) {
      out += kDefault[e.loc];
    } else {
      out += 'l' + std::to_string(e.loc);
    }
    out += ')';
    out += std::to_string(e.tx);
  }
  return out;
}

}  // namespace demotx::sched
