// History checkers: the acceptance criteria behind Fig. 4 and Sec. 4.2.
//
// Three semantic checkers plus an operational protocol-replay checker:
//
//  * conflict_serializable       — classic conflict-graph acyclicity.
//                                  This is "correct" for the paper's
//                                  Fig. 4 counting: all 20 interleavings
//                                  of Pt, P1, P2 pass.
//  * view_strictly_serializable  — exact strict serializability: some
//                                  permutation of the committed
//                                  transactions preserves every read's
//                                  writer and the real-time order.
//  * conflict_opaque             — order-preserving conflict
//                                  serializability (conflict edges +
//                                  real-time edges acyclic): what classic
//                                  opaque TMs guarantee and therefore the
//                                  upper bound of what they can accept.
//                                  Fig. 4's "precluded" schedules are
//                                  exactly those that fail here.
//  * protocol_accepts            — replays demotx's own mixed-semantics
//                                  protocol (TL2 reads, elastic window,
//                                  snapshot bounds) over the interleaving
//                                  and reports whether every transaction
//                                  commits — the *input acceptance* of the
//                                  implementation (paper citation [35]).
#pragma once

#include <vector>

#include "sched/history.hpp"
#include "stm/semantics.hpp"

namespace demotx::sched {

bool conflict_serializable(const History& h);

// When do a transaction's writes become visible to other readers?
//   kAtEvent  — immediately (the paper's formal histories, Sec. 3/4.2);
//   kAtCommit — at the transaction's last event (lazy-versioning STMs
//               like demotx buffer writes until commit).  Used by the
//               protocol-soundness property tests.
enum class WriteVisibility { kAtEvent, kAtCommit };

bool view_strictly_serializable(
    const History& h, WriteVisibility vis = WriteVisibility::kAtEvent);

bool conflict_opaque(const History& h);

struct ProtocolOptions {
  // Semantics per transaction id; transactions beyond the vector default
  // to classic.
  std::vector<stm::Semantics> semantics;
  std::size_t elastic_window = 2;
  bool enable_extension = false;  // plain TL2 acceptance by default
};

struct ProtocolResult {
  bool accepted = true;
  int aborted_tx = -1;
  stm::AbortReason reason = stm::AbortReason::kExplicit;
  int total_cuts = 0;  // elastic cuts performed during the replay
};

ProtocolResult protocol_accepts(const History& h, const ProtocolOptions& opts);

}  // namespace demotx::sched
