#include "sched/atomicity.hpp"

#include <algorithm>
#include <functional>
#include <iterator>

namespace demotx::sched {

std::vector<std::size_t> access_events(const Program& p) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i].op == Op::kRead || p[i].op == Op::kWrite) out.push_back(i);
  return out;
}

AtomicityRelation lock_atomicity(const Program& p) {
  const std::vector<std::size_t> acc = access_events(p);
  // Collect held-lock intervals [lock_i, unlock_i] per location.
  struct Interval {
    int loc;
    std::size_t from;
    std::size_t to;
  };
  std::vector<Interval> intervals;
  std::vector<std::pair<int, std::size_t>> open;  // (loc, lock index)
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i].op == Op::kLock) {
      open.emplace_back(p[i].loc, i);
    } else if (p[i].op == Op::kUnlock) {
      for (auto it = open.rbegin(); it != open.rend(); ++it) {
        if (it->first == p[i].loc) {
          intervals.push_back({p[i].loc, it->second, i});
          open.erase(std::next(it).base());
          break;
        }
      }
    }
  }
  // Locks never released are held to the end.
  for (auto [loc, from] : open) intervals.push_back({loc, from, p.size()});

  AtomicityRelation rel;
  for (std::size_t a = 0; a < acc.size(); ++a) {
    for (std::size_t b = a + 1; b < acc.size(); ++b) {
      for (const Interval& iv : intervals) {
        const bool covers = acc[a] > iv.from && acc[a] < iv.to &&
                            acc[b] > iv.from && acc[b] < iv.to;
        if (!covers) continue;
        // The interval's lock must protect a location one of the two
        // accesses actually touches (the paper: the process "accesses x"
        // within the interval it locks x).
        if (p[acc[a]].loc == iv.loc || p[acc[b]].loc == iv.loc) {
          rel.insert({a, b});
          break;
        }
      }
    }
  }
  return rel;
}

AtomicityRelation transaction_atomicity(const Program& p) {
  const std::size_t n = access_events(p).size();
  AtomicityRelation rel;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) rel.insert({a, b});
  return rel;
}

AtomicityRelation transitive_closure(const AtomicityRelation& r,
                                     std::size_t num_accesses) {
  // Atomicity is symmetric; its closure is the union of connected
  // components' complete graphs.
  std::vector<std::size_t> parent(num_accesses);
  for (std::size_t i = 0; i < num_accesses; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const AccessPair& pr : r) parent[find(pr.first)] = find(pr.second);
  AtomicityRelation out;
  for (std::size_t a = 0; a < num_accesses; ++a)
    for (std::size_t b = a + 1; b < num_accesses; ++b)
      if (find(a) == find(b)) out.insert({a, b});
  return out;
}

bool is_transitively_closed(const AtomicityRelation& r,
                            std::size_t num_accesses) {
  return transitive_closure(r, num_accesses) == r;
}

std::string to_string(const AtomicityRelation& r, const Program& p,
                      const std::vector<std::string>* loc_names) {
  const std::vector<std::size_t> acc = access_events(p);
  auto label = [&](std::size_t a) {
    History one{p[acc[a]]};
    std::string s = sched::to_string(one, loc_names);
    return s.substr(0, s.find_last_not_of("0123456789") + 1);
  };
  std::string out = "{";
  bool first = true;
  for (const AccessPair& pr : r) {
    if (!first) out += ", ";
    first = false;
    out += "(" + label(pr.first) + "," + label(pr.second) + ")";
  }
  out += "}";
  return out;
}

}  // namespace demotx::sched
