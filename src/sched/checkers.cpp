// demotx:expert-file: schedule/atomicity checkers: validate executions of every semantics tier
#include "sched/checkers.hpp"

#include <algorithm>
#include <numeric>

namespace demotx::sched {

namespace {

// Simple dense digraph with DFS cycle detection.
class Digraph {
 public:
  explicit Digraph(int n) : n_(n), adj_(static_cast<std::size_t>(n) *
                                        static_cast<std::size_t>(n)) {}

  void add_edge(int a, int b) {
    if (a != b) adj_[idx(a, b)] = true;
  }

  [[nodiscard]] bool has_cycle() const {
    std::vector<int> color(static_cast<std::size_t>(n_), 0);
    for (int v = 0; v < n_; ++v)
      if (color[static_cast<std::size_t>(v)] == 0 && dfs(v, color)) return true;
    return false;
  }

 private:
  [[nodiscard]] std::size_t idx(int a, int b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(b);
  }

  bool dfs(int v, std::vector<int>& color) const {
    color[static_cast<std::size_t>(v)] = 1;
    for (int w = 0; w < n_; ++w) {
      if (!adj_[idx(v, w)]) continue;
      if (color[static_cast<std::size_t>(w)] == 1) return true;
      if (color[static_cast<std::size_t>(w)] == 0 && dfs(w, color)) return true;
    }
    color[static_cast<std::size_t>(v)] = 2;
    return false;
  }

  int n_;
  std::vector<bool> adj_;
};

void add_conflict_edges(const History& h, Digraph& g) {
  for (std::size_t i = 0; i < h.size(); ++i) {
    for (std::size_t j = i + 1; j < h.size(); ++j) {
      const Event& a = h[i];
      const Event& b = h[j];
      if (a.tx == b.tx || a.loc != b.loc) continue;
      if (a.op == Op::kWrite || b.op == Op::kWrite) g.add_edge(a.tx, b.tx);
    }
  }
}

// Real-time precedence: a's last event before b's first event.
void add_realtime_edges(const History& h, int n, Digraph& g) {
  std::vector<std::size_t> first(static_cast<std::size_t>(n), h.size());
  std::vector<std::size_t> last(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < h.size(); ++i) {
    auto t = static_cast<std::size_t>(h[i].tx);
    first[t] = std::min(first[t], i);
    last[t] = std::max(last[t], i);
  }
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      if (a != b && last[static_cast<std::size_t>(a)] <
                        first[static_cast<std::size_t>(b)])
        g.add_edge(a, b);
}

}  // namespace

bool conflict_serializable(const History& h) {
  const int n = num_txs(h);
  if (n <= 1) return true;
  Digraph g(n);
  add_conflict_edges(h, g);
  return !g.has_cycle();
}

bool conflict_opaque(const History& h) {
  const int n = num_txs(h);
  if (n <= 1) return true;
  Digraph g(n);
  add_conflict_edges(h, g);
  add_realtime_edges(h, n, g);
  return !g.has_cycle();
}

bool view_strictly_serializable(const History& h, WriteVisibility vis) {
  const int n = num_txs(h);
  if (n <= 1) return true;

  // Reads-from in H: for each read event, the tx whose write it observes
  // (-1 = initial value), and the final writer per location.  Under
  // kAtEvent a write is visible from its event on; under kAtCommit other
  // transactions see it only after the writer's last event (buffered
  // writes), while the writer itself always sees its own earlier writes.
  const int locs = num_locs(h);
  struct ReadObs {
    std::size_t event;
    int from;
  };
  std::vector<ReadObs> observations;
  std::vector<int> final_writer(static_cast<std::size_t>(locs), -1);

  if (vis == WriteVisibility::kAtEvent) {
    std::vector<int> writer(static_cast<std::size_t>(locs), -1);
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.op == Op::kRead) {
        observations.push_back({i, writer[static_cast<std::size_t>(e.loc)]});
      } else if (e.op == Op::kWrite) {
        writer[static_cast<std::size_t>(e.loc)] = e.tx;
      }
    }
    final_writer = writer;
  } else {
    std::vector<std::size_t> commit_at(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < h.size(); ++i)
      commit_at[static_cast<std::size_t>(h[i].tx)] = i;
    // writes_before[t][l]: smallest event index at which tx t wrote l.
    std::vector<std::vector<std::size_t>> first_write(
        static_cast<std::size_t>(n),
        std::vector<std::size_t>(static_cast<std::size_t>(locs), h.size()));
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.op == Op::kWrite) {
        auto& fw = first_write[static_cast<std::size_t>(e.tx)]
                              [static_cast<std::size_t>(e.loc)];
        fw = std::min(fw, i);
      }
    }
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.op != Op::kRead) continue;
      const auto l = static_cast<std::size_t>(e.loc);
      int from = -1;
      if (first_write[static_cast<std::size_t>(e.tx)][l] < i) {
        from = e.tx;  // read-own-write
      } else {
        std::size_t best = 0;
        bool found = false;
        for (int u = 0; u < n; ++u) {
          if (u == e.tx) continue;
          const auto uu = static_cast<std::size_t>(u);
          if (first_write[uu][l] == h.size()) continue;  // never writes l
          if (commit_at[uu] < i && (!found || commit_at[uu] > best)) {
            best = commit_at[uu];
            from = u;
            found = true;
          }
        }
      }
      observations.push_back({i, from});
    }
    for (int l = 0; l < locs; ++l) {
      std::size_t best = 0;
      for (int u = 0; u < n; ++u) {
        const auto uu = static_cast<std::size_t>(u);
        if (first_write[uu][static_cast<std::size_t>(l)] == h.size()) continue;
        if (final_writer[static_cast<std::size_t>(l)] == -1 ||
            commit_at[uu] > best) {
          best = commit_at[uu];
          final_writer[static_cast<std::size_t>(l)] = u;
        }
      }
    }
  }

  // Real-time constraints.
  std::vector<std::size_t> first(static_cast<std::size_t>(n), h.size());
  std::vector<std::size_t> last(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < h.size(); ++i) {
    auto t = static_cast<std::size_t>(h[i].tx);
    first[t] = std::min(first[t], i);
    last[t] = std::max(last[t], i);
  }

  // Group each transaction's observations in program order.
  std::vector<std::vector<ReadObs>> per_tx(static_cast<std::size_t>(n));
  for (const ReadObs& o : observations)
    per_tx[static_cast<std::size_t>(h[o.event].tx)].push_back(o);

  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    std::vector<int> pos(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      pos[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
    // Real-time order must be respected.
    bool ok = true;
    for (int a = 0; a < n && ok; ++a)
      for (int b = 0; b < n && ok; ++b)
        if (a != b &&
            last[static_cast<std::size_t>(a)] <
                first[static_cast<std::size_t>(b)] &&
            pos[static_cast<std::size_t>(a)] > pos[static_cast<std::size_t>(b)])
          ok = false;
    if (!ok) continue;
    // Replay serially; every read must see the same writer as in H, and
    // the final writer of each location must match.
    std::vector<int> w(static_cast<std::size_t>(locs), -1);
    std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
    for (int p = 0; p < n && ok; ++p) {
      const int t = perm[static_cast<std::size_t>(p)];
      for (const Event& e : h) {
        if (e.tx != t) continue;
        if (e.op == Op::kRead) {
          const ReadObs& o = per_tx[static_cast<std::size_t>(t)]
                                   [cursor[static_cast<std::size_t>(t)]++];
          if (w[static_cast<std::size_t>(e.loc)] != o.from) {
            ok = false;
            break;
          }
        } else if (e.op == Op::kWrite) {
          w[static_cast<std::size_t>(e.loc)] = t;
        }
      }
    }
    if (ok) {
      for (int l = 0; l < locs; ++l)
        if (w[static_cast<std::size_t>(l)] !=
            final_writer[static_cast<std::size_t>(l)])
          ok = false;
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

// ---------------------------------------------------------------------
// Operational replay of the demotx protocol (input acceptance).
// ---------------------------------------------------------------------

ProtocolResult protocol_accepts(const History& h, const ProtocolOptions& opts) {
  const int n = num_txs(h);
  const int locs = num_locs(h);
  ProtocolResult res;

  auto sem_of = [&](int t) {
    return t < static_cast<int>(opts.semantics.size())
               ? opts.semantics[static_cast<std::size_t>(t)]
               : stm::Semantics::kClassic;
  };

  struct TxState {
    bool started = false;
    std::uint64_t rv = 0;
    bool elastic_phase = false;
    std::vector<std::pair<int, std::uint64_t>> window;  // (loc, version)
    std::vector<std::pair<int, std::uint64_t>> reads;
    std::vector<int> writes;
  };

  std::vector<TxState> st(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> ver(static_cast<std::size_t>(locs), 0);
  std::vector<std::uint64_t> prev_ver(static_cast<std::size_t>(locs), 0);
  std::uint64_t clock = 0;

  std::vector<std::size_t> last(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < h.size(); ++i)
    last[static_cast<std::size_t>(h[i].tx)] = i;

  auto fail = [&](int t, stm::AbortReason r) {
    res.accepted = false;
    res.aborted_tx = t;
    res.reason = r;
  };

  auto validate_reads = [&](const TxState& s) {
    for (auto [loc, v] : s.reads)
      if (ver[static_cast<std::size_t>(loc)] != v) return false;
    return true;
  };
  auto validate_window = [&](const TxState& s) {
    for (auto [loc, v] : s.window)
      if (ver[static_cast<std::size_t>(loc)] != v) return false;
    return true;
  };

  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    const int t = e.tx;
    TxState& s = st[static_cast<std::size_t>(t)];
    const stm::Semantics sem = sem_of(t);
    if (!s.started) {
      s.started = true;
      s.rv = clock;
      s.elastic_phase = (sem == stm::Semantics::kElastic);
    }
    const auto l = static_cast<std::size_t>(e.loc);

    switch (e.op) {
      case Op::kRead: {
        const bool own_write =
            std::find(s.writes.begin(), s.writes.end(), e.loc) !=
            s.writes.end();
        if (own_write) break;
        if (sem == stm::Semantics::kSnapshot) {
          if (ver[l] <= s.rv) break;
          if (prev_ver[l] <= s.rv) break;
          fail(t, stm::AbortReason::kSnapshotTooOld);
          return res;
        }
        if (s.elastic_phase) {
          while (s.window.size() >= opts.elastic_window) {
            s.window.erase(s.window.begin());
            ++res.total_cuts;
          }
          if (!validate_window(s)) {
            fail(t, stm::AbortReason::kWindowInvalid);
            return res;
          }
          s.window.emplace_back(e.loc, ver[l]);
          break;
        }
        // classic-mode read
        if (ver[l] > s.rv) {
          if (opts.enable_extension && validate_reads(s)) {
            s.rv = clock;
          } else {
            fail(t, stm::AbortReason::kReadValidation);
            return res;
          }
        }
        s.reads.emplace_back(e.loc, ver[l]);
        break;
      }
      case Op::kWrite: {
        if (sem == stm::Semantics::kSnapshot) {
          fail(t, stm::AbortReason::kExplicit);  // read-only semantics
          return res;
        }
        if (s.elastic_phase) {
          if (!validate_window(s)) {
            fail(t, stm::AbortReason::kWindowInvalid);
            return res;
          }
          s.rv = clock;
          for (auto& w : s.window) s.reads.push_back(w);
          s.window.clear();
          s.elastic_phase = false;
        }
        if (std::find(s.writes.begin(), s.writes.end(), e.loc) ==
            s.writes.end())
          s.writes.push_back(e.loc);
        break;
      }
      case Op::kLock:
      case Op::kUnlock:
        break;  // not part of the transactional protocol
    }

    // Commit at the transaction's last event.
    if (i == last[static_cast<std::size_t>(t)]) {
      if (!s.writes.empty()) {
        if (!validate_reads(s)) {
          fail(t, stm::AbortReason::kCommitValidation);
          return res;
        }
        ++clock;
        for (int loc : s.writes) {
          prev_ver[static_cast<std::size_t>(loc)] =
              ver[static_cast<std::size_t>(loc)];
          ver[static_cast<std::size_t>(loc)] = clock;
        }
      }
    }
  }
  return res;
}

}  // namespace demotx::sched
