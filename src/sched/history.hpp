// Histories: the formal objects of the paper's Sections 3.1–3.2 and 4.2.
//
// A History is a totally ordered sequence of shared-memory events (reads,
// writes, lock/unlock) tagged with the transaction (or process) that
// issued them, e.g. the paper's
//
//   H = r(h)i r(n)i  r(h)j r(n)j w(h)j  r(t)i w(n)i.
//
// The checkers (checkers.hpp), the interleaving enumerator
// (enumerate.hpp) and the atomicity-relation analyzer (atomicity.hpp)
// all operate on this representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace demotx::sched {

enum class Op : std::uint8_t { kRead, kWrite, kLock, kUnlock };

struct Event {
  int tx;   // transaction / process id (dense, 0-based)
  Op op;
  int loc;  // location id (dense, 0-based)

  friend bool operator==(const Event&, const Event&) = default;
};

// Events of one transaction in program order.
using Program = std::vector<Event>;

// A totally ordered interleaving of several programs.
using History = std::vector<Event>;

// Builders: r(0, "x") style via location ids; the pretty-printer maps ids
// to names.
inline Event rd(int tx, int loc) { return {tx, Op::kRead, loc}; }
inline Event wr(int tx, int loc) { return {tx, Op::kWrite, loc}; }
inline Event lk(int tx, int loc) { return {tx, Op::kLock, loc}; }
inline Event ul(int tx, int loc) { return {tx, Op::kUnlock, loc}; }

// Number of distinct transactions (max tx id + 1).
int num_txs(const History& h);

// Number of distinct locations (max loc id + 1).
int num_locs(const History& h);

// "r(x)0 w(x)1 ..." — loc_names may be null (then x,y,z,w,u,v,... are
// generated).
std::string to_string(const History& h,
                      const std::vector<std::string>* loc_names = nullptr);

}  // namespace demotx::sched
