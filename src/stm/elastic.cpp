// Elastic read path (E-STM, Felber–Gramoli–Guerraoui DISC'09).
//
// While in its elastic phase the transaction keeps only a bounded sliding
// window of its most recent reads.  Reading a new location first makes
// room by evicting the oldest entries — each eviction is a *cut*: the
// transaction formally ends one sub-transaction and starts the next, so
// the evicted read no longer constrains later serialization — and then
// verifies that the entries remaining in the window are unchanged, which
// makes the new read atomic with them (hand-over-hand atomicity, exactly
// the lock-coupling guarantee of the paper's Algorithm 3, but obtained
// dynamically and composably).
//
// Order matters: evict *before* validating.  In the paper's history
//   H = r(h)i r(n)i  r(h)j r(n)j w(h)j  r(t)i w(n)i
// transaction i's read of t must first cut h away (h was overwritten by
// j, but h left the window, so that is allowed) and then validate only n.
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

std::uint64_t Tx::read_elastic(Cell& c) {
  // In the elastic phase there are no buffered writes (the first write
  // ends the phase), so no own-write lookup is needed.
  for (;;) {
    const CellSnap s = snap(c);
    if (lockword::locked(s.word)) {
      const int owner = lockword::owner_of(s.word);
      if (!cm_->on_conflict(*this, owner, /*writing=*/false))
        throw_abort(AbortReason::kLockedByOther);
      check_killed();
      continue;
    }
    const std::size_t cuts = window_.evict_for_push();
    stats_.elastic_cuts += cuts;
    // The remaining window plus the new read must form one consistent
    // piece: every remaining entry must still hold its observed version.
    validate_window_or_abort();
    window_.push(&c, lockword::version_of(s.word));
    if (TxObserver* o = tx_observer()) {
      if (cuts != 0) o->on_elastic_cut(slot_, static_cast<unsigned>(cuts));
      o->on_read(slot_, &c, lockword::version_of(s.word), s.value,
                 /*in_window=*/true);
    }
    return s.value;
  }
}

}  // namespace demotx::stm
