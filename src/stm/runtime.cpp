#include "stm/runtime.hpp"

#include <cstdlib>
#include <cstring>

namespace demotx::stm {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

// Process-wide scheme overrides, so the whole test suite and every bench
// can run under either commit-clock / gate layout without recompiling
// (ctest registers the stm suites a second time with DEMOTX_CLOCK=gv4
// DEMOTX_GATE=counter).
Runtime::Runtime() {
  if (const char* c = std::getenv("DEMOTX_CLOCK")) {
    if (std::strcmp(c, "gv4") == 0) config.clock_scheme = ClockScheme::kGv4;
    if (std::strcmp(c, "gv1") == 0) config.clock_scheme = ClockScheme::kGv1;
  }
  if (const char* g = std::getenv("DEMOTX_GATE")) {
    if (std::strcmp(g, "counter") == 0)
      config.gate_scheme = GateScheme::kCounter;
    if (std::strcmp(g, "distributed") == 0)
      config.gate_scheme = GateScheme::kDistributed;
  }
  if (const char* d = std::getenv("DEMOTX_SNAPSHOT_DEPTH")) {
    const long n = std::atol(d);
    config.snapshot_depth = static_cast<std::size_t>(
        n < 1 ? 1
              : (n > static_cast<long>(kMaxSnapshotDepth)
                     ? static_cast<long>(kMaxSnapshotDepth)
                     : n));
  }
  if (const char* v = std::getenv("DEMOTX_VALIDATION")) {
    if (std::strcmp(v, "summary") == 0)
      config.validation_scheme = ValidationScheme::kSummary;
    if (std::strcmp(v, "scan") == 0)
      config.validation_scheme = ValidationScheme::kScan;
  }
  // Mutation self-test (check/ explorer): plant a known soundness bug so
  // ctest can assert the exploration actually finds it.  Never set this
  // outside the check_inject tests.
  if (const char* m = std::getenv("DEMOTX_CHECK_INJECT")) {
    if (std::strcmp(m, "gv4-skip") == 0) config.inject_gv4_skip = true;
    if (std::strcmp(m, "late-summary") == 0)
      config.inject_late_summary = true;
  }
}

Runtime::~Runtime() {
  for (Slot& s : slots_) {
    delete s.tx.load(std::memory_order_relaxed);
    s.tx.store(nullptr, std::memory_order_relaxed);
  }
}

Tx& Runtime::tx_for_slot(int slot) {
  Slot& s = slots_[slot];
  Tx* t = s.tx.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = new Tx(slot);
    s.tx.store(t, std::memory_order_release);
  }
  return *t;
}

ContentionManager& Runtime::cm_for_slot(int slot) {
  Slot& s = slots_[slot];
  if (!s.cm_built || s.cm_policy != config.cm) {
    s.cm = ContentionManager::make(config.cm);
    s.cm_policy = config.cm;
    s.cm_built = true;
  }
  return *s.cm;
}

TxStats Runtime::aggregate_stats() {
  TxStats total;
  for (Slot& s : slots_) {
    if (Tx* t = s.tx.load(std::memory_order_acquire)) total.merge(t->stats());
  }
  return total;
}

void Runtime::reset_stats() {
  for (Slot& s : slots_) {
    if (Tx* t = s.tx.load(std::memory_order_acquire)) t->stats() = TxStats{};
  }
}

}  // namespace demotx::stm
