// demotx:expert-file: STM runtime implementation: this code defines the expert tier
#include "stm/runtime.hpp"

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace demotx::stm {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

namespace {

// Strict full-string integer parse: "12x", "", and overflowing values
// all fail, unlike atol (which silently returns 0 for garbage and made
// e.g. DEMOTX_SNAPSHOT_DEPTH=abc clamp to depth 1 instead of keeping
// the configured default).
bool parse_long(const char* text, long& out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

void unknown_choice(const char* name, const char* text, const char* valid) {
  std::fprintf(stderr, "demotx: %s=\"%s\" unrecognized (valid: %s); ignored\n",
               name, text, valid);
}

}  // namespace

// One integer knob: garbage keeps `fallback` (the built-in default),
// out-of-range clamps to [lo, hi]; both cases say so once on stderr so
// a misconfigured run is never silent.  Public so other layers' env
// knobs (svc/) validate the same way.
long parse_env_knob(const char* name, const char* text, long lo, long hi,
                    long fallback) {
  long v = 0;
  if (!parse_long(text, v)) {
    std::fprintf(stderr,
                 "demotx: %s=\"%s\" is not an integer; keeping %ld\n", name,
                 text, fallback);
    return fallback;
  }
  if (v < lo) {
    std::fprintf(stderr, "demotx: %s=%ld below minimum %ld; clamping\n", name,
                 v, lo);
    return lo;
  }
  if (v > hi) {
    std::fprintf(stderr, "demotx: %s=%ld above maximum %ld; clamping\n", name,
                 v, hi);
    return hi;
  }
  return v;
}

// Process-wide scheme overrides, so the whole test suite and every bench
// can run under either commit-clock / gate layout without recompiling
// (ctest registers the stm suites a second time with DEMOTX_CLOCK=gv4
// DEMOTX_GATE=counter, and a third with DEMOTX_CLOCK=sharded).  Factored
// out of the Runtime constructor so the config-validation test can drive
// it against a scratch Config (the Runtime itself is a process
// singleton).  Every integer knob is validated: garbage keeps the
// default, out-of-range clamps, and either case prints one stderr line.
void apply_env_overrides(Config& config) {
  if (const char* c = std::getenv("DEMOTX_CLOCK")) {
    if (std::strcmp(c, "gv4") == 0)
      config.clock_scheme = ClockScheme::kGv4;
    else if (std::strcmp(c, "gv1") == 0)
      config.clock_scheme = ClockScheme::kGv1;
    else if (std::strcmp(c, "sharded") == 0)
      config.clock_scheme = ClockScheme::kSharded;
    else
      unknown_choice("DEMOTX_CLOCK", c, "gv1|gv4|sharded");
  }
  if (const char* g = std::getenv("DEMOTX_GATE")) {
    if (std::strcmp(g, "counter") == 0)
      config.gate_scheme = GateScheme::kCounter;
    else if (std::strcmp(g, "distributed") == 0)
      config.gate_scheme = GateScheme::kDistributed;
    else
      unknown_choice("DEMOTX_GATE", g, "counter|distributed");
  }
  if (const char* d = std::getenv("DEMOTX_SNAPSHOT_DEPTH")) {
    config.snapshot_depth = static_cast<std::size_t>(parse_env_knob(
        "DEMOTX_SNAPSHOT_DEPTH", d, 1, static_cast<long>(kMaxSnapshotDepth),
        static_cast<long>(config.snapshot_depth)));
  }
  if (const char* v = std::getenv("DEMOTX_VALIDATION")) {
    if (std::strcmp(v, "summary") == 0)
      config.validation_scheme = ValidationScheme::kSummary;
    else if (std::strcmp(v, "scan") == 0)
      config.validation_scheme = ValidationScheme::kScan;
    else
      unknown_choice("DEMOTX_VALIDATION", v, "scan|summary");
  }
  if (const char* q = std::getenv("DEMOTX_EPOCH_QUOTA")) {
    config.clock_epoch_quota = static_cast<std::uint64_t>(parse_env_knob(
        "DEMOTX_EPOCH_QUOTA", q, 1, static_cast<long>(kClockSeqCapacity - 1),
        static_cast<long>(config.clock_epoch_quota)));
  }
  if (const char* nd = std::getenv("DEMOTX_NUMA_DOMAINS")) {
    config.numa_domains = static_cast<int>(
        parse_env_knob("DEMOTX_NUMA_DOMAINS", nd, 1, vt::kMaxThreads,
                       config.numa_domains));
  }
  if (const char* nc = std::getenv("DEMOTX_NUMA_COST")) {
    config.numa_remote_cost = static_cast<unsigned>(parse_env_knob(
        "DEMOTX_NUMA_COST", nc, 1, 1L << 20,
        static_cast<long>(config.numa_remote_cost)));
  }
  if (const char* oo = std::getenv("DEMOTX_OBJECT_OPS")) {
    config.object_ops = std::strcmp(oo, "0") != 0 && oo[0] != '\0';
  }
  if (const char* gc = std::getenv("DEMOTX_GROUP_COMMIT")) {
    config.group_commit_batch = static_cast<std::size_t>(parse_env_knob(
        "DEMOTX_GROUP_COMMIT", gc, 1, 1L << 20,
        static_cast<long>(config.group_commit_batch)));
  }
  if (const char* gi = std::getenv("DEMOTX_GROUP_INTERVAL")) {
    config.group_commit_interval = static_cast<std::uint64_t>(parse_env_knob(
        "DEMOTX_GROUP_INTERVAL", gi, 1, 1L << 40,
        static_cast<long>(config.group_commit_interval)));
  }
  // Mutation self-test (check/ explorer): plant a known soundness bug so
  // ctest can assert the exploration actually finds it.  Never set this
  // outside the check_inject tests.
  if (const char* m = std::getenv("DEMOTX_CHECK_INJECT")) {
    if (std::strcmp(m, "gv4-skip") == 0)
      config.inject_gv4_skip = true;
    else if (std::strcmp(m, "late-summary") == 0)
      config.inject_late_summary = true;
    else if (std::strcmp(m, "stale-shard") == 0)
      config.inject_stale_shard = true;
    else if (std::strcmp(m, "obj-commute") == 0)
      config.inject_obj_commute = true;
    else if (std::strcmp(m, "torn-write") == 0)
      config.inject_torn_write = true;
    else
      unknown_choice("DEMOTX_CHECK_INJECT", m,
                     "gv4-skip|late-summary|stale-shard|obj-commute|"
                     "torn-write");
  }
}

Runtime::Runtime() {
  apply_env_overrides(config);

  // Stable line colors for the NUMA sim model.  The always-global words
  // (clock, gate, epoch) stay color 0 — every scheme pays the remote
  // surcharge for them from other domains, which is the point.  Ring
  // lines and clock shards cycle through colors so their home domains
  // spread evenly; shard s is home to domain s % numa_domains, matching
  // the slot→shard residue, so a committer's own shard is domain-local.
  for (std::size_t i = 0; i < kSummaryRingLines; ++i)
    ring_lines_[i].color = static_cast<unsigned>(i);
  for (std::size_t i = 0; i < kClockShards; ++i)
    shards_[i].line.color = static_cast<unsigned>(i);

  // ---- false-sharing audit (PR 6) ----
  // Pin the layout the alignas annotations promise: every commit-path
  // word a committer RMWs or spin-polls starts its own cache line.
  // offsetof on a non-standard-layout class is conditionally-supported;
  // GCC and Clang both implement it for this shape and only warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static_assert(offsetof(Runtime, clock_) % 64 == 0);
  static_assert(offsetof(Runtime, epoch_) % 64 == 0);
  static_assert(offsetof(Runtime, epoch_) - offsetof(Runtime, clock_) >= 64,
                "version clock and sharded epoch must not share a line");
  static_assert(offsetof(Runtime, cm_ticket_) % 64 == 0);
  static_assert(offsetof(Runtime, irrevocable_owner_) % 64 == 0);
  static_assert(offsetof(Runtime, committers_) % 64 == 0);
  static_assert(offsetof(Runtime, committers_) -
                        offsetof(Runtime, irrevocable_owner_) >=
                    64,
                "gate counter must not share the polled owner word's line");
  static_assert(offsetof(Runtime, summary_ring_) % 64 == 0);
  static_assert(offsetof(Runtime, shards_) % 64 == 0);
  static_assert(offsetof(Runtime, commit_slots_) % 64 == 0);
  static_assert(offsetof(Runtime, slots_) % 64 == 0);
#pragma GCC diagnostic pop
}

Runtime::~Runtime() {
  for (Slot& s : slots_) {
    // Descriptors are placement-allocated from the slot's heap: destroy
    // explicitly, then the heap member releases the storage wholesale.
    if (Tx* t = s.tx.load(std::memory_order_relaxed)) t->~Tx();
    s.tx.store(nullptr, std::memory_order_relaxed);
  }
}

Tx& Runtime::tx_for_slot(int slot) {
  Slot& s = slots_[slot];
  Tx* t = s.tx.load(std::memory_order_acquire);
  if (t == nullptr) {
    // CaSTM idiom: the descriptor lives in this thread's own staggered
    // line-aligned arena, never on a line (or L1 set) another thread's
    // descriptor hot words occupy.
    t = new (s.heap.allocate(sizeof(Tx), slot)) Tx(slot);
    s.tx.store(t, std::memory_order_release);
  }
  return *t;
}

ContentionManager& Runtime::cm_for_slot(int slot) {
  Slot& s = slots_[slot];
  if (!s.cm_built || s.cm_policy != config.cm) {
    s.cm = ContentionManager::make(config.cm);
    s.cm_policy = config.cm;
    s.cm_built = true;
  }
  return *s.cm;
}

// ---- sharded clock (ClockScheme::kSharded) -------------------------------

// Begin-time bound that dominates every grant existing at call time: bump
// the epoch once, pass-on-failure (a concurrent winner's bump serves the
// same purpose — the failed CAS reloads an epoch that is already newer
// than the one every existing grant was issued under).
std::uint64_t Runtime::clock_read_fresh(TxStats* st) {
  if (config.clock_scheme != ClockScheme::kSharded) return clock_read();
  vt::access();
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  charge_hot_line_rmw(epoch_line_, st);
  if (epoch_.compare_exchange_strong(e, e + 1, std::memory_order_seq_cst)) {
    if (st != nullptr) ++st->epoch_bumps;
    return clock_epoch_floor(e + 1);
  }
  // Lost: `e` reloaded to the winner's value, itself a fresh floor.
  return clock_epoch_floor(e);
}

// Too-new read path: volunteer the epoch up to version's epoch + 1 so the
// caller's extension resamples a floor strictly above `version`.
void Runtime::sharded_catchup(std::uint64_t version, TxStats* st) {
  const std::uint64_t target = clock_epoch_of(version) + 1;
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  // Herd-breaker: when many readers trail the same epoch, all of them
  // arrive here together — spin a few plain loads first (a mostly-read
  // line replicates in every cache, so loads carry no hot-line charge)
  // so ONE winner pays the epoch RMW and the rest just observe it.
  // Without this the epoch line ate one RMW per trailing reader, turning
  // it back into the global clock the sharding exists to remove.
  constexpr int kCatchupSpins = 3;
  for (int spin = 0; e < target && spin < kCatchupSpins; ++spin) {
    vt::access();
    e = epoch_.load(std::memory_order_seq_cst);
  }
  while (e < target) {
    charge_hot_line_rmw(epoch_line_, st);
    if (epoch_.compare_exchange_weak(e, target, std::memory_order_seq_cst)) {
      if (st != nullptr) ++st->epoch_bumps;
      return;
    }
  }
}

// Grant one commit timestamp from the caller's own shard.  The timestamp
// is (epoch | seq | shard) with seq private to the shard word, so fully
// disjoint committers RMW kClockShards different lines instead of one.
//
// Soundness anchors: the grant must exceed `min_exclusive` — cross-shard
// sequence words are mutually blind, so per-location version order is
// enforced HERE, not by the shard word alone; adopting the own shard's
// stale word instead (an overwrite publishing a LOWER timestamp than the
// version it replaces) is exactly the DEMOTX_CHECK_INJECT=stale-shard
// planted bug.  And after winning the shard CAS the granter re-checks the
// epoch (seq_cst on both sides) and discards the grant if it moved: a
// surviving grant carries the epoch that was CURRENT at its linearization
// point, so readers can trust the epoch floor (clock_read) as a lower
// bound on all future grants and the history oracle can treat distinct
// epochs as serialization order.
std::uint64_t Runtime::sharded_grant(TxStats* st, std::uint64_t min_exclusive,
                                     int slot) {
  ClockShard& cs = shards_[static_cast<std::size_t>(slot) % kClockShards];
  const std::uint64_t shard =
      static_cast<std::uint64_t>(slot) % kClockShards;
  if (config.inject_stale_shard) min_exclusive = 0;
  for (;;) {
    vt::access();
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    if (clock_epoch_of(min_exclusive) > e) {
      // A version we must exceed was granted under a later epoch (the
      // caller read or overwrote it cross-shard): move up first.
      sharded_catchup(min_exclusive, st);
      continue;
    }
    const std::uint64_t cur = cs.last.load(std::memory_order_relaxed);
    std::uint64_t k = clock_epoch_of(cur) == e ? clock_seq_of(cur) : 0;
    if (clock_epoch_of(min_exclusive) == e &&
        clock_seq_of(min_exclusive) > k)
      k = clock_seq_of(min_exclusive);
    ++k;
    if (k > config.clock_epoch_quota || k >= kClockSeqCapacity) {
      // Shard slice exhausted for this epoch: roll the epoch and retry
      // with a zeroed sequence.  Pass-on-failure — any winner's bump
      // opens a fresh slice for us too.
      std::uint64_t ee = e;
      charge_hot_line_rmw(epoch_line_, st);
      if (epoch_.compare_exchange_strong(ee, e + 1,
                                         std::memory_order_seq_cst) &&
          st != nullptr)
        ++st->epoch_bumps;
      continue;
    }
    const std::uint64_t cand =
        clock_epoch_floor(e) | (k << kClockShardBits) | shard;
    charge_hot_line_rmw(cs.line, st);
    std::uint64_t expected = cur;
    if (!cs.last.compare_exchange_strong(expected, cand,
                                         std::memory_order_acq_rel)) {
      // Same-shard neighbour (slots kClockShards apart) won; retry.
      if (st != nullptr) ++st->shard_conflicts;
      continue;
    }
    vt::access();
    if (epoch_.load(std::memory_order_seq_cst) != e) {
      // Epoch moved between the epoch read and the shard CAS: `cand`
      // could sit below a floor some reader already sampled.  Discard —
      // the grant was never visible to validators (cs.last only grows
      // within an epoch, and the next grant re-reads the epoch).
      if (st != nullptr) ++st->shard_conflicts;
      continue;
    }
    cs.grants.fetch_add(1, std::memory_order_relaxed);
    return cand;
  }
}

TxStats Runtime::aggregate_stats() {
  TxStats total;
  for (Slot& s : slots_) {
    if (Tx* t = s.tx.load(std::memory_order_acquire)) {
      total.merge(t->stats());
      // Across slots the gauge sums (each heap counted exactly once);
      // TxStats::merge deliberately maxes it instead, so that merging
      // two AGGREGATES (harness folds) can't double-count a heap.
      total.desc_heap_bytes =
          TxStats::sat_add(total.desc_heap_bytes, s.heap.bytes_reserved());
    }
  }
  return total;
}

void Runtime::reset_stats() {
  for (Slot& s : slots_) {
    if (Tx* t = s.tx.load(std::memory_order_acquire)) t->stats() = TxStats{};
  }
}

void Runtime::sim_lines_reset() {
  clock_line_.free_at = 0;
  gate_line_.free_at = 0;
  epoch_line_.free_at = 0;
  for (HotLine& l : ring_lines_) l.free_at = 0;
  for (ClockShard& s : shards_) s.line.free_at = 0;
}

}  // namespace demotx::stm
