// demotx:expert-file: STM runtime implementation: this code defines the expert tier
#include "stm/txdesc.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "mem/epoch.hpp"
#include "stm/cm/manager.hpp"
#include "stm/durability.hpp"
#include "stm/objstm.hpp"
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "vt/context.hpp"

namespace demotx::stm {

Tx::Tx(int slot) : slot_(slot) {
  // False-sharing audit (PR 6): the enemy-CAS line (irrevocable_ starts
  // it; status_ and killed_poll_ ride along) must not share a line with
  // either the hot per-attempt header before it or the read/write-set
  // group after it.  offsetof on this non-standard-layout class is
  // conditionally-supported; GCC/Clang implement it and only warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static_assert(offsetof(Tx, irrevocable_) % 64 == 0,
                "enemy-CAS words must start their own cache line");
  static_assert(offsetof(Tx, reads_) % 64 == 0,
                "read/write-set group must start its own cache line");
  static_assert(offsetof(Tx, reads_) - offsetof(Tx, irrevocable_) >= 64,
                "kill CASes must not steal the read-set header's line");
#pragma GCC diagnostic pop
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

void Tx::begin(Semantics sem, unsigned attempt, bool irrevocable) {
  Runtime& rt = Runtime::instance();
  sem_ = sem;
  elastic_phase_ = (sem == Semantics::kElastic);
  // Hand-over-hand parses are only sound when the window spans the whole
  // traversal pair (prev->next, curr->next — the paper's parse keeps
  // exactly 2).  With capacity 1 a remove's read of the predecessor link
  // is cut before strengthening, its commit no longer validates it, and a
  // concurrent remove of the predecessor can leave the retired node still
  // linked — reachable AND in the epoch limbo, which a quiescent teardown
  // then frees twice (ds_teardown_test.cpp reproduces the double-free).
  window_.set_capacity(std::max<std::size_t>(2, rt.config.elastic_window));
  hist_backups_ =
      rt.config.maintain_old_versions ? rt.config.snapshot_backups() : 0;
  reads_.clear();
  writes_.clear();
  window_.clear();
  allocs_.clear();
  retires_.clear();
  overwrite_undo_.clear();
  checkpoint_depth_ = 0;
  retry_watch_.clear();
  pending_lsn_ = 0;
  killed_poll_ = 0;
  obj_reads_.clear();
  obj_writes_.clear();
  obj_locks_.clear();
  obj_net_.clear();
  obj_consume_undo_.clear();
  obj_read_filter_ = 0;
  obj_write_filter_ = 0;

  ++serial_;
  status_.store((serial_ << 2) | kStatusActive, std::memory_order_release);

  cm_ = &rt.cm_for_slot(slot_);
  if (attempt == 0) cm_stamp = rt.next_cm_stamp();
  cm_->on_begin(*this, attempt);

  // Optimistic reads may chase pointers to logically deleted nodes until
  // validation catches the change; the epoch guard keeps them allocated.
  mem::EpochManager::instance().enter();

  eager_ = rt.config.eager_writes;
  summary_mode_ = rt.summary_validation_active();
  // Dedup rides with summary validation: suppressing duplicate log
  // entries is what keeps the fallback scans and the incremental read
  // summary O(distinct cells).  Under plain scan validation the per-read
  // cache probe would be pure overhead on workloads without re-reads
  // (~2ns/read on this machine), so the classic scan path stays exactly
  // the PR 1 fast path.
  dedup_ = summary_mode_ && rt.config.readset_dedup;
  htm_ = false;  // armed per-attempt by atomically_hybrid after begin()
  in_commit_gate_ = false;
  irrevocable_.store(irrevocable, std::memory_order_release);
  if (irrevocable) {
    // Take the global token and drain in-flight committers BEFORE
    // sampling rv: afterwards nothing can commit, so no read of ours can
    // ever be invalidated and commit cannot fail.
    rt.acquire_irrevocability(slot_);
  }

  // Sharded clock: the plain epoch floor can trail same-epoch grants that
  // already committed.  Classic/elastic recover via catchup+extension, but
  // a snapshot bound is fixed at begin and the irrevocable token holder
  // must never need to abort — both sample a FRESH floor instead.
  const bool fresh_floor =
      rt.config.clock_scheme == ClockScheme::kSharded &&
      (irrevocable || sem_ == Semantics::kSnapshot);
  rv_ = fresh_floor ? rt.clock_read_fresh(&stats_) : rt.clock_read();
  ++stats_.starts;
  if (TxObserver* o = tx_observer()) o->on_begin(slot_, serial_, sem_, rv_);
}

void Tx::commit() {
  check_killed();
  // Once the decision-point CAS succeeds the commit is irreversible: the
  // simulator's cycle brake (FiberStopped at a vt::access) must not tear
  // write-back or the alloc/retire handoff below, or rollback would free
  // nodes a half-applied commit already linked.  The guard is armed right
  // before the CAS and pins the fiber until commit bookkeeping is done;
  // everything in the pinned region is wait-free.
  vt::ScopedCritical crit;
  if (!writes_.empty() || !obj_writes_.empty()) {
    commit_update(crit);
  } else {
    crit.arm();
    // Read-only: every semantics validated its reads at read time
    // (classic against rv, elastic against the window, snapshot against
    // the bound), so the commit point needs no further work.
    std::uint64_t expected = (serial_ << 2) | kStatusActive;
    if (!status_.compare_exchange_strong(expected,
                                         (serial_ << 2) | kStatusCommitted,
                                         std::memory_order_acq_rel)) {
      throw_abort(AbortReason::kKilled);
    }
    if (TxObserver* o = tx_observer()) o->on_commit(slot_, 0);
  }

  // Ownership of allocations passes to the data structure; logical frees
  // become reclaimer retirements now that they are committed.
  allocs_.clear();
  auto& epoch = mem::EpochManager::instance();
  for (const Owned& o : retires_) epoch.retire(o.ptr, o.deleter);
  retires_.clear();
  epoch.exit();

  if (in_commit_gate_) {
    Runtime::instance().leave_commit_gate(slot_);
    in_commit_gate_ = false;
  }
  ++stats_.commits;
  ++stats_.commits_by_sem[static_cast<int>(sem_)];
  if (htm_) ++stats_.htm_commits;
  if (irrevocable_.load(std::memory_order_acquire)) {
    irrevocable_.store(false, std::memory_order_release);
    Runtime::instance().release_irrevocability(slot_);
  }
  cm_->on_commit(*this);

  // ACK POINT (durability.hpp): with a redo logger attached, the commit
  // is not acknowledged until its record is durable.  Deliberately the
  // LAST step — the commit is already applied and every gate/token
  // released.  The wait must NOT unwind (a FiberStopped escaping
  // commit() would roll back an already-committed transaction: double
  // epoch exit, a phantom abort in the recorded history), so it runs
  // under the still-armed pin, yields cycles, and returns WITHOUT the
  // acknowledgment when a crash fires mid-wait.  A crash therefore
  // loses only the acknowledgment, never the applied commit — the
  // asymmetry (applied-but-unacked is legal, acked-but-lost is not) the
  // durability oracle certifies.
  if (pending_lsn_ != 0) {
    const std::uint64_t lsn = pending_lsn_;
    pending_lsn_ = 0;
    if (CommitLogger* lg = commit_logger()) lg->await_durable(slot_, lsn);
  }
}

void Tx::rollback(AbortReason why) {
  // Pin against the cycle brake: a rollback that starts must finish
  // (locks released, gates left, allocations freed, epoch exited), or a
  // brake-hit schedule leaks locks and epoch guards into the next run.
  // Every step below is wait-free.
  vt::ScopedCritical crit(/*arm_now=*/true);
  release_write_locks_aborting();
  obj_release_locks_aborting();
  if (in_commit_gate_) {
    Runtime::instance().leave_commit_gate(slot_);
    in_commit_gate_ = false;
  }
  if (irrevocable_.load(std::memory_order_acquire)) {
    irrevocable_.store(false, std::memory_order_release);
    Runtime::instance().release_irrevocability(slot_);
  }
  for (const Owned& o : allocs_) o.deleter(o.ptr);
  allocs_.clear();
  retires_.clear();
  status_.store((serial_ << 2) | kStatusAborted, std::memory_order_release);
  mem::EpochManager::instance().exit();
  ++stats_.aborts;
  ++stats_.aborts_by_sem[static_cast<int>(sem_)];
  ++stats_.aborts_by_reason[static_cast<int>(why)];
  if (TxObserver* o = tx_observer()) o->on_abort(slot_, why);
}

void Tx::throw_abort(AbortReason why) { throw AbortTx{why}; }

void Tx::check_killed() {
  // Poll the status word every few steps; an enemy CM may have CASed it
  // to aborted.  Snapshot transactions take no locks and are never
  // killed, so they skip the poll.
  if (sem_ == Semantics::kSnapshot) return;
  if ((++killed_poll_ & 7u) != 0) return;
  const std::uint64_t w = status_.load(std::memory_order_acquire);
  if ((w & 3u) == kStatusAborted && (w >> 2) == serial_)
    throw_abort(AbortReason::kKilled);
}

bool Tx::try_kill(std::uint64_t observed_word) {
  if (irrevocable_.load(std::memory_order_acquire)) return false;
  if ((observed_word & 3u) != kStatusActive) return false;
  std::uint64_t expected = observed_word;
  return status_.compare_exchange_strong(
      expected, (observed_word & ~std::uint64_t{3}) | kStatusAborted,
      std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------
// Reads and writes
// ---------------------------------------------------------------------

Tx::CellSnap Tx::snap(Cell& c) {
  // The head counter is read FIRST and LAST (see cell.hpp): an aborting
  // eager writer restores its old lock word, so w1 == w2 alone would
  // accept a write-through value torn by a whole acquire→abort cycle.
  for (;;) {
    vt::access();
    const std::uint64_t h1 = c.hist_head.load(std::memory_order_relaxed);
    const std::uint64_t w1 = c.vlock.load(std::memory_order_acquire);
    if (lockword::locked(w1)) return CellSnap{w1, 0};
    const std::uint64_t v = c.value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t w2 = c.vlock.load(std::memory_order_relaxed);
    const std::uint64_t h2 = c.hist_head.load(std::memory_order_relaxed);
    if (w1 == w2 && h1 == h2) return CellSnap{w1, v};
    // Torn by a committing writer; retry (costs another cycle).
  }
}

std::uint64_t Tx::read_word(Cell& c) {
  check_killed();
  // Cost model: an instrumented STM read costs ~3x a plain load (lock-word
  // load + fenced value load + re-validation + read-set/window bookkeeping
  // — the single-thread overhead Sec. 3.3 of the paper calls out).  snap()
  // charges one cycle per attempt; the other two land here.  Modeled HTM
  // reads are hardware-tracked: no surcharge, but a bounded footprint.
  if (htm_) {
    if (reads_.size() + writes_.size() >=
        Runtime::instance().config.htm_capacity)
      throw_abort(AbortReason::kHtmCapacity);
  } else {
    vt::access(2);
  }
  switch (sem_) {
    case Semantics::kSnapshot:
      ++stats_.reads;
      return read_snapshot(c);
    case Semantics::kElastic:
      if (elastic_phase_) {
        ++stats_.reads;
        return read_elastic(c);
      }
      [[fallthrough]];
    case Semantics::kClassic:
      break;
  }
  ++stats_.reads;
  return read_classic(c);
}

void Tx::write_word(Cell& c, std::uint64_t v) {
  check_killed();
  if (sem_ == Semantics::kSnapshot) {
    throw TxUsageError(
        "demotx: snapshot transactions are read-only; use classic or "
        "elastic semantics for updates");
  }
  if (sem_ == Semantics::kElastic && elastic_phase_) {
    // First write: the elastic phase ends.  The current window becomes
    // the read set of the final piece and the rest of the transaction
    // runs classically (E-STM).
    strengthen_to_classic();
  }
  if (htm_) {
    if (reads_.size() + writes_.size() >=
        Runtime::instance().config.htm_capacity)
      throw_abort(AbortReason::kHtmCapacity);
  } else {
    vt::access(2);  // write-set hashing and buffering overhead
  }
  if (eager_) {
    eager_acquire_and_store(c, v);
    ++stats_.writes;
    if (TxObserver* o = tx_observer()) o->on_write(slot_, &c, v);
    return;
  }
  const WriteSet::PutResult pr = writes_.put(&c, v);
  if (pr.overwrote && checkpoint_depth_ > 0)
    overwrite_undo_.emplace_back(&c, pr.old_value);
  ++stats_.writes;
  if (TxObserver* o = tx_observer()) o->on_write(slot_, &c, v);
}

// Encounter-time locking (eager mode): take the cell's lock at the first
// write, stash the pre-transaction value/version as both the undo record
// and the snapshot backup, and write through.  Readers treat the held
// lock as a conflict, so in-place values never leak before commit.
void Tx::eager_acquire_and_store(Cell& c, std::uint64_t v) {
  if (WriteEntry* e = writes_.find(&c)) {
    // Already ours: just write through again.
    vt::access();
    c.value.store(v, std::memory_order_relaxed);
    e->value = v;
    return;
  }
  Runtime& rt = Runtime::instance();
  if (!in_commit_gate_) {
    // Enter the irrevocability gate before the first lock: an eager
    // writer parked at the gate must not already hold locks the token
    // holder could be spinning on.
    rt.enter_commit_gate(slot_, &stats_);
    in_commit_gate_ = true;
  }
  for (;;) {
    check_killed();
    vt::access();
    const std::uint64_t w = c.vlock.load(std::memory_order_acquire);
    if (lockword::locked(w)) {
      const int owner = lockword::owner_of(w);
      if (!cm_->on_conflict(*this, owner, /*writing=*/true))
        throw_abort(AbortReason::kWriteLockTimeout);
      continue;
    }
    std::uint64_t expected = w;
    if (c.vlock.compare_exchange_strong(expected, lockword::make_locked(slot_),
                                        std::memory_order_acq_rel)) {
      // Bump the mutation counter BEFORE the write-through: if this
      // attempt aborts, the unlock restores the OLD lock word, and the
      // head bump is then the only thing a reader bracket spanning the
      // whole cycle can catch (see cell.hpp).  The ring itself is not
      // touched here — pushes happen at commit, under a lock that ends in
      // a version bump, so an aborted attempt never republishes history.
      c.hist_head.store(c.hist_head.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
      const std::uint64_t old = c.value.load(std::memory_order_relaxed);
      vt::access();
      c.value.store(v, std::memory_order_relaxed);
      WriteSet::PutResult pr = writes_.put(&c, v);
      (void)pr;
      WriteEntry* e = writes_.find(&c);
      e->saved_version = lockword::version_of(w);
      e->locked = true;
      e->in_place = true;
      e->undo_value = old;
      return;
    }
  }
}

void Tx::release(Cell& c) {
  std::size_t dropped = reads_.release(&c) + window_.release(&c);
  stats_.early_releases += dropped;
  // Releasing a cell we also wrote would be meaningless; writes stay.
  if (TxObserver* o = tx_observer()) o->on_release(slot_, &c);
}

void Tx::strengthen_to_classic() {
  if (sem_ != Semantics::kElastic || !elastic_phase_) return;
  // Anchor the final piece: re-sample rv, then verify the window is an
  // unbroken snapshot at this instant; its entries join the read set and
  // must now stay valid through commit.
  rv_ = Runtime::instance().clock_read();
  validate_window_or_abort();
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const ReadEntry& e = window_.at(i);
    reads_.add(e.cell, e.version);
  }
  window_.clear();
  elastic_phase_ = false;
  if (TxObserver* o = tx_observer()) o->on_strengthen(slot_, rv_);
}

void Tx::validate_window_or_abort() {
  // Cost model: no vt::access() here.  The window holds the lock words of
  // the last couple of cells this transaction just read — cache-resident
  // lines — so the validation loads ride on the access cycle already
  // charged by the read (or transition) that triggered the validation.
  // This matches E-STM's reported single-thread overhead parity with TL2.
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const ReadEntry& e = window_.at(i);
    const std::uint64_t w = e.cell->vlock.load(std::memory_order_acquire);
    if (lockword::locked(w) || lockword::version_of(w) != e.version)
      throw_abort(AbortReason::kWindowInvalid);
  }
}

// ---------------------------------------------------------------------
// Commit path for updating transactions (classic, or elastic after its
// first write)
// ---------------------------------------------------------------------

void Tx::acquire_write_locks() {
  for (WriteEntry& e : writes_) {
    for (;;) {
      check_killed();
      vt::access();
      const std::uint64_t w = e.cell->vlock.load(std::memory_order_acquire);
      if (lockword::locked(w)) {
        const int owner = lockword::owner_of(w);
        if (owner == slot_) break;  // cannot happen: write set is deduped
        if (!cm_->on_conflict(*this, owner, /*writing=*/true)) {
          throw_abort(AbortReason::kWriteLockTimeout);
        }
        continue;
      }
      std::uint64_t expected = w;
      if (e.cell->vlock.compare_exchange_strong(
              expected, lockword::make_locked(slot_),
              std::memory_order_acq_rel)) {
        e.saved_version = lockword::version_of(w);
        e.locked = true;
        break;
      }
    }
  }
}

void Tx::release_write_locks_aborting() {
  for (WriteEntry& e : writes_) {
    if (!e.locked) continue;
    vt::access();
    if (e.in_place) {
      // Undo the write-through before the unlock makes the cell readable.
      e.cell->value.store(e.undo_value, std::memory_order_relaxed);
      vt::access();
    }
    e.cell->vlock.store(lockword::make_version(e.saved_version),
                        std::memory_order_release);
    e.locked = false;
  }
}

bool Tx::read_entry_current(const ReadEntry& e) {
  const std::uint64_t w = e.cell->vlock.load(std::memory_order_acquire);
  if (!lockword::locked(w)) return lockword::version_of(w) == e.version;
  if (lockword::owner_of(w) != slot_) return false;
  const WriteEntry* we = writes_.find(e.cell);
  return we != nullptr && we->saved_version == e.version;
}

bool Tx::validate_read_set() {
  // The expected word for an unchanged, unlocked entry is exactly
  // make_version(e.version), so a whole batch can be checked with XOR/OR
  // and one branch; the slow path re-examines a failing batch entry by
  // entry, accepting locks we hold ourselves on cells we wrote (eager
  // mode).  Prefetching the next batch's lock words overlaps the misses
  // that dominate large-read-set validation.
  const ReadEntry* const base = reads_.begin();
  const std::size_t n = reads_.size();
  constexpr std::size_t kBatch = 8;
  std::size_t i = 0;
  for (; i + kBatch <= n; i += kBatch) {
    const std::size_t pf_end = std::min(n, i + 2 * kBatch);
    for (std::size_t j = i + kBatch; j < pf_end; ++j)
      __builtin_prefetch(&base[j].cell->vlock, 0, 3);
    std::uint64_t diff = 0;
    for (std::size_t j = 0; j < kBatch; ++j) {
      vt::access();
      diff |= base[i + j].cell->vlock.load(std::memory_order_acquire) ^
              lockword::make_version(base[i + j].version);
    }
    if (diff != 0) {
      for (std::size_t j = 0; j < kBatch; ++j)
        if (!read_entry_current(base[i + j])) return false;
    }
  }
  for (; i < n; ++i) {
    vt::access();
    if (!read_entry_current(base[i])) return false;
  }
  return true;
}

bool Tx::validate_read_set_filtered(std::uint64_t dirty) {
  // `dirty` is the union of the write summaries of EVERY commit in the
  // range being validated (check_summaries returned kDirty, so every
  // slot was trusted).  An entry whose filter bit misses that union was
  // written by no in-range commit, hence is exactly as we logged it —
  // including entries under our own eager locks: an interloper between
  // our read and our lock acquisition would be an in-range commit and
  // would have put the cell's bit into `dirty`, so a missing bit also
  // proves saved_version == e.version.  Skipped entries touch no shared
  // line (the bit comes from the pointer value in the private read-set
  // array, not from the cell).  The sim model charges shared accesses
  // only — private sequential memory streams through L1 — so the walk
  // costs a token cycle per few lines, not one per entry like the scan.
  const ReadEntry* const base = reads_.begin();
  const std::size_t n = reads_.size();
  std::size_t walked = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((addr_filter_bit(base[i].cell) & dirty) == 0) {
      if ((++walked & 15u) == 0) vt::access();
      continue;
    }
    vt::access();
    if (!read_entry_current(base[i])) return false;
  }
  return true;
}

bool Tx::try_extend() {
  Runtime& rt = Runtime::instance();
  const std::uint64_t new_rv = rt.clock_read();
  if (summary_mode_ && !reads_.empty()) {
    // Ring fast path over (rv_, new_rv]: any commit that could have
    // changed a cell we read finished its clock bump by new_rv (a later
    // committer's write serializes after new_rv, which the extended
    // snapshot legitimately predates), so a clean union over the range
    // proves every read still holds at new_rv without touching a single
    // cell line.  Intersection or an untrusted slot falls back to the
    // scan below.
    std::uint64_t agg = 0;
    switch (rt.check_summaries(rv_, new_rv, reads_.summary(), &stats_, &agg)) {
      case Runtime::SummaryCheck::kClean:
        ++stats_.summary_skips;
        rv_ = new_rv;
        ++stats_.extensions;
        return true;
      case Runtime::SummaryCheck::kDirty:
        // The union intersects our summary, but it is trusted and
        // complete: probe only the entries whose bits it covers.
        ++stats_.summary_fallbacks;
        if (!validate_read_set_filtered(agg)) return false;
        if (!obj_revalidate(agg)) return false;
        rv_ = new_rv;
        ++stats_.extensions;
        return true;
      case Runtime::SummaryCheck::kUnknown:
        ++stats_.summary_fallbacks;
        break;
    }
  }
  if (!validate_read_set()) return false;
  if (!obj_reads_.empty() && !obj_revalidate(~std::uint64_t{0}))
    return false;
  rv_ = new_rv;
  ++stats_.extensions;
  return true;
}

Tx::Checkpoint Tx::checkpoint() {
  if (eager_) {
    throw TxUsageError(
        "demotx: or_else() is not supported with eager_writes — in-place "
        "branch rollback would require lock-aware undo scopes");
  }
  Checkpoint cp;
  cp.reads_n = reads_.size();
  cp.writes_n = writes_.size();
  cp.allocs_n = allocs_.size();
  cp.retires_n = retires_.size();
  cp.undo_base = overwrite_undo_.size();
  cp.window = window_;
  cp.elastic_phase = elastic_phase_;
  cp.rv = rv_;
  cp.obj_reads_n = obj_reads_.size();
  cp.obj_writes_n = obj_writes_.size();
  cp.obj_consume_base = obj_consume_undo_.size();
  ++checkpoint_depth_;
  return cp;
}

void Tx::restore(const Checkpoint& cp) {
  // Keep the branch's reads alive for retry(): a transaction that ends up
  // retrying must wake when ANY branch's input changes.
  for (std::size_t i = cp.reads_n; i < reads_.size(); ++i)
    retry_watch_.push_back(reads_.begin()[i]);
  for (std::size_t i = 0; i < window_.size(); ++i)
    retry_watch_.push_back(window_.at(i));
  reads_.truncate(cp.reads_n);
  // Undo in-place overwrites of pre-branch buffered writes, newest first.
  while (overwrite_undo_.size() > cp.undo_base) {
    auto [cell, old] = overwrite_undo_.back();
    overwrite_undo_.pop_back();
    if (WriteEntry* e = writes_.find(cell)) e->value = old;
  }
  writes_.truncate(cp.writes_n);
  // Branch-private allocations never escaped: delete them.
  while (allocs_.size() > cp.allocs_n) {
    allocs_.back().deleter(allocs_.back().ptr);
    allocs_.pop_back();
  }
  retires_.resize(cp.retires_n);
  window_ = cp.window;
  elastic_phase_ = cp.elastic_phase;
  rv_ = cp.rv;
  // Dropped semantic reads keep their retry obligation through the
  // object's notify cell; un-consume pre-branch enqueues the rolled-back
  // branch dequeued before truncating its ops away.
  for (std::size_t i = cp.obj_reads_n; i < obj_reads_.size(); ++i)
    retry_watch_.push_back(
        {&obj_reads_[i].obj->notify, obj_reads_[i].notify_version});
  obj_reads_.resize(cp.obj_reads_n);
  while (obj_consume_undo_.size() > cp.obj_consume_base) {
    obj_writes_[obj_consume_undo_.back()].consumed = false;
    obj_consume_undo_.pop_back();
  }
  obj_writes_.resize(cp.obj_writes_n);
  --checkpoint_depth_;
  if (checkpoint_depth_ == 0) {
    overwrite_undo_.clear();
    obj_consume_undo_.clear();
  }
  if (TxObserver* o = tx_observer()) o->on_branch_rollback(slot_);
}

void Tx::commit_checkpoint(const Checkpoint&) {
  // Branch kept: its undo entries stay (an enclosing checkpoint may still
  // need them); the logs die with the last scope or at begin().
  --checkpoint_depth_;
  if (checkpoint_depth_ == 0) {
    overwrite_undo_.clear();
    obj_consume_undo_.clear();
  }
}

std::vector<ReadEntry> Tx::watch_set() const {
  std::vector<ReadEntry> watch(reads_.begin(), reads_.end());
  for (std::size_t i = 0; i < window_.size(); ++i)
    watch.push_back(window_.at(i));
  // Semantic reads park on their object's notify cell, bumped at the end
  // of every apply that touched the object.
  for (const ObjRead& r : obj_reads_)
    watch.push_back({&r.obj->notify, r.notify_version});
  watch.insert(watch.end(), retry_watch_.begin(), retry_watch_.end());
  return watch;
}

void Tx::wait_for_change(const std::vector<ReadEntry>& watch) {
  if (watch.empty()) {
    throw TxUsageError(
        "demotx: retry() with an empty read set would block forever "
        "(snapshot transactions record no reads)");
  }
  unsigned delay = 1;
  for (;;) {
    for (const ReadEntry& e : watch) {
      vt::access();
      const std::uint64_t w = e.cell->vlock.load(std::memory_order_acquire);
      // Changed version — or a writer mid-commit on it — wakes us.
      if (w != lockword::make_version(e.version)) return;
    }
    if (vt::in_sim()) {
      vt::access(delay);
    } else {
      for (unsigned i = 0; i < delay; ++i) vt::cpu_relax();
    }
    if (delay < 4096) delay *= 2;
  }
}

void Tx::commit_update(vt::ScopedCritical& crit) {
  Runtime& rt = Runtime::instance();
  // Irrevocability gate: update commits park while another transaction
  // holds the token (the owner itself passes straight through).  Eager
  // transactions registered at their first write.
  if (!in_commit_gate_) {
    rt.enter_commit_gate(slot_, &stats_);
    in_commit_gate_ = true;
  }
  acquire_write_locks();
  // Object locks ride right behind the cell locks (so a reader whose rv
  // a pending object commit precedes always finds the lock held — the
  // same pre-rv-visibility argument as the cell seqlock), and the op log
  // folds into net changes while the committed state is pinned.
  if (!obj_writes_.empty()) {
    obj_acquire_locks();
    obj_prepare();
  }
  bool clock_advanced = false;
  // Sharded clock: grants from different shards are mutually independent,
  // so per-location version monotonicity is enforced at the grant — wv
  // must exceed our rv AND every version we overwrite (saved under the
  // locks just acquired), not just our own shard's last word.
  std::uint64_t min_exclusive = 0;
  if (rt.config.clock_scheme == ClockScheme::kSharded) {
    min_exclusive = rv_;
    for (const WriteEntry& e : writes_)
      if (e.saved_version > min_exclusive) min_exclusive = e.saved_version;
    // Object rings must stay strictly increasing too: grant past every
    // object version this commit overwrites.
    for (const ObjLockEntry& l : obj_locks_)
      if (l.saved_version > min_exclusive) min_exclusive = l.saved_version;
  }
  const std::uint64_t wv =
      rt.clock_advance(&stats_, &clock_advanced, min_exclusive, slot_);
  // If nobody committed since we started, our reads cannot have changed.
  // The shortcut is only sound when we bumped the clock ourselves: a GV4
  // adopter shares its wv with the winner, so wv == rv+1 does not prove
  // exclusivity — two adopters with disjoint write sets could both see it
  // and skip the validation that would have caught a write-skew.
  // DEMOTX_CHECK_INJECT=gv4-skip resurrects exactly that hole (adopters
  // trust the shortcut too) so the explorer's detection of it stays
  // regression-tested.
  const bool exclusive_wv = clock_advanced || rt.config.inject_gv4_skip;
  if (!exclusive_wv || rv_ + 1 != wv) {
    bool valid;
    bool obj_valid = true;
    if (summary_mode_ && (!reads_.empty() || !obj_reads_.empty())) {
      // Ring fast path over (rv_, wv-1]: wv is exclusively ours (GV1),
      // and any commit that could have invalidated a read both happened
      // after the read (else we'd have logged its version) and acquired
      // its timestamp before our bump (it held the cell's lock and
      // finished write-back before we read or locked the cell) — so it
      // lies inside the range.  A clean union proves the read set intact
      // with zero cell-line touches.  Semantic reads share the union:
      // object commits publish their key-hash bits into the same
      // summaries, so a clean range certifies them for free.
      std::uint64_t agg = 0;
      switch (rt.check_summaries(rv_, wv - 1,
                                 reads_.summary() | obj_read_filter_,
                                 &stats_, &agg)) {
        case Runtime::SummaryCheck::kClean:
          ++stats_.summary_skips;
          valid = true;
          break;
        case Runtime::SummaryCheck::kDirty:
          // Trusted but intersecting union: O(changed) probe of exactly
          // the entries whose bits the range's commits may have written.
          ++stats_.summary_fallbacks;
          valid = validate_read_set_filtered(agg);
          if (valid) obj_valid = obj_revalidate(agg);
          break;
        case Runtime::SummaryCheck::kUnknown:
        default:
          ++stats_.summary_fallbacks;
          valid = validate_read_set();
          if (valid) obj_valid = obj_certify();
          break;
      }
    } else {
      valid = validate_read_set();
      if (valid) obj_valid = obj_certify();
    }
    if (!valid || !obj_valid) {
      // The timestamp is burnt either way: publish an empty summary so
      // validators spanning wv are not stuck falling back forever.
      if (summary_mode_) rt.publish_commit_summary(wv, 0, &stats_);
      throw_abort(valid ? AbortReason::kObjectConflict
                        : AbortReason::kCommitValidation);
    }
  }
  // Decision point: after this CAS nothing can abort us — pin the fiber
  // so the cycle brake cannot tear the write-back below (see commit()).
  crit.arm();
  std::uint64_t expected = (serial_ << 2) | kStatusActive;
  if (!status_.compare_exchange_strong(expected,
                                       (serial_ << 2) | kStatusCommitted,
                                       std::memory_order_acq_rel)) {
    if (summary_mode_) rt.publish_commit_summary(wv, 0, &stats_);
    throw_abort(AbortReason::kKilled);
  }
  if (TxObserver* o = tx_observer()) {
    for (const WriteEntry& e : writes_) o->on_commit_write(slot_, e.cell, e.value);
    for (const ObjNetWrite& n : obj_net_)
      o->on_obj_commit_write(slot_, n.obj, n.key, n.value);
    o->on_commit(slot_, wv);
  }
  // Publish the write summary BEFORE write-back: a validator that trusts
  // slot wv learns every cell this commit may still be writing, so a
  // non-intersecting reader is safe no matter how far write-back got.
  // (In-place eager values stay invisible behind their locks until the
  // versioned unlocks below.)
  if (summary_mode_) {
    rt.publish_commit_summary(wv, writes_.summary() | obj_write_filter_,
                              &stats_);
  }
  last_wv_ = wv;
  if (rt.config.clock_scheme == ClockScheme::kSharded) {
    // Feed the own-grant read fast path (own_recent_version); sharded
    // only — a GV4 wv can be shared with an adopter, so version equality
    // would not prove the write was ours.
    own_wvs_[own_wvs_next_] = wv;
    own_wvs_next_ = (own_wvs_next_ + 1) % kOwnWvRing;
  }
  // Redo-log append rides the held locks (durability.hpp): appending
  // while every touched cell and stripe is still exclusively ours makes
  // per-location log order equal version order by construction — a
  // later writer of any of these locations must first acquire a lock
  // this commit has not yet released.  The append may yield cycles but
  // never blocks on another committer; the durable ACK waits at the end
  // of commit(), outside the pinned region.
  if (CommitLogger* lg = commit_logger()) {
    pending_lsn_ = lg->on_commit_log(slot_, wv, writes_.begin(),
                                     writes_.size(), obj_net_.data(),
                                     obj_net_.size());
  }
  // Ring maintenance rides the held lock: every write-back pushes the
  // superseded (version, value) pair — the value readers saw at
  // saved_version — before installing the new value, and the versioned
  // unlock below publishes the whole line at once (any overlapping reader
  // bracket sees w1 != w2 and retries).  Under the 1-version ablation the
  // ring is emptied instead, so snapshot readers abort rather than adopt
  // a stale pair as the newest value under their bound.  No extra
  // vt::access() beyond the two the loop already charges: the ring slots
  // share the cell's adjacent lines with the value/lock words.
  const std::size_t backups = hist_backups_;
  for (WriteEntry& e : writes_) {
    vt::access();
    Cell& c = *e.cell;
    if (backups > 0) {
      c.push_history(e.saved_version,
                     e.in_place ? e.undo_value
                                : c.value.load(std::memory_order_relaxed),
                     backups);
    } else {
      c.clear_history();
    }
    if (e.in_place) {
      // Eager: the value itself was installed at acquire time; publishing
      // is the ring push above plus the versioned unlock.
      c.vlock.store(lockword::make_version(wv), std::memory_order_release);
      e.locked = false;
      continue;
    }
    c.value.store(e.value, std::memory_order_relaxed);
    vt::access();
    c.vlock.store(lockword::make_version(wv), std::memory_order_release);
    e.locked = false;
  }
  // Object apply last, mirroring cell write-back: ring pushes, index and
  // size updates, notify bumps, then the versioned object unlocks.
  if (!obj_locks_.empty()) obj_apply(wv);
}

}  // namespace demotx::stm
