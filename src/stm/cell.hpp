// The versioned memory cell: one transactional machine word plus the
// metadata the three semantics share.
//
//   vlock       — versioned lock word.  Unlocked: (version << 1).  Locked
//                 (held by a committing writer): (owner_slot << 1) | 1.
//   value       — current 64-bit payload, valid at version_of(vlock).
//   old_value / old_version
//               — the previous (value, version) pair, saved by every
//                 committing writer before overwriting.  This is the
//                 paper's "two versions were maintained at each location":
//                 it is what lets snapshot transactions read past a
//                 concurrent update instead of aborting.
//
// Readers use a seqlock pattern: read vlock, read the payload, re-read
// vlock; equal unlocked words bracket a consistent payload.  Writers only
// mutate the payload while holding the lock bit.
#pragma once

#include <atomic>
#include <cstdint>

namespace demotx::stm {

namespace lockword {

inline constexpr bool locked(std::uint64_t w) { return (w & 1) != 0; }
inline constexpr std::uint64_t version_of(std::uint64_t w) { return w >> 1; }
inline constexpr int owner_of(std::uint64_t w) {
  return static_cast<int>(w >> 1);
}
inline constexpr std::uint64_t make_version(std::uint64_t v) { return v << 1; }
inline constexpr std::uint64_t make_locked(int owner_slot) {
  return (static_cast<std::uint64_t>(owner_slot) << 1) | 1;
}

}  // namespace lockword

struct Cell;

// Destruction hook for the check/ history recorder: a reclaimed node's
// cells may be reused at the same address, so the recorder must retire
// the location id before that can happen.  Null (one predictable branch
// per destruction) outside explorations; written single-threadedly.
inline void (*g_cell_destroy_hook)(const Cell*) = nullptr;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> vlock{lockword::make_version(0)};
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> old_value{0};
  std::atomic<std::uint64_t> old_version{0};

  Cell() = default;
  explicit Cell(std::uint64_t v) : value(v) {}
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
  ~Cell() {
    if (g_cell_destroy_hook != nullptr) g_cell_destroy_hook(this);
  }

  // Unsynchronized accessors for initialization and quiescent inspection
  // (tests, post-run verification).  Not for concurrent use.
  [[nodiscard]] std::uint64_t unsafe_value() const {
    return value.load(std::memory_order_relaxed);
  }
  void unsafe_store(std::uint64_t v) {
    value.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unsafe_version() const {
    return lockword::version_of(vlock.load(std::memory_order_relaxed));
  }
};

}  // namespace demotx::stm
