// The versioned memory cell: one transactional machine word plus the
// metadata the three semantics share.
//
//   vlock       — versioned lock word.  Unlocked: (version << 1).  Locked
//                 (held by a committing writer): (owner_slot << 1) | 1.
//   hist_head   — monotone mutation counter.  Committing writers use it
//                 to place ring pushes; eager writers bump it right after
//                 the acquire CAS so an acquire→write-through→abort cycle
//                 (which restores the OLD vlock word) still changes
//                 something a reader bracket can observe.  Without it a
//                 seqlock bracket spanning that whole cycle would accept
//                 a torn write-through value under an ABA'd lock word.
//   hist[]      — per-cell version ring: the most recent `backups`
//                 superseded (version, value) pairs, pushed seqlock-style
//                 by committing writers.  Depth 2 (one backup) is the
//                 paper's "two versions were maintained at each location";
//                 deeper rings (DEMOTX_SNAPSHOT_DEPTH, up to 8 versions =
//                 7 backups) let long read-only snapshot transactions read
//                 past bursts of overwrites instead of aborting (the LSA
//                 lineage).  Slot words are biased — (version << 1) | 1 —
//                 so word 0 means "empty slot" even for a legitimate
//                 version-0 initial value.
//
// Readers use a seqlock pattern: read hist_head and vlock, read the
// payload (and, on the snapshot path, scan the ring), re-read vlock and
// hist_head.  Equal unlocked lock words AND equal head counters bracket a
// consistent payload: ring pushes and lazy write-back happen only under a
// lock released with a bumped version (the w1 == w2 check catches them),
// and the only lock cycle that can restore its old word — an aborting
// eager writer — bumped the head first.  The head is read FIRST and LAST:
// a torn payload read implies the writer's head bump (which precedes every
// payload store) is visible to the bracket's final head load, so accepting
// requires the first head load to have seen it too — and then the lock
// word loaded after it would have exposed the still-locked or already
// unwound writer.  Writers only mutate the payload while holding the lock
// bit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace demotx::stm {

namespace lockword {

inline constexpr bool locked(std::uint64_t w) { return (w & 1) != 0; }
inline constexpr std::uint64_t version_of(std::uint64_t w) { return w >> 1; }
inline constexpr int owner_of(std::uint64_t w) {
  return static_cast<int>(w >> 1);
}
inline constexpr std::uint64_t make_version(std::uint64_t v) { return v << 1; }
inline constexpr std::uint64_t make_locked(int owner_slot) {
  return (static_cast<std::uint64_t>(owner_slot) << 1) | 1;
}

}  // namespace lockword

// Biased version words for ring slots: 0 is "never written", anything
// else carries version (word >> 1).
namespace histver {

inline constexpr std::uint64_t kEmpty = 0;
inline constexpr bool present(std::uint64_t w) { return w != 0; }
inline constexpr std::uint64_t make(std::uint64_t v) { return (v << 1) | 1; }
inline constexpr std::uint64_t version_of(std::uint64_t w) { return w >> 1; }

}  // namespace histver

// Ring sizing: depth counts VERSIONS (current value + backups), so the
// paper-faithful default depth 2 keeps one backup and the maximum depth 8
// keeps 7.  Depth is configured per-run (Config::snapshot_depth /
// DEMOTX_SNAPSHOT_DEPTH); the storage is always the maximum so the config
// can change between quiescent phases without reallocation.
inline constexpr std::size_t kMaxSnapshotDepth = 8;
inline constexpr std::size_t kMaxSnapshotBackups = kMaxSnapshotDepth - 1;

struct Cell;

// Destruction hook for the check/ history recorder: a reclaimed node's
// cells may be reused at the same address, so the recorder must retire
// the location id before that can happen.  Null (one predictable branch
// per destruction) outside explorations; written single-threadedly.
inline void (*g_cell_destroy_hook)(const Cell*) = nullptr;

// Allocation-order cell ids.  Summary-filter bits hash this uid, not the
// heap address: two runs of the same deterministic schedule allocate
// cells in the same ORDER but not at the same ADDRESSES, so an
// address-derived bit can differ between a PCT hunt and its replay and
// flip a summary-ring verdict.  The explorer resets the counter before
// constructing each workload, making the whole filter language a pure
// function of the schedule.  Uniqueness, not density, is the contract:
// duplicate uids across unrelated live cells would only add "maybe" bits
// (false conflicts), never clear a bit that should be set.
inline std::atomic<std::uint64_t> g_cell_uid_next{1};
inline void cell_uid_reset(std::uint64_t next = 1) {
  g_cell_uid_next.store(next, std::memory_order_relaxed);
}

struct alignas(64) Cell {
  std::atomic<std::uint64_t> vlock{lockword::make_version(0)};
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> hist_head{0};

  struct HistSlot {
    std::atomic<std::uint64_t> ver{histver::kEmpty};
    std::atomic<std::uint64_t> val{0};
  };
  HistSlot hist[kMaxSnapshotBackups];

  // Immutable, allocation-ordered; the identity the filter-bit language
  // hashes (addrfilter.hpp).  See g_cell_uid_next above.
  const std::uint64_t uid =
      g_cell_uid_next.fetch_add(1, std::memory_order_relaxed);

  Cell() = default;
  explicit Cell(std::uint64_t v) : value(v) {}
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
  ~Cell() {
    if (g_cell_destroy_hook != nullptr) g_cell_destroy_hook(this);
  }

  // Pushes the superseded (version, value) pair into the ring.  Call ONLY
  // while holding the vlock lock bit on a path that releases it with a
  // NEW version: the reader bracket then discards anything it overlapped,
  // so the slot stores need no internal ordering.  Plain round-robin
  // placement — the reader scans all `backups` slots, so order within the
  // ring does not matter, only that the newest `backups` pairs survive.
  void push_history(std::uint64_t version, std::uint64_t v,
                    std::size_t backups) {
    const std::uint64_t h = hist_head.load(std::memory_order_relaxed);
    HistSlot& s = hist[h % backups];
    s.ver.store(histver::make(version), std::memory_order_relaxed);
    s.val.store(v, std::memory_order_relaxed);
    hist_head.store(h + 1, std::memory_order_relaxed);
  }

  // Empties the ring (1-version ablation / depth 1): snapshot readers must
  // abort rather than treat a stale pair from an earlier configuration as
  // the newest value under their bound.  Same locking contract as
  // push_history.
  void clear_history() {
    for (HistSlot& s : hist) s.ver.store(histver::kEmpty, std::memory_order_relaxed);
    hist_head.store(hist_head.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  }

  // Unsynchronized accessors for initialization and quiescent inspection
  // (tests, post-run verification).  Not for concurrent use.
  [[nodiscard]] std::uint64_t unsafe_value() const {
    return value.load(std::memory_order_relaxed);
  }
  void unsafe_store(std::uint64_t v) {
    value.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unsafe_version() const {
    return lockword::version_of(vlock.load(std::memory_order_relaxed));
  }
};

}  // namespace demotx::stm
