// demotx:expert-file: STM runtime implementation: this code defines the expert tier
// The mixed-semantics STM runtime: global version clock, per-thread
// descriptor slots, configuration, and the atomically() entry point.
//
// Usage (see examples/quickstart.cpp):
//
//   stm::TVar<long> x{0};
//   stm::atomically([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
//
//   long n = stm::atomically(stm::Semantics::kSnapshot,
//                            [&](stm::Tx& tx) { return x.get(tx); });
//
// Nesting is flat and semantics-joining: a transactional operation called
// from inside another transaction joins the enclosing one, so Bob composes
// Alice's operations (paper Fig. 3) without knowing how they synchronize.
// A classic body nested inside an elastic transaction strengthens the
// enclosing transaction from that point on (no more cuts), preserving the
// inner body's atomicity expectations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "stm/cm/manager.hpp"
#include "stm/descheap.hpp"
#include "sync/annotations.hpp"
#include "stm/semantics.hpp"
#include "stm/stats.hpp"
#include "stm/txdesc.hpp"
#include "vt/context.hpp"

namespace demotx::stm {

// Commit clock schemes (TL2 — Dice, Shalev, Shavit, DISC'06).
//
//   kGv1 — fetch&increment on every update commit.  Simple and strictly
//          per-commit-unique timestamps; this is what the paper-fidelity
//          figures model, so it stays the default.
//   kGv4 — "pass on failure": CAS the clock up by one and, when the CAS
//          loses, ADOPT the winner's (newer) value as this commit's wv
//          instead of retrying.  A group of concurrent committers then
//          shares one clock-line transfer instead of queuing one RMW
//          each.  Transactions with disjoint write sets may publish the
//          same wv; per-location version order stays strict (the loser's
//          clock access happens after the winner's bump, so an adopted
//          wv is always newer than any version the adopter overwrites).
//   kSharded — epoch/slice hybrid: the timestamp authority is split into
//          kClockShards per-shard sequence words (one cache line each,
//          selected by committer slot) combined with one coarse, slowly
//          moving global EPOCH word.  A commit timestamp is
//          (epoch << kClockEpochShift) | (seq << kClockShardBits) | shard,
//          so grants from different shards never touch a common line and
//          disjoint committers stop queuing on the clock entirely.  A
//          reader's start bound is the current epoch's FLOOR
//          (epoch << kClockEpochShift): every grant carries seq >= 1, so
//          all future grants are strictly above the floor — the TL2 rv
//          guarantee.  Versions granted earlier in the SAME epoch also sit
//          above the floor, which makes too-new reads the expected path.
//          Two reliefs keep that path off the epoch line: a version
//          matching one of the reader's OWN recent grants is accepted
//          outright (sharded timestamps are globally unique, so it was
//          published by this slot's earlier commit — see
//          Tx::own_recent_version), and otherwise the reader nudges the
//          epoch forward (sharded_catchup, spin-first so one winner pays
//          the RMW) and extends its timebase — extension is part of this
//          scheme, not the LSA ablation.  Soundness anchors: a grant must exceed the
//          committer's rv AND every version it overwrites (cross-shard
//          sequence words are mutually blind, so per-location order is
//          enforced at the grant — adopting the own shard's stale word
//          instead is exactly the planted DEMOTX_CHECK_INJECT=stale-shard
//          bug), and after winning its shard CAS a granter re-checks the
//          epoch and DISCARDS the grant if the epoch moved, so no commit
//          ever publishes a timestamp below a floor a reader could have
//          sampled meanwhile.  Timestamps from the same
//          epoch but different shards carry no serialization order, so the
//          history oracle treats the EPOCH as the constraint-graph group
//          (the GV4 shared-wv rule, generalized; see timestamp_group()).
enum class ClockScheme : std::uint8_t { kGv1 = 0, kGv4 = 1, kSharded = 2 };

// Sharded-clock timestamp geometry.  256 shards give every committer of
// the 256-way scaling sweeps its own shard line (slots map to shards by
// residue, so the first kClockShards slots never share); 16 bits of
// per-shard sequence still bound an epoch slice far above any sane quota.
inline constexpr unsigned kClockShardBits = 8;
inline constexpr std::size_t kClockShards = std::size_t{1} << kClockShardBits;
inline constexpr unsigned kClockEpochShift = 24;
inline constexpr std::uint64_t kClockSeqCapacity =
    std::uint64_t{1} << (kClockEpochShift - kClockShardBits);

[[nodiscard]] inline constexpr std::uint64_t clock_epoch_of(std::uint64_t t) {
  return t >> kClockEpochShift;
}
[[nodiscard]] inline constexpr std::uint64_t clock_epoch_floor(
    std::uint64_t epoch) {
  return epoch << kClockEpochShift;
}
[[nodiscard]] inline constexpr std::uint64_t clock_seq_of(std::uint64_t t) {
  return (t & (clock_epoch_floor(1) - 1)) >> kClockShardBits;
}
[[nodiscard]] inline constexpr std::uint64_t clock_shard_of(std::uint64_t t) {
  return t & (kClockShards - 1);
}

// Irrevocability-gate layout.
//
//   kCounter     — legacy shared `committers` counter: two RMWs on one
//                  global cache line per update commit.
//   kDistributed — brlock-style asymmetric gate: each committer publishes
//                  into its own cache-line-padded slot (one local RMW);
//                  the rare irrevocability acquisition closes a global
//                  word and scans/drains all slots.  The uncontended
//                  commit touches no shared gate line.
enum class GateScheme : std::uint8_t { kCounter = 0, kDistributed = 1 };

// Commit-time / extension-time read-set validation scheme.
//
//   kScan    — TL2 baseline: revalidate by reloading every read cell's
//              lock word, O(read set) shared-line loads per validation.
//              Default, for figure fidelity: the O(n) revalidation cost
//              is part of what Figs. 5/7/9 measure for classic.
//   kSummary — commit write-summary ring (RingSTM-flavoured): every
//              update commit publishes its write set's 64-bit address
//              summary keyed by wv; a validator ORs the summaries for
//              (rv, target] and, when the union misses its read-set
//              summary, succeeds in O(commits-since-rv) ring reads with
//              zero cell-line touches.  Intersection, a recycled slot or
//              a range wider than the ring fall back to the full scan, so
//              the scheme is sound by construction.  Active only under
//              GV1: a GV4 adopter shares its wv with the winner, so a
//              fully published slot for timestamp t does not prove all
//              commits at t have published (summary_validation_active()).
enum class ValidationScheme : std::uint8_t { kScan = 0, kSummary = 1 };

struct Config {
  CmPolicy cm = CmPolicy::kBackoff;
  // Timebase extension: on a too-new read, revalidate and slide rv forward
  // instead of aborting (LSA-style).  Off by default: the paper's classic
  // baseline is plain TL2, whose reads abort on any newer version — that
  // behaviour is what Figs. 5/7 measure.  Ablatable (bench/ablation_stm).
  bool enable_extension = false;
  // Elastic sliding-window capacity (paper's parse keeps prev/curr: 2).
  std::size_t elastic_window = 2;
  // Maintain the version-ring history on commit.  Turning this off
  // (1-version ablation) starves snapshot transactions.
  bool maintain_old_versions = true;
  // Versions kept per location, counting the current value: committing
  // writers maintain snapshot_depth - 1 ring backups (cell.hpp).  The
  // paper's scheme is depth 2; deeper rings (up to kMaxSnapshotDepth = 8)
  // keep long snapshot transactions alive under overwrite churn.
  // Overridable at process start via DEMOTX_SNAPSHOT_DEPTH.
  std::size_t snapshot_depth = 2;
  // Clamped backup count actually maintained (0 when depth is 1 — same
  // starvation behaviour as the ablation, but still ring-hygienic).
  [[nodiscard]] std::size_t snapshot_backups() const {
    const std::size_t d =
        snapshot_depth < 1
            ? 1
            : (snapshot_depth > kMaxSnapshotDepth ? kMaxSnapshotDepth
                                                  : snapshot_depth);
    return d - 1;
  }
  // Eager (encounter-time) writes: acquire the lock and write in place at
  // the first write to a location, undo on abort (TinySTM write-through)
  // instead of buffering until commit (TL2 write-back, the default).
  // Detects write conflicts earlier at the price of longer lock holds.
  // Limitation: or_else() is unavailable in eager mode (in-place branch
  // rollback would need lock-aware undo scopes).
  bool eager_writes = false;
  // Modeled best-effort HTM (atomically_hybrid): how many distinct
  // locations a hardware transaction can track before a capacity abort
  // (think cache-resident read/write sets), and how many hardware
  // attempts to make before falling back to software.
  std::size_t htm_capacity = 128;
  unsigned htm_retries = 3;
  // Commit-path ablations (see enum comments above).  GV1 stays the
  // default for figure fidelity; the distributed gate is behaviourally
  // identical to the counter gate, so the faster layout is the default.
  // Both are overridable at process start via the DEMOTX_CLOCK
  // (gv1|gv4|sharded) and DEMOTX_GATE (counter|distributed) environment
  // variables, which lets every bench and the whole test suite A/B the
  // schemes without recompiling.
  ClockScheme clock_scheme = ClockScheme::kGv1;
  GateScheme gate_scheme = GateScheme::kDistributed;
  // Sharded clock only: grants one shard hands out within one epoch before
  // the granter volunteers a global epoch bump.  Small quotas keep reader
  // floors fresh (fewer too-new extensions); large quotas amortize the
  // epoch line further.  DEMOTX_EPOCH_QUOTA overrides at process start.
  std::uint64_t clock_epoch_quota = 256;
  // NUMA extension of the HotLine sim model: logical thread `slot` lives
  // in domain (slot % numa_domains); an RMW on a hot line whose home
  // domain differs costs numa_remote_cost service cycles instead of 1
  // (the cross-socket line transfer).  Plain loads stay one cycle: a
  // mostly-read line replicates in every domain's caches.  1 = flat
  // machine (the default; all PR <= 5 figures).  DEMOTX_NUMA_DOMAINS and
  // DEMOTX_NUMA_COST override at process start.
  int numa_domains = 1;
  unsigned numa_remote_cost = 3;
  // Validation-path ablations.  kScan stays the default for figure
  // fidelity (see enum comment); DEMOTX_VALIDATION (scan|summary)
  // overrides at process start, and ctest runs the stm suites under both.
  ValidationScheme validation_scheme = ValidationScheme::kScan;
  // Suppress duplicate read-set entries for re-reads of the same cell at
  // the same version (ReadSet::add_deduped).  Outcome-neutral by
  // construction; ablatable so tests can diff against the
  // duplicate-logging baseline.  Only active while summary validation is
  // (kSummary + GV1): dedup is what keeps the fallback scans and the
  // incremental read summary O(distinct cells), while under plain kScan
  // the per-read cache probe would be dead weight on re-read-free
  // workloads, so the scan read path stays byte-for-byte the old one.
  bool readset_dedup = true;
  // Object-ops tier (PR 7, expert opt-in): participating containers log
  // SEMANTIC operations (key-level contains/insert/remove, size deltas)
  // against per-object descriptors instead of raw cell footprints, and
  // commit-time certification checks key-set conflicts and commutativity
  // (insert(k1)/insert(k2), k1 != k2, commute; size() conflicts with any
  // net delta) rather than cell-version overlap.  Off by default: the
  // cell paths stay bit-identical.  DEMOTX_OBJECT_OPS overrides at
  // process start so benches and ctest can A/B the tier.
  bool object_ops = false;
  // Planted soundness bugs for the check/ explorer's mutation self-test
  // (DEMOTX_CHECK_INJECT=gv4-skip|late-summary|stale-shard).  Each
  // resurrects a bug class the commit path specifically defends against —
  // the GV4-adopter validation skip, the torn summary-ring publish, and
  // the sharded granter adopting its own shard's stale sequence word
  // (ignoring the cross-shard minimum, so an overwrite can publish a
  // LOWER timestamp than the version it replaces) — so ctest can assert
  // the exploration finds each within a fixed budget.  Always off
  // outside those tests.
  bool inject_gv4_skip = false;
  bool inject_late_summary = false;
  bool inject_stale_shard = false;
  // Planted object-ops bug (DEMOTX_CHECK_INJECT=obj-commute): certification
  // treats ANY version change on a read key as commuting, skipping the
  // presence re-check — the "commutativity without value equivalence"
  // bug class the object tier specifically defends against.
  bool inject_obj_commute = false;
  // Durability tier (dur/wal.hpp; only consulted while a CommitLogger is
  // attached).  group_commit_batch: commits the flush leader waits to
  // accumulate before forcing the log — 1 is the no-batching control
  // (every commit pays a full force).  group_commit_interval: virtual
  // cycles the leader waits for the batch to fill before flushing short,
  // so a lone committer is never stranded.  checkpoint_every: forces
  // between checkpoints (0 disables checkpointing and the log grows
  // unbounded).  log_flush_cost: modeled device cycles charged per
  // record forced — the "write barrier" the batching amortizes.
  // DEMOTX_GROUP_COMMIT / DEMOTX_GROUP_INTERVAL override the first two
  // at process start so ctest and the bench can A/B them.
  std::size_t group_commit_batch = 8;
  std::uint64_t group_commit_interval = 128;
  std::uint64_t checkpoint_every = 4;
  unsigned log_flush_cost = 4;
  // Planted durability bug (DEMOTX_CHECK_INJECT=torn-write): the WAL
  // append publishes the record as flushable BEFORE its payload is
  // written (header-seal-first instead of payload-first), so a group
  // flush overlapping the append forces a garbage record — recovery
  // then diverges from the acknowledged history, which the durability
  // oracle must catch and replay byte-identically.
  bool inject_torn_write = false;
};

// Fold the DEMOTX_* environment overrides into `config` with validation:
// integer knobs parse strictly (garbage keeps the built-in default,
// out-of-range clamps to the knob's legal interval) and unknown enum
// strings are ignored — each miss gets one stderr diagnostic line.  The
// Runtime constructor calls this once at process start; it is a free
// function so the config-validation test can drive it against a scratch
// Config without touching the process singleton.
void apply_env_overrides(Config& config);

// Strict single-knob helper behind apply_env_overrides, public so other
// layers' env knobs (svc/) validate and diagnose the same way: parses
// `text` as a full-string integer, returns `fallback` on garbage (with
// a stderr line) and clamps to [lo, hi] on range misses (ditto).
long parse_env_knob(const char* name, const char* text, long lo, long hi,
                    long fallback);

class Runtime {
 public:
  static Runtime& instance();

  Runtime();
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Config config;  // adjust only while no transaction runs

  // ---- global version clock (GV1 / GV4 / sharded) ----
  std::uint64_t clock_read() {
    vt::access();
    if (config.clock_scheme == ClockScheme::kSharded) {
      // The current epoch's floor: every grant carries seq >= 1, so all
      // future grants are strictly above it — the TL2 rv guarantee.
      return clock_epoch_floor(epoch_.load(std::memory_order_seq_cst));
    }
    return clock_.load(std::memory_order_acquire);
  }
  // Sharded clock: a begin bound that also dominates every grant that
  // EXISTED when the call started (the plain floor can trail same-epoch
  // grants that are already committed and quiescent).  Bumps the epoch
  // once, pass-on-failure — any concurrent winner's bump serves equally —
  // and returns the resulting floor.  Snapshot begins need this (no
  // extension can rescue a bound that starts stale) and so do irrevocable
  // begins (the token holder must never need to abort on a too-new read).
  // Falls back to clock_read() for the flat schemes.
  std::uint64_t clock_read_fresh(TxStats* st = nullptr);
  // Sharded clock, too-new read path: volunteers the epoch forward until
  // the floor exceeds `version`, so the caller's timebase extension can
  // land past the writer it trailed.  Pass-on-failure on the epoch line.
  void sharded_catchup(std::uint64_t version, TxStats* st = nullptr);
  // Constraint-graph group of a commit timestamp for the history oracles:
  // two distinct committed timestamps witness serialization order iff
  // their groups differ.  GV1/GV4 order everything (group = timestamp;
  // GV4's shared wv IS one timestamp); sharded shards are mutually
  // unordered within an epoch, so the group is the epoch — the oracle's
  // GV4 shared-wv adoption rules apply to whole epoch slices.
  [[nodiscard]] std::uint64_t timestamp_group(std::uint64_t t) const {
    return config.clock_scheme == ClockScheme::kSharded ? clock_epoch_of(t)
                                                        : t;
  }
  // Lifetime grant count of one clock shard (bench shard-skew stats).
  [[nodiscard]] std::uint64_t shard_grants(std::size_t shard) const {
    return shards_[shard & (kClockShards - 1)].grants.load(
        std::memory_order_relaxed);
  }
  // Advances the clock and returns this commit's write version.  GV1
  // always bumps; GV4 adopts the winner's value when its CAS loses
  // ("pass on failure") — the adopted value is strictly newer than the
  // value this committer observed, hence strictly newer than its rv.
  // `advanced` reports whether this committer actually bumped the clock
  // (GV1 always does): an adopted timestamp is NOT unique to us, so the
  // caller must not use the "wv == rv+1 ⇒ nothing committed in between"
  // shortcut — two adopters with disjoint write sets could both see it.
  // Sharded: the grant comes from the caller's own shard word
  // (slot-selected) and must exceed `min_exclusive` — the caller's rv AND
  // every version it overwrites, because cross-shard sequence words are
  // mutually independent and per-location version order must stay strict.
  // `advanced` is always false: a sharded timestamp is never evidence
  // that nothing else committed, so the rv+1 shortcut must never fire.
  std::uint64_t clock_advance(TxStats* st = nullptr, bool* advanced = nullptr,
                              std::uint64_t min_exclusive = 0, int slot = 0) {
    if (advanced != nullptr) *advanced = true;
    if (config.clock_scheme == ClockScheme::kSharded) {
      if (advanced != nullptr) *advanced = false;
      return sharded_grant(st, min_exclusive, slot);
    }
    if (config.clock_scheme == ClockScheme::kGv1) {
      charge_hot_line_rmw(clock_line_, st);
      return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    std::uint64_t cur = clock_.load(std::memory_order_relaxed);
    charge_hot_line_rmw(clock_line_, st);
    if (clock_.compare_exchange_strong(cur, cur + 1,
                                       std::memory_order_acq_rel)) {
      return cur + 1;
    }
    // CAS lost: `cur` now holds the winner's strictly newer value.
    if (advanced != nullptr) *advanced = false;
    if (st != nullptr) ++st->clock_adopts;
    return cur;
  }
  [[nodiscard]] std::uint64_t clock_peek() const {
    if (config.clock_scheme == ClockScheme::kSharded)
      return clock_epoch_floor(epoch_.load(std::memory_order_relaxed));
    return clock_.load(std::memory_order_relaxed);
  }
  // Recovery path (dur/wal.cpp): raises the clock so every FUTURE grant
  // is strictly above `v`, the highest write version the redo log
  // replayed — recovered cell versions must look like the past to every
  // post-recovery transaction.  Quiescent use only.  GV1/GV4 lift the
  // counter to v; sharded bumps the epoch past v's, because a same-epoch
  // grant from another shard could otherwise slot below a replayed
  // version (shard sequence words are mutually blind).
  void clock_restore_at_least(std::uint64_t v) {
    if (config.clock_scheme == ClockScheme::kSharded) {
      const std::uint64_t want = clock_epoch_of(v) + 1;
      if (epoch_.load(std::memory_order_relaxed) < want)
        epoch_.store(want, std::memory_order_seq_cst);
      return;
    }
    if (clock_.load(std::memory_order_relaxed) < v)
      clock_.store(v, std::memory_order_seq_cst);
  }

  // Greedy-CM ticket source.
  std::uint64_t next_cm_stamp() {
    return cm_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // ---- commit write-summary ring (ValidationScheme::kSummary) ----------
  //
  // A fixed ring of (stamp, summary) pairs keyed by commit timestamp:
  // slot[ring_index(wv)] holds the 64-bit write-set address summary of the
  // commit that published wv, or an abort marker (summary 0) when the
  // committer died after taking its timestamp.  Validators only ever
  // TRUST a slot whose stamp equals the exact timestamp they are asking
  // about; any other stamp (older epoch not yet overwritten, kStampBusy,
  // or a later epoch that lapped the ring) yields kUnknown and the caller
  // falls back to the full scan.  That rule is the soundness anchor: the
  // ring can drop, delay or recycle publications arbitrarily and only
  // ever costs performance, never correctness.

  static constexpr std::size_t kSummaryRingSize = 1024;  // power of two
  // Four 16-byte slots per 64-byte line.
  static constexpr std::size_t kSummaryRingLines = kSummaryRingSize / 4;

  // Address-interleaved ring layout: timestamp t's slot lives at physical
  // index ((t mod lines) * 4) | (t / lines), so CONSECUTIVE timestamps —
  // the common publish/validate pattern — land on kSummaryRingLines
  // DIFFERENT cache lines instead of packing four neighbours onto one.
  // Under the queued-line cost model (and its NUMA extension) that turns
  // the back-to-back publisher stalls of a busy commit ring into
  // uncontended single-transfer RMWs.  Pure permutation: publishers and
  // validators agree on it, so soundness is untouched.
  [[nodiscard]] static constexpr std::size_t ring_index(std::uint64_t wv) {
    const std::size_t i =
        static_cast<std::size_t>(wv) & (kSummaryRingSize - 1);
    return ((i & (kSummaryRingLines - 1)) << 2) | (i >> 8);
  }

  enum class SummaryCheck : std::uint8_t { kClean, kDirty, kUnknown };

  // True when the ring is in use: summary validation is requested AND the
  // clock is GV1.  Under GV4 several commits share one wv, so a completed
  // slot for t cannot prove every commit stamped t has published its
  // writes — the scheme silently degrades to the scan (see DESIGN.md).
  [[nodiscard]] bool summary_validation_active() const {
    return config.validation_scheme == ValidationScheme::kSummary &&
           config.clock_scheme == ClockScheme::kGv1;
  }

  // Publishes `summary` for commit timestamp `wv`.  Called after the
  // commit-point CAS and BEFORE write-back: a validator that later reads
  // a complete slot for wv learns every cell wv may still be writing, so
  // non-intersection is conclusive regardless of write-back timing.
  // Aborting committers publish summary 0 for their wasted timestamp so
  // it cannot permanently poison validator ranges.
  void publish_commit_summary(std::uint64_t wv, std::uint64_t summary,
                              TxStats* st = nullptr) {
    SummarySlot& s = summary_ring_[ring_index(wv)];
    // Sim cost model: four 16-byte slots share one 64-byte line, and the
    // claim CAS is an RMW on a line other committers also hit — charge it
    // like the other commit-path globals (queued resource).  The physical
    // index's low two bits select within the line, so line = index >> 2 —
    // which, by the interleave, is (wv mod kSummaryRingLines).
    charge_hot_line_rmw(ring_lines_[ring_index(wv) >> 2], st);
    std::uint64_t cur = s.stamp.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == kStampBusy) {
        // A lapped/lapping publisher owns the slot for a few stores.
        vt::access();
        cur = s.stamp.load(std::memory_order_relaxed);
        continue;
      }
      if (cur >= wv) {
        // The ring already moved past this timestamp (a publisher at
        // wv + k*kSummaryRingSize got here first).  Validators asking
        // about wv will see the stamp mismatch and fall back.
        if (st != nullptr) ++st->ring_overflows;
        return;
      }
      if (s.stamp.compare_exchange_weak(cur, kStampBusy,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        break;
      }
    }
    // Seqlock-style publish: summary first, then the stamp with release
    // order.  A consumer that reads stamp == wv (acquire) therefore sees
    // this summary — and because overwriting requires passing through
    // kStampBusy, its stamp re-check detects any concurrent recycling.
    // DEMOTX_CHECK_INJECT=late-summary tears the publish (stamp first,
    // a yield, then the summary): a validator hitting the window trusts
    // the slot's stale summary and misses the writer's cells — the bug
    // class this ordering exists to rule out, planted so the explorer's
    // detection of it stays regression-tested.
    if (config.inject_late_summary) {
      s.stamp.store(wv, std::memory_order_release);
      vt::access();
      s.summary.store(summary, std::memory_order_relaxed);
      return;
    }
    s.summary.store(summary, std::memory_order_relaxed);
    s.stamp.store(wv, std::memory_order_release);
  }

  // ORs the published summaries for timestamps in (lo, hi] and tests the
  // union against `read_summary`.  kClean proves every commit in the
  // range wrote only cells disjoint from the reader's set; kDirty means
  // possible overlap; kUnknown means some slot could not be trusted
  // (recycled, busy, or the range outran the ring).  Only kClean lets the
  // caller skip the scan.
  //
  // On kClean/kDirty — i.e. whenever every slot in the range was trusted —
  // *agg_out receives the union of the range's write summaries.  A cell
  // whose filter bit is absent from that union was written by NO commit
  // in (lo, hi], so a kDirty caller may revalidate only the entries whose
  // bits intersect it (O(changed) instead of O(read set)).  On kUnknown
  // the union is incomplete and *agg_out is left untouched.
  SummaryCheck check_summaries(std::uint64_t lo, std::uint64_t hi,
                               std::uint64_t read_summary,
                               TxStats* st = nullptr,
                               std::uint64_t* agg_out = nullptr) {
    if (hi <= lo) {
      if (agg_out != nullptr) *agg_out = 0;
      return SummaryCheck::kClean;
    }
    if (hi - lo > kSummaryRingSize) {
      if (st != nullptr) ++st->ring_overflows;
      return SummaryCheck::kUnknown;
    }
    std::uint64_t agg = 0;
    for (std::uint64_t t = lo + 1; t <= hi; ++t) {
      vt::access();  // one shared ring-slot load per timestamp
      const SummarySlot& s = summary_ring_[ring_index(t)];
      if (s.stamp.load(std::memory_order_acquire) != t)
        return SummaryCheck::kUnknown;
      const std::uint64_t sum = s.summary.load(std::memory_order_acquire);
      // The acquire above orders this re-check after the summary load; a
      // concurrent recycler must set kStampBusy first, so stamp still
      // being t proves `sum` is t's published summary, not a torn mix.
      if (s.stamp.load(std::memory_order_relaxed) != t)
        return SummaryCheck::kUnknown;
      agg |= sum;
    }
    if (agg_out != nullptr) *agg_out = agg;
    return (agg & read_summary) != 0 ? SummaryCheck::kDirty
                                     : SummaryCheck::kClean;
  }

  // ---- serial irrevocability (inevitability) ----
  //
  // One transaction at a time may hold the irrevocability token.  While
  // it is held, every other UPDATE transaction parks before its commit
  // point (read-only commits proceed: they invalidate nothing), so the
  // token holder's reads can never be invalidated and it is guaranteed to
  // commit on its first attempt — the standard answer for transactions
  // that must not roll back (I/O, side effects).

  // Blocks until the token is ours and all in-flight committers drained.
  // seq_cst pairs with the committer's publish (exchange / fetch_add):
  // either the committer sees the closed gate, or the drain scan sees
  // the committer's publication — the classic Dekker guarantee.
  void acquire_irrevocability(int slot)
      DEMOTX_ACQUIRE(commit_permission_) {
    int expected = -1;
    while (!irrevocable_owner_.compare_exchange_weak(
        expected, slot, std::memory_order_seq_cst)) {
      expected = -1;
      vt::access();
      vt::cpu_relax();
    }
    // Wait out commits that published before they could see the closed
    // gate.  Both gate layouts are drained so a (quiescent) scheme
    // switch can never strand a committer.
    while (committers_.load(std::memory_order_seq_cst) != 0) vt::access();
    for (int s = 0; s < vt::kMaxThreads; ++s) {
      while (commit_slots_[s].in_commit.load(std::memory_order_seq_cst) != 0)
        vt::access();
    }
    vt::access();  // the scan itself is one pass over the slot array
  }

  void release_irrevocability(int slot)
      DEMOTX_RELEASE(commit_permission_) {
    int expected = slot;
    irrevocable_owner_.compare_exchange_strong(expected, -1,
                                               std::memory_order_acq_rel);
  }

  // Update-commit gate: registers the caller as an in-flight committer,
  // waiting while someone else holds the token.
  //
  // kCounter: two RMWs on one global line per commit (the legacy layout,
  // kept for A/B).  kDistributed: one RMW on the caller's own padded
  // line — the uncontended commit touches no shared gate line; the
  // exchange is a full fence on x86 and seq_cst in the C++ model, which
  // the Dekker race with acquire_irrevocability requires.
  void enter_commit_gate(int slot, TxStats* st = nullptr)
      DEMOTX_ACQUIRE_SHARED(commit_permission_) {
    if (config.gate_scheme == GateScheme::kCounter) {
      for (;;) {
        charge_hot_line_rmw(gate_line_, st);
        committers_.fetch_add(1, std::memory_order_seq_cst);
        const int owner = irrevocable_owner_.load(std::memory_order_seq_cst);
        if (owner == -1 || owner == slot) return;
        charge_hot_line_rmw(gate_line_, st);
        committers_.fetch_sub(1, std::memory_order_acq_rel);
        if (st != nullptr) ++st->gate_waits;
        while (irrevocable_owner_.load(std::memory_order_acquire) != -1) {
          vt::access();
          vt::cpu_relax();
        }
      }
    }
    for (;;) {
      vt::access();  // one RMW, but on our own line: never queued
      commit_slots_[slot].in_commit.exchange(1, std::memory_order_seq_cst);
      const int owner = irrevocable_owner_.load(std::memory_order_seq_cst);
      if (owner == -1 || owner == slot) return;
      commit_slots_[slot].in_commit.store(0, std::memory_order_release);
      if (st != nullptr) ++st->gate_waits;
      while (irrevocable_owner_.load(std::memory_order_acquire) != -1) {
        vt::access();
        vt::cpu_relax();
      }
    }
  }

  void leave_commit_gate(int slot)
      DEMOTX_RELEASE_SHARED(commit_permission_) {
    if (config.gate_scheme == GateScheme::kCounter) {
      charge_hot_line_rmw(gate_line_);
      committers_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    vt::access();
    commit_slots_[slot].in_commit.store(0, std::memory_order_release);
  }

  [[nodiscard]] int irrevocable_owner() const {
    return irrevocable_owner_.load(std::memory_order_acquire);
  }

  // True when no committer is registered in either gate layout and the
  // token is free — used by tests to assert gate hygiene after a run.
  [[nodiscard]] bool gate_quiescent() const {
    if (irrevocable_owner_.load(std::memory_order_acquire) != -1) return false;
    if (committers_.load(std::memory_order_acquire) != 0) return false;
    for (int s = 0; s < vt::kMaxThreads; ++s) {
      if (commit_slots_[s].in_commit.load(std::memory_order_acquire) != 0)
        return false;
    }
    return true;
  }

  // The calling logical thread's descriptor (created on first use).
  Tx& tx_for_current_thread() { return tx_for_slot(vt::thread_id()); }
  Tx& tx_for_slot(int slot);

  // Descriptor of another slot, or nullptr if that thread never ran a
  // transaction.  Used by contention managers to kill enemies.
  Tx* peek_slot(int slot) {
    return slots_[slot].tx.load(std::memory_order_acquire);
  }

  ContentionManager& cm_for_slot(int slot);

  // ---- statistics ----
  TxStats aggregate_stats();
  void reset_stats();

  // Forgets the simulated coherence-queue state (every HotLine's
  // free_at): the next simulator run starts from idle hardware.  The
  // self-heal in charge_hot_line_rmw only caps carryover at one service
  // per logical thread, which back-to-back short runs never exceed — so
  // the check/ explorer calls this before every schedule, where a queue
  // inherited from the previous run would shift every early crash
  // window and make a replayed schedule depend on which runs preceded
  // the recording.
  void sim_lines_reset();

 private:
  // Padded to a cache line: peek_slot kill-polling and descriptor lookup
  // by one thread must not false-share with its neighbours' slots.
  struct alignas(64) Slot {
    std::atomic<Tx*> tx{nullptr};
    std::unique_ptr<ContentionManager> cm;
    CmPolicy cm_policy = CmPolicy::kSuicide;
    bool cm_built = false;
    // Per-thread descriptor heap (CaSTM idiom): the Tx descriptor is
    // placement-allocated from here, line-rounded and set-staggered, so
    // no two threads' descriptor hot words share a cache line or an L1
    // set.  Owned by the slot; released wholesale at Runtime teardown
    // (after the explicit Tx destructor call).
    DescHeap heap;
  };

  // One committer-publication word per logical thread, each on its own
  // line (the distributed gate's whole point).
  struct alignas(64) CommitSlot {
    std::atomic<std::uint64_t> in_commit{0};
  };

  // One write-summary ring slot.  stamp 0 means "never published" (wv
  // starts at 1); kStampBusy marks a publisher mid-recycle.
  struct SummarySlot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> summary{0};
  };

  static constexpr std::uint64_t kStampBusy = ~std::uint64_t{0};

  // ---- simulated coherence cost of the commit-path global lines ------
  //
  // The virtual-time cost model charges one cycle per shared access
  // (DESIGN.md): adequate for locations spread across the heap, but it
  // hides the defining cost of a single hot line that EVERY committer
  // RMWs — on hardware those RMWs serialize through one line transfer at
  // a time, which is exactly the clock/gate ping-pong this commit path
  // is built to avoid.  So the commit-path globals (version clock, epoch
  // word, shard words, gate counter, summary ring) are modelled as queued
  // resources: an RMW issued while the line is busy waits for its turn.
  // Uncontended behaviour is unchanged (one cycle, as before), so
  // single-thread figures do not move.  NUMA extension: each line carries
  // a stable `color`; its home domain is color % Config::numa_domains,
  // a committer in another domain pays numa_remote_cost service cycles
  // per RMW (the cross-socket exclusive-line transfer).  Plain LOADS are
  // deliberately NOT surcharged: a mostly-read line replicates in every
  // domain's caches, which is exactly why the sharded scheme reads the
  // epoch but RMWs only its domain-local shard.  State is plain (not
  // atomic): the simulator runs all fibers on one OS thread, and real
  // mode never touches it.
  struct HotLine {
    std::uint64_t free_at = 0;  // virtual time the line next becomes free
    unsigned color = 0;         // stable line id; home = color % domains
  };

  void charge_hot_line_rmw(HotLine& line, TxStats* st = nullptr) {
    if (!vt::in_sim()) return;
    unsigned service = 1;
    const int domains = config.numa_domains;
    const unsigned remote =
        config.numa_remote_cost < 1 ? 1 : config.numa_remote_cost;
    if (domains > 1 && static_cast<int>(line.color % static_cast<unsigned>(
                           domains)) != vt::thread_id() % domains) {
      service = remote;
      if (st != nullptr) ++st->remote_line_hits;
    }
    const std::uint64_t now = vt::sim_now();
    // Self-heal across simulator runs (virtual time restarts at 0): a
    // legitimate queue can never exceed one service per logical thread.
    if (line.free_at >
        now + static_cast<std::uint64_t>(vt::kMaxThreads) * remote)
      line.free_at = now;
    const std::uint64_t done =
        (line.free_at > now ? line.free_at : now) + service;
    line.free_at = done;
    vt::access(static_cast<unsigned>(done - now));
  }

  // One clock shard: the sequence word, its lifetime grant counter (bench
  // shard-skew stats; same line, so it rides the grant's transfer), and
  // the line's sim coherence state.  Shard s is home to domain
  // s % numa_domains — committer slots map to shards by the same residue,
  // so with domains dividing kClockShards every grant RMW is domain-local.
  // No TSA capability applies here (same as clock_/epoch_): the shard is
  // lock-free atomics plus HotLine, which is sim-only single-OS-thread
  // state — the only annotated protocol stays commit_permission_ above.
  struct alignas(64) ClockShard {
    std::atomic<std::uint64_t> last{0};    // newest grant from this shard
    std::atomic<std::uint64_t> grants{0};  // lifetime grants (skew stats)
    HotLine line;
  };
  static_assert(sizeof(ClockShard) == 64,
                "one clock shard must occupy exactly one cache line");

  // The sharded grant (see ClockScheme::kSharded); out of line, it is
  // scheme-gated off the default path.
  std::uint64_t sharded_grant(TxStats* st, std::uint64_t min_exclusive,
                              int slot);

  // ---- hot globals, false-sharing audit (PR 6) -----------------------
  // Every word a committer RMWs or spin-polls sits on its own line:
  // clock_ (GV1/GV4 RMW), epoch_ (sharded RMW + every begin's load),
  // cm_ticket_ (per-first-attempt RMW), irrevocable_owner_ (polled by
  // every gate entry), committers_ (counter-gate RMW).  Offsets are
  // static_asserted in runtime.cpp; the alignas pads each to 64.
  alignas(64) std::atomic<std::uint64_t> clock_{0};
  // Sharded coarse epoch.  Starts at 1 so every grant (epoch >= 1)
  // outranks the pre-existing version-0 state, mirroring GV1's wv >= 1.
  alignas(64) std::atomic<std::uint64_t> epoch_{1};
  alignas(64) std::atomic<std::uint64_t> cm_ticket_{0};
  // TSA name for the commit-permission protocol these atomics
  // implement: update committers hold it shared (enter/leave gate),
  // an irrevocable transaction exclusive (acquire/release token).
  sync::LogicalCapability commit_permission_;
  alignas(64) std::atomic<int> irrevocable_owner_{-1};
  alignas(64) std::atomic<int> committers_{0};
  alignas(64) HotLine clock_line_;
  HotLine gate_line_;
  HotLine epoch_line_;
  // Summary-ring coherence model: like the clock, the ring is a shared
  // structure every committer RMWs — but writes spread over
  // kSummaryRingLines lines instead of one, and ring_index() interleaves
  // consecutive timestamps across them, so the common publish pattern
  // barely queues.  Colors (home domains) are assigned in the ctor.
  HotLine ring_lines_[kSummaryRingLines];
  alignas(64) SummarySlot summary_ring_[kSummaryRingSize];
  ClockShard shards_[kClockShards];
  CommitSlot commit_slots_[vt::kMaxThreads];
  Slot slots_[vt::kMaxThreads];
};

// The transaction currently running on this logical thread, or nullptr.
inline Tx* current_tx() {
  Tx* t = Runtime::instance().peek_slot(vt::thread_id());
  return (t != nullptr && t->active()) ? t : nullptr;
}

namespace detail {

// Joins an already-running transaction (flat nesting).
inline void adapt_nested_semantics(Tx& tx, Semantics inner) {
  // Elastic phase + an inner body demanding full atomicity (classic):
  // strengthen so the inner body's reads stay atomic to the end.
  if (inner == Semantics::kClassic && tx.semantics() == Semantics::kElastic &&
      tx.in_elastic_phase()) {
    tx.strengthen_to_classic();
  }
  // Everything else needs no adjustment: classic is already strongest;
  // elastic-in-classic runs classically; snapshot-in-X reads through X's
  // (at-least-as-strong) read path; writes inside a snapshot transaction
  // raise TxUsageError in write_word.
}

}  // namespace detail

// Runs fn(tx) as a transaction of the given semantics, retrying on
// conflict until it commits.  Returns fn's result.  Exceptions thrown by
// fn abort the transaction and propagate.
template <typename F>
auto atomically(Semantics sem, F&& fn) -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  Runtime& rt = Runtime::instance();
  Tx& tx = rt.tx_for_current_thread();

  if (tx.active()) {  // nested: join the enclosing transaction
    detail::adapt_nested_semantics(tx, sem);
    ++tx.depth_;
    struct DepthGuard {
      Tx& t;
      ~DepthGuard() { --t.depth_; }
    } guard{tx};
    return fn(tx);
  }

  ContentionManager& cm = rt.cm_for_slot(tx.slot());
  for (unsigned attempt = 0;; ++attempt) {
    tx.begin(sem, attempt);
    tx.depth_ = 1;
    try {
      if constexpr (std::is_void_v<R>) {
        fn(tx);
        tx.commit();
        tx.depth_ = 0;
        return;
      } else {
        R result = fn(tx);
        tx.commit();
        tx.depth_ = 0;
        return result;
      }
    } catch (const AbortTx& a) {
      tx.depth_ = 0;
      if (a.reason == AbortReason::kRetry) {
        // stm::retry(): park until one of the locations this attempt read
        // (including rolled-back orElse branches) changes, then re-run.
        const std::vector<ReadEntry> watch = tx.watch_set();
        tx.rollback(a.reason);
        Tx::wait_for_change(watch);
        continue;
      }
      tx.rollback(a.reason);
      cm.on_abort(tx, attempt);
    } catch (...) {
      tx.depth_ = 0;
      tx.rollback(AbortReason::kUserException);
      throw;
    }
  }
}

// Default semantics: classic — the novice-safe choice (paper Sec. 5).
template <typename F>
auto atomically(F&& fn) -> std::invoke_result_t<F&, Tx&> {
  return atomically(Semantics::kClassic, std::forward<F>(fn));
}

// Best-effort hardware/software hybrid (the paper's Sec. 1: industry
// moved to "a best-effort hardware component that needs to be
// complemented by software transactions" [10-13]).  The body first runs
// as a modeled HARDWARE transaction — reads and writes carry no software
// instrumentation cost, but the footprint is bounded by
// Config::htm_capacity and any conflict aborts it — for up to
// Config::htm_retries attempts; then it falls back to the software
// semantics given (classic by default).  Returns fn's result.
template <typename F>
auto atomically_hybrid(F&& fn, Semantics fallback = Semantics::kClassic)
    -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  Runtime& rt = Runtime::instance();
  Tx& tx = rt.tx_for_current_thread();
  if (tx.active()) {  // nested: join whatever is running
    ++tx.depth_;
    struct DepthGuard {
      Tx& t;
      ~DepthGuard() { --t.depth_; }
    } guard{tx};
    return fn(tx);
  }
  ContentionManager& cm = rt.cm_for_slot(tx.slot());
  for (unsigned attempt = 0; attempt < rt.config.htm_retries; ++attempt) {
    tx.begin(Semantics::kClassic, attempt);
    tx.set_htm_mode(true);
    tx.depth_ = 1;
    try {
      if constexpr (std::is_void_v<R>) {
        fn(tx);
        tx.commit();
        tx.depth_ = 0;
        return;
      } else {
        R result = fn(tx);
        tx.commit();
        tx.depth_ = 0;
        return result;
      }
    } catch (const AbortTx& a) {
      tx.depth_ = 0;
      tx.rollback(a.reason);
      if (a.reason == AbortReason::kRetry) {
        throw TxUsageError(
            "demotx: retry() is not available inside a hardware attempt; "
            "use plain atomically() for blocking bodies");
      }
      if (a.reason == AbortReason::kHtmCapacity) break;  // hopeless in HW
      cm.on_abort(tx, attempt);
    } catch (...) {
      tx.depth_ = 0;
      tx.rollback(AbortReason::kUserException);
      throw;
    }
  }
  tx.stats().htm_fallbacks += 1;
  return atomically(fallback, std::forward<F>(fn));
}

// Runs fn(tx) as an IRREVOCABLE classic transaction: it acquires the
// global irrevocability token, so no other update transaction can commit
// while it runs and it is guaranteed to commit on this one attempt —
// suitable for bodies with side effects that must not re-execute.
// Serializes against all other updaters: use sparingly.  Cannot nest
// inside another transaction; retry()/abort_self() inside it are usage
// errors (there is nothing safe to do with an aborted irrevocable body).
template <typename F>
auto atomically_irrevocable(F&& fn) -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  Runtime& rt = Runtime::instance();
  Tx& tx = rt.tx_for_current_thread();
  if (tx.active()) {
    throw TxUsageError(
        "demotx: atomically_irrevocable cannot run inside another "
        "transaction (the enclosing one could still abort)");
  }
  tx.begin(Semantics::kClassic, 0, /*irrevocable=*/true);
  tx.depth_ = 1;
  try {
    if constexpr (std::is_void_v<R>) {
      fn(tx);
      tx.commit();
      tx.depth_ = 0;
      return;
    } else {
      R result = fn(tx);
      tx.commit();
      tx.depth_ = 0;
      return result;
    }
  } catch (const AbortTx& a) {
    tx.depth_ = 0;
    tx.rollback(a.reason);
    throw TxUsageError(
        std::string("demotx: irrevocable transaction tried to abort (") +
        to_string(a.reason) +
        "); retry()/abort_self() are not allowed here and protocol aborts "
        "cannot happen while the token is held");
  } catch (...) {
    tx.depth_ = 0;
    tx.rollback(AbortReason::kUserException);
    throw;
  }
}

// ---- Composable blocking (Harris, Marlow, Peyton-Jones, Herlihy — the
// paper's citation [30] for why transactions compose) -------------------

// Blocks the transaction until one of the locations it has read changes,
// then re-executes it from scratch.  The caller expresses a *condition*
// ("queue non-empty") simply by reading state and retrying when it does
// not hold; no condition variables, no lost wake-ups.
//
// Semantics note: the watch set is the transaction's read set (plus the
// elastic window and any rolled-back orElse branches).  In an ELASTIC
// transaction, reads cut out of the window are — by the semantics the
// caller chose — no longer the transaction's reads, so they are not
// watched; a blocking condition that depends on a long elastic parse can
// therefore miss its wake-up.  Use classic semantics for blocking bodies
// whose condition spans more locations than the window.
[[noreturn]] inline void retry(Tx&) { throw AbortTx{AbortReason::kRetry}; }

// Runs f; if f calls retry(), undoes f's effects (buffered writes,
// allocations, read set) and runs g instead.  If both branches retry, the
// whole transaction waits on the union of both branches' reads.
// Composable alternatives — e.g. "pop from q1, else pop from q2, else
// block" — fall out of nesting or_else.
template <typename F, typename G>
auto or_else(Tx& tx, F&& f, G&& g) -> std::invoke_result_t<F&, Tx&> {
  static_assert(std::is_same_v<std::invoke_result_t<F&, Tx&>,
                               std::invoke_result_t<G&, Tx&>>,
                "orElse branches must return the same type");
  const Tx::Checkpoint cp = tx.checkpoint();
  try {
    if constexpr (std::is_void_v<std::invoke_result_t<F&, Tx&>>) {
      f(tx);
      tx.commit_checkpoint(cp);
      return;
    } else {
      auto result = f(tx);
      tx.commit_checkpoint(cp);
      return result;
    }
  } catch (const AbortTx& a) {
    if (a.reason != AbortReason::kRetry) throw;  // real abort: whole tx
    tx.restore(cp);
    return g(tx);
  }
}

}  // namespace demotx::stm
