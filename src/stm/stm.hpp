// Umbrella header: the public API of the demotx mixed-semantics STM.
//
//   #include "stm/stm.hpp"
//
//   using namespace demotx;
//   stm::TVar<long> balance{100};
//
//   stm::atomically([&](stm::Tx& tx) {                 // classic (default)
//     balance.set(tx, balance.get(tx) - 10);
//   });
//
//   stm::atomically(stm::Semantics::kElastic, ...);    // search-structure ops
//   stm::atomically(stm::Semantics::kSnapshot, ...);   // read-only snapshots
//
// See README.md for the full tour and DESIGN.md for how each piece maps to
// the paper.
#pragma once

#include "stm/cell.hpp"        // IWYU pragma: export
#include "stm/cm/manager.hpp"  // IWYU pragma: export
#include "stm/runtime.hpp"     // IWYU pragma: export
#include "stm/semantics.hpp"   // IWYU pragma: export
#include "stm/stats.hpp"       // IWYU pragma: export
#include "stm/tvar.hpp"        // IWYU pragma: export
#include "stm/txdesc.hpp"      // IWYU pragma: export
