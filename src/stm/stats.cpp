#include "stm/stats.hpp"

#include <cstdio>

namespace demotx::stm {

std::string TxStats::summary() const {
  char buf[1024];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "tx: %llu starts, %llu commits, %llu aborts (ratio %.3f)\n",
                static_cast<unsigned long long>(starts),
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(aborts), abort_ratio());
  out += buf;
  for (int i = 0; i < kNumSemantics; ++i) {
    if (commits_by_sem[i] == 0 && aborts_by_sem[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "  %-8s : %llu commits, %llu aborts\n",
                  to_string(static_cast<Semantics>(i)),
                  static_cast<unsigned long long>(commits_by_sem[i]),
                  static_cast<unsigned long long>(aborts_by_sem[i]));
    out += buf;
  }
  for (int i = 0; i < kNumAbortReasons; ++i) {
    if (aborts_by_reason[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "  abort[%s] = %llu\n",
                  to_string(static_cast<AbortReason>(i)),
                  static_cast<unsigned long long>(aborts_by_reason[i]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  reads %llu, writes %llu, cuts %llu, old-reads %llu, "
                "extensions %llu, kills %llu, releases %llu\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(elastic_cuts),
                static_cast<unsigned long long>(snapshot_old_reads),
                static_cast<unsigned long long>(extensions),
                static_cast<unsigned long long>(kills_issued),
                static_cast<unsigned long long>(early_releases));
  out += buf;
  if (snapshot_ring_hits != 0 || snapshot_too_recent != 0) {
    std::snprintf(buf, sizeof buf,
                  "  snapshot ring: %llu deep hits, %llu too-recent aborts\n",
                  static_cast<unsigned long long>(snapshot_ring_hits),
                  static_cast<unsigned long long>(snapshot_too_recent));
    out += buf;
  }
  if (clock_adopts != 0 || gate_waits != 0 || wfilter_hits != 0 ||
      wfilter_skips != 0) {
    std::snprintf(buf, sizeof buf,
                  "  commit path: %llu adopted wv, %llu gate waits, "
                  "write-filter %llu hits / %llu skips\n",
                  static_cast<unsigned long long>(clock_adopts),
                  static_cast<unsigned long long>(gate_waits),
                  static_cast<unsigned long long>(wfilter_hits),
                  static_cast<unsigned long long>(wfilter_skips));
    out += buf;
  }
  if (summary_skips != 0 || summary_fallbacks != 0 || ring_overflows != 0 ||
      readset_dedups != 0) {
    std::snprintf(buf, sizeof buf,
                  "  validation: %llu summary skips, %llu fallbacks, "
                  "%llu ring overflows, %llu read dedups\n",
                  static_cast<unsigned long long>(summary_skips),
                  static_cast<unsigned long long>(summary_fallbacks),
                  static_cast<unsigned long long>(ring_overflows),
                  static_cast<unsigned long long>(readset_dedups));
    out += buf;
  }
  if (shard_conflicts != 0 || epoch_bumps != 0 || remote_line_hits != 0 ||
      desc_heap_bytes != 0) {
    std::snprintf(buf, sizeof buf,
                  "  sharded/NUMA: %llu shard conflicts, %llu epoch bumps, "
                  "%llu remote-line hits, %llu desc-heap bytes\n",
                  static_cast<unsigned long long>(shard_conflicts),
                  static_cast<unsigned long long>(epoch_bumps),
                  static_cast<unsigned long long>(remote_line_hits),
                  static_cast<unsigned long long>(desc_heap_bytes));
    out += buf;
  }
  if (obj_commutes != 0 || obj_key_conflicts != 0 || obj_ring_hits != 0) {
    std::snprintf(buf, sizeof buf,
                  "  object ops: %llu commutes, %llu key conflicts, "
                  "%llu ring hits\n",
                  static_cast<unsigned long long>(obj_commutes),
                  static_cast<unsigned long long>(obj_key_conflicts),
                  static_cast<unsigned long long>(obj_ring_hits));
    out += buf;
  }
  return out;
}

}  // namespace demotx::stm
