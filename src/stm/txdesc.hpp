// demotx:expert-file: STM runtime implementation: this code defines the expert tier
// The transaction descriptor: one long-lived object per logical thread,
// re-armed by begin() for every attempt.  It implements the word-level
// transactional API; the three semantics share the descriptor and differ
// only in the read path and in what commit has to validate:
//
//            read path                      commit
//  classic   validate version <= rv         lock writes, validate read set
//  elastic   validate sliding window,       (after first write: classic
//            evictions = cuts               over the reads since the cut)
//  snapshot  current-or-backup version      nothing (read-only)
//            <= start bound
//
// Typed access goes through TVar<T> (tvar.hpp); atomically() lives in
// runtime.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "stm/cell.hpp"
#include "stm/effects.hpp"
#include "sync/annotations.hpp"
#include "stm/objops.hpp"
#include "stm/readset.hpp"
#include "stm/semantics.hpp"
#include "stm/stats.hpp"
#include "stm/writeset.hpp"

namespace demotx::vt {
class ScopedCritical;
}  // namespace demotx::vt

namespace demotx::stm {

class ContentionManager;
class ObjSet;
class ObjQueue;

// Status-word states; the word is (serial << 2) | state, where the serial
// increments every begin() so an enemy's kill CAS cannot touch a later
// incarnation of the descriptor.
enum : std::uint64_t {
  kStatusActive = 0,
  kStatusCommitted = 1,
  kStatusAborted = 2,
};

class Tx {
 public:
  explicit Tx(int slot);
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // ---- word-level transactional API ----------------------------------

  std::uint64_t read_word(Cell& c) DEMOTX_TX_READ;
  // NO_TSA: the first eager write enters the commit gate (a shared
  // acquire of Runtime::commit_permission_) that commit()/rollback()
  // later release — conditional cross-function ownership tracked by
  // in_commit_gate_, which thread-safety analysis cannot follow.
  void write_word(Cell& c, std::uint64_t v) DEMOTX_NO_TSA DEMOTX_TX_WRITE;

  // Early release (paper Sec. 4.1): forget this transaction's reads of
  // `c`; later conflicts on it no longer abort us.  Expert-only — breaks
  // composition, as tests/examples demonstrate.
  void release(Cell& c) DEMOTX_TX_RELEASE;

  // User-requested abort: the transaction retries from scratch.
  [[noreturn]] void abort_self() { throw_abort(AbortReason::kExplicit); }

  // ---- object-ops API (objstm.hpp; expert tier, Config::object_ops) ---
  //
  // Semantic operations against participating containers: the transaction
  // logs what it meant (key-level reads, deferred inserts/erases, queue
  // moves) and commit-time certification checks key-set conflicts and
  // commutativity instead of cell-version overlap.  Defined in
  // objstm.cpp; declared here so containers can compose them with the
  // word-level API inside one transaction.

  bool obj_contains(ObjSet& s, std::uint64_t key) DEMOTX_TX_SEARCH_READ;
  bool obj_insert(ObjSet& s, std::uint64_t key)    // true = was absent
      DEMOTX_TX_SEARCH_WRITE;
  bool obj_erase(ObjSet& s, std::uint64_t key)     // true = was present
      DEMOTX_TX_SEARCH_WRITE;
  std::uint64_t obj_size(ObjSet& s) DEMOTX_TX_SEARCH_READ;
  void obj_enqueue(ObjQueue& q, std::uint64_t v) DEMOTX_TX_SEARCH_WRITE;
  bool obj_dequeue(ObjQueue& q, std::uint64_t* out)  // false = empty
      DEMOTX_TX_SEARCH_WRITE;
  std::uint64_t obj_queue_size(ObjQueue& q) DEMOTX_TX_SEARCH_READ;

  // ---- transactional lifetime management ------------------------------

  // Allocates an object owned by the transaction: deleted if the
  // transaction aborts, handed to the caller on commit.
  template <typename T, typename... Args>
  T* alloc(Args&&... args) DEMOTX_TX_SAFE {
    T* p = new T(static_cast<Args&&>(args)...);
    allocs_.push_back({p, [](void* q) { delete static_cast<T*>(q); }});
    return p;
  }

  // Logically frees an object at commit: it is retired to epoch-based
  // reclamation (concurrent optimistic readers stay safe).  No-op if the
  // transaction aborts.
  template <typename T>
  void retire(T* p) DEMOTX_TX_SAFE {
    retires_.push_back({p, [](void* q) { delete static_cast<T*>(q); }});
  }

  // ---- introspection ---------------------------------------------------

  [[nodiscard]] Semantics semantics() const { return sem_; }
  [[nodiscard]] bool in_elastic_phase() const { return elastic_phase_; }
  [[nodiscard]] int slot() const { return slot_; }
  [[nodiscard]] std::uint64_t start_version() const { return rv_; }
  // Write version (wv) published by this descriptor's most recent update
  // commit; 0 before the first one.  Under GV4 two commits with disjoint
  // write sets may report the same value (see ClockScheme).
  [[nodiscard]] std::uint64_t last_commit_version() const { return last_wv_; }
  // Sharded-clock read fast path: true iff `v` is a write version this
  // descriptor itself published recently.  Sharded timestamps are
  // globally unique (each shard word's grants strictly increase in full
  // timestamp value and distinct shards differ in the shard field), so a
  // matching cell version was written by OUR OWN earlier commit — its
  // write-back completed before this transaction began, the value was
  // current at our begin, and commit-time equality validation covers the
  // rest.  Accepting it needs no extension and no epoch traffic, which
  // keeps re-read-after-update loops off the epoch line.  Only consulted
  // under ClockScheme::kSharded (GV4 wvs are shared across adopters, so
  // the uniqueness argument would not hold there).
  [[nodiscard]] bool own_recent_version(std::uint64_t v) const {
    for (std::uint64_t w : own_wvs_)
      if (w == v) return true;
    return false;
  }
  [[nodiscard]] bool active() const { return depth_ > 0; }
  [[nodiscard]] TxStats& stats() { return stats_; }

  // ---- internals used by the runtime and contention managers ---------
  // (in a production split these would be module-private; they are public
  // here because runtime.hpp's atomically() template drives them.)

  // NO_TSA: conditionally acquires the irrevocability token (exclusive
  // commit_permission_) that commit()/rollback() release; see
  // write_word() for why TSA cannot track this hand-off.
  void begin(Semantics sem, unsigned attempt, bool irrevocable = false)
      DEMOTX_NO_TSA;

  // Modeled best-effort HTM (see runtime.hpp atomically_hybrid): reads and
  // writes are hardware-instrumented (no software surcharge) but the
  // transaction aborts with kHtmCapacity when its footprint exceeds the
  // configured capacity.
  void set_htm_mode(bool on) {
    htm_ = on;
    if (on) eager_ = false;  // hardware attempts buffer in cache
  }
  [[nodiscard]] bool htm_mode() const { return htm_; }
  // NO_TSA (both): release the gate/token acquired in begin() or at
  // the first eager write, guarded by the in_commit_gate_ and
  // irrevocable_ flags; see write_word().
  void commit() DEMOTX_NO_TSA;
  void rollback(AbortReason why) DEMOTX_NO_TSA;

  // True while this transaction holds the global irrevocability token:
  // no other update transaction can commit, so this one can never be
  // invalidated or killed (see Runtime::acquire_irrevocability).
  [[nodiscard]] bool irrevocable() const {
    return irrevocable_.load(std::memory_order_acquire);
  }

  // Promotes an elastic transaction in its elastic phase to classic mode:
  // the window is revalidated, anchored into the read set, and rv is
  // re-sampled.  Used at the first write and when a classic body nests
  // inside an elastic transaction.
  void strengthen_to_classic();

  // ---- composable blocking (Harris et al., the paper's citation [30]) --

  // State snapshot for orElse branch rollback.
  struct Checkpoint {
    std::size_t reads_n;
    std::size_t writes_n;
    std::size_t allocs_n;
    std::size_t retires_n;
    std::size_t undo_base;
    std::size_t obj_reads_n;
    std::size_t obj_writes_n;
    std::size_t obj_consume_base;
    ElasticWindow window;
    bool elastic_phase;
    std::uint64_t rv;
  };

  Checkpoint checkpoint();
  // Undoes everything since the checkpoint (reads beyond it are kept in
  // the retry watch so a propagated retry() waits on BOTH branches).
  void restore(const Checkpoint& cp);
  // Keeps the branch's effects; just closes the checkpoint scope.
  void commit_checkpoint(const Checkpoint& cp);

  // The locations a retrying transaction must watch: read set + elastic
  // window + reads of rolled-back orElse branches.
  [[nodiscard]] std::vector<ReadEntry> watch_set() const;

  // Polls the watch set until some location changes (the wake-up condition
  // of stm::retry()).  Throws TxUsageError on an empty watch set.
  static void wait_for_change(const std::vector<ReadEntry>& watch);

  // Attempt to kill the transaction occupying this descriptor, given a
  // previously observed status word.  Returns true if the kill landed.
  bool try_kill(std::uint64_t observed_word);

  [[nodiscard]] std::uint64_t status_word() const {
    return status_.load(std::memory_order_acquire);
  }

  // CM priority state (see cm/manager.hpp).
  std::uint64_t cm_stamp = 0;  // Greedy: ticket from first attempt
  std::uint64_t cm_karma = 0;  // Karma: work accumulated across retries

  int depth_ = 0;  // flat-nesting depth, managed by atomically()

  [[noreturn]] void throw_abort(AbortReason why);

 private:
  friend class Runtime;

  struct Owned {
    void* ptr;
    void (*deleter)(void*);
  };

  // A consistent (word, value) snapshot of a cell, or a word with the
  // lock bit set (payload unspecified).  The snapshot read path does not
  // use this — it runs its own bracket so the ring scan sits inside it.
  struct CellSnap {
    std::uint64_t word;
    std::uint64_t value;
  };
  static CellSnap snap(Cell& c);

  std::uint64_t read_classic(Cell& c);
  std::uint64_t read_elastic(Cell& c);
  std::uint64_t read_snapshot(Cell& c);

  // `crit` is armed at the decision-point CAS: from there the commit is
  // irreversible and must not be torn by the simulator's cycle brake.
  // NO_TSA: enters the commit gate, released by commit()/rollback();
  // see write_word().
  void commit_update(vt::ScopedCritical& crit) DEMOTX_NO_TSA;
  void eager_acquire_and_store(Cell& c, std::uint64_t v);
  void acquire_write_locks();
  void release_write_locks_aborting();
  // Full read-set revalidation: batched, software-prefetched scan over
  // every logged entry.  Accepts locks this transaction itself holds on
  // cells it wrote (eager mode) when the lock predates any change.
  [[nodiscard]] bool validate_read_set();
  // O(changed) revalidation: probes only entries whose filter bit is in
  // `dirty`, the trusted union of every in-range commit's write summary.
  // Sound ONLY after check_summaries returned kDirty for the range being
  // validated (kUnknown means the union is incomplete — full scan).
  [[nodiscard]] bool validate_read_set_filtered(std::uint64_t dirty);
  // Slow path for one entry whose fast word-compare failed.
  [[nodiscard]] bool read_entry_current(const ReadEntry& e);
  // Tries to advance rv_ to the current clock: first via the commit
  // write-summary ring (when active), else by revalidating all reads;
  // returns false (leaving rv_ unchanged) on any invalidated read.
  [[nodiscard]] bool try_extend();
  void validate_window_or_abort();
  void check_killed();

  // ---- object-ops internals (objstm.cpp) -----------------------------
  // Common op prologue: kill poll, snapshot read-only enforcement for
  // writing ops, HTM fallback, elastic strengthening, cost charge.
  void obj_op_precheck(bool writing);
  // Consistent scan of one stripe's rings for the update tier: seqlock
  // bracket, with lock conflicts arbitrated through the CM (defined and
  // instantiated only in objstm.cpp).
  template <typename Scan>
  void obj_update_bracket(ObjStripe& sp, Scan&& scan);
  // Bounded-spin variant for certification and snapshot reads (deadlock-
  // free while holding our own stripe locks); false = budget burnt.
  template <typename Scan>
  bool obj_try_bracket(ObjStripe& sp, Scan&& scan);
  // Too-new object entry: own-grant acceptance, sharded catchup, timebase
  // extension or abort.  Returns true when the caller must re-scan.
  bool obj_too_new(std::uint64_t ver);
  // Committed-state membership read (logged and certified); obj_contains
  // layers the read-own-writes lookup on top.
  bool obj_committed_contains(ObjSet& s, std::uint64_t key);
  // Pending effect of this transaction's own ops on a set key
  // (read-own-writes).  Returns false when no own op applies and the
  // committed state decides.
  bool obj_own_set_state(ObjSet& s, std::uint64_t key, bool* present) const;
  void obj_log_read(ObjDesc& obj, ObjReadKind kind, std::uint64_t key,
                    std::uint64_t version, std::uint64_t value,
                    std::uint64_t notify_version);
  void obj_acquire_locks();
  // Computes the net state changes this commit applies (per-key flips,
  // size/head/tail sentinel updates) and the key-hash filter to publish.
  void obj_prepare();
  // Semantic certification of every logged object read against current
  // state: version-unchanged fast path, value-equality commute path
  // (counted as obj_commutes), else a real key conflict.
  [[nodiscard]] bool obj_certify();
  void obj_apply(std::uint64_t wv);
  void obj_release_locks_aborting();
  // try_extend support: semantic revalidation of the logged object reads
  // (values still current), optionally filtered by a trusted summary
  // union `dirty` (0 = probe everything).
  [[nodiscard]] bool obj_revalidate(std::uint64_t dirty);

  int slot_;
  Semantics sem_ = Semantics::kClassic;
  bool elastic_phase_ = false;
  bool eager_ = false;          // encounter-time locking for this attempt
  bool htm_ = false;             // modeled-HTM execution (atomically_hybrid)
  bool in_commit_gate_ = false;  // registered in the irrevocability gate
  bool summary_mode_ = false;    // summary-ring validation for this attempt
  bool dedup_ = false;           // read-set dedup for this attempt
  // Ring backups committed writers maintain this attempt: configured
  // snapshot depth - 1, or 0 under the 1-version ablation (write-back
  // then EMPTIES the ring instead of pushing).
  std::size_t hist_backups_ = 1;
  std::uint64_t rv_ = 0;  // start timestamp (classic) / bound ub (snapshot)
  std::uint64_t serial_ = 0;
  std::uint64_t last_wv_ = 0;
  // Own recently published wvs (see own_recent_version).  Pushed only
  // under the sharded clock; 8 entries cover re-read-after-update loops
  // with small working sets, a miss just takes the extension path.
  static constexpr std::size_t kOwnWvRing = 8;
  std::uint64_t own_wvs_[kOwnWvRing] = {};
  std::size_t own_wvs_next_ = 0;
  // Layout history.  The words other threads CAS or poll (enemy kills,
  // the irrevocability check) used to stay PACKED among the hot header
  // words because both padded alternatives measured WORSE on this
  // machine: a private alignas(64) status line cost +5-8% on the
  // single-thread read-only paths and alignas(64) on malloc'd descriptors
  // cost +7-9% — every descriptor's hot words mapped to the same L1 set.
  // PR 6 removed the objection, not the padding's benefit: descriptors
  // now come from per-thread SET-STAGGERED arenas (stm/descheap.hpp), so
  // equal intra-descriptor offsets land in different L1 sets per thread.
  // With aliasing gone, the enemy-CAS words (irrevocable_, status_,
  // killed_poll_) get their own line — a kill CAS no longer steals the
  // line carrying rv_/serial_ mid-run — and the read/write-set group
  // starts the next line.  Offsets are static_asserted in Tx::Tx().
  alignas(64) std::atomic<bool> irrevocable_{false};
  std::atomic<std::uint64_t> status_{kStatusCommitted};
  unsigned killed_poll_ = 0;

  alignas(64) ReadSet reads_;
  WriteSet writes_;
  ElasticWindow window_;
  std::vector<Owned> allocs_;
  std::vector<Owned> retires_;
  ContentionManager* cm_ = nullptr;  // owned by the runtime slot

  // orElse support: overwrite undo log (active while a checkpoint is
  // open) and the reads of rolled-back branches (watched by retry()).
  std::vector<std::pair<Cell*, std::uint64_t>> overwrite_undo_;
  int checkpoint_depth_ = 0;
  std::vector<ReadEntry> retry_watch_;

  TxStats stats_;

  // ---- object-ops logs (after stats_: the static_asserted offsets of
  // the enemy-CAS line and the read-set group above must not move) ------
  std::vector<ObjRead> obj_reads_;
  std::vector<ObjWrite> obj_writes_;
  std::vector<ObjLockEntry> obj_locks_;   // built by obj_acquire_locks
  std::vector<ObjNetWrite> obj_net_;      // built by obj_prepare
  // Indices of own enqueues consumed by branch-local dequeues, so
  // restore() can un-consume them (mirrors overwrite_undo_).
  std::vector<std::size_t> obj_consume_undo_;
  std::uint64_t obj_read_filter_ = 0;   // key-hash bits of logged reads
  std::uint64_t obj_write_filter_ = 0;  // key-hash bits of net changes

  // Durability (durability.hpp): LSN of this commit's redo record,
  // written under the locks in commit_update and consumed by the ack
  // point at the end of commit().  0 = nothing to wait for.
  std::uint64_t pending_lsn_ = 0;
};

}  // namespace demotx::stm
