// Per-thread descriptor heaps (the CaSTM TxDescriptor/TxContext idiom).
//
// Each logical thread's transaction descriptor — and any future
// per-thread runtime metadata — is placement-allocated from that thread's
// own cache-line-aligned bump arena instead of the global heap.  Two
// effects, both measured by the queued-line/NUMA sim model and the real
// perf counters:
//
//   * no inter-thread line sharing: every allocation is rounded up to
//     whole 64-byte lines, so a descriptor's hot header words can never
//     share a line with another thread's allocator metadata or
//     descriptor tail (the malloc-adjacency false sharing CaSTM pads
//     against);
//   * no L1-set aliasing: arenas are STAGGERED — slot s's first
//     allocation starts (s mod kStaggerLines) lines into the arena — so
//     equal-offset hot words of different threads' descriptors map to
//     DIFFERENT L1 sets.  This is the objection that previously ruled
//     out alignas(64) descriptors (txdesc.hpp layout note): page-aligned
//     allocations put every thread's status word in the same set and
//     cost 7-9% in set-conflict misses.  The stagger removes the
//     aliasing while keeping the line isolation.
//
// The heap is a grow-only bump allocator: descriptors live for the
// process (Runtime slots never shrink), so there is no free list — the
// arena is released wholesale by the owning slot's destructor.
#pragma once

#include <cstddef>
#include <new>

namespace demotx::stm {

class DescHeap {
 public:
  static constexpr std::size_t kLine = 64;
  // Stagger period: with 64 line offsets, 64 consecutive slots cover a
  // full 4 KiB page of distinct L1-set phases.
  static constexpr std::size_t kStaggerLines = 64;

  DescHeap() = default;
  DescHeap(const DescHeap&) = delete;
  DescHeap& operator=(const DescHeap&) = delete;
  ~DescHeap() {
    while (chunks_ != nullptr) {
      Chunk* next = chunks_->next;
      ::operator delete(static_cast<void*>(chunks_), std::align_val_t{kLine});
      chunks_ = next;
    }
  }

  // Returns `bytes` (rounded up to whole lines) of 64-byte-aligned,
  // zero-initialized-by-operator-new storage owned by this heap.  The
  // FIRST allocation of slot `slot` lands (slot mod kStaggerLines) lines
  // into a fresh chunk — the anti-aliasing stagger.
  void* allocate(std::size_t bytes, int slot) {
    const std::size_t need = round_up(bytes);
    if (used_ + need > cap_) grow(need, slot);
    void* p = static_cast<char*>(base_) + used_;
    used_ += need;
    return p;
  }

  // Bytes reserved from the OS on behalf of this thread, stagger
  // included (the TxStats::desc_heap_bytes gauge).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Chunk {
    Chunk* next;
  };

  static constexpr std::size_t round_up(std::size_t n) {
    return (n + kLine - 1) & ~(kLine - 1);
  }

  void grow(std::size_t need, int slot) {
    const std::size_t stagger =
        (static_cast<std::size_t>(slot) % kStaggerLines) * kLine;
    // One line of chunk header keeps the arena payload line-aligned.
    std::size_t payload = kLine + stagger + need;
    if (payload < kMinChunk) payload = kMinChunk;
    void* raw = ::operator new(payload, std::align_val_t{kLine});
    auto* c = new (raw) Chunk{chunks_};
    chunks_ = c;
    base_ = static_cast<char*>(raw);
    cap_ = payload;
    used_ = kLine + stagger;
    reserved_ += payload;
  }

  static constexpr std::size_t kMinChunk = 4096;

  Chunk* chunks_ = nullptr;
  void* base_ = nullptr;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace demotx::stm
