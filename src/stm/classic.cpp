// demotx:expert-file: STM runtime implementation: this code defines the expert tier
// Classic (opaque) read path — TL2-style timestamp validation.
//
// Invariant: every value returned to the transaction body belongs to the
// snapshot at rv (or at the extended rv).  Together with commit-time
// read-set validation this yields opacity: even doomed transactions never
// observe an inconsistent state.
#include "stm/cm/manager.hpp"
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

std::uint64_t Tx::read_classic(Cell& c) {
  if (!writes_.empty()) {
    // Own-write lookup, gated by the address-summary filter: when the
    // filter proves the cell was never written, the open-addressing
    // probe (hash + table walk) is skipped outright.
    if (writes_.may_contain(&c)) {
      ++stats_.wfilter_hits;
      if (const WriteEntry* e = writes_.find(&c)) return e->value;
    } else {
      ++stats_.wfilter_skips;
    }
  }
  for (;;) {
    const CellSnap s = snap(c);
    if (lockword::locked(s.word)) {
      if (irrevocable()) continue;  // the holder drains; we cannot abort
      const int owner = lockword::owner_of(s.word);
      if (!cm_->on_conflict(*this, owner, /*writing=*/false))
        throw_abort(AbortReason::kLockedByOther);
      check_killed();
      continue;  // the committer released (or we were told to retry)
    }
    const std::uint64_t ver = lockword::version_of(s.word);
    // Own-grant fast path (sharded clock): a version we published
    // ourselves is accepted above the floor without extension — see
    // Tx::own_recent_version for the uniqueness argument.  Evaluated
    // only when the version actually trails rv, so the common path
    // (ver <= rv_) never touches the runtime config.
    const bool own_grant =
        ver > rv_ &&
        Runtime::instance().config.clock_scheme == ClockScheme::kSharded &&
        own_recent_version(ver);
    if (ver > rv_ && !own_grant) {
      // The location changed after our snapshot point.  Either slide the
      // snapshot forward (timebase extension, revalidating everything
      // read so far) or abort.  An irrevocable transaction always
      // extends: nothing can commit while it holds the token, so
      // revalidation cannot fail.  Under the sharded clock, too-new reads
      // are the EXPECTED path (the epoch floor trails same-epoch grants,
      // including our own earlier commits): extension is part of the
      // scheme, and the reader first volunteers the epoch past the
      // version it trailed so the extension's fresh floor covers it.
      Runtime& rt = Runtime::instance();
      const bool sharded = rt.config.clock_scheme == ClockScheme::kSharded;
      if (sharded) rt.sharded_catchup(ver, &stats_);
      const bool may_extend =
          irrevocable() || sharded || rt.config.enable_extension;
      if (!may_extend || !try_extend())
        throw_abort(AbortReason::kReadValidation);
      continue;  // re-read under the extended rv
    }
    // Log the read; with dedup on, a re-read of a recently logged cell at
    // the same version is suppressed so hot cells do not inflate every
    // later validation scan (outcome-neutral: the surviving entry carries
    // the identical (cell, version) obligation).
    if (dedup_) {
      if (reads_.add_deduped(&c, ver)) ++stats_.readset_dedups;
    } else {
      reads_.add(&c, ver);
    }
    if (TxObserver* o = tx_observer())
      o->on_read(slot_, &c, ver, s.value, /*in_window=*/false);
    return s.value;
  }
}

}  // namespace demotx::stm
