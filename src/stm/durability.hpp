// Durability hook: the commit path's one-way door into the redo log.
//
// Mirrors observer.hpp's passive-hook shape (one global load and a
// predictable branch when detached), but unlike the observer the logger
// is load-bearing: on_commit_log is called INSIDE the pinned commit
// section — after the commit-point CAS, the summary publish and the
// last_wv bookkeeping, with every cell and stripe lock still held — so
// the log records a commit's write-set exactly at its serialization
// point, and per-cell log order equals per-cell version order by
// construction (a later writer of the same cell must first take the lock
// this commit still holds).  await_durable is the ACK POINT: it runs as
// the last step of commit(), after the commit gate is left, and waits
// (yielding virtual cycles, still pinned — it must never unwind out of
// a committed commit()) until the group-commit flusher has made the
// record durable.  A transaction counts as acknowledged only once the
// wait observes its record durable; when a crash fires mid-wait the
// wait returns WITHOUT acknowledging, losing the acknowledgment but
// never the atomicity of the already-applied commit — exactly the
// window the durability oracle reasons about.
//
// The concrete logger is dur::WalManager (dur/wal.hpp); tests, durable
// workloads and the group-commit bench attach it explicitly.  With no
// logger attached the STM is exactly as before: volatile, ack-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace demotx::stm {

struct WriteEntry;   // writeset.hpp
struct ObjNetWrite;  // objops.hpp

class CommitLogger {
 public:
  virtual ~CommitLogger() = default;

  // Appends one redo record for a committing update transaction: the
  // write version plus the net cell values (`wb[0..nw)`) and object
  // net-ops (`ob[0..no)`).  Called with all write locks held; must not
  // block on other committers (it may yield virtual cycles).  Returns
  // the record's LSN for await_durable, or 0 if nothing durable was
  // logged (e.g. no registered state touched).
  virtual std::uint64_t on_commit_log(int slot, std::uint64_t wv,
                                      const WriteEntry* wb, std::size_t nw,
                                      const ObjNetWrite* ob,
                                      std::size_t no) = 0;

  // Waits until the record at `lsn` is durable (group flush reached
  // it).  Called after the commit gate is released; must yield without
  // unwinding (the caller is a successfully committed transaction) and
  // must return promptly — unacknowledged — once a crash has been
  // injected.
  virtual void await_durable(int slot, std::uint64_t lsn) = 0;
};

// Single-threaded attach/detach, same contract as g_tx_observer.
inline CommitLogger* g_commit_logger = nullptr;

inline CommitLogger* commit_logger() { return g_commit_logger; }
inline void set_commit_logger(CommitLogger* l) { g_commit_logger = l; }

}  // namespace demotx::stm
