// Snapshot read path — read-only multiversion reads (paper Sec. 5.1).
//
// The transaction fixes an upper bound ub = global clock at start (rv_).
// A read returns the most recent value of the location with version <= ub:
// the current value when the location was not overwritten since, otherwise
// the one-deep backup kept by every committing writer.  Because committed
// versions are exactly the clock values, the set of values returned is the
// committed state at instant ub — an atomic snapshot — with no read set,
// no validation and no commit-time work, so a size() or an iterator
// commits regardless of concurrent updates.  If a location was overwritten
// twice since ub the two kept versions are both too new and the
// transaction aborts (the paper: "the snapshot transaction may have to
// abort if the older version is still too recent as no transactions keep
// track of more than two versions here").
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

std::uint64_t Tx::read_snapshot(Cell& c) {
  // How many lock-word probes to tolerate before giving up on a stuck
  // committer.  Normal write-back holds a lock for a handful of cycles,
  // so the bound is never hit in a healthy run; a descheduled or wedged
  // committer must not pin us forever — we abort and retry with a fresh
  // bound instead.
  constexpr unsigned kSpinBound = 1024;
  unsigned spins = 0;
  for (;;) {
    const CellSnap s = snap(c, /*want_old=*/true);
    if (lockword::locked(s.word)) {
      // A committer is writing back; it will release shortly and the
      // backup it installs is exactly the value we may need.  Spin (one
      // virtual cycle per probe) rather than consult the CM: snapshot
      // transactions hold nothing anyone could wait on.  The spin is
      // bounded, and the kill flag is polled directly (check_killed()
      // deliberately skips snapshot transactions) so an enemy's kill CAS
      // cannot leave this loop livelocked against a stalled lock holder.
      if ((++spins & 7u) == 0) {
        const std::uint64_t w = status_.load(std::memory_order_acquire);
        if ((w & 3u) == kStatusAborted && (w >> 2) == serial_)
          throw_abort(AbortReason::kKilled);
        if (spins >= kSpinBound) throw_abort(AbortReason::kLockedByOther);
      }
      vt::cpu_relax();
      continue;
    }
    if (lockword::version_of(s.word) <= rv_) {
      if (TxObserver* o = tx_observer())
        o->on_read(slot_, &c, lockword::version_of(s.word), s.value,
                   /*in_window=*/false);
      return s.value;
    }
    if (s.old_version <= rv_) {
      ++stats_.snapshot_old_reads;
      if (TxObserver* o = tx_observer())
        o->on_read(slot_, &c, s.old_version, s.old_value,
                   /*in_window=*/false);
      return s.old_value;
    }
    throw_abort(AbortReason::kSnapshotTooOld);
  }
}

}  // namespace demotx::stm
