// Snapshot read path — read-only multiversion reads (paper Sec. 5.1).
//
// The transaction fixes an upper bound ub = global clock at start (rv_).
// A read returns the most recent value of the location with version <= ub:
// the current value when the location was not overwritten since, otherwise
// the newest ring entry under the bound.  Because committed versions are
// exactly the clock values, the set of values returned is the committed
// state at instant ub — an atomic snapshot — with no read set, no
// validation and no commit-time work, so a size() or an iterator commits
// regardless of concurrent updates.
//
// The paper keeps exactly two versions per location, so a location
// overwritten twice past the bound forces an abort ("the snapshot
// transaction may have to abort if the older version is still too recent
// as no transactions keep track of more than two versions here").  The
// per-cell version ring generalizes that: at the configured snapshot
// depth d (DEMOTX_SNAPSHOT_DEPTH, default the paper's 2), d-1 superseded
// pairs survive, and the walk below picks the newest one <= ub — only
// d-1 overwrites within the transaction's lifetime still abort it.
//
// The whole read — lock word, current value, ring walk — sits inside ONE
// seqlock bracket (head counter + lock word read first and last, see
// cell.hpp): writers only mutate the ring and the value while holding the
// lock, and every mutating lock cycle either bumps the version or bumps
// the head, so a bracket that saw neither change read a frozen cell.
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

std::uint64_t Tx::read_snapshot(Cell& c) {
  // How many probes to tolerate before giving up — on a stuck committer
  // (locked branch) or on a stream of committers tearing every bracket
  // (torn branch).  Normal write-back holds a lock for a handful of
  // cycles, so the bound is never hit in a healthy run; a descheduled or
  // wedged committer must not pin us forever.  Both branches poll the
  // kill flag directly (check_killed() deliberately skips snapshot
  // transactions) so an enemy's kill CAS cannot leave the loop livelocked
  // — the torn branch used to poll nothing, which let a snapshot reader
  // repeatedly losing the race against fresh committers spin unkillable.
  constexpr unsigned kSpinBound = 1024;
  const std::size_t backups = hist_backups_;
  unsigned spins = 0;
  auto bounded_backoff = [&](AbortReason bound_hit) {
    if ((++spins & 7u) == 0) {
      const std::uint64_t sw = status_.load(std::memory_order_acquire);
      if ((sw & 3u) == kStatusAborted && (sw >> 2) == serial_)
        throw_abort(AbortReason::kKilled);
      // Scheduler stop / crash injection (DEMOTX_CRASH_AT): the lock
      // holder we are waiting on is never scheduled again, so the spin
      // budget is pure dead time — and for a PINNED caller (no_unwind
      // set) the vt::access at the loop top does NOT unwind, turning
      // the window into a hang.  The context.hpp contract requires any
      // pinned wait on another fiber's progress to poll this and bail.
      if (vt::stop_requested()) throw_abort(AbortReason::kKilled);
      if (spins >= kSpinBound) throw_abort(bound_hit);
    }
    vt::cpu_relax();
  };
  for (;;) {
    vt::access();
    const std::uint64_t h1 = c.hist_head.load(std::memory_order_relaxed);
    const std::uint64_t w1 = c.vlock.load(std::memory_order_acquire);
    if (lockword::locked(w1)) {
      // A committer is writing back; it will release shortly and the ring
      // entry it pushes is exactly the value we may need.  Spin (one
      // virtual cycle per probe) rather than consult the CM: snapshot
      // transactions hold nothing anyone could wait on.
      bounded_backoff(AbortReason::kLockedByOther);
      continue;
    }
    // Bracket open: everything read below is discarded unless the closing
    // loads match.
    std::uint64_t value = 0;
    std::uint64_t version = 0;
    bool hit = false;
    bool from_ring = false;
    bool deep = false;
    if (lockword::version_of(w1) <= rv_) {
      value = c.value.load(std::memory_order_relaxed);
      version = lockword::version_of(w1);
      hit = true;
    } else if (backups > 0) {
      // Ring walk: the newest entry <= rv_.  Also track the newest entry
      // present at all, to tell a serve the one-backup baseline could
      // have made from a deep-ring rescue.
      std::uint64_t newest_any = 0;
      for (std::size_t i = 0; i < backups; ++i) {
        const std::uint64_t hv = c.hist[i].ver.load(std::memory_order_relaxed);
        if (!histver::present(hv)) continue;
        const std::uint64_t v = histver::version_of(hv);
        if (v > newest_any) newest_any = v;
        if (v <= rv_ && (!hit || v > version)) {
          version = v;
          value = c.hist[i].val.load(std::memory_order_relaxed);
          hit = true;
        }
      }
      from_ring = hit;
      deep = hit && version < newest_any;
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t w2 = c.vlock.load(std::memory_order_relaxed);
    const std::uint64_t h2 = c.hist_head.load(std::memory_order_relaxed);
    if (w1 != w2 || h1 != h2) {
      // Torn by a committing writer: full-loop retry, same budget.
      bounded_backoff(AbortReason::kSnapshotRace);
      continue;
    }
    if (hit) {
      if (from_ring) {
        ++stats_.snapshot_old_reads;
        // Served an entry OLDER than the newest kept backup: the paper's
        // depth-2 scheme would have aborted here.
        if (deep) ++stats_.snapshot_ring_hits;
      }
      if (TxObserver* o = tx_observer())
        o->on_read(slot_, &c, version, value, /*in_window=*/false);
      return value;
    }
    // Every kept version is newer than the bound: the location was
    // overwritten `backups`+1 times since this transaction started.
    ++stats_.snapshot_too_recent;
    throw_abort(AbortReason::kSnapshotTooOld);
  }
}

}  // namespace demotx::stm
