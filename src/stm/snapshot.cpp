// Snapshot read path — read-only multiversion reads (paper Sec. 5.1).
//
// The transaction fixes an upper bound ub = global clock at start (rv_).
// A read returns the most recent value of the location with version <= ub:
// the current value when the location was not overwritten since, otherwise
// the one-deep backup kept by every committing writer.  Because committed
// versions are exactly the clock values, the set of values returned is the
// committed state at instant ub — an atomic snapshot — with no read set,
// no validation and no commit-time work, so a size() or an iterator
// commits regardless of concurrent updates.  If a location was overwritten
// twice since ub the two kept versions are both too new and the
// transaction aborts (the paper: "the snapshot transaction may have to
// abort if the older version is still too recent as no transactions keep
// track of more than two versions here").
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

std::uint64_t Tx::read_snapshot(Cell& c) {
  for (;;) {
    const CellSnap s = snap(c, /*want_old=*/true);
    if (lockword::locked(s.word)) {
      // A committer is writing back; it will release shortly and the
      // backup it installs is exactly the value we may need.  Spin (one
      // virtual cycle per probe) rather than consult the CM: snapshot
      // transactions hold nothing anyone could wait on.
      continue;
    }
    if (lockword::version_of(s.word) <= rv_) return s.value;
    if (s.old_version <= rv_) {
      ++stats_.snapshot_old_reads;
      return s.old_value;
    }
    throw_abort(AbortReason::kSnapshotTooOld);
  }
}

}  // namespace demotx::stm
