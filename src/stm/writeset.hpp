// Lazy-versioning write set: buffered writes applied at commit.
//
// Insertion-ordered entries (lock acquisition iterates in order) with an
// open-addressing index for the O(1) lookup every read performs to see its
// own writes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stm/addrfilter.hpp"

namespace demotx::stm {

struct WriteEntry {
  Cell* cell;
  std::uint64_t value;          // buffered new value (lazy) / last written
  std::uint64_t saved_version;  // cell version when we locked it
  bool locked;                  // lock currently held by this transaction
  bool in_place;                // eager mode: value already stored in cell
  std::uint64_t undo_value;     // eager mode: pre-transaction value
};

class WriteSet {
 public:
  WriteSet() { rebuild(64); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // 64-bit address-summary filter: a cleared bit proves the cell is NOT
  // in the set, so the read fast path can skip the open-addressing probe
  // entirely for the (overwhelmingly common) read of a never-written
  // location.  A set bit means "maybe": fall through to find().
  [[nodiscard]] bool may_contain(const Cell* c) const {
    return (filter_ & addr_filter_bit(c)) != 0;
  }

  // The whole-set address summary.  An update commit publishes this word
  // into the runtime's write-summary ring so later validators can prove
  // disjointness against their read-set summary without touching cells.
  [[nodiscard]] std::uint64_t summary() const { return filter_; }

  WriteEntry* find(const Cell* c) {
    const std::size_t idx = probe(c);
    return table_[idx] == kEmpty ? nullptr : &entries_[table_[idx]];
  }

  struct PutResult {
    bool overwrote;            // an earlier buffered value existed
    std::uint64_t old_value;   // that earlier value (for orElse undo logs)
  };

  // Inserts or overwrites the buffered value for `c`.
  PutResult put(Cell* c, std::uint64_t value) {
    const std::size_t idx = probe(c);
    if (table_[idx] != kEmpty) {
      WriteEntry& e = entries_[table_[idx]];
      const std::uint64_t old = e.value;
      e.value = value;
      return {true, old};
    }
    filter_ |= addr_filter_bit(c);
    table_[idx] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(WriteEntry{c, value, 0, false, false, 0});
    if (entries_.size() * 2 > table_.size()) rebuild(table_.size() * 2);
    return {false, 0};
  }

  // Drops every entry at index >= n (orElse branch rollback).  Only valid
  // while no locks are held (i.e. before commit).
  void truncate(std::size_t n) {
    if (n >= entries_.size()) return;
    entries_.resize(n);
    std::fill(table_.begin(), table_.end(), kEmpty);
    filter_ = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      table_[probe(entries_[i].cell)] = static_cast<std::uint32_t>(i);
      filter_ |= addr_filter_bit(entries_[i].cell);
    }
  }

  void clear() {
    filter_ = 0;
    if (entries_.capacity() > kShrinkEntries) {
      // Release the backing storage too: one pathologically large
      // transaction must not pin megabytes in this slot forever.
      std::vector<WriteEntry>().swap(entries_);
      entries_.reserve(64);
    } else {
      entries_.clear();
    }
    if (table_.size() > 1024) {
      rebuild(64);
    } else {
      std::fill(table_.begin(), table_.end(), kEmpty);
    }
  }

  [[nodiscard]] WriteEntry* begin() { return entries_.data(); }
  [[nodiscard]] WriteEntry* end() { return entries_.data() + entries_.size(); }
  [[nodiscard]] const WriteEntry* begin() const { return entries_.data(); }
  [[nodiscard]] const WriteEntry* end() const {
    return entries_.data() + entries_.size();
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kShrinkEntries = 1024;

  // Returns the slot holding `c`, or the empty slot where it would go.
  std::size_t probe(const Cell* c) const {
    const std::size_t mask = table_.size() - 1;
    std::size_t idx = addr_hash(c) & mask;
    while (table_[idx] != kEmpty && entries_[table_[idx]].cell != c)
      idx = (idx + 1) & mask;
    return idx;
  }

  void rebuild(std::size_t buckets) {
    table_.assign(buckets, kEmpty);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::size_t idx = probe(entries_[i].cell);
      table_[idx] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<WriteEntry> entries_;
  std::vector<std::uint32_t> table_;  // power-of-two open addressing
  std::uint64_t filter_ = 0;          // address summary over entries_
};

}  // namespace demotx::stm
