// demotx:expert-file: object-ops tier internals: op logs for semantic conflict detection
// Plain-data op-log records for the object-ops tier (objstm.hpp).
//
// Transactions on participating containers log SEMANTIC operations —
// key-level contains/insert/erase, size observations, queue head/tail
// movement — instead of raw cell footprints.  txdesc.hpp embeds vectors
// of these records; all behaviour lives in objstm.cpp, and the container
// descriptors themselves stay in objstm.hpp (txdesc.hpp must not pull
// them in).
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/cell.hpp"

namespace demotx::stm {

struct ObjDesc;

// One concurrency-control stripe of an object (objstm.hpp keeps an array
// of these per descriptor).  Serializing every commit on one per-object
// lock collapses under contention — at 64 threads nearly every reader
// bracket meets a held lock and loses the CM arbitration — so the lock,
// the apply seqlock and the overwritten-version bookkeeping are striped
// by key hash: a single-key commit holds exactly one stripe, and a
// reader only ever waits on commits that touch its own key's stripe.
struct ObjStripe {
  std::atomic<std::uint64_t> lock{0};  // 0 = free, else committer lockword
  std::atomic<std::uint64_t> seq{0};   // odd while apply mutates the rings
  std::atomic<std::uint64_t> version{0};  // last wv applied to this stripe
};

// A ring of (version, value) pairs, newest-wins — the per-object
// generalization of the per-cell history ring (cell.hpp).  Pushed only
// under the owning object's lock (apply), scanned by readers under the
// object's seq bracket.  version 0 = empty slot; pushes carry strictly
// increasing versions, so the max-version slot is the newest entry.
struct ObjRing {
  struct Slot {
    std::atomic<std::uint64_t> ver{0};
    std::atomic<std::uint64_t> val{0};
  };
  Slot slot[kMaxSnapshotDepth];
  std::uint32_t head = 0;  // next slot to overwrite; mutated under lock

  // Newest entry overall; {0, 0} (the baseline) when never pushed.
  struct Entry {
    std::uint64_t ver;
    std::uint64_t val;
  };
  [[nodiscard]] Entry newest() const {
    Entry e{0, 0};
    for (const Slot& s : slot) {
      const std::uint64_t v = s.ver.load(std::memory_order_acquire);
      if (v > e.ver) {
        e.ver = v;
        e.val = s.val.load(std::memory_order_relaxed);
      }
    }
    return e;
  }
  // Newest entry with ver <= bound.  `*exhausted` is set when the ring
  // holds no such entry AND has wrapped (every slot occupied, all newer
  // than the bound): the state at `bound` was overwritten and the caller
  // must abort rather than adopt the baseline.  An unwrapped ring with no
  // entry <= bound legitimately reports the baseline {0, 0}: the oldest
  // push is the key's first state change ever.  `depth` must be the same
  // effective depth push() uses — wrap detection scans exactly the slots
  // push cycles through, because the tail slots beyond a shallow depth
  // stay empty forever and would otherwise mask exhaustion as a
  // legitimate baseline.
  [[nodiscard]] Entry newest_leq(std::uint64_t bound, std::size_t depth,
                                 bool* exhausted) const {
    Entry e{0, 0};
    bool full = true;
    if (depth < 1) depth = 1;
    if (depth > kMaxSnapshotDepth) depth = kMaxSnapshotDepth;
    for (std::size_t i = 0; i < depth; ++i) {
      const std::uint64_t v = slot[i].ver.load(std::memory_order_acquire);
      if (v == 0) {
        full = false;
        continue;
      }
      if (v <= bound && v > e.ver) {
        e.ver = v;
        e.val = slot[i].val.load(std::memory_order_relaxed);
      }
    }
    *exhausted = full && e.ver == 0;
    return e;
  }
  // Push under the owning object's lock, inside its seq bracket.
  void push(std::uint64_t ver, std::uint64_t val, std::size_t depth) {
    Slot& s = slot[head % (depth < 1 ? 1 : depth)];
    s.val.store(val, std::memory_order_relaxed);
    s.ver.store(ver, std::memory_order_release);
    ++head;
  }
};

// Sentinel keys for non-key observations, sharing the per-(object, key)
// machinery of the certification and the history oracle.  The set size
// observation is STRIPED along with the locks: stripe s's element count
// lives at obj_size_key(s), so a size read conflicts with any commit
// whose net delta touches stripe s exactly because that commit publishes
// a write of obj_size_key(s) — and commits to other stripes stay
// invisible to it.  The sentinel band sits at the very top of the key
// space, which the containers' key mapping keeps clear (tx_hashset.hpp).
inline constexpr std::uint64_t kObjHeadKey = ~std::uint64_t{0} - 1;
inline constexpr std::uint64_t kObjTailKey = ~std::uint64_t{0} - 2;
inline constexpr std::uint64_t kObjSizeKeyBase = ~std::uint64_t{0} - 8;
[[nodiscard]] inline constexpr std::uint64_t obj_size_key(
    std::size_t stripe) {
  return kObjSizeKeyBase - stripe;
}
[[nodiscard]] inline constexpr std::size_t obj_size_stripe_of(
    std::uint64_t size_key) {
  return static_cast<std::size_t>(kObjSizeKeyBase - size_key);
}

// Every semantic read — including "queue looked empty", which logs a
// head AND a tail observation — is a uniform (key, version, value)
// triple, so certification, extension revalidation and the object-level
// oracle all share one value-based rule.
enum class ObjReadKind : std::uint8_t {
  kContains = 0,  // key: observed membership (value 0/1)
  kSize = 1,      // kObjSizeKey: observed element count
  kHead = 2,      // kObjHeadKey: observed dequeue index
  kTail = 3,      // kObjTailKey: observed enqueue index
};

enum class ObjWriteKind : std::uint8_t {
  kInsert = 0,
  kErase = 1,
  kEnqueue = 2,
  kDequeue = 3,  // of a COMMITTED item (own-enqueue consumption never logs)
};

// One logged semantic read.  `version` is the per-key ring entry version
// observed (0 = the key's pre-history baseline); `value` the observed
// result (presence / size / index); `notify_version` the object's notify
// cell version at read time, which is what retry() parks on.
struct ObjRead {
  ObjDesc* obj;
  ObjReadKind kind;
  std::uint64_t key;
  std::uint64_t version;
  std::uint64_t value;
  std::uint64_t notify_version;
};

// One logged semantic write (deferred; applied at commit).  `key` is the
// set key or the enqueued value; `consumed` marks an enqueue eaten by a
// later same-transaction dequeue (pure tx-local traffic: neither op
// reaches certification or apply).
struct ObjWrite {
  ObjDesc* obj;
  ObjWriteKind kind;
  std::uint64_t key;
  bool consumed;
};

// One NET state change this commit will apply, computed under the object
// locks (obj_prepare): the per-key membership flips, the size/head/tail
// sentinel updates.  Drives the observer records, the published key-hash
// filter, and write-back — certification-failure paths never build it.
struct ObjNetWrite {
  ObjDesc* obj;
  std::uint64_t key;    // real key or a sentinel
  std::uint64_t value;  // new presence (0/1) / new size / new index
};

// Per-stripe lock bookkeeping for the commit path; mirrors WriteEntry's
// locked flag so rollback() has a single cleanup path even when
// commit_update throws between acquisition and apply.
struct ObjLockEntry {
  ObjDesc* obj;
  std::uint32_t stripe;
  std::uint64_t saved_version;  // stripe version overwritten (sharded floor)
  bool locked;
};

}  // namespace demotx::stm
