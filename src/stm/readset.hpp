// Read set and elastic read window.
//
// A classic transaction logs every read in the ReadSet and revalidates it
// at commit (and on timebase extension).  An elastic transaction instead
// keeps only a small sliding window of its most recent reads — entries
// evicted from the window are *cuts*: the transaction gives up the right
// to have those reads stay atomic with later ones, which is precisely the
// hand-over-hand behaviour of Algorithm 3 in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace demotx::stm {

struct Cell;

struct ReadEntry {
  Cell* cell;
  std::uint64_t version;  // version observed at read time
};

class ReadSet {
 public:
  ReadSet() { entries_.reserve(64); }

  void add(Cell* c, std::uint64_t version) { entries_.push_back({c, version}); }

  // Early release (paper Sec. 4.1): drop every logged read of this cell.
  // Returns how many entries were dropped.
  std::size_t release(const Cell* c) {
    std::size_t kept = 0, dropped = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].cell == c) {
        ++dropped;
      } else {
        entries_[kept++] = entries_[i];
      }
    }
    entries_.resize(kept);
    return dropped;
  }

  // Drops every entry at index >= n (orElse branch rollback).
  void truncate(std::size_t n) {
    if (n < entries_.size()) entries_.resize(n);
  }

  void clear() {
    if (entries_.capacity() > kShrinkEntries) {
      // Also release the backing storage after a pathologically large
      // transaction; otherwise one huge read set pins memory in this
      // slot for the rest of the process.
      std::vector<ReadEntry>().swap(entries_);
      entries_.reserve(64);
    } else {
      entries_.clear();
    }
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const ReadEntry* begin() const { return entries_.data(); }
  [[nodiscard]] const ReadEntry* end() const {
    return entries_.data() + entries_.size();
  }
  // Mutable iteration for extension (updating recorded versions is not
  // needed — versions are immutable once logged — so only const access).

 private:
  static constexpr std::size_t kShrinkEntries = 1024;

  std::vector<ReadEntry> entries_;
};

// Bounded FIFO of the most recent elastic reads.  Default capacity 2
// matches the prev/curr pair a sorted-list parse keeps live (Algorithm 4).
class ElasticWindow {
 public:
  static constexpr std::size_t kMaxCapacity = 8;

  explicit ElasticWindow(std::size_t capacity = 2)
      : capacity_(capacity < 1 ? 1 : (capacity > kMaxCapacity ? kMaxCapacity
                                                              : capacity)) {}

  void set_capacity(std::size_t capacity) {
    capacity_ = capacity < 1
                    ? 1
                    : (capacity > kMaxCapacity ? kMaxCapacity : capacity);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Makes room for one more entry, discarding oldest entries.  Each
  // discarded entry is a cut.  Returns the number of cuts.
  std::size_t evict_for_push() {
    std::size_t cuts = 0;
    while (size_ >= capacity_) {
      head_ = (head_ + 1) % kMaxCapacity;
      --size_;
      ++cuts;
    }
    return cuts;
  }

  void push(Cell* c, std::uint64_t version) {
    ring_[(head_ + size_) % kMaxCapacity] = {c, version};
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const ReadEntry& at(std::size_t i) const {
    return ring_[(head_ + i) % kMaxCapacity];
  }

  // Early release from the window.
  std::size_t release(const Cell* c) {
    std::size_t dropped = 0;
    ReadEntry tmp[kMaxCapacity];
    std::size_t n = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (at(i).cell == c) {
        ++dropped;
      } else {
        tmp[n++] = at(i);
      }
    }
    head_ = 0;
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) ring_[i] = tmp[i];
    return dropped;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  ReadEntry ring_[kMaxCapacity] = {};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace demotx::stm
