// Read set and elastic read window.
//
// A classic transaction logs every read in the ReadSet and revalidates it
// at commit (and on timebase extension).  An elastic transaction instead
// keeps only a small sliding window of its most recent reads — entries
// evicted from the window are *cuts*: the transaction gives up the right
// to have those reads stay atomic with later ones, which is precisely the
// hand-over-hand behaviour of Algorithm 3 in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stm/addrfilter.hpp"

namespace demotx::stm {

struct ReadEntry {
  Cell* cell;
  std::uint64_t version;  // version observed at read time
};

class ReadSet {
 public:
  ReadSet() {
    entries_.reserve(64);
    reset_cache();
  }

  void add(Cell* c, std::uint64_t version) {
    entries_.push_back({c, version});
  }

  // Dedup: a re-read of a recently logged cell at the SAME version is
  // suppressed instead of appended, so hot-cell re-reads stop inflating
  // every later validation scan.  A small direct-mapped cache of recent
  // entry indices is probed; only an exact (cell, version) match against
  // the LIVE entry suppresses, so the surviving entries validate exactly
  // like the duplicate-logging baseline (a duplicate at a different
  // version could never have been logged anyway: read_classic returns one
  // version per cell per rv).  Because every hit is re-validated, slots
  // are never reset — stale indices from a previous transaction can only
  // miss or rediscover a genuine duplicate — and the cache is best-effort:
  // a slot collision just lets a duplicate through, which is harmless.
  // Returns true when the read was suppressed as a duplicate.
  bool add_deduped(Cell* c, std::uint64_t version) {
    const std::size_t slot = cache_slot(c);
    const std::uint32_t idx = cache_[slot];
    if (idx < entries_.size() && entries_[idx].cell == c &&
        entries_[idx].version == version) {
      return true;
    }
    cache_[slot] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back({c, version});
    return false;
  }

  // The whole-set address summary (same hash as WriteSet::summary(), see
  // addrfilter.hpp): used by summary-ring validation to prove commits
  // with disjoint write sets could not have invalidated any read.  Folded
  // lazily — entries appended since the last call are OR-ed in here — so
  // the per-read fast path does no hashing; validation, which is where
  // the summary is consumed, pays one private O(new entries) walk.
  [[nodiscard]] std::uint64_t summary() {
    for (; summarized_ < entries_.size(); ++summarized_)
      filter_ |= addr_filter_bit(entries_[summarized_].cell);
    return filter_;
  }

  // Early release (paper Sec. 4.1): drop every logged read of this cell.
  // Returns how many entries were dropped.
  std::size_t release(const Cell* c) {
    std::size_t kept = 0, dropped = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].cell == c) {
        ++dropped;
      } else {
        entries_[kept++] = entries_[i];
      }
    }
    entries_.resize(kept);
    if (dropped != 0) rebuild_filter();
    return dropped;
  }

  // Drops every entry at index >= n (orElse branch rollback).
  void truncate(std::size_t n) {
    if (n < entries_.size()) {
      entries_.resize(n);
      rebuild_filter();
    }
  }

  void clear() {
    if (entries_.capacity() > kShrinkEntries) {
      // Also release the backing storage after a pathologically large
      // transaction; otherwise one huge read set pins memory in this
      // slot for the rest of the process.
      std::vector<ReadEntry>().swap(entries_);
      entries_.reserve(64);
    } else {
      entries_.clear();
    }
    filter_ = 0;
    summarized_ = 0;
    // The dedup cache is deliberately NOT reset: every lookup is
    // validated against the current entries_, so stale indices are
    // harmless and clear() stays O(1) on the transaction fast path.
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const ReadEntry* begin() const { return entries_.data(); }
  [[nodiscard]] const ReadEntry* end() const {
    return entries_.data() + entries_.size();
  }
  // Mutable iteration for extension (updating recorded versions is not
  // needed — versions are immutable once logged — so only const access).

 private:
  static constexpr std::size_t kShrinkEntries = 1024;
  static constexpr std::uint32_t kNoEntry = 0xffffffffu;
  // Power of two; 16 slots cover the recently-touched working set of a
  // traversal (the case dedup targets) while the whole cache stays in ONE
  // cache line.  Size matters beyond hit rate: growing ReadSet shifts
  // every later Tx member, and (like the descriptor-layout experiments
  // recorded in txdesc.hpp) a two-line cache measurably slowed the
  // single-thread read path even with dedup disabled.
  static constexpr std::size_t kCacheSlots = 16;

  // Cheap slot index for the dedup cache.  Unlike the 64-bit summary this
  // needs no mixing: cells are 64-byte aligned, so consecutive line
  // indices spread over the slots, and a collision only costs a missed
  // suppression (lookups re-validate).  Keeping the multiply-free path
  // matters — this runs on every summary-mode classic read.
  static std::size_t cache_slot(const Cell* c) {
    return (reinterpret_cast<std::uintptr_t>(c) >> 6) & (kCacheSlots - 1);
  }

  void reset_cache() {
    for (std::uint32_t& s : cache_) s = kNoEntry;
  }

  // Recompute the summary after entries were removed (release/truncate):
  // a stale set bit would be harmless for dedup (lookups re-validate) but
  // would make the ring validator see phantom intersections.  The cache
  // is repopulated too while we are walking anyway (rare path).
  void rebuild_filter() {
    filter_ = 0;
    reset_cache();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      filter_ |= addr_filter_bit(entries_[i].cell);
      cache_[cache_slot(entries_[i].cell)] = static_cast<std::uint32_t>(i);
    }
    summarized_ = entries_.size();
  }

  std::vector<ReadEntry> entries_;
  std::uint64_t filter_ = 0;      // summary over entries_[0, summarized_)
  std::size_t summarized_ = 0;    // how many entries summary() has folded
  std::uint32_t cache_[kCacheSlots];  // entry index per address-hash slot
};

// Bounded FIFO of the most recent elastic reads.  Default capacity 2
// matches the prev/curr pair a sorted-list parse keeps live (Algorithm 4).
class ElasticWindow {
 public:
  static constexpr std::size_t kMaxCapacity = 8;

  explicit ElasticWindow(std::size_t capacity = 2)
      : capacity_(capacity < 1 ? 1 : (capacity > kMaxCapacity ? kMaxCapacity
                                                              : capacity)) {}

  void set_capacity(std::size_t capacity) {
    capacity_ = capacity < 1
                    ? 1
                    : (capacity > kMaxCapacity ? kMaxCapacity : capacity);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Makes room for one more entry, discarding oldest entries.  Each
  // discarded entry is a cut.  Returns the number of cuts.
  std::size_t evict_for_push() {
    std::size_t cuts = 0;
    while (size_ >= capacity_) {
      head_ = (head_ + 1) % kMaxCapacity;
      --size_;
      ++cuts;
    }
    return cuts;
  }

  void push(Cell* c, std::uint64_t version) {
    ring_[(head_ + size_) % kMaxCapacity] = {c, version};
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const ReadEntry& at(std::size_t i) const {
    return ring_[(head_ + i) % kMaxCapacity];
  }

  // Early release from the window.
  std::size_t release(const Cell* c) {
    std::size_t dropped = 0;
    ReadEntry tmp[kMaxCapacity];
    std::size_t n = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (at(i).cell == c) {
        ++dropped;
      } else {
        tmp[n++] = at(i);
      }
    }
    head_ = 0;
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) ring_[i] = tmp[i];
    return dropped;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  ReadEntry ring_[kMaxCapacity] = {};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace demotx::stm
