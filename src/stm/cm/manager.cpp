#include "stm/cm/manager.hpp"

#include <algorithm>

#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"
#include "vt/context.hpp"
#include "vt/sync.hpp"

namespace demotx::stm {

namespace {

// Deterministic per-thread jitter.  Two symmetric transactions that
// conflict, abort and back off by identical amounts re-collide forever
// under a fair lock-step schedule (the classic synchronized-backoff
// orbit); on real hardware timing noise breaks the symmetry, and in the
// simulator this slot/attempt hash stands in for that noise.
unsigned jitter(const Tx& self, unsigned attempt) {
  std::uint64_t h = static_cast<std::uint64_t>(self.slot()) * 0x9e3779b97f4a7c15ULL +
                    attempt * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return static_cast<unsigned>(h & 7u);
}

// Burn `n` cycles of virtual (or real) time waiting.
void stall(unsigned n) {
  if (vt::in_sim()) {
    vt::access(n);
  } else {
    for (unsigned i = 0; i < n; ++i) vt::cpu_relax();
  }
}

// Abort self on every conflict, retry immediately.  The simplest
// livelock-prone strategy; the baseline the others improve on.
class Suicide final : public ContentionManager {
 public:
  bool on_conflict(Tx&, int, bool) override { return false; }
  void on_abort(Tx& self, unsigned attempt) override {
    // Pure suicide (zero-delay retry) deterministically livelocks
    // symmetric conflicts under lock-step schedules; the 0-7 cycle
    // jitter models real-world retry skew without adding backoff.
    stall(1 + jitter(self, attempt));
  }
};

// Abort self, back off exponentially in the attempt number before
// retrying.  Robust default (used by TL2-like systems).
class BackoffCm final : public ContentionManager {
 public:
  bool on_conflict(Tx&, int, bool) override { return false; }
  void on_abort(Tx& self, unsigned attempt) override {
    stall((1u << std::min(attempt, 10u)) + jitter(self, attempt));
  }
};

// Spin politely (growing bound) hoping the enemy commits, then abort.
class Polite final : public ContentionManager {
 public:
  bool on_conflict(Tx&, int, bool) override {
    if (spins_ >= kMaxSpins) return false;
    stall(1u << std::min(spins_, 6u));
    ++spins_;
    return true;
  }
  void on_begin(Tx&, unsigned) override { spins_ = 0; }
  void on_abort(Tx& self, unsigned attempt) override {
    stall(1 + jitter(self, attempt));
  }

 private:
  static constexpr unsigned kMaxSpins = 10;
  unsigned spins_ = 0;
};

// Greedy (timestamp): the transaction with the older first-begin ticket
// wins; it kills the younger enemy and retries.  The younger waits
// briefly for the older, then aborts itself.
class Greedy final : public ContentionManager {
 public:
  bool on_conflict(Tx& self, int owner_slot, bool) override {
    Tx* other = Runtime::instance().peek_slot(owner_slot);
    if (other == nullptr) return true;  // transient: owner gone already
    if (self.cm_stamp < other->cm_stamp) {
      const std::uint64_t w = other->status_word();
      if ((w & 3u) == kStatusActive && other->try_kill(w))
        ++self.stats().kills_issued;
      stall(1);
      return true;  // the dying enemy will release its locks
    }
    if (waits_ < kMaxWaits) {
      ++waits_;
      stall(2);
      return true;
    }
    return false;
  }
  void on_begin(Tx&, unsigned) override { waits_ = 0; }
  void on_abort(Tx& self, unsigned attempt) override {
    // Killed victims back off before retrying; without this, under a
    // fair lock-step schedule the re-acquiring victims win the lock race
    // against the older transaction's probe forever.
    stall((2u << std::min(attempt, 8u)) + jitter(self, attempt));
  }

 private:
  static constexpr unsigned kMaxWaits = 32;
  unsigned waits_ = 0;
};

// Karma: priority is the work (reads) invested, accumulated across the
// retries of the same operation so long transactions eventually win over
// a stream of short ones.
class Karma final : public ContentionManager {
 public:
  bool on_conflict(Tx& self, int owner_slot, bool) override {
    Tx* other = Runtime::instance().peek_slot(owner_slot);
    if (other == nullptr) return true;
    // Priority is the karma banked across this operation's aborted
    // attempts.  The comparison must be symmetric — counting our own
    // in-flight reads but not the enemy's makes every lock holder look
    // poorer than its challengers and the whole system livelocks — so
    // in-flight work is excluded on both sides and ties fall back to age
    // (unique tickets).
    const std::uint64_t mine = self.cm_karma;
    if (mine > other->cm_karma ||
        (mine == other->cm_karma && self.cm_stamp < other->cm_stamp)) {
      const std::uint64_t w = other->status_word();
      if ((w & 3u) == kStatusActive && other->try_kill(w))
        ++self.stats().kills_issued;
      stall(1);
      return true;
    }
    if (waits_ < kMaxWaits) {
      ++waits_;
      stall(2);
      return true;
    }
    return false;
  }
  void on_begin(Tx& self, unsigned attempt) override {
    waits_ = 0;
    reads_at_begin_ = self.stats().reads;
    if (attempt == 0) self.cm_karma = 0;  // new operation: karma resets
  }
  void on_abort(Tx& self, unsigned attempt) override {
    self.cm_karma += self.stats().reads - reads_at_begin_;
    // Victim backoff, as in Greedy: desynchronizes the retry storm so the
    // winner's lock acquisition gets a window under fair schedules.
    stall((2u << std::min(attempt, 8u)) + jitter(self, attempt));
  }
  void on_commit(Tx& self) override { self.cm_karma = 0; }

 private:
  static constexpr unsigned kMaxWaits = 32;
  unsigned waits_ = 0;
  std::uint64_t reads_at_begin_ = 0;
};

}  // namespace

std::unique_ptr<ContentionManager> ContentionManager::make(CmPolicy policy) {
  switch (policy) {
    case CmPolicy::kSuicide:
      return std::make_unique<Suicide>();
    case CmPolicy::kBackoff:
      return std::make_unique<BackoffCm>();
    case CmPolicy::kPolite:
      return std::make_unique<Polite>();
    case CmPolicy::kGreedy:
      return std::make_unique<Greedy>();
    case CmPolicy::kKarma:
      return std::make_unique<Karma>();
  }
  return std::make_unique<BackoffCm>();
}

}  // namespace demotx::stm
