// Contention management (paper Sec. 2.2: "Deciding upon the conflict
// resolution strategy is the task of a dedicated service, called a
// contention manager").
//
// A CM instance is per logical thread.  It is consulted when the thread's
// transaction finds a location locked by a committing enemy, and between
// retry attempts.  Policies (Scherer & Scott, PODC'05 lineage):
//
//   kSuicide — abort self immediately on any conflict.
//   kBackoff — abort self, exponential backoff before retrying.
//   kPolite  — spin politely for a bounded, growing number of cycles
//              hoping the enemy finishes, then abort self.
//   kGreedy  — timestamp priority: the older transaction wins; a younger
//              enemy is killed (its status word is CASed to aborted), an
//              older one is waited on briefly before self-abort.
//   kKarma   — priority = work invested (reads+writes accumulated across
//              retries); higher karma kills lower.
#pragma once

#include <cstdint>
#include <memory>

namespace demotx::stm {

class Tx;

enum class CmPolicy : std::uint8_t {
  kSuicide = 0,
  kBackoff = 1,
  kPolite = 2,
  kGreedy = 3,
  kKarma = 4,
};

constexpr const char* to_string(CmPolicy p) {
  switch (p) {
    case CmPolicy::kSuicide:
      return "suicide";
    case CmPolicy::kBackoff:
      return "backoff";
    case CmPolicy::kPolite:
      return "polite";
    case CmPolicy::kGreedy:
      return "greedy";
    case CmPolicy::kKarma:
      return "karma";
  }
  return "?";
}

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  // `self` hit a cell locked by the transaction currently in slot
  // `owner_slot` (writing=true when acquiring a commit lock, false on a
  // read).  Return true to retry the access, false to abort self.
  virtual bool on_conflict(Tx& self, int owner_slot, bool writing) = 0;

  // Hooks around the transaction lifecycle.
  virtual void on_begin(Tx& self, unsigned attempt) {
    (void)self;
    (void)attempt;
  }
  virtual void on_abort(Tx& self, unsigned attempt) {
    (void)self;
    (void)attempt;
  }
  virtual void on_commit(Tx& self) { (void)self; }

  static std::unique_ptr<ContentionManager> make(CmPolicy policy);
};

}  // namespace demotx::stm
