// demotx:expert-file: object-ops tier implementation: semantic reads, commit-time certification, apply
// Object-ops tier (objstm.hpp): the Tx methods that log semantic
// operations against participating containers and the commit-path helpers
// that certify and apply them.
//
// The tier layers on the cell STM's timestamp discipline unchanged: a
// semantic read is pinned to rv exactly like a word read (too-new entries
// trigger sharded catchup / timebase extension), and the commit path
// interleaves with cell commit_update at fixed points — object locks
// right after cell locks, certification right after read-set validation,
// apply right after cell write-back.  What CHANGES is the conflict
// predicate: instead of cell-version overlap, commit-time certification
// re-reads each logged observation and accepts any interleaving that
// left its VALUE intact (insert(k1) past a contains(k2) reader, two
// disjoint inserts, enqueue past a dequeuer), counting it as a commute.
// Only a changed value — the observation would come out differently if
// re-executed now — is a real key conflict (kObjectConflict).
#include <cstdint>

#include "stm/cm/manager.hpp"
#include "stm/objstm.hpp"
#include "stm/observer.hpp"
#include "stm/runtime.hpp"
#include "stm/txdesc.hpp"
#include "vt/context.hpp"
#include "vt/fiber.hpp"

namespace demotx::stm {

namespace {

// Spin budget for the bounded seqlock bracket (certification and snapshot
// reads).  Mirrors the cell snapshot path's bound: a committer's apply is
// short, so exhaustion means pathological contention — the caller bails
// (kSnapshotRace / certification failure) rather than deadlocking against
// another certifier that holds its own object locks.
constexpr unsigned kObjSpinBound = 1024;

// Politeness budget the update-tier bracket burns on a foreign lock
// holder BEFORE consulting the CM.  A stripe's critical section is short
// (clock grant, validation, a few ring pushes), so waiting it out almost
// always beats aborting: under abort-on-conflict policies (suicide,
// backoff) every locked encounter would otherwise cost a whole attempt,
// and at 64 threads those encounters dominate the object tier's abort
// budget.  The CM still arbitrates pathological holders after the spin.
constexpr unsigned kObjPoliteBound = 128;

// Ring depth actually maintained for object rings: the same clamped
// Config::snapshot_depth the cell rings use; the old-version ablation
// (maintain_old_versions=false) degenerates to newest-only.
std::size_t obj_ring_depth(const Config& config) {
  if (!config.maintain_old_versions) return 1;
  return config.snapshot_backups() + 1;
}

}  // namespace

// ---------------------------------------------------------------------
// Observation brackets
// ---------------------------------------------------------------------

// Update-tier consistent scan: wait out foreign committers (CM-arbitrated,
// like a locked cell), then run `scan` inside the stripe's seq bracket so
// the rings and notify version it reads belong to one quiescent state.
// A scan under our OWN commit-time stripe lock is stable by construction.
template <typename Scan>
void Tx::obj_update_bracket(ObjStripe& sp, Scan&& scan) {
  unsigned polite = 0;
  for (;;) {
    check_killed();
    vt::access();
    const std::uint64_t lw = sp.lock.load(std::memory_order_acquire);
    if (lockword::locked(lw)) {
      if (lockword::owner_of(lw) == slot_) {
        scan();
        return;
      }
      if (irrevocable()) {
        // The holder drains; we cannot abort.  But on scheduler stop /
        // crash injection (DEMOTX_CRASH_AT) the holder never drains —
        // this otherwise-unbounded wait must observe the stop and bail
        // (context.hpp contract).  Unwind exactly the way vt::access
        // does for unpinned fibers (an irrevocable tx must not see
        // AbortTx): the run is over, only prompt exit matters.
        if (vt::stop_requested()) throw vt::FiberStopped{};
        continue;
      }
      if (polite < kObjPoliteBound) {
        ++polite;
        if (vt::stop_requested()) throw_abort(AbortReason::kLockedByOther);
        vt::cpu_relax();
        continue;
      }
      if (!cm_->on_conflict(*this, lockword::owner_of(lw),
                            /*writing=*/false))
        throw_abort(AbortReason::kLockedByOther);
      check_killed();
      continue;
    }
    const std::uint64_t s1 = sp.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) continue;  // apply in progress
    scan();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (sp.seq.load(std::memory_order_relaxed) == s1) return;
  }
}

// Bounded variant: spins through foreign lock holders instead of invoking
// the CM, and gives up after the budget.  Certification runs this while
// we hold our own stripe locks, so an unbounded wait on another
// certifier's lock could deadlock; bounded failure is always safe (the
// caller treats it as a conflict / snapshot race).
template <typename Scan>
bool Tx::obj_try_bracket(ObjStripe& sp, Scan&& scan) {
  for (unsigned spin = 0; spin < kObjSpinBound; ++spin) {
    vt::access();
    const std::uint64_t lw = sp.lock.load(std::memory_order_acquire);
    if (lockword::locked(lw)) {
      if (lockword::owner_of(lw) == slot_) {
        scan();
        return true;
      }
      if ((spin & 7u) == 0) {
        check_killed();
        // Crash/stop while the holder is parked: the budget would burn
        // dead cycles (or hang a pinned certifier whose vt::access no
        // longer unwinds) — fail the bracket promptly instead.
        if (vt::stop_requested()) return false;
      }
      vt::cpu_relax();
      continue;
    }
    const std::uint64_t s1 = sp.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) {
      vt::cpu_relax();
      continue;
    }
    scan();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (sp.seq.load(std::memory_order_relaxed) == s1) return true;
  }
  return false;
}

// Too-new ring entry on the update tier: identical discipline to
// read_classic's too-new arm.  Returns true when the timebase moved and
// the caller must re-scan; false when the version is acceptable as an
// own grant; throws kReadValidation when extension is unavailable.
bool Tx::obj_too_new(std::uint64_t ver) {
  Runtime& rt = Runtime::instance();
  const bool sharded = rt.config.clock_scheme == ClockScheme::kSharded;
  if (sharded && own_recent_version(ver)) return false;
  if (sharded) rt.sharded_catchup(ver, &stats_);
  const bool may_extend =
      irrevocable() || sharded || rt.config.enable_extension;
  if (!may_extend || !try_extend())
    throw_abort(AbortReason::kReadValidation);
  return true;  // re-scan under the extended rv
}

// ---------------------------------------------------------------------
// Op prologue / logging
// ---------------------------------------------------------------------

void Tx::obj_op_precheck(bool writing) {
  check_killed();
  if (writing && sem_ == Semantics::kSnapshot) {
    throw TxUsageError(
        "demotx: snapshot transactions are read-only; use classic or "
        "elastic semantics for object updates");
  }
  // The modeled HTM tracks cell footprints only; a semantic op cannot be
  // expressed in its capacity model, so a hardware attempt falls back to
  // the software path immediately.
  if (htm_) throw_abort(AbortReason::kHtmCapacity);
  if (writing && sem_ == Semantics::kElastic && elastic_phase_) {
    // First (object) write ends the elastic phase, exactly as write_word:
    // the window joins the read set and the rest runs classically.
    strengthen_to_classic();
  }
  vt::access(2);  // op-log append / scan overhead
}

void Tx::obj_log_read(ObjDesc& obj, ObjReadKind kind, std::uint64_t key,
                      std::uint64_t version, std::uint64_t value,
                      std::uint64_t notify_version) {
  // Suppress exact duplicates: a re-observation at the same version is
  // the identical certification obligation (cf. read-set dedup).
  for (const ObjRead& r : obj_reads_) {
    if (r.obj == &obj && r.kind == kind && r.key == key &&
        r.version == version) {
      if (TxObserver* o = tx_observer())
        o->on_obj_read(slot_, &obj, key, version, value);
      return;
    }
  }
  obj_reads_.push_back({&obj, kind, key, version, value, notify_version});
  obj_read_filter_ |= obj_key_filter_bit(&obj, key);
  if (TxObserver* o = tx_observer())
    o->on_obj_read(slot_, &obj, key, version, value);
}

bool Tx::obj_own_set_state(ObjSet& s, std::uint64_t key,
                           bool* present) const {
  for (std::size_t i = obj_writes_.size(); i-- > 0;) {
    const ObjWrite& w = obj_writes_[i];
    if (w.obj != &s || w.key != key) continue;
    if (w.kind == ObjWriteKind::kInsert) {
      *present = true;
      return true;
    }
    if (w.kind == ObjWriteKind::kErase) {
      *present = false;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Set operations
// ---------------------------------------------------------------------

bool Tx::obj_committed_contains(ObjSet& s, std::uint64_t key) {
  for (;;) {
    ObjRing::Entry e{0, 0};
    std::uint64_t nv = 0;
    obj_update_bracket(s.stripe_for(key), [&] {
      ObjSet::KeyRecord* r = s.find(key);
      e = r != nullptr ? r->ring.newest() : ObjRing::Entry{0, 0};
      nv = lockword::version_of(s.notify.vlock.load(std::memory_order_acquire));
    });
    if (e.ver > rv_ && obj_too_new(e.ver)) continue;
    obj_log_read(s, ObjReadKind::kContains, key, e.ver, e.val, nv);
    return e.val != 0;
  }
}

bool Tx::obj_contains(ObjSet& s, std::uint64_t key) {
  obj_op_precheck(/*writing=*/false);
  ++stats_.reads;
  bool own;
  if (obj_own_set_state(s, key, &own)) return own;
  if (sem_ == Semantics::kSnapshot) {
    const std::size_t depth = obj_ring_depth(Runtime::instance().config);
    ObjRing::Entry e{0, 0};
    ObjRing::Entry newest{0, 0};
    bool exhausted = false;
    if (!obj_try_bracket(s.stripe_for(key), [&] {
          exhausted = false;
          newest = ObjRing::Entry{0, 0};
          e = ObjRing::Entry{0, 0};
          if (ObjSet::KeyRecord* r = s.find(key)) {
            newest = r->ring.newest();
            e = r->ring.newest_leq(rv_, depth, &exhausted);
          }
        })) {
      throw_abort(AbortReason::kSnapshotRace);
    }
    if (exhausted) {
      ++stats_.snapshot_too_recent;
      throw_abort(AbortReason::kSnapshotTooOld);
    }
    if (e.ver != newest.ver) {
      ++stats_.obj_ring_hits;
      ++stats_.snapshot_old_reads;
    }
    if (TxObserver* o = tx_observer())
      o->on_obj_read(slot_, &s, key, e.ver, e.val);
    return e.val != 0;
  }
  return obj_committed_contains(s, key);
}

bool Tx::obj_insert(ObjSet& s, std::uint64_t key) {
  obj_op_precheck(/*writing=*/true);
  // The return value ("was it absent?") is a semantic READ: resolve it
  // from our own pending ops if any, else from a logged-and-certified
  // committed observation.
  bool prior;
  if (!obj_own_set_state(s, key, &prior)) {
    ++stats_.reads;
    prior = obj_committed_contains(s, key);
  }
  obj_writes_.push_back({&s, ObjWriteKind::kInsert, key, false});
  ++stats_.writes;
  return !prior;
}

bool Tx::obj_erase(ObjSet& s, std::uint64_t key) {
  obj_op_precheck(/*writing=*/true);
  bool prior;
  if (!obj_own_set_state(s, key, &prior)) {
    ++stats_.reads;
    prior = obj_committed_contains(s, key);
  }
  obj_writes_.push_back({&s, ObjWriteKind::kErase, key, false});
  ++stats_.writes;
  return prior;
}

std::uint64_t Tx::obj_size(ObjSet& s) {
  obj_op_precheck(/*writing=*/false);
  ++stats_.reads;
  if (sem_ == Semantics::kSnapshot) {
    // Striped size at rv: each stripe's ring is pinned to the SAME bound,
    // so the per-stripe values are one consistent cut and their sum is
    // the set's size at rv — no stripe has to be read "at the same time"
    // as another, the timestamps do the aligning.
    const std::size_t depth = obj_ring_depth(Runtime::instance().config);
    std::uint64_t sum = 0;
    bool any_old = false;
    for (std::size_t st = 0; st < ObjDesc::kStripes; ++st) {
      ObjRing::Entry e{0, 0};
      ObjRing::Entry newest{0, 0};
      bool exhausted = false;
      if (!obj_try_bracket(s.stripes[st], [&] {
            newest = s.size_ring[st].newest();
            e = s.size_ring[st].newest_leq(rv_, depth, &exhausted);
          })) {
        throw_abort(AbortReason::kSnapshotRace);
      }
      if (exhausted) {
        ++stats_.snapshot_too_recent;
        throw_abort(AbortReason::kSnapshotTooOld);
      }
      if (e.ver != newest.ver) any_old = true;
      if (TxObserver* o = tx_observer())
        o->on_obj_read(slot_, &s, obj_size_key(st), e.ver, e.val);
      sum += e.val;
    }
    if (any_old) {
      ++stats_.obj_ring_hits;
      ++stats_.snapshot_old_reads;
    }
    return sum;
  }
  // Update tier: committed size (certified via the striped size
  // sentinels — any commit whose net delta touches stripe s conflicts
  // with the stripe-s observation) plus our own pending delta.  The
  // delta needs each own-written key's COMMITTED presence, which is
  // itself a certified observation.
  std::uint64_t committed = 0;
  for (std::size_t st = 0; st < ObjDesc::kStripes; ++st) {
    for (;;) {
      ObjRing::Entry e{0, 0};
      std::uint64_t nv = 0;
      obj_update_bracket(s.stripes[st], [&] {
        e = s.size_ring[st].newest();
        nv =
            lockword::version_of(s.notify.vlock.load(std::memory_order_acquire));
      });
      if (e.ver > rv_ && obj_too_new(e.ver)) continue;
      obj_log_read(s, ObjReadKind::kSize, obj_size_key(st), e.ver, e.val, nv);
      committed += e.val;
      break;
    }
  }
  std::int64_t delta = 0;
  for (std::size_t i = 0; i < obj_writes_.size(); ++i) {
    const ObjWrite& w = obj_writes_[i];
    if (w.obj != &s) continue;
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (obj_writes_[j].obj == &s && obj_writes_[j].key == w.key) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    bool target = w.kind == ObjWriteKind::kInsert;
    for (std::size_t j = i + 1; j < obj_writes_.size(); ++j) {
      if (obj_writes_[j].obj == &s && obj_writes_[j].key == w.key)
        target = obj_writes_[j].kind == ObjWriteKind::kInsert;
    }
    ++stats_.reads;
    const bool prior = obj_committed_contains(s, w.key);
    if (prior != target) delta += target ? 1 : -1;
  }
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(committed) +
                                    delta);
}

// ---------------------------------------------------------------------
// Queue operations
// ---------------------------------------------------------------------

void Tx::obj_enqueue(ObjQueue& q, std::uint64_t v) {
  obj_op_precheck(/*writing=*/true);
  // Lifetime-capacity guard at op time: apply must never throw.  The
  // unbracketed tail peek is approximate but monotonic, so the guard can
  // only fire early, never late past capacity.
  std::uint64_t own = 0;
  for (const ObjWrite& w : obj_writes_)
    if (w.obj == &q && w.kind == ObjWriteKind::kEnqueue && !w.consumed) ++own;
  if (q.tail_ring.newest().val + own >= ObjQueue::capacity()) {
    throw TxUsageError(
        "demotx: ObjQueue lifetime item capacity exhausted (indices are "
        "monotonic; construct a fresh queue)");
  }
  obj_writes_.push_back({&q, ObjWriteKind::kEnqueue, v, false});
  ++stats_.writes;
}

bool Tx::obj_dequeue(ObjQueue& q, std::uint64_t* out) {
  obj_op_precheck(/*writing=*/true);
  ++stats_.reads;
  std::uint64_t own_deq = 0;
  for (const ObjWrite& w : obj_writes_)
    if (w.obj == &q && w.kind == ObjWriteKind::kDequeue) ++own_deq;
  // Head and tail live on separate sentinel stripes, so an enqueuer's
  // commit never blocks a dequeuer's read.  The two brackets are NOT one
  // atomic scan; each value is individually rv-certified, and the logged
  // value-based reads below catch any index movement between them.
  ObjRing::Entry h{0, 0};
  ObjRing::Entry t{0, 0};
  std::uint64_t nv = 0;
  for (;;) {
    obj_update_bracket(q.stripe_for(kObjHeadKey), [&] {
      h = q.head_ring.newest();
      nv = lockword::version_of(q.notify.vlock.load(std::memory_order_acquire));
    });
    if (h.ver > rv_ && obj_too_new(h.ver)) continue;
    break;
  }
  for (;;) {
    obj_update_bracket(q.stripe_for(kObjTailKey),
                       [&] { t = q.tail_ring.newest(); });
    if (t.ver > rv_ && obj_too_new(t.ver)) continue;
    break;
  }
  const std::uint64_t idx = h.val + own_deq;
  if (idx < t.val) {
    // A committed item is available.  Certify "head unchanged": two
    // dequeuers racing for the same item is the one real queue conflict.
    // Item idx is immutable once covered by the observed tail, so the
    // payload read needs no further validation.
    obj_log_read(q, ObjReadKind::kHead, kObjHeadKey, h.ver, h.val, nv);
    *out = q.item_at(idx);
    obj_writes_.push_back({&q, ObjWriteKind::kDequeue, 0, false});
    ++stats_.writes;
    return true;
  }
  // Committed items exhausted: consume our own oldest pending enqueue.
  // The pair becomes pure transaction-local traffic — neither op is
  // certified or applied (FIFO order preserved: own enqueues only ever
  // follow all committed items we could still dequeue).
  for (std::size_t i = 0; i < obj_writes_.size(); ++i) {
    ObjWrite& w = obj_writes_[i];
    if (w.obj != &q || w.kind != ObjWriteKind::kEnqueue || w.consumed)
      continue;
    w.consumed = true;
    if (checkpoint_depth_ > 0) obj_consume_undo_.push_back(i);
    *out = w.key;
    return true;
  }
  // Genuinely empty.  Pin BOTH indices: a foreign enqueue (tail moves) or
  // dequeue (head moves) in between invalidates the answer, and both are
  // plain value-certified reads — no special empty-queue machinery.
  obj_log_read(q, ObjReadKind::kHead, kObjHeadKey, h.ver, h.val, nv);
  obj_log_read(q, ObjReadKind::kTail, kObjTailKey, t.ver, t.val, nv);
  return false;
}

std::uint64_t Tx::obj_queue_size(ObjQueue& q) {
  obj_op_precheck(/*writing=*/false);
  ++stats_.reads;
  if (sem_ == Semantics::kSnapshot) {
    const std::size_t depth = obj_ring_depth(Runtime::instance().config);
    ObjRing::Entry h{0, 0};
    ObjRing::Entry t{0, 0};
    ObjRing::Entry hn{0, 0};
    ObjRing::Entry tn{0, 0};
    bool h_exhausted = false;
    bool t_exhausted = false;
    // Separate stripe brackets; both rings are pinned to the same rv, so
    // the pair is the queue's state at rv regardless of scan order.
    if (!obj_try_bracket(q.stripe_for(kObjHeadKey), [&] {
          hn = q.head_ring.newest();
          h = q.head_ring.newest_leq(rv_, depth, &h_exhausted);
        }) ||
        !obj_try_bracket(q.stripe_for(kObjTailKey), [&] {
          tn = q.tail_ring.newest();
          t = q.tail_ring.newest_leq(rv_, depth, &t_exhausted);
        })) {
      throw_abort(AbortReason::kSnapshotRace);
    }
    if (h_exhausted || t_exhausted) {
      ++stats_.snapshot_too_recent;
      throw_abort(AbortReason::kSnapshotTooOld);
    }
    if (h.ver != hn.ver || t.ver != tn.ver) {
      ++stats_.obj_ring_hits;
      ++stats_.snapshot_old_reads;
    }
    if (TxObserver* o = tx_observer()) {
      o->on_obj_read(slot_, &q, kObjHeadKey, h.ver, h.val);
      o->on_obj_read(slot_, &q, kObjTailKey, t.ver, t.val);
    }
    return t.val - h.val;
  }
  ObjRing::Entry h{0, 0};
  ObjRing::Entry t{0, 0};
  std::uint64_t nv = 0;
  for (;;) {
    obj_update_bracket(q.stripe_for(kObjHeadKey), [&] {
      h = q.head_ring.newest();
      nv = lockword::version_of(q.notify.vlock.load(std::memory_order_acquire));
    });
    if (h.ver > rv_ && obj_too_new(h.ver)) continue;
    break;
  }
  for (;;) {
    obj_update_bracket(q.stripe_for(kObjTailKey),
                       [&] { t = q.tail_ring.newest(); });
    if (t.ver > rv_ && obj_too_new(t.ver)) continue;
    break;
  }
  // A size observation pins BOTH indices: it conflicts with any head or
  // tail movement (the inherent size()-vs-delta conflict of the paper's
  // op-commutativity table).
  obj_log_read(q, ObjReadKind::kHead, kObjHeadKey, h.ver, h.val, nv);
  obj_log_read(q, ObjReadKind::kTail, kObjTailKey, t.ver, t.val, nv);
  std::uint64_t own_deq = 0;
  std::uint64_t own_enq = 0;
  for (const ObjWrite& w : obj_writes_) {
    if (w.obj != &q) continue;
    if (w.kind == ObjWriteKind::kDequeue) ++own_deq;
    if (w.kind == ObjWriteKind::kEnqueue && !w.consumed) ++own_enq;
  }
  return t.val - h.val - own_deq + own_enq;
}

// ---------------------------------------------------------------------
// Commit path
// ---------------------------------------------------------------------

void Tx::obj_acquire_locks() {
  // Distinct (object, stripe) pairs with unconsumed writes, in
  // first-write order (a deterministic order per transaction;
  // cross-transaction deadlock is impossible because lock waits arbitrate
  // through the CM, which kills one side of any cycle).  A set write
  // needs exactly its key's stripe — the size delta it may cause lands in
  // the SAME stripe's size ring; queue writes need the moved index's
  // sentinel stripe.
  for (const ObjWrite& w : obj_writes_) {
    if (w.consumed) continue;
    std::uint32_t st;
    if (w.obj->kind == ObjDesc::Kind::kSet) {
      st = static_cast<std::uint32_t>(ObjDesc::stripe_of(w.key));
    } else {
      st = static_cast<std::uint32_t>(ObjDesc::stripe_of(
          w.kind == ObjWriteKind::kDequeue ? kObjHeadKey : kObjTailKey));
    }
    bool seen = false;
    for (const ObjLockEntry& l : obj_locks_) {
      if (l.obj == w.obj && l.stripe == st) {
        seen = true;
        break;
      }
    }
    if (!seen) obj_locks_.push_back({w.obj, st, 0, false});
  }
  for (ObjLockEntry& l : obj_locks_) {
    ObjStripe& sp = l.obj->stripes[l.stripe];
    for (;;) {
      check_killed();
      vt::access();
      const std::uint64_t lw = sp.lock.load(std::memory_order_acquire);
      if (lockword::locked(lw)) {
        if (!cm_->on_conflict(*this, lockword::owner_of(lw),
                              /*writing=*/true))
          throw_abort(AbortReason::kWriteLockTimeout);
        continue;
      }
      std::uint64_t expected = 0;
      if (sp.lock.compare_exchange_strong(expected,
                                          lockword::make_locked(slot_),
                                          std::memory_order_acq_rel)) {
        l.saved_version = sp.version.load(std::memory_order_relaxed);
        l.locked = true;
        break;
      }
    }
  }
}

void Tx::obj_prepare() {
  // Under the stripe locks the committed state of every touched stripe is
  // stable: fold the op log into NET (object, key) changes.  Ops that net
  // out (insert of a present key, insert+erase pairs) vanish here — they
  // commute with everything and publish nothing.  The walk is per locked
  // (object, stripe) pair, so each fold reads only state its own lock
  // pins.
  obj_net_.clear();
  obj_write_filter_ = 0;
  for (const ObjLockEntry& l : obj_locks_) {
    ObjDesc* obj = l.obj;
    vt::access();
    if (obj->kind == ObjDesc::Kind::kSet) {
      auto& s = static_cast<ObjSet&>(*obj);
      std::int64_t delta = 0;
      for (std::size_t i = 0; i < obj_writes_.size(); ++i) {
        const ObjWrite& w = obj_writes_[i];
        if (w.obj != obj || ObjDesc::stripe_of(w.key) != l.stripe) continue;
        bool first = true;
        for (std::size_t j = 0; j < i; ++j) {
          if (obj_writes_[j].obj == obj && obj_writes_[j].key == w.key) {
            first = false;
            break;
          }
        }
        if (!first) continue;  // the key's first op drives the fold
        bool target = w.kind == ObjWriteKind::kInsert;
        for (std::size_t j = i + 1; j < obj_writes_.size(); ++j) {
          if (obj_writes_[j].obj == obj && obj_writes_[j].key == w.key)
            target = obj_writes_[j].kind == ObjWriteKind::kInsert;
        }
        const ObjSet::KeyRecord* r = s.find(w.key);
        const bool prior = r != nullptr && r->ring.newest().val != 0;
        if (prior == target) continue;  // no membership flip: nets out
        obj_net_.push_back({obj, w.key, target ? std::uint64_t{1} : 0});
        obj_write_filter_ |= obj_key_filter_bit(obj, w.key);
        delta += target ? 1 : -1;
      }
      if (delta != 0) {
        obj_net_.push_back(
            {obj, obj_size_key(l.stripe),
             static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(s.size_[l.stripe]) + delta)});
        obj_write_filter_ |= obj_key_filter_bit(obj, obj_size_key(l.stripe));
      }
    } else {
      auto& q = static_cast<ObjQueue&>(*obj);
      // Head and tail may hash to the same stripe; each index is folded
      // by the lock entry owning its sentinel's stripe.
      if (l.stripe == ObjDesc::stripe_of(kObjHeadKey)) {
        std::uint64_t deq = 0;
        for (const ObjWrite& w : obj_writes_)
          if (w.obj == obj && w.kind == ObjWriteKind::kDequeue) ++deq;
        if (deq != 0) {
          obj_net_.push_back({obj, kObjHeadKey, q.head_ + deq});
          obj_write_filter_ |= obj_key_filter_bit(obj, kObjHeadKey);
        }
      }
      if (l.stripe == ObjDesc::stripe_of(kObjTailKey)) {
        std::uint64_t enq = 0;
        for (const ObjWrite& w : obj_writes_)
          if (w.obj == obj && w.kind == ObjWriteKind::kEnqueue &&
              !w.consumed)
            ++enq;
        if (enq != 0) {
          obj_net_.push_back({obj, kObjTailKey, q.tail_ + enq});
          obj_write_filter_ |= obj_key_filter_bit(obj, kObjTailKey);
        }
      }
    }
  }
}

bool Tx::obj_revalidate(std::uint64_t dirty) {
  // Value-based re-validation of every logged semantic read whose filter
  // bits intersect `dirty` (~0 = probe everything; every bit is nonzero,
  // so ~0 intersects every read).  Serves both commit-time certification
  // (dirty = ~0 or the summary aggregate) and timebase extension.
  Runtime& rt = Runtime::instance();
  for (const ObjRead& r : obj_reads_) {
    if ((obj_key_filter_bit(r.obj, r.key) & dirty) == 0) continue;
    vt::access();
    ObjRing::Entry cur{0, 0};
    bool ok = true;
    switch (r.kind) {
      case ObjReadKind::kContains:
        ok = obj_try_bracket(r.obj->stripe_for(r.key), [&] {
          const ObjSet::KeyRecord* rec =
              static_cast<ObjSet*>(r.obj)->find(r.key);
          cur = rec != nullptr ? rec->ring.newest() : ObjRing::Entry{0, 0};
        });
        break;
      case ObjReadKind::kSize: {
        // The size sentinel key encodes its stripe (objops.hpp).
        const std::size_t st = obj_size_stripe_of(r.key);
        ok = obj_try_bracket(r.obj->stripes[st], [&] {
          cur = static_cast<ObjSet*>(r.obj)->size_ring[st].newest();
        });
        break;
      }
      case ObjReadKind::kHead:
        ok = obj_try_bracket(r.obj->stripe_for(kObjHeadKey), [&] {
          cur = static_cast<ObjQueue*>(r.obj)->head_ring.newest();
        });
        break;
      case ObjReadKind::kTail:
        ok = obj_try_bracket(r.obj->stripe_for(kObjTailKey), [&] {
          cur = static_cast<ObjQueue*>(r.obj)->tail_ring.newest();
        });
        break;
    }
    if (!ok) {
      ++stats_.obj_key_conflicts;
      return false;
    }
    if (cur.ver == r.version) continue;  // untouched since the read
    if (rt.config.inject_obj_commute) {
      // Planted bug (DEMOTX_CHECK_INJECT=obj-commute): declare any
      // version change a commute, skipping the value re-check that
      // certification exists to perform.  The object-level oracle must
      // flag the resulting lost updates.
      ++stats_.obj_commutes;
      continue;
    }
    if (cur.val == r.value) {
      // The key changed hands but our observation still holds: the
      // interleaved commits commute with this transaction.
      ++stats_.obj_commutes;
      continue;
    }
    ++stats_.obj_key_conflicts;
    return false;
  }
  return true;
}

bool Tx::obj_certify() { return obj_revalidate(~std::uint64_t{0}); }

// The stripe a net (object, key) change lands in: a set key's own
// stripe, the encoding stripe of a size sentinel, the sentinel's stripe
// for queue indices.
static std::size_t obj_net_stripe(const ObjNetWrite& n) {
  if (n.obj->kind == ObjDesc::Kind::kSet) {
    if (n.key > kObjSizeKeyBase - ObjDesc::kStripes)
      return obj_size_stripe_of(n.key);
    return ObjDesc::stripe_of(n.key);
  }
  return ObjDesc::stripe_of(n.key);  // kObjHeadKey / kObjTailKey
}

void Tx::obj_apply(std::uint64_t wv) {
  Runtime& rt = Runtime::instance();
  const std::size_t depth = obj_ring_depth(rt.config);
  for (ObjLockEntry& l : obj_locks_) {
    if (!l.locked) continue;
    ObjDesc* obj = l.obj;
    ObjStripe& sp = obj->stripes[l.stripe];
    vt::access();
    const std::uint64_t s1 = sp.seq.load(std::memory_order_relaxed);
    sp.seq.store(s1 + 1, std::memory_order_relaxed);  // odd: apply open
    for (const ObjNetWrite& n : obj_net_) {
      if (n.obj != obj || obj_net_stripe(n) != l.stripe) continue;
      vt::access();
      if (obj->kind == ObjDesc::Kind::kSet) {
        auto& s = static_cast<ObjSet&>(*obj);
        if (n.key > kObjSizeKeyBase - ObjDesc::kStripes) {
          s.size_ring[l.stripe].push(wv, n.value, depth);
          s.size_[l.stripe] = n.value;
        } else {
          s.find_or_create(n.key)->ring.push(wv, n.value, depth);
        }
      } else {
        auto& q = static_cast<ObjQueue&>(*obj);
        if (n.key == kObjHeadKey) {
          q.head_ring.push(wv, n.value, depth);
          q.head_ = n.value;
        } else {
          // Publish the item payloads BEFORE the tail ring entry that
          // covers them: any reader observing the new tail reads
          // complete items.
          std::uint64_t idx = q.tail_;
          for (const ObjWrite& w : obj_writes_) {
            if (w.obj == obj && w.kind == ObjWriteKind::kEnqueue &&
                !w.consumed)
              q.store_item(idx++, w.key);
          }
          q.tail_ring.push(wv, n.value, depth);
          q.tail_ = n.value;
        }
      }
    }
    sp.version.store(wv, std::memory_order_relaxed);
    // Wake retry() waiters parked on this object (dequeue-empty parks on
    // the notify cell through the ordinary watch machinery).  Per-object,
    // so a multi-stripe commit bumps it once per stripe — idempotent, the
    // stored version is the same wv.
    obj->notify.vlock.store(lockword::make_version(wv),
                            std::memory_order_release);
    sp.seq.store(s1 + 2, std::memory_order_release);  // even: apply done
    sp.lock.store(0, std::memory_order_release);
    l.locked = false;
  }
}

void Tx::obj_release_locks_aborting() {
  // All object state changes are deferred to obj_apply, so an aborting
  // release has nothing to undo: drop the locks.
  for (ObjLockEntry& l : obj_locks_) {
    if (!l.locked) continue;
    vt::access();
    l.obj->stripes[l.stripe].lock.store(0, std::memory_order_release);
    l.locked = false;
  }
}

}  // namespace demotx::stm
