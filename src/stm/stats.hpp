// Per-thread transaction statistics.
//
// Every figure in the paper is explained by *why* transactions abort (the
// classic `size` aborting repeatedly is the Fig. 7 slowdown; snapshot
// old-version reads are the Fig. 9 rescue), so the runtime counts
// everything per logical thread and the harness aggregates.
#pragma once

#include <cstdint>
#include <string>

#include "stm/semantics.hpp"

namespace demotx::stm {

struct TxStats {
  std::uint64_t starts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t commits_by_sem[kNumSemantics] = {};
  std::uint64_t aborts_by_sem[kNumSemantics] = {};
  std::uint64_t aborts_by_reason[kNumAbortReasons] = {};
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t elastic_cuts = 0;        // window evictions
  std::uint64_t snapshot_old_reads = 0;  // reads served from the ring
  // Snapshot ring attribution: ring_hits are reads served by an entry
  // DEEPER than the newest kept backup (the paper's depth-2 scheme would
  // have aborted); too_recent counts history-exhausted aborts (every kept
  // version newer than the bound) at the moment they throw.
  std::uint64_t snapshot_ring_hits = 0;
  std::uint64_t snapshot_too_recent = 0;
  std::uint64_t extensions = 0;          // successful timebase extensions
  std::uint64_t kills_issued = 0;        // CM killed an enemy
  std::uint64_t early_releases = 0;
  std::uint64_t htm_commits = 0;    // commits in modeled-HTM mode
  std::uint64_t htm_fallbacks = 0;  // hybrid gave up on HTM, ran software
  // Commit fast path (GV4 clock, irrevocability gate, write-set filter).
  std::uint64_t clock_adopts = 0;   // GV4: lost the clock CAS, adopted wv
  std::uint64_t gate_waits = 0;     // commit parked behind a closed gate
  std::uint64_t wfilter_hits = 0;   // address filter said "maybe ours"
  std::uint64_t wfilter_skips = 0;  // filter proved absence, probe skipped
  // Validation fast path (commit write-summary ring, read-set dedup).
  std::uint64_t summary_skips = 0;      // ring proved disjoint: scan skipped
  std::uint64_t summary_fallbacks = 0;  // intersection/stale slot: full scan
  std::uint64_t ring_overflows = 0;     // range outran the ring: full scan
  std::uint64_t readset_dedups = 0;     // duplicate read suppressed
  // Sharded clock + NUMA sim model (PR 6).
  std::uint64_t shard_conflicts = 0;  // lost a shard CAS / stale-epoch retry
  std::uint64_t epoch_bumps = 0;      // won an epoch advance CAS
  std::uint64_t remote_line_hits = 0;  // sim: RMW on a remote-domain line
  std::uint64_t desc_heap_bytes = 0;   // gauge: per-thread heap reservation
  // Object-ops tier (PR 7): semantic certification over container ops.
  std::uint64_t obj_commutes = 0;       // key changed version but commuted
  std::uint64_t obj_key_conflicts = 0;  // certification found a real conflict
  std::uint64_t obj_ring_hits = 0;      // snapshot read served by an old entry

  // Overflow-safe add for the aggregation paths: a long open-loop run
  // (hours of simulated cycles) can push per-thread counters near the
  // 64-bit edge, and a wrapped aggregate (UINT64_MAX-5 + 10 -> 4) reads
  // as a near-idle run — strictly worse than pinning at the ceiling.
  static std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t s = a + b;
    return s < a ? UINT64_MAX : s;
  }

  void merge(const TxStats& o) {
    starts = sat_add(starts, o.starts);
    commits = sat_add(commits, o.commits);
    aborts = sat_add(aborts, o.aborts);
    for (int i = 0; i < kNumSemantics; ++i) {
      commits_by_sem[i] = sat_add(commits_by_sem[i], o.commits_by_sem[i]);
      aborts_by_sem[i] = sat_add(aborts_by_sem[i], o.aborts_by_sem[i]);
    }
    for (int i = 0; i < kNumAbortReasons; ++i)
      aborts_by_reason[i] = sat_add(aborts_by_reason[i], o.aborts_by_reason[i]);
    reads = sat_add(reads, o.reads);
    writes = sat_add(writes, o.writes);
    elastic_cuts = sat_add(elastic_cuts, o.elastic_cuts);
    snapshot_old_reads = sat_add(snapshot_old_reads, o.snapshot_old_reads);
    snapshot_ring_hits = sat_add(snapshot_ring_hits, o.snapshot_ring_hits);
    snapshot_too_recent = sat_add(snapshot_too_recent, o.snapshot_too_recent);
    extensions = sat_add(extensions, o.extensions);
    kills_issued = sat_add(kills_issued, o.kills_issued);
    early_releases = sat_add(early_releases, o.early_releases);
    htm_commits = sat_add(htm_commits, o.htm_commits);
    htm_fallbacks = sat_add(htm_fallbacks, o.htm_fallbacks);
    clock_adopts = sat_add(clock_adopts, o.clock_adopts);
    gate_waits = sat_add(gate_waits, o.gate_waits);
    wfilter_hits = sat_add(wfilter_hits, o.wfilter_hits);
    wfilter_skips = sat_add(wfilter_skips, o.wfilter_skips);
    summary_skips = sat_add(summary_skips, o.summary_skips);
    summary_fallbacks = sat_add(summary_fallbacks, o.summary_fallbacks);
    ring_overflows = sat_add(ring_overflows, o.ring_overflows);
    readset_dedups = sat_add(readset_dedups, o.readset_dedups);
    shard_conflicts = sat_add(shard_conflicts, o.shard_conflicts);
    epoch_bumps = sat_add(epoch_bumps, o.epoch_bumps);
    remote_line_hits = sat_add(remote_line_hits, o.remote_line_hits);
    // Gauge, not a counter: merging two aggregates that both already
    // include a thread's heap reservation must not double it.  Summing
    // ACROSS threads is the aggregation site's job (each slot is merged
    // exactly once there); between aggregates the max is the honest
    // combination.
    desc_heap_bytes =
        desc_heap_bytes < o.desc_heap_bytes ? o.desc_heap_bytes
                                            : desc_heap_bytes;
    obj_commutes = sat_add(obj_commutes, o.obj_commutes);
    obj_key_conflicts = sat_add(obj_key_conflicts, o.obj_key_conflicts);
    obj_ring_hits = sat_add(obj_ring_hits, o.obj_ring_hits);
  }

  [[nodiscard]] double abort_ratio() const {
    const std::uint64_t attempts = commits + aborts;
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborts) /
                               static_cast<double>(attempts);
  }

  // Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace demotx::stm
