// Shared 64-bit address-summary hashing for cells.
//
// Both per-transaction sets (writeset.hpp, readset.hpp) and the global
// commit write-summary ring (runtime.hpp) condense a set of cell
// addresses into one 64-bit word: bit (hash(addr) & 63) is set for every
// member.  A clear intersection between two summaries PROVES the two
// address sets are disjoint; a set bit only means "maybe", so every
// consumer must fall back to an exact check on intersection.  Keeping the
// hash in one place guarantees the read-set summary, the write-set
// summary and the ring slots all speak the same bit language — a summary
// comparison across sets is only meaningful if they hashed identically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "stm/cell.hpp"

namespace demotx::stm {

// The hashed identity is the cell's allocation-order uid, NOT its heap
// address: addresses vary between a recorded exploration and its replay
// (allocator state differs), and a filter bit that moves between runs
// makes summary-ring verdicts — and therefore replay tokens —
// non-reproducible.  uids are a pure function of allocation order, which
// the deterministic scheduler replays exactly.  Fibonacci hashing
// (golden-ratio multiply) spreads consecutive uids across the bit range.
inline std::size_t addr_hash(const Cell* c) {
  std::uint64_t x = c->uid;
  x *= 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(x >> 32 ^ x);
}

inline std::uint64_t addr_filter_bit(const Cell* c) {
  return std::uint64_t{1} << (addr_hash(c) & 63u);
}

}  // namespace demotx::stm
