// demotx:expert-file: object-ops tier: per-object multi-version descriptors over the cell STM
// Object-ops tier (MVOSTM-style: arXiv 1712.09803, 1905.01200; Proust,
// arXiv 1702.04866): per-object descriptors that participating containers
// register with instead of exposing raw cell footprints.
//
// A transaction on an object-ops container records what it MEANT
// (contains(k) -> true, insert(k), size() -> 7) rather than which words
// it touched.  Commit-time certification then checks key-set intersection
// and commutativity — insert(k1) and insert(k2) with k1 != k2 commute,
// size() conflicts with any net delta — instead of cell-version overlap,
// which removes the structural false conflicts (chain links, bucket
// counters, adjacent nodes) that dominate container aborts at high thread
// counts.  Each object keeps per-key VERSION RINGS generalizing the
// per-cell rings of cell.hpp, so snapshot-tier scans read a consistent
// object state at their start bound without aborting writers.
//
// Concurrency protocol (one object, STRIPED by key hash — objops.hpp
// motivates the striping; a single per-object lock serializes every
// update commit and starves readers at high thread counts):
//   stripes[s].lock     0 = free, (slot<<1)|1 = held by a committer.
//            Held from commit lock acquisition through apply, like cell
//            locks.  A commit holds exactly the stripes its net changes
//            touch: stripe_of(key) per set key (whose size delta lands in
//            the same stripe's size ring), the head/tail sentinel
//            stripes per queue index.
//   stripes[s].seq      per-stripe seqlock: odd while apply mutates the
//            stripe's rings.  Readers bracket their ring scans with it;
//            apply is the only writer and runs under the stripe lock.
//   stripes[s].version  write version of the last commit applied to the
//            stripe; strictly increasing (the sharded clock's
//            min_exclusive covers it).
//   notify   an embedded Cell (per OBJECT, not per stripe) whose vlock is
//            bumped to make_version(wv) at the end of apply: retry()
//            parks on it via the ordinary watch machinery, unchanged.
//
// The TL2 pre-rv-visibility argument survives striping per stripe: a
// commit acquires ALL its stripe locks before taking wv, so a reader
// whose rv >= wv finds each touched stripe either still locked (the
// bracket waits it out) or fully applied — and a multi-stripe commit is
// all-or-nothing at any rv because every stripe enforces this
// individually against the same globally ordered timestamps.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/cell.hpp"
#include "stm/objops.hpp"

namespace demotx::stm {

// Allocation-order object ids, mirroring g_cell_uid_next: object filter
// bits hash this uid so summary verdicts replay identically across runs.
// Reset alongside the cell counter by the explorer.
inline std::atomic<std::uint64_t> g_obj_uid_next{1};
inline void obj_uid_reset(std::uint64_t next = 1) {
  g_obj_uid_next.store(next, std::memory_order_relaxed);
}

// Base descriptor shared by all participating objects.  ObjRing — the
// per-object generalization of the per-cell ring — lives in objops.hpp
// so the Tx descriptor can name its Entry type without this header.
struct ObjDesc {
  enum class Kind : std::uint8_t { kSet = 0, kQueue = 1 };
  static constexpr std::size_t kStripes = 64;

  explicit ObjDesc(Kind k) : kind(k) {}
  ObjDesc(const ObjDesc&) = delete;
  ObjDesc& operator=(const ObjDesc&) = delete;

  [[nodiscard]] static std::size_t stripe_of(std::uint64_t key) {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 58);
  }
  [[nodiscard]] ObjStripe& stripe_for(std::uint64_t key) {
    return stripes[stripe_of(key)];
  }

  Kind kind;
  // Immutable, allocation-ordered identity for the filter-bit language
  // (obj_key_filter_bit) and the durability registry (dur/wal.hpp).
  const std::uint64_t uid =
      g_obj_uid_next.fetch_add(1, std::memory_order_relaxed);
  ObjStripe stripes[kStripes];
  Cell notify;
};

// The key-hash filter bit an object commit publishes into the summary
// ring for each net (object, key) change — the same 64-bit bit language
// as addr_filter_bit, so word-level and object-level readers share one
// union: a summary-ring kClean is conclusive for BOTH kinds of reads.
// Hashes the object's allocation-order uid, not its address, for the
// same reason addr_hash does: replayed schedules re-create objects at
// different addresses but in identical order.
[[nodiscard]] inline std::uint64_t obj_key_filter_bit(const ObjDesc* obj,
                                                      std::uint64_t key) {
  std::uint64_t h = obj->uid * 0x9e3779b97f4a7c15ULL;
  h ^= (key + 0x9e3779b97f4a7c15ULL) * 0x2545f4914f6cdd1dULL;
  return std::uint64_t{1} << ((h >> 32 ^ h) & 63u);
}

// An unordered set of 64-bit keys with per-key version rings and striped
// size rings.  KeyRecords are created lazily at apply time, prepended to
// their bucket chain under the key's stripe lock, and never unlinked (a
// removed key keeps its ring as a tombstone history); the destructor
// frees the chains, which is safe once no transaction can touch the set.
class ObjSet : public ObjDesc {
 public:
  static constexpr std::size_t kBuckets = 256;

  struct KeyRecord {
    explicit KeyRecord(std::uint64_t k) : key(k) {}
    std::uint64_t key;
    std::atomic<KeyRecord*> next{nullptr};
    ObjRing ring;  // (wv, present 0/1)
  };

  ObjSet() : ObjDesc(Kind::kSet) {}
  ~ObjSet() {
    for (std::atomic<KeyRecord*>& b : buckets_) {
      KeyRecord* r = b.load(std::memory_order_relaxed);
      while (r != nullptr) {
        KeyRecord* next = r->next.load(std::memory_order_relaxed);
        delete r;
        r = next;
      }
    }
  }

  // The top 8 hash bits, so each bucket belongs to exactly one stripe
  // (stripe_of is the top 6 bits of the same hash): only commits holding
  // stripe b>>2's lock ever prepend to bucket b, which is what makes
  // find_or_create safe under a single stripe lock.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t key) {
    static_assert(kBuckets == 256 && kStripes == 64,
                  "bucket_of/stripe_of bit alignment");
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 56);
  }
  // Lock-free lookup; nullptr = the key was never inserted.
  [[nodiscard]] KeyRecord* find(std::uint64_t key) const {
    KeyRecord* r =
        buckets_[bucket_of(key)].load(std::memory_order_acquire);
    while (r != nullptr && r->key != key)
      r = r->next.load(std::memory_order_acquire);
    return r;
  }
  // Under the owning stripe lock only (apply path).
  KeyRecord* find_or_create(std::uint64_t key) {
    if (KeyRecord* r = find(key)) return r;
    auto* r = new KeyRecord(key);
    std::atomic<KeyRecord*>& b = buckets_[bucket_of(key)];
    r->next.store(b.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    b.store(r, std::memory_order_release);
    return r;
  }

  // Not linearized against in-flight commits; for quiescent checks only.
  [[nodiscard]] std::uint64_t unsafe_size() const {
    std::uint64_t n = 0;
    for (std::uint64_t s : size_) n += s;
    return n;
  }

  // Striped size: stripe s counts the keys hashing to stripe s, so a
  // key's membership flip updates its OWN stripe's count under the one
  // stripe lock the commit already holds.  size() sums the stripes (each
  // ring pinned to the same bound, so the sum is the size at that bound).
  ObjRing size_ring[kStripes];  // (wv, stripe count); pushed on net delta
  std::uint64_t size_[kStripes] = {};  // mutated under the stripe lock

 private:
  std::atomic<KeyRecord*> buckets_[kBuckets] = {};
};

// A FIFO queue over monotonic item indices: item i lives at a fixed,
// immutable storage slot, head/tail indices carry version rings.  An
// enqueue-only transaction reads nothing and therefore always commutes;
// dequeues certify "head unchanged" (two dequeuers race for one item —
// a real conflict); enqueues and dequeues of a non-empty queue commute.
class ObjQueue : public ObjDesc {
 public:
  static constexpr std::size_t kChunkItems = 256;
  static constexpr std::size_t kChunks = 4096;  // ~1M lifetime items

  ObjQueue() : ObjDesc(Kind::kQueue) {}
  ~ObjQueue() {
    for (std::atomic<std::uint64_t*>& c : chunks_)
      delete[] c.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static constexpr std::uint64_t capacity() {
    return kChunkItems * kChunks;
  }
  // Items are published at apply time before the tail ring entry that
  // covers them, so any index below an observed tail reads complete data.
  [[nodiscard]] std::uint64_t item_at(std::uint64_t idx) const {
    return chunks_[idx / kChunkItems].load(std::memory_order_acquire)
        [idx % kChunkItems];
  }
  // Under the owning stripe lock only (apply path).
  void store_item(std::uint64_t idx, std::uint64_t v) {
    std::atomic<std::uint64_t*>& c = chunks_[idx / kChunkItems];
    std::uint64_t* p = c.load(std::memory_order_relaxed);
    if (p == nullptr) {
      p = new std::uint64_t[kChunkItems];
      c.store(p, std::memory_order_release);
    }
    p[idx % kChunkItems] = v;
  }

  [[nodiscard]] std::uint64_t unsafe_size() const { return tail_ - head_; }

  ObjRing head_ring;  // (wv, first live index)
  ObjRing tail_ring;  // (wv, first free index)
  std::uint64_t head_ = 0;  // mutated under the head sentinel stripe lock
  std::uint64_t tail_ = 0;  // mutated under the tail sentinel stripe lock

 private:
  std::atomic<std::uint64_t*> chunks_[kChunks] = {};
};

}  // namespace demotx::stm
