// Passive observation hooks for the check/ exploration subsystem.
//
// When an observer is attached (sim-mode explorations only — the global
// is written single-threadedly before fibers start), the descriptor calls
// out at every semantic step: begin, each read with the (version, value)
// it returned, each write, elastic cuts and strengthening, commit with
// the final write set, and abort.  The recorder on the other side turns
// those callbacks into a history the per-semantics oracles can certify.
//
// The hooks are deliberately pull-nothing: the observer never influences
// the execution, and with no observer attached each hook site is one
// global load and a predictable branch.
#pragma once

#include <cstdint>

#include "stm/semantics.hpp"

namespace demotx::stm {

struct Cell;

class TxObserver {
 public:
  virtual ~TxObserver() = default;

  // begin() finished arming the descriptor: attempt serial, semantics and
  // start timestamp rv are final.
  virtual void on_begin(int slot, std::uint64_t serial, Semantics sem,
                        std::uint64_t rv) = 0;
  // A read returned `value`, observed at `version`.  `in_window` is true
  // for elastic-phase reads (the read lives in the sliding window, not
  // the read set).  Dedup-suppressed re-reads still report.
  virtual void on_read(int slot, const Cell* c, std::uint64_t version,
                       std::uint64_t value, bool in_window) = 0;
  // An elastic read evicted `evicted` window entries: a cut.
  virtual void on_elastic_cut(int slot, unsigned evicted) = 0;
  // The elastic phase ended (first write or nested classic body); the
  // window was revalidated at the re-sampled rv and joined the read set.
  virtual void on_strengthen(int slot, std::uint64_t new_rv) = 0;
  // write_word logged (or eagerly installed) `value` for this cell.
  virtual void on_write(int slot, const Cell* c, std::uint64_t value) = 0;
  // Early release dropped this cell's read obligations.
  virtual void on_release(int slot, const Cell* c) = 0;
  // An orElse branch rolled back: reads since its checkpoint left the
  // read set (the oracles treat such attempts conservatively).
  virtual void on_branch_rollback(int slot) = 0;
  // One write-set entry of a committing update transaction; a burst of
  // these immediately precedes on_commit and carries the values that the
  // commit publishes (last-write-wins already folded in).
  virtual void on_commit_write(int slot, const Cell* c,
                               std::uint64_t value) = 0;
  // The commit point passed.  wv is the published write version for
  // update transactions, 0 for read-only commits (which serialize at
  // their rv / snapshot bound).
  virtual void on_commit(int slot, std::uint64_t wv) = 0;
  virtual void on_abort(int slot, AbortReason why) = 0;

  // ---- object-ops tier (objstm.hpp; PR 7) ----------------------------
  // Default-bodied: observers that predate the tier keep compiling and
  // simply ignore object traffic.  `obj` is the ObjDesc*, opaque here;
  // `key` is a container key or one of the objops.hpp sentinels
  // (kObjSizeKey / kObjHeadKey / kObjTailKey); `value` the observed or
  // published semantic value (presence 0/1, size, index).

  // A semantic read observed `value` at per-key ring version `version`.
  virtual void on_obj_read(int slot, const void* obj, std::uint64_t key,
                           std::uint64_t version, std::uint64_t value) {
    (void)slot;
    (void)obj;
    (void)key;
    (void)version;
    (void)value;
  }
  // One NET (object, key) state change of a committing transaction; a
  // burst of these precedes on_commit, mirroring on_commit_write.
  virtual void on_obj_commit_write(int slot, const void* obj,
                                   std::uint64_t key, std::uint64_t value) {
    (void)slot;
    (void)obj;
    (void)key;
    (void)value;
  }
};

// Single-threaded attach/detach (the explorer sets it around run_sim; no
// real-thread test ever writes it, so unsynchronized reads stay clean).
inline TxObserver* g_tx_observer = nullptr;

inline TxObserver* tx_observer() { return g_tx_observer; }
inline void set_tx_observer(TxObserver* o) { g_tx_observer = o; }

}  // namespace demotx::stm
