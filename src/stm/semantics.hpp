// demotx:expert-file: STM runtime implementation: this code defines the expert tier
// Transaction semantics and abort machinery.
//
// The paper's central thesis ("democratization") is that one application
// should mix transactions of *different* semantics over the same data:
//
//   kClassic  — the default, safe-for-novices semantics: opacity /
//               single-global-lock atomicity (TL2-style).  All reads form
//               one consistent snapshot and writes commit atomically.
//   kElastic  — the expert semantics for search structures (Felber,
//               Gramoli, Guerraoui, DISC'09): the runtime may *cut* the
//               transaction into consecutive pieces when that preserves
//               correctness, ignoring the false conflicts that make a
//               classic parse abort.  Sequential code and composition are
//               preserved: an elastic body nested inside a classic
//               transaction simply runs classically.
//   kSnapshot — read-only multiversion semantics: reads return the values
//               current at the transaction's start, drawing on one backup
//               version per location, so whole-structure operations
//               (size, iterators) commit against concurrent updates.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace demotx::stm {

enum class Semantics : std::uint8_t { kClassic = 0, kElastic = 1, kSnapshot = 2 };

inline constexpr int kNumSemantics = 3;

constexpr const char* to_string(Semantics s) {
  switch (s) {
    case Semantics::kClassic:
      return "classic";
    case Semantics::kElastic:
      return "elastic";
    case Semantics::kSnapshot:
      return "snapshot";
  }
  return "?";
}

enum class AbortReason : std::uint8_t {
  kReadValidation = 0,  // classic read observed a version newer than rv
  kLockedByOther = 1,   // gave up on a location locked by a committer
  kWindowInvalid = 2,   // elastic window entry changed (inconsistent cut)
  kSnapshotTooOld = 3,  // both stored versions are newer than the bound
  kCommitValidation = 4,  // commit-time read-set validation failed
  kWriteLockTimeout = 5,  // could not acquire write locks
  kKilled = 6,            // aborted by another transaction's CM
  kExplicit = 7,          // user called Tx::abort()
  kUserException = 8,     // an exception escaped the transaction body
  kRetry = 9,             // stm::retry(): block until a read location changes
  kHtmCapacity = 10,      // modeled HTM: transactional footprint overflowed
  kSnapshotRace = 11,     // snapshot read: retry budget burnt by committers
  kObjectConflict = 12,   // object-ops certification: key sets conflict
  kCount = 13
};

inline constexpr int kNumAbortReasons = static_cast<int>(AbortReason::kCount);

constexpr const char* to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kReadValidation:
      return "read-validation";
    case AbortReason::kLockedByOther:
      return "locked-by-other";
    case AbortReason::kWindowInvalid:
      return "window-invalid";
    case AbortReason::kSnapshotTooOld:
      return "snapshot-too-old";
    case AbortReason::kCommitValidation:
      return "commit-validation";
    case AbortReason::kWriteLockTimeout:
      return "write-lock-timeout";
    case AbortReason::kKilled:
      return "killed";
    case AbortReason::kExplicit:
      return "explicit";
    case AbortReason::kUserException:
      return "user-exception";
    case AbortReason::kRetry:
      return "retry-wait";
    case AbortReason::kHtmCapacity:
      return "htm-capacity";
    case AbortReason::kSnapshotRace:
      return "snapshot-race";
    case AbortReason::kObjectConflict:
      return "object-conflict";
    case AbortReason::kCount:
      break;
  }
  return "?";
}

// Internal control-flow exception: unwinds the transaction body back to
// the retry loop in atomically().  Never escapes the library.
struct AbortTx {
  AbortReason reason;
};

// Misuse of the API (e.g. writing inside a snapshot transaction).  Unlike
// AbortTx this is a real error and propagates to the caller.
class TxUsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace demotx::stm
