// Effect-tag annotations for the static analyses (tools/demotx-advise).
//
// Each macro expands to nothing: the tags exist so per-function effect
// summaries are grounded in declarations instead of pattern-matching on
// accessor NAMES.  A tag written between a function's parameter list
// and its body declares the transactional effect of calling it; the
// analyzer treats tagged functions as effect LEAVES (their bodies are
// runtime internals, below the abstraction line the summaries model)
// and never descends into them.
//
//   DEMOTX_TX_READ         a raw versioned cell read (tx.read_word)
//   DEMOTX_TX_WRITE        a raw versioned cell write (tx.write_word)
//   DEMOTX_TX_TRAVERSAL    a search-structure traversal: a sequence of
//                          cell reads whose sole purpose is locating a
//                          node, safe to forget under elastic cuts
//                          (paper Sec. 3: the elastic tier's defining
//                          shape) — an EXPERT assertion about the loop,
//                          exactly like the containers' expert markers
//   DEMOTX_TX_SEARCH_READ  a semantic read against a participating
//                          container (obj_contains/obj_size/...):
//                          key-level certification, no raw cells
//   DEMOTX_TX_SEARCH_WRITE a semantic update (obj_insert/obj_erase/
//                          obj_enqueue/obj_dequeue): deferred to commit,
//                          certified by key, still a write for tier
//                          eligibility (snapshot bodies must not)
//   DEMOTX_TX_RELEASE      early release (tx.release): expert-only,
//                          composition-breaking, pins the classic tier
//   DEMOTX_TX_IRREVOCABLE  the call makes the transaction irrevocable
//                          (may not retry): classic-only
//   DEMOTX_TX_SAFE         abort-safe by construction, contributes no
//                          transactional effect (tx.alloc/tx.retire:
//                          the raw new/delete inside is compensated on
//                          abort, unlike user-code new/delete)
//
// The tags are macros (not attributes) so they vanish under every
// compiler and cost nothing; the token frontend (tools/frontend)
// collects any DEMOTX_TX_* identifier in the declarator into
// FunctionDef::tags.
#pragma once

#define DEMOTX_TX_READ
#define DEMOTX_TX_WRITE
#define DEMOTX_TX_TRAVERSAL
#define DEMOTX_TX_SEARCH_READ
#define DEMOTX_TX_SEARCH_WRITE
#define DEMOTX_TX_RELEASE
#define DEMOTX_TX_IRREVOCABLE
#define DEMOTX_TX_SAFE
