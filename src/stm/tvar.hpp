// TVar<T>: a typed transactional variable over one versioned cell.
//
// T must be trivially copyable and at most 8 bytes (a machine word):
// integers, enums, pointers, small PODs.  Larger state is built by
// composing TVars (as the data structures in src/ds/ do), which is also
// what gives the STM its per-location conflict granularity.
#pragma once

#include <cstring>
#include <type_traits>

#include "stm/cell.hpp"
#include "stm/txdesc.hpp"

namespace demotx::stm {

template <typename T>
concept WordSized = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

template <WordSized T>
class TVar {
 public:
  TVar() : TVar(T{}) {}
  explicit TVar(T v) { cell_.value.store(encode(v), std::memory_order_relaxed); }

  TVar(const TVar&) = delete;
  TVar& operator=(const TVar&) = delete;

  // Transactional access.
  T get(Tx& tx) const { return decode(tx.read_word(cell_)); }
  void set(Tx& tx, T v) { tx.write_word(cell_, encode(v)); }

  // Early release of this variable from tx's read set (expert API).
  void release(Tx& tx) const { tx.release(cell_); }

  // Unsynchronized access for initialization and quiescent inspection.
  [[nodiscard]] T unsafe_load() const { return decode(cell_.unsafe_value()); }
  void unsafe_store(T v) { cell_.unsafe_store(encode(v)); }

  [[nodiscard]] Cell& cell() const { return cell_; }

  static std::uint64_t encode(T v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(T));
    return u;
  }
  static T decode(std::uint64_t u) {
    T v;
    std::memcpy(&v, &u, sizeof(T));
    return v;
  }

 private:
  mutable Cell cell_;
};

}  // namespace demotx::stm
