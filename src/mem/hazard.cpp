#include "mem/hazard.hpp"

#include <algorithm>

namespace demotx::mem {

HazardDomain& HazardDomain::instance() {
  static HazardDomain dom;
  return dom;
}

HazardDomain::HazardDomain() {
  for (auto& t : hp_)
    for (auto& s : t.slot) s.store(nullptr, std::memory_order_relaxed);
}

HazardDomain::~HazardDomain() { drain(); }

void HazardDomain::clear_all() {
  ThreadHp& t = hp_[vt::thread_id()];
  vt::access();
  for (auto& s : t.slot) s.store(nullptr, std::memory_order_release);
}

void HazardDomain::retire(void* p, void (*deleter)(void*)) {
  ThreadRetired& r = retired_[vt::thread_id()];
  vt::access();
  r.list.push_back(Retired{p, deleter});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (r.list.size() >= kScanThreshold) scan(r);
}

void HazardDomain::scan(ThreadRetired& self) {
  // Snapshot every published hazard pointer.
  std::vector<void*> protected_ptrs;
  protected_ptrs.reserve(vt::kMaxThreads * kSlotsPerThread);
  for (auto& t : hp_) {
    vt::access();
    for (auto& s : t.slot) {
      void* p = s.load(std::memory_order_seq_cst);
      if (p != nullptr) protected_ptrs.push_back(p);
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());
  std::size_t kept = 0;
  auto& list = self.list;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           list[i].ptr)) {
      list[kept++] = list[i];
    } else {
      list[i].deleter(list[i].ptr);
      freed_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  list.resize(kept);
}

void HazardDomain::drain() {
  for (auto& r : retired_) {
    if (!r.list.empty()) scan(r);
    // At teardown quiescence no slot is published, so scan freed all.
  }
}

}  // namespace demotx::mem
