#include "mem/epoch.hpp"

#include <algorithm>
#include <limits>

namespace demotx::mem {

EpochManager& EpochManager::instance() {
  static EpochManager mgr;
  return mgr;
}

EpochManager::EpochManager() = default;

EpochManager::~EpochManager() { drain(); }

void EpochManager::enter() {
  Slot& s = slots_[vt::thread_id()];
  if (s.nest++ > 0) return;
  vt::access();
  s.active.store(true, std::memory_order_seq_cst);
  // Announce the freshest epoch; seq_cst keeps the announce visible before
  // any subsequent optimistic read.
  s.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                std::memory_order_seq_cst);
}

void EpochManager::exit() {
  Slot& s = slots_[vt::thread_id()];
  if (--s.nest > 0) return;
  vt::access();
  s.active.store(false, std::memory_order_release);
}

void EpochManager::retire(void* p, void (*deleter)(void*)) {
  Slot& s = slots_[vt::thread_id()];
  vt::access();
  s.limbo.push_back(
      Retired{p, deleter, global_epoch_.load(std::memory_order_acquire)});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (++s.retire_since_scan >= kScanInterval) {
    s.retire_since_scan = 0;
    scan(s);
  }
}

void EpochManager::scan(Slot& self) {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  std::uint64_t min_active = std::numeric_limits<std::uint64_t>::max();
  bool all_current = true;
  for (auto& s : slots_) {
    vt::access();
    if (!s.active.load(std::memory_order_seq_cst)) continue;
    const std::uint64_t se = s.epoch.load(std::memory_order_seq_cst);
    min_active = std::min(min_active, se);
    if (se != e) all_current = false;
  }
  // Advance the global epoch once every active reader caught up, so the
  // reclamation horizon keeps moving even under constant read load.
  if (all_current) {
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_seq_cst);
    vt::access();
  }
  // Free everything retired strictly before the oldest active reader's
  // announcement: such readers entered after those nodes were unlinked.
  auto& limbo = self.limbo;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < limbo.size(); ++i) {
    if (limbo[i].epoch < min_active) {
      limbo[i].deleter(limbo[i].ptr);
      freed_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      limbo[kept++] = limbo[i];
    }
  }
  limbo.resize(kept);
}

void EpochManager::drain() {
  for (auto& s : slots_) {
    for (const Retired& r : s.limbo) {
      r.deleter(r.ptr);
      freed_total_.fetch_add(1, std::memory_order_relaxed);
    }
    s.limbo.clear();
    s.retire_since_scan = 0;
  }
}

}  // namespace demotx::mem
