// Hazard pointers (Michael, 2002) — the second reclamation policy.
//
// Provided as an alternative to epochs for the Harris-Michael lock-free
// list baseline: a traversal publishes the nodes it is about to
// dereference in per-thread hazard slots and re-validates the source
// pointer after publication; reclamation frees a retired node only when no
// slot holds it.  Unlike epochs, a stalled reader delays only the nodes it
// actually protects.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "vt/context.hpp"

namespace demotx::mem {

class HazardDomain {
 public:
  // Hazard slots per logical thread; list traversal needs prev/curr/next.
  static constexpr int kSlotsPerThread = 4;

  static HazardDomain& instance();

  HazardDomain();
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Publishes the current value of src in hazard slot `slot` of the
  // calling thread and re-validates until stable.  Returns the protected
  // pointer (may be nullptr, which needs no protection).
  template <typename T>
  T* protect(int slot, const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      vt::access();
      publish(slot, p);
      T* q = src.load(std::memory_order_seq_cst);
      if (q == p) return p;
      p = q;
    }
  }

  // Publishes an already-loaded pointer; caller must re-validate that the
  // pointer is still reachable afterwards (raw building block).
  void publish(int slot, const void* p) {
    hp_[vt::thread_id()].slot[slot].store(const_cast<void*>(p),
                                          std::memory_order_seq_cst);
  }

  void clear(int slot) {
    vt::access();
    hp_[vt::thread_id()].slot[slot].store(nullptr, std::memory_order_release);
  }

  void clear_all();

  void retire(void* p, void (*deleter)(void*));

  template <typename T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Frees all retired nodes not currently protected; then, if quiescent,
  // everything.  Test/bench teardown helper.
  void drain();

  [[nodiscard]] std::uint64_t retired_count() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t freed_count() const {
    return freed_total_.load(std::memory_order_relaxed);
  }

  // RAII: clears this thread's hazard slots on scope exit.
  class Holder {
   public:
    Holder() : dom_(HazardDomain::instance()) {}
    explicit Holder(HazardDomain& d) : dom_(d) {}
    ~Holder() { dom_.clear_all(); }
    Holder(const Holder&) = delete;
    Holder& operator=(const Holder&) = delete;

    template <typename T>
    T* protect(int slot, const std::atomic<T*>& src) {
      return dom_.protect(slot, src);
    }

   private:
    HazardDomain& dom_;
  };

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct alignas(64) ThreadHp {
    std::atomic<void*> slot[kSlotsPerThread];
  };

  struct alignas(64) ThreadRetired {
    std::vector<Retired> list;
  };

  void scan(ThreadRetired& self);

  ThreadHp hp_[vt::kMaxThreads];
  ThreadRetired retired_[vt::kMaxThreads];
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};

  static constexpr std::size_t kScanThreshold = 64;
};

}  // namespace demotx::mem
