// Epoch-based memory reclamation (EBR), the garbage-collector substitute.
//
// The paper's prototype ran on the JVM, where optimistic readers (STM
// parses, lazy/lock-free list traversals, snapshot transactions reading
// superseded values) can hold references to unlinked nodes and the GC keeps
// them alive.  In C++ we provide the same guarantee with epochs: readers
// enter a critical section via an RAII Guard that announces the current
// global epoch; unlinked nodes are retired with the epoch at retirement
// and freed only once every active reader has announced a strictly later
// epoch.  Any reader that could still hold a reference to a node entered
// (and hence announced) no later than the node's retirement epoch, so the
// predicate `retire_epoch < min(active announcements)` is safe.
//
// Threads are identified by vt::thread_id(); the scheme works identically
// under real threads and under the virtual-time simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "vt/context.hpp"

namespace demotx::mem {

class EpochManager {
 public:
  // Process-wide domain: all demotx structures share it, so one Guard
  // covers every structure a transaction touches.
  static EpochManager& instance();

  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Marks the calling logical thread as inside a read-side critical
  // section.  Reentrant; cheap (two shared accesses).
  class Guard {
   public:
    Guard() : mgr_(EpochManager::instance()) { mgr_.enter(); }
    explicit Guard(EpochManager& m) : mgr_(m) { mgr_.enter(); }
    ~Guard() { mgr_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
  };

  void enter();
  void exit();

  // Hands the object to the reclaimer; it is deleted once no reader can
  // hold a reference.  Callable with or without an active Guard.
  void retire(void* p, void (*deleter)(void*));

  template <typename T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Frees everything immediately.  Only valid when no Guard is active on
  // any thread (quiescence); used at test/benchmark teardown.
  void drain();

  [[nodiscard]] std::uint64_t retired_count() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t freed_count() const {
    return freed_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> active{false};
    int nest = 0;                  // owner-thread only
    std::vector<Retired> limbo;    // owner-thread only
    std::uint64_t retire_since_scan = 0;
  };

  void scan(Slot& self);

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};
  Slot slots_[vt::kMaxThreads];

  // How many retires between reclamation scans.
  static constexpr std::uint64_t kScanInterval = 64;
};

}  // namespace demotx::mem
