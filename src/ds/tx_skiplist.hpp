// demotx:expert-file: transactional collection library: the per-operation semantics choice (paper Figs. 5/7/9) is this library's expert implementation; novices consume the typed set API
// Transactional skip-list set.
//
// Shows how the elastic/classic composition rule carries past flat lists:
// the descent runs elastically (a sliding window over the search path),
// and the update phase opens a *nested classic* transaction — the nesting
// join strengthens the enclosing elastic transaction (runtime.hpp), so
// every predecessor link is re-read under full validation right before it
// is written.  Cuts make the long descent abort-free; opacity protects the
// multi-level splice.
#pragma once

#include <climits>
#include <cstdint>

#include "ds/tx_hashset.hpp"  // obj_key_of
#include "mem/epoch.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "sync/set_interface.hpp"

namespace demotx::ds {

class TxSkipList final : public ISet {
 public:
  static constexpr int kMaxLevel = 16;

  struct Options {
    stm::Semantics parse = stm::Semantics::kElastic;
    stm::Semantics size_sem = stm::Semantics::kSnapshot;
  };

  TxSkipList() : TxSkipList(Options{}) {}
  explicit TxSkipList(Options opts) : opts_(opts) {
    tail_ = new Node(LONG_MAX, kMaxLevel);
    head_ = new Node(LONG_MIN, kMaxLevel);
    for (int i = 0; i < kMaxLevel; ++i) head_->next[i].unsafe_store(tail_);
  }

  ~TxSkipList() override {
    // Quiescent teardown: free the epoch limbo before the unsafe walk so
    // retired-but-unreclaimed nodes are not deleted twice.
    mem::EpochManager::instance().drain();
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].unsafe_load();
      delete n;
      n = next;
    }
  }

  TxSkipList(const TxSkipList&) = delete;
  TxSkipList& operator=(const TxSkipList&) = delete;

  bool contains(long key) override {
    if (obj_mode_) {
      // Object-ops tier: the multi-level descent (and every false
      // conflict on its tower links) disappears behind one semantic
      // membership read; ordered iteration is not part of ISet, so the
      // set representation carries the full contract.
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_contains(obj_, obj_key_of(key));
      });
    }
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      Node* pred = head_;
      for (int i = kMaxLevel - 1; i >= 0; --i) {
        Node* curr = pred->next[i].get(tx);
        while (curr->key < key) {
          pred = curr;
          curr = pred->next[i].get(tx);
        }
        if (curr->key == key) return true;
      }
      return false;
    });
  }

  bool add(long key) override {
    if (obj_mode_) {
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_insert(obj_, obj_key_of(key));
      });
    }
    const int top = random_level();
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      Node* preds[kMaxLevel];
      if (descend(tx, key, preds)) return false;  // already present (hint)
      // Update phase: nested classic strengthens the transaction, so the
      // link re-reads below are fully validated at commit.
      return stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& ctx) {
        Node* node = nullptr;
        for (int i = 0; i < top; ++i) {
          Node* pred = preds[i];
          Node* succ = pred->next[i].get(ctx);
          while (succ->key < key) {  // the elastic hint may be stale
            pred = succ;
            succ = pred->next[i].get(ctx);
          }
          // The elastic descent's hint may name a node that has since been
          // (or is being) removed; writing through it would link into an
          // unlinked chain.  Reading `marked` puts it in the read set, so
          // a later removal of pred also aborts us at commit.
          if (pred != head_ && pred->marked.get(ctx) != 0) ctx.abort_self();
          if (succ->key == key) {
            // A marked duplicate is mid-removal through a stale chain:
            // retry and re-descend.  An unmarked one is a committed
            // duplicate: give up cleanly (nothing linked yet at i == 0).
            if (succ->marked.get(ctx) != 0) ctx.abort_self();
            if (i == 0) return false;
            ctx.abort_self();  // linked above but not at level 0: stale view
          }
          if (node == nullptr) node = ctx.alloc<Node>(key, top);
          node->next[i].unsafe_store(succ);  // demotx:expert: node is tx-private until the pred->next set() below publishes it
          pred->next[i].set(ctx, node);
        }
        return true;
      });
    });
  }

  bool remove(long key) override {
    if (obj_mode_) {
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_erase(obj_, obj_key_of(key));
      });
    }
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      Node* preds[kMaxLevel];
      if (!descend(tx, key, preds)) return false;  // absent (hint)
      return stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& ctx) {
        Node* victim = nullptr;
        for (int i = kMaxLevel - 1; i >= 0; --i) {
          Node* pred = preds[i];
          Node* succ = pred->next[i].get(ctx);
          while (succ->key < key) {
            pred = succ;
            succ = pred->next[i].get(ctx);
          }
          if (succ->key != key) continue;  // not linked at this level
          if (pred != head_ && pred->marked.get(ctx) != 0)
            ctx.abort_self();  // stale hint chain: retry and re-descend
          if (victim == nullptr) {
            victim = succ;
            if (victim->marked.get(ctx) != 0) return false;  // already gone
            victim->marked.set(ctx, 1);  // logical deletion, conflicts with
                                         // every stale-hint writer
          } else if (succ != victim) {
            ctx.abort_self();  // two same-key nodes: inconsistent hints
          }
          pred->next[i].set(ctx, succ->next[i].get(ctx));
        }
        if (victim == nullptr) return false;  // raced with another remove
        ctx.retire(victim);
        return true;
      });
    });
  }

  long size() override {
    if (obj_mode_) {
      return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
        return static_cast<long>(tx.obj_size(obj_));
      });
    }
    return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
      long n = 0;
      for (Node* c = head_->next[0].get(tx); c != tail_;
           c = c->next[0].get(tx))
        ++n;
      return n;
    });
  }

  long unsafe_size() override {
    if (obj_mode_) return static_cast<long>(obj_.unsafe_size());
    long n = 0;
    for (Node* c = head_->next[0].unsafe_load(); c != tail_;
         c = c->next[0].unsafe_load())
      ++n;
    return n;
  }

  [[nodiscard]] const char* name() const override { return "tx-skiplist"; }

 private:
  struct Node {
    const long key;
    const int level;
    stm::TVar<long> marked{0};  // logical-deletion flag (see remove)
    stm::TVar<Node*> next[kMaxLevel];
    Node(long k, int lvl) : key(k), level(lvl) {}
  };

  // Elastic descent; fills preds[] with per-level predecessor hints and
  // reports whether the key was seen.
  bool descend(stm::Tx& tx, long key, Node** preds) const DEMOTX_TX_TRAVERSAL {
    bool found = false;
    Node* pred = head_;
    for (int i = kMaxLevel - 1; i >= 0; --i) {
      Node* curr = pred->next[i].get(tx);
      while (curr->key < key) {
        pred = curr;
        curr = pred->next[i].get(tx);
      }
      if (curr->key == key) found = true;
      preds[i] = pred;
    }
    return found;
  }

  static int random_level() {
    static thread_local std::uint64_t seed = 0x853c49e6748fea9bULL;
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    int lvl = 1;
    std::uint64_t bits = seed;
    while ((bits & 1) != 0 && lvl < kMaxLevel) {
      ++lvl;
      bits >>= 1;
    }
    return lvl;
  }

  Options opts_;
  Node* head_;
  Node* tail_;
  // Latched at construction; see TxHashSet::obj_mode_.
  const bool obj_mode_ = stm::Runtime::instance().config.object_ops;
  stm::ObjSet obj_;
};

}  // namespace demotx::ds
