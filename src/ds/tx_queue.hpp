// demotx:expert-file: transactional collection library: the per-operation semantics choice (paper Figs. 5/7/9) is this library's expert implementation; novices consume the typed set API
// Transactional FIFO queue (dummy-node linked queue, classic semantics).
//
// Queues are inherently contention hotspots — head and tail are written by
// every operation — so relaxing them buys nothing and the classic default
// is the right semantics (the paper's point cuts both ways: semantics per
// role).  Used by tests, the bank example, and the structure ablation.
#pragma once

#include <optional>

#include "mem/epoch.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"

namespace demotx::ds {

class TxQueue {
 public:
  TxQueue() {
    auto* dummy = new Node(0, nullptr);
    head_.unsafe_store(dummy);
    tail_.unsafe_store(dummy);
  }

  ~TxQueue() {
    // Quiescent teardown: free the epoch limbo before the unsafe walk so
    // retired-but-unreclaimed nodes are not deleted twice.
    mem::EpochManager::instance().drain();
    Node* n = head_.unsafe_load();
    while (n != nullptr) {
      Node* next = n->next.unsafe_load();
      delete n;
      n = next;
    }
  }

  TxQueue(const TxQueue&) = delete;
  TxQueue& operator=(const TxQueue&) = delete;

  // Composable pieces (call within an enclosing transaction)...
  void enqueue(stm::Tx& tx, long v) {
    if (obj_mode_) {
      // Object-ops tier: an enqueue logs no read at all, so enqueue-only
      // transactions ALWAYS commute — the head/tail hotspot that makes
      // the linked queue a serialization point disappears for producers.
      tx.obj_enqueue(obj_, static_cast<std::uint64_t>(v));
      return;
    }
    Node* n = tx.alloc<Node>(v, nullptr);
    Node* t = tail_.get(tx);
    t->next.set(tx, n);
    tail_.set(tx, n);
  }

  std::optional<long> dequeue(stm::Tx& tx) {
    if (obj_mode_) {
      std::uint64_t out = 0;
      if (!tx.obj_dequeue(obj_, &out)) return std::nullopt;
      return static_cast<long>(out);
    }
    Node* h = head_.get(tx);
    Node* first = h->next.get(tx);
    if (first == nullptr) return std::nullopt;
    head_.set(tx, first);
    const long v = first->value;
    tx.retire(h);
    return v;
  }

  // Blocking variant: parks the enclosing transaction until an element is
  // available (composable condition synchronization via stm::retry).
  long dequeue_or_retry(stm::Tx& tx) {
    auto v = dequeue(tx);
    if (!v) stm::retry(tx);
    return *v;
  }

  // ...and standalone operations.
  void enqueue(long v) {
    stm::atomically([&](stm::Tx& tx) { enqueue(tx, v); });
  }
  std::optional<long> dequeue() {
    return stm::atomically([&](stm::Tx& tx) { return dequeue(tx); });
  }

  [[nodiscard]] long size(stm::Tx& tx) const {
    if (obj_mode_) return static_cast<long>(tx.obj_queue_size(obj_));
    long n = 0;
    for (Node* c = head_.get(tx)->next.get(tx); c != nullptr;
         c = c->next.get(tx))
      ++n;
    return n;
  }

  // Atomic snapshot length that commits against concurrent producers and
  // consumers.
  long snapshot_size() {
    return stm::atomically(stm::Semantics::kSnapshot,
                           [&](stm::Tx& tx) { return size(tx); });
  }

  [[nodiscard]] long unsafe_size() const {
    if (obj_mode_) return static_cast<long>(obj_.unsafe_size());
    long n = 0;
    for (Node* c = head_.unsafe_load()->next.unsafe_load(); c != nullptr;
         c = c->next.unsafe_load())
      ++n;
    return n;
  }

 private:
  struct Node {
    const long value;
    stm::TVar<Node*> next;
    Node(long v, Node* n) : value(v), next(n) {}
  };

  stm::TVar<Node*> head_;
  stm::TVar<Node*> tail_;
  // Latched at construction; see TxHashSet::obj_mode_.  size(tx) is
  // const, so the object descriptor is mutable — semantic ops mutate it
  // only through the Tx commit path anyway.
  const bool obj_mode_ = stm::Runtime::instance().config.object_ops;
  mutable stm::ObjQueue obj_;
};

}  // namespace demotx::ds
