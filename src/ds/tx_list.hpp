// demotx:expert-file: transactional collection library: the per-operation semantics choice (paper Figs. 5/7/9) is this library's expert implementation; novices consume the typed set API
// Transactional sorted linked-list set — the paper's running example.
//
// The implementation *is* the sequential algorithm: the parse loop below
// is Algorithm 1/4 of the paper and the node (a key plus one TVar link) is
// Algorithm 2 (left) — "the existing data organization appears unchanged";
// all synchronization lives behind atomically().  Which semantics each
// operation runs under is a per-instance choice, giving exactly the
// paper's three configurations:
//
//   Fig. 5  classic parse + classic size      (TL2 alone)
//   Fig. 7  elastic parse + classic size
//   Fig. 9  elastic parse + snapshot size     (the full mix)
#pragma once

#include <climits>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "sync/set_interface.hpp"

namespace demotx::ds {

class TxList final : public ISet {
 public:
  struct Options {
    stm::Semantics parse = stm::Semantics::kElastic;
    stm::Semantics size_sem = stm::Semantics::kSnapshot;
  };

  TxList() : TxList(Options{}) {}
  explicit TxList(Options opts) : opts_(opts) {
    tail_ = new Node(LONG_MAX, nullptr);
    head_ = new Node(LONG_MIN, tail_);
  }

  ~TxList() override {  // quiescent teardown
    // Teardown contract: callers guarantee no transaction is in flight,
    // but committed removers may have handed nodes to the epoch limbo
    // that are not yet freed.  Drain the limbo *first* so the unsafe walk
    // below never deletes a node the reclaimer still owns (double free).
    mem::EpochManager::instance().drain();
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.unsafe_load();
      delete n;
      n = next;
    }
  }

  TxList(const TxList&) = delete;
  TxList& operator=(const TxList&) = delete;

  bool contains(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      return parse(tx, key).curr->key == key;
    });
  }

  bool add(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      const Position p = parse(tx, key);
      if (p.curr->key == key) return false;
      Node* n = tx.alloc<Node>(key, p.curr);
      p.prev->next.set(tx, n);
      return true;
    });
  }

  bool remove(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      const Position p = parse(tx, key);
      if (p.curr->key != key) return false;
      Node* succ = p.curr->next.get(tx);
      // Self-write the victim's link (same value): its version bump is
      // what makes any elastic transaction whose window still holds
      // curr->next — e.g. a concurrent remove of succ, whose cut dropped
      // the shared path prefix — fail validation instead of updating an
      // already-unlinked node.  Classic transactions don't need this (their
      // full read set covers the path), elastic ones do.
      p.curr->next.set(tx, succ);
      p.prev->next.set(tx, succ);
      tx.retire(p.curr);
      return true;
    });
  }

  // Atomic snapshot of the number of elements (paper Algorithm 5).
  long size() override {
    return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
      long n = 0;
      for (Node* curr = head_->next.get(tx); curr != tail_;
           curr = curr->next.get(tx))
        ++n;
      return n;
    });
  }

  // Atomic whole-structure iteration — the paper's Java-Iterator use case
  // for snapshot semantics (Sec. 5.1): the returned elements are exactly
  // the set's content at one instant, while updaters keep committing.
  std::vector<long> to_vector() {
    return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
      std::vector<long> out;
      for (Node* curr = head_->next.get(tx); curr != tail_;
           curr = curr->next.get(tx))
        out.push_back(curr->key);
      return out;
    });
  }

  long unsafe_size() override {
    long n = 0;
    for (Node* c = head_->next.unsafe_load(); c != tail_;
         c = c->next.unsafe_load())
      ++n;
    return n;
  }

  [[nodiscard]] const char* name() const override { return "tx-list"; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  struct Node {
    const long key;
    stm::TVar<Node*> next;
    Node(long k, Node* n) : key(k), next(n) {}
  };

  struct Position {
    Node* prev;
    Node* curr;
  };

  // The sequential search loop, unchanged (sentinels make it branch-free
  // on nullptr).  Under elastic semantics the two live links (prev->next,
  // curr->next) are exactly the sliding window.
  Position parse(stm::Tx& tx, long key) const DEMOTX_TX_TRAVERSAL {
    Node* prev = head_;
    Node* curr = prev->next.get(tx);
    while (curr->key < key) {
      prev = curr;
      curr = curr->next.get(tx);
    }
    return {prev, curr};
  }

  Options opts_;
  Node* head_;
  Node* tail_;
};

}  // namespace demotx::ds
