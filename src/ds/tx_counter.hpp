// Transactional counter / register utilities.
#pragma once

#include "stm/stm.hpp"

namespace demotx::ds {

// A shared counter whose reads can be taken as part of a snapshot (so a
// consistent multi-counter sum never blocks updates) — the pattern the
// TxHashSet uses for its O(buckets) size.
class TxCounter {
 public:
  explicit TxCounter(long v = 0) : v_(v) {}

  void add(stm::Tx& tx, long delta) { v_.set(tx, v_.get(tx) + delta); }
  [[nodiscard]] long get(stm::Tx& tx) const { return v_.get(tx); }
  [[nodiscard]] long unsafe_get() const { return v_.unsafe_load(); }

  long increment_atomically(long delta = 1) {
    return stm::atomically([&](stm::Tx& tx) {
      const long nv = v_.get(tx) + delta;
      v_.set(tx, nv);
      return nv;
    });
  }

 private:
  stm::TVar<long> v_;
};

}  // namespace demotx::ds
