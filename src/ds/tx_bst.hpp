// demotx:expert-file: transactional collection library: the per-operation semantics choice (paper Figs. 5/7/9) is this library's expert implementation; novices consume the typed set API
// Transactional external (leaf-oriented) binary search tree.
//
// Internal nodes route (left if key < node.key, right otherwise); leaves
// hold the elements (Ellen et al.'s shape, transactional instead of CAS
// based).  Operations follow the same recipe as the other search
// structures: an ELASTIC descent (the sliding window rides down the
// branch), then a nested CLASSIC phase that re-reads the splice-point
// links and the deletion marks under full validation before mutating.
// size() walks the leaves in a snapshot transaction.
#pragma once

#include <climits>
#include <vector>

#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "sync/set_interface.hpp"

namespace demotx::ds {

class TxBst final : public ISet {
 public:
  struct Options {
    stm::Semantics parse = stm::Semantics::kElastic;
    stm::Semantics size_sem = stm::Semantics::kSnapshot;
  };

  TxBst() : TxBst(Options{}) {}
  explicit TxBst(Options opts) : opts_(opts) {
    // The tree always contains the sentinel leaf LONG_MAX, so descents
    // never hit an empty root and user keys (< LONG_MAX) never match it.
    root_.unsafe_store(new Node(LONG_MAX, nullptr, nullptr));
  }

  ~TxBst() override {
    // Quiescent teardown: free the epoch limbo before the unsafe walk so
    // retired-but-unreclaimed nodes are not deleted twice.
    mem::EpochManager::instance().drain();
    destroy(root_.unsafe_load());
  }

  TxBst(const TxBst&) = delete;
  TxBst& operator=(const TxBst&) = delete;

  bool contains(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      Node* n = root_.get(tx);
      while (!is_leaf(tx, n)) n = child_for(tx, n, key);
      return n->key == key;
    });
  }

  bool add(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      // Elastic descent to the candidate parent/leaf (hints).
      Node* parent = nullptr;
      Node* leaf = root_.get(tx);
      while (!is_leaf(tx, leaf)) {
        parent = leaf;
        leaf = child_for(tx, leaf, key);
      }
      if (leaf->key == key) return false;
      // Classic splice: revalidate the hint chain, then link.
      return stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& ctx) {
        stm::TVar<Node*>* slot = &root_;
        if (parent != nullptr) {
          if (parent->marked.get(ctx) != 0) ctx.abort_self();  // stale hint
          slot = child_slot(ctx, parent, key);
        }
        Node* curr = slot->get(ctx);
        // The subtree may have changed: keep descending classically.
        while (!is_leaf(ctx, curr)) {
          if (curr->marked.get(ctx) != 0) ctx.abort_self();
          slot = child_slot(ctx, curr, key);
          curr = slot->get(ctx);
        }
        if (curr->key == key) return false;
        Node* new_leaf = ctx.alloc<Node>(key, nullptr, nullptr);
        Node* small = key < curr->key ? new_leaf : curr;
        Node* big = key < curr->key ? curr : new_leaf;
        Node* internal = ctx.alloc<Node>(big->key, small, big);
        slot->set(ctx, internal);
        return true;
      });
    });
  }

  bool remove(long key) override {
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      // Elastic descent remembering grandparent and parent hints.
      Node* gparent = nullptr;
      Node* parent = nullptr;
      Node* leaf = root_.get(tx);
      while (!is_leaf(tx, leaf)) {
        gparent = parent;
        parent = leaf;
        leaf = child_for(tx, leaf, key);
      }
      if (leaf->key != key) return false;
      (void)gparent;
      return stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& ctx) {
        // Re-descend classically from the root: hints under deletion are
        // cheap to rebuild and the classic read set validates the path we
        // actually splice.  (Depth is O(log n); only this final descent
        // pays classic validation.)
        stm::TVar<Node*>* gslot = &root_;
        Node* p = gslot->get(ctx);
        if (is_leaf(ctx, p)) return false;  // only the sentinel left
        stm::TVar<Node*>* pslot = child_slot(ctx, p, key);
        Node* l = pslot->get(ctx);
        while (!is_leaf(ctx, l)) {
          gslot = pslot;
          p = l;
          pslot = child_slot(ctx, p, key);
          l = pslot->get(ctx);
        }
        if (l->key != key) return false;
        if (p->marked.get(ctx) != 0) ctx.abort_self();
        // Splice p out: the grandparent slot adopts l's sibling.
        Node* sibling = (pslot == &p->left) ? p->right.get(ctx)
                                            : p->left.get(ctx);
        p->marked.set(ctx, 1);  // conflicts with every stale-hint writer
        gslot->set(ctx, sibling);
        ctx.retire(p);
        ctx.retire(l);
        return true;
      });
    });
  }

  long size() override {
    return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
      // Iterative leaf walk (explicit stack): count all leaves except the
      // sentinel.
      long n = 0;
      std::vector<Node*> stack{root_.get(tx)};
      while (!stack.empty()) {
        Node* node = stack.back();
        stack.pop_back();
        Node* l = node->left.get(tx);
        Node* r = node->right.get(tx);
        if (l == nullptr && r == nullptr) {
          if (node->key != LONG_MAX) ++n;
        } else {
          stack.push_back(l);
          stack.push_back(r);
        }
      }
      return n;
    });
  }

  long unsafe_size() override {
    long n = 0;
    std::vector<Node*> stack{root_.unsafe_load()};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      Node* l = node->left.unsafe_load();
      Node* r = node->right.unsafe_load();
      if (l == nullptr && r == nullptr) {
        if (node->key != LONG_MAX) ++n;
      } else {
        stack.push_back(l);
        stack.push_back(r);
      }
    }
    return n;
  }

  [[nodiscard]] const char* name() const override { return "tx-bst"; }

 private:
  struct Node {
    const long key;
    stm::TVar<Node*> left;
    stm::TVar<Node*> right;
    stm::TVar<long> marked{0};  // set when an internal node is spliced out
    Node(long k, Node* l, Node* r) : key(k), left(l), right(r) {}
  };

  static bool is_leaf(stm::Tx& tx, Node* n) DEMOTX_TX_TRAVERSAL {
    return n->left.get(tx) == nullptr;
  }

  static Node* child_for(stm::Tx& tx, Node* n, long key) DEMOTX_TX_TRAVERSAL {
    return key < n->key ? n->left.get(tx) : n->right.get(tx);
  }

  static stm::TVar<Node*>* child_slot(stm::Tx&, Node* n, long key) {
    return key < n->key ? &n->left : &n->right;
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.unsafe_load());
    destroy(n->right.unsafe_load());
    delete n;
  }

  Options opts_;
  stm::TVar<Node*> root_;
};

}  // namespace demotx::ds
