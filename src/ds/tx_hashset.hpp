// demotx:expert-file: transactional collection library: the per-operation semantics choice (paper Figs. 5/7/9) is this library's expert implementation; novices consume the typed set API
// Transactional hash set: fixed bucket array of transactional sorted
// lists plus per-bucket element counters.
//
// Demonstrates mixing semantics beyond the flat list: bucket operations
// parse elastically (short chains, false conflicts still possible under
// collisions), the counter update rides in the same transaction (the
// first write ends the elastic phase), and size() sums all counters in a
// snapshot transaction — an O(buckets) atomic size that never aborts
// updates.
#pragma once

#include <climits>
#include <cstddef>
#include <memory>
#include <vector>

#include "ds/tx_counter.hpp"
#include "mem/epoch.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "sync/set_interface.hpp"

namespace demotx::ds {

// Object-ops key mapping (objstm.hpp): a bias bijection that keeps the
// signed key range clear of the sentinel keys near ~0 (a raw cast would
// alias key -1 with kObjSizeKey).  The list containers already reserve
// LONG_MIN/LONG_MAX as chain sentinels, so no real key lands near the
// top of the mapped range either.
[[nodiscard]] inline std::uint64_t obj_key_of(long key) {
  return static_cast<std::uint64_t>(key) + (std::uint64_t{1} << 63);
}

class TxHashSet final : public ISet {
 public:
  struct Options {
    std::size_t buckets = 64;
    stm::Semantics parse = stm::Semantics::kElastic;
    stm::Semantics size_sem = stm::Semantics::kSnapshot;
  };

  TxHashSet() : TxHashSet(Options{}) {}
  explicit TxHashSet(Options opts) : opts_(opts), buckets_(opts.buckets) {
    for (auto& b : buckets_) {
      b.tail = new Node(LONG_MAX, nullptr);
      b.head = new Node(LONG_MIN, b.tail);
    }
  }

  ~TxHashSet() override {
    // Quiescent teardown: free the epoch limbo before the unsafe walk so
    // retired-but-unreclaimed nodes are not deleted twice.
    mem::EpochManager::instance().drain();
    for (auto& b : buckets_) {
      Node* n = b.head;
      while (n != nullptr) {
        Node* next = n->next.unsafe_load();
        delete n;
        n = next;
      }
    }
  }

  TxHashSet(const TxHashSet&) = delete;
  TxHashSet& operator=(const TxHashSet&) = delete;

  bool contains(long key) override {
    if (obj_mode_) {
      // Object-ops tier: one semantic membership read instead of a chain
      // parse — no structural read set, so a commit elsewhere in the
      // bucket cannot conflict with this lookup.
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_contains(obj_, obj_key_of(key));
      });
    }
    Bucket& b = bucket_for(key);
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      return parse(tx, b, key).curr->key == key;
    });
  }

  bool add(long key) override {
    if (obj_mode_) {
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_insert(obj_, obj_key_of(key));
      });
    }
    Bucket& b = bucket_for(key);
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      const Position p = parse(tx, b, key);
      if (p.curr->key == key) return false;
      p.prev->next.set(tx, tx.alloc<Node>(key, p.curr));
      b.count.add(tx, 1);
      return true;
    });
  }

  bool remove(long key) override {
    if (obj_mode_) {
      return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
        return tx.obj_erase(obj_, obj_key_of(key));
      });
    }
    Bucket& b = bucket_for(key);
    return stm::atomically(opts_.parse, [&](stm::Tx& tx) {
      const Position p = parse(tx, b, key);
      if (p.curr->key != key) return false;
      Node* succ = p.curr->next.get(tx);
      // Version-bump the victim's link so cut-away elastic windows of
      // concurrent updaters conflict on it (see TxList::remove).
      p.curr->next.set(tx, succ);
      p.prev->next.set(tx, succ);
      b.count.add(tx, -1);
      tx.retire(p.curr);
      return true;
    });
  }

  long size() override {
    if (obj_mode_) {
      // The size ring makes this a single semantic read under either
      // tier; snapshot keeps it abort-free against concurrent updates.
      return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
        return static_cast<long>(tx.obj_size(obj_));
      });
    }
    return stm::atomically(opts_.size_sem, [&](stm::Tx& tx) {
      long n = 0;
      for (Bucket& b : buckets_) n += b.count.get(tx);
      return n;
    });
  }

  long unsafe_size() override {
    if (obj_mode_) return static_cast<long>(obj_.unsafe_size());
    long n = 0;
    for (Bucket& b : buckets_) n += b.count.unsafe_get();
    return n;
  }

  [[nodiscard]] const char* name() const override { return "tx-hashset"; }

 private:
  struct Node {
    const long key;
    stm::TVar<Node*> next;
    Node(long k, Node* n) : key(k), next(n) {}
  };

  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
    TxCounter count;
  };

  struct Position {
    Node* prev;
    Node* curr;
  };

  Bucket& bucket_for(long key) {
    auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return buckets_[static_cast<std::size_t>(h >> 32) % buckets_.size()];
  }

  static Position parse(stm::Tx& tx, Bucket& b, long key) DEMOTX_TX_TRAVERSAL {
    Node* prev = b.head;
    Node* curr = prev->next.get(tx);
    while (curr->key < key) {
      prev = curr;
      curr = curr->next.get(tx);
    }
    return {prev, curr};
  }

  Options opts_;
  std::vector<Bucket> buckets_;
  // Object-ops opt-in is latched at construction (Config::object_ops /
  // DEMOTX_OBJECT_OPS): a per-op config read could flip the
  // representation mid-lifetime.  Off-path behaviour is bit-identical to
  // the cell tier — obj_ then never sees a transaction.
  const bool obj_mode_ = stm::Runtime::instance().config.object_ops;
  stm::ObjSet obj_;
};

}  // namespace demotx::ds
