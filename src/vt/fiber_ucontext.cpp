// Portable ucontext-based fiber implementation, selected with
// -DDEMOTX_USE_UCONTEXT=ON.  Slower than the asm switch (swapcontext
// performs a sigprocmask syscall) but works on any POSIX platform.
#include "vt/fiber.hpp"

#ifdef DEMOTX_USE_UCONTEXT

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>

namespace demotx::vt {

namespace {

thread_local Fiber* tls_running = nullptr;

[[noreturn]] void die(const char* msg) {
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

Fiber* Fiber::running() { return tls_running; }

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  const std::size_t ps = page_size();
  const std::size_t usable = (stack_bytes + ps - 1) / ps * ps;
  map_bytes_ = usable + ps;
  void* mem = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc{};
  if (mprotect(mem, ps, PROT_NONE) != 0) {
    munmap(mem, map_bytes_);
    throw std::bad_alloc{};
  }
  stack_base_ = mem;

  if (getcontext(&self_) != 0) die("demotx::vt::Fiber: getcontext failed");
  self_.uc_stack.ss_sp = static_cast<char*>(mem) + ps;
  self_.uc_stack.ss_size = usable;
  self_.uc_link = nullptr;
  makecontext(&self_, reinterpret_cast<void (*)()>(&Fiber::entry), 0);
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, map_bytes_);
}

void Fiber::resume() {
  if (finished_) die("demotx::vt::Fiber: resume() on a finished fiber");
  Fiber* prev = tls_running;
  tls_running = this;
  if (swapcontext(&caller_, &self_) != 0)
    die("demotx::vt::Fiber: swapcontext failed");
  tls_running = prev;
}

void Fiber::yield() {
  if (tls_running != this) die("demotx::vt::Fiber: yield() outside the fiber");
  if (swapcontext(&self_, &caller_) != 0)
    die("demotx::vt::Fiber: swapcontext failed");
}

void Fiber::entry() {
  Fiber* self = tls_running;
  try {
    self->fn_();
  } catch (const FiberStopped&) {
  } catch (...) {
    die("demotx::vt::Fiber: uncaught exception escaped a fiber");
  }
  self->finished_ = true;
  self->yield();
  die("demotx::vt::Fiber: finished fiber resumed");
}

}  // namespace demotx::vt

#endif  // DEMOTX_USE_UCONTEXT
