// Cooperative fibers (stackful coroutines) used by the virtual-time
// concurrency simulator.  Each logical thread of a simulated machine runs
// on its own fiber; the scheduler (scheduler.hpp) resumes fibers one
// shared-memory access step at a time.
//
// Two implementations are provided:
//   * a ~20ns hand-rolled x86-64 stack switch (fiber_switch_x86_64.S), the
//     default, fast enough for hundreds of millions of switches per bench;
//   * a portable ucontext fallback (-DDEMOTX_USE_UCONTEXT=ON).
#pragma once

#include <cstddef>
#include <functional>

#ifdef DEMOTX_USE_UCONTEXT
#include <ucontext.h>
#endif

// Under ASan every stack switch must be announced with
// __sanitizer_start/finish_switch_fiber, or the first exception thrown on
// a fiber stack makes ASan unpoison the wrong region and crash.
#if defined(__SANITIZE_ADDRESS__)
#define DEMOTX_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DEMOTX_ASAN_FIBERS 1
#endif
#endif

namespace demotx::vt {

inline constexpr std::size_t kDefaultFiberStack = 256 * 1024;

// Thrown into a fiber (from its next yield point) when the scheduler wants
// it to unwind and terminate early; RAII cleanup on the fiber stack runs.
struct FiberStopped {};

class Fiber {
 public:
  using Fn = std::function<void()>;

  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultFiberStack);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the calling context into the fiber.  Returns when the
  // fiber calls yield() or its function returns.  Must not be called on a
  // finished fiber.
  void resume();

  // Called from inside the fiber: switches back to whoever resumed it.
  void yield();

  [[nodiscard]] bool finished() const { return finished_; }

  // The fiber currently executing on this OS thread, or nullptr when
  // running on the thread's native stack.
  static Fiber* running();

 private:
  static void entry();

  Fn fn_;
  bool finished_ = false;
  void* stack_base_ = nullptr;  // mmap'ed region including guard page
  std::size_t map_bytes_ = 0;

#ifdef DEMOTX_USE_UCONTEXT
  ucontext_t self_{};
  ucontext_t caller_{};
#else
  void* sp_ = nullptr;         // fiber's saved stack pointer
  void* caller_sp_ = nullptr;  // resumer's saved stack pointer
#endif

#ifdef DEMOTX_ASAN_FIBERS
  // ASan bookkeeping across stack switches: each side's fake-stack handle
  // is saved when it departs, and the fiber remembers the resumer's stack
  // bounds so yield() can announce the destination.
  void* asan_fake_caller_ = nullptr;
  void* asan_fake_self_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
#endif
};

}  // namespace demotx::vt
