// Simulation-aware synchronization primitives.
//
// Baseline data structures must not block the cooperative fiber scheduler,
// so all locking here is spin-based with a vt::access() yield in every
// retry — under simulation a waiter burns virtual cycles (as a real waiter
// burns real ones) while the holder keeps making progress; in real mode the
// yield is free and the spin uses the pause instruction.
#pragma once

#include <atomic>
#include <cstdint>

#include "vt/context.hpp"

namespace demotx::vt {

// Test-and-set spin lock; one access-cycle per attempt, one per unlock.
class SpinLock {
 public:
  void lock() {
    for (;;) {
      access();
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      cpu_relax();
    }
  }

  bool try_lock() {
    access();
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() {
    access();
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

// Exponential backoff.  In simulation a backoff step charges virtual
// cycles (the thread is stalled, not parallel); in real mode it spins on
// pause.  Deterministic: no randomness, callers inject per-thread jitter
// via the seed if they need it.
class Backoff {
 public:
  explicit Backoff(unsigned min_delay = 1, unsigned max_delay = 1024)
      : delay_(min_delay), max_(max_delay) {}

  void wait() {
    if (in_sim()) {
      access(delay_);
    } else {
      for (unsigned i = 0; i < delay_; ++i) cpu_relax();
    }
    if (delay_ < max_) delay_ *= 2;
  }

  void reset(unsigned min_delay = 1) { delay_ = min_delay; }

  [[nodiscard]] unsigned current_delay() const { return delay_; }

 private:
  unsigned delay_;
  unsigned max_;
};

}  // namespace demotx::vt
