// Simulation-aware synchronization primitives.
//
// Baseline data structures must not block the cooperative fiber scheduler,
// so all locking here is spin-based with a vt::access() yield in every
// retry — under simulation a waiter burns virtual cycles (as a real waiter
// burns real ones) while the holder keeps making progress; in real mode the
// yield is free and the spin uses the pause instruction.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/annotations.hpp"
#include "vt/context.hpp"

namespace demotx::vt {

// Test-and-set spin lock; one access-cycle per attempt, one per unlock.
class DEMOTX_CAPABILITY("mutex") SpinLock {
 public:
  void lock() DEMOTX_ACQUIRE() {
    for (;;) {
      access();
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      cpu_relax();
    }
  }

  bool try_lock() DEMOTX_TRY_ACQUIRE(true) {
    access();
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() DEMOTX_RELEASE() {
    access();
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard over SpinLock that thread-safety analysis can see.
// libstdc++'s std::lock_guard carries no TSA attributes, so annotated
// code uses this instead; it is otherwise a drop-in replacement.
class DEMOTX_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) DEMOTX_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinGuard() DEMOTX_RELEASE() { lock_.unlock(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

// Exponential backoff.  In simulation a backoff step charges virtual
// cycles (the thread is stalled, not parallel); in real mode it spins on
// pause.  Deterministic: no randomness, callers inject per-thread jitter
// via the seed if they need it.
class Backoff {
 public:
  explicit Backoff(unsigned min_delay = 1, unsigned max_delay = 1024)
      : delay_(min_delay), max_(max_delay) {}

  void wait() {
    if (in_sim()) {
      access(delay_);
    } else {
      for (unsigned i = 0; i < delay_; ++i) cpu_relax();
    }
    if (delay_ < max_) delay_ *= 2;
  }

  void reset(unsigned min_delay = 1) { delay_ = min_delay; }

  [[nodiscard]] unsigned current_delay() const { return delay_; }

 private:
  unsigned delay_;
  unsigned max_;
};

}  // namespace demotx::vt
