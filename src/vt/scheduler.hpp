// Virtual-time scheduler: the testbed substitute.
//
// The paper's evaluation ran on a 64-way Niagara 2.  This container has a
// single core, so wall-clock scalability is unmeasurable; instead the
// scheduler executes N logical threads (fibers) under a deterministic
// interleaving where each shared-memory access costs one virtual cycle and
// all runnable threads advance in parallel in virtual time (round-robin =
// an ideal N-way machine with uniform memory cost).  Throughput at N
// threads is committed-operations / virtual-cycles.  Because the real STM
// and lock code runs under a faithful access-granularity interleaving,
// aborts, elastic cuts, snapshot fallbacks and lock hand-overs arise
// exactly as they would under true concurrency.
//
// Policies:
//   RoundRobin — every runnable fiber advances one access per cycle;
//                used by all figure benchmarks.
//   Random     — uniformly random runnable fiber each step (seeded);
//                used by property tests as a deterministic adversary.
//   Scripted   — an explicit sequence of logical-thread steps, falling
//                back to RoundRobin when exhausted; used by tests that
//                need one exact interleaving (e.g. the paper's history H).
//   Pct        — PCT (probabilistic concurrency testing, Burckhardt et
//                al., ASPLOS'10): each thread gets a random priority and
//                the highest-priority runnable thread always runs; at d-1
//                seeded change points the running thread's priority drops
//                below everyone's.  Finds any bug of preemption depth d
//                with probability >= 1/(n * k^(d-1)) per schedule, which
//                is what makes a fixed-iteration exploration budget
//                meaningful.  Used by the check/ explorer.
//   Choice     — every scheduling decision with more than one runnable
//                thread is delegated to Options::choice_fn.  This is the
//                hook the check/ explorer builds its bounded-exhaustive
//                DFS and its deterministic preemption-trace replay on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "vt/context.hpp"
#include "vt/fiber.hpp"

namespace demotx::vt {

class Scheduler {
 public:
  enum class Policy { kRoundRobin, kRandom, kScripted, kPct, kChoice };

  // One scheduling decision at a choice point (>= 2 runnable threads).
  // Forced steps (exactly one runnable thread) consume no choice index,
  // so the sequence of Decisions fully determines the schedule and is
  // stable under replay.
  struct Decision {
    std::uint64_t runnable_mask;  // bit i set = logical thread i runnable
    int chosen;
    int last;  // thread that ran the previous step (-1 at the first)
  };

  // Context handed to Options::choice_fn at each choice point.
  struct ChoicePoint {
    const int* runnable;    // ascending logical-thread ids
    int n;                  // >= 2
    int last;               // thread that ran the previous step (-1 first)
    std::uint64_t index;    // 0-based choice-point index
  };

  struct Options {
    Policy policy = Policy::kRoundRobin;
    std::uint64_t seed = 1;                  // for kRandom / kPct
    std::uint64_t max_cycles = UINT64_MAX;   // safety stop (deadlock brake)
    std::vector<int> script;                 // for kScripted
    std::size_t stack_bytes = kDefaultFiberStack;
    // kPct: number of priority change points (bug depth - 1) and the
    // horizon (in choice points) the change points are sampled from.
    int pct_change_points = 2;
    std::uint64_t pct_horizon = 2048;
    // kPct spin-breaker: strict priorities livelock when the running task
    // spins on state only a lower-priority task can change (an STM
    // abort-retry loop waiting on a preempted lock holder).  After this
    // many consecutive picks of one task with others runnable, it is
    // demoted below everyone — PCT's standard treatment of busy-wait
    // loops as priority-yield points, applied without annotations.  Set
    // well above any straight-line transaction length so legal schedules
    // are unaffected.
    std::uint64_t pct_fair_window = 1000;
    // kChoice: returns the id to run, one of cp.runnable[0..n).
    std::function<int(const ChoicePoint& cp)> choice_fn;
    // When non-null, every choice point is appended (all policies) —
    // the raw material for replay tokens and DFS frontier expansion.
    std::vector<Decision>* decision_log = nullptr;
    // Crash injection (durability testing): at the first scheduling step
    // whose virtual time reaches crash_at_cycle, on_crash fires ONCE —
    // on the scheduler's own stack, between fiber steps, so it observes
    // the exact machine state at that instant (a committer may be
    // mid-flush, a group may be half forced: that is the point) — and
    // then every fiber is unwound as if the machine lost power.  The
    // durable image a WAL captured in on_crash is all recovery gets.
    // Overridable per run; DEMOTX_CRASH_AT feeds it via the explorer.
    std::uint64_t crash_at_cycle = UINT64_MAX;
    std::function<void()> on_crash;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Adds a logical thread running fn(id).  Must be called before run().
  // Returns the logical thread id (0-based, dense).
  int spawn(std::function<void(int)> fn);

  // Runs all fibers to completion (or to max_cycles, after which fibers
  // are unwound via FiberStopped at their next access).
  void run();

  // Current virtual time.  Callable from inside fibers (e.g. by a
  // benchmark loop deciding when to stop) and from outside after run().
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  // True if run() hit max_cycles before all fibers finished.
  [[nodiscard]] bool hit_cycle_limit() const { return hit_limit_; }

  // True if the crash injector fired (crash_at_cycle reached).
  [[nodiscard]] bool crashed() const { return crashed_; }

  // True once the simulation is stopping (brake, crash or stop()):
  // pinned waits must observe this and stop blocking on other fibers.
  [[nodiscard]] bool stop_requested() const { return stop_; }

  // Asks all fibers to unwind at their next access.  Callable from inside
  // a fiber.
  void request_stop() { stop_ = true; }

  // Called by vt::access() from fibers; charges virtual time and yields.
  void on_access(Context& c, unsigned weight);

  // Called by vt::sleep_until() from fibers; parks the fiber until
  // virtual time wake_at under the due-honoring policies (RoundRobin /
  // Scripted), else yields once (exploration owns the interleaving).
  void on_sleep(Context& c, std::uint64_t wake_at);

 private:
  struct Task {
    std::unique_ptr<Fiber> fiber;
    Context ctx;
    std::uint64_t due = 0;  // virtual time at which this task runs next
    bool finished = false;
  };

  int pick_next();  // -1 when nothing runnable
  void resume_task(int id);
  void pct_init();
  int pct_pick(const int* runnable, int n);
  void log_decision(const int* runnable, int n, int chosen);

  Options opts_;
  std::vector<std::unique_ptr<Task>> tasks_;
  // Min-heap of (due, id); rebuilt incrementally as tasks yield.
  using HeapEntry = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::size_t script_pos_ = 0;
  std::uint64_t rng_ = 1;
  std::uint64_t cycles_ = 0;
  std::size_t live_ = 0;
  bool running_ = false;
  bool stop_ = false;
  bool hit_limit_ = false;
  bool crashed_ = false;
  // kPct state: per-task priorities (larger runs first; signed so
  // spin-breaker demotions can always go below everything) and the
  // sorted step numbers at which the running task's priority is demoted.
  std::vector<std::int64_t> pct_prio_;
  std::vector<std::uint64_t> pct_change_steps_;
  bool pct_ready_ = false;
  std::int64_t pct_fair_next_ = 0;  // next (ever-lower) demotion priority
  int pct_streak_task_ = -1;
  std::uint64_t pct_streak_ = 0;
  std::uint64_t steps_ = 0;        // scheduling steps taken (all policies)
  std::uint64_t choice_index_ = 0; // choice points consumed (>=2 runnable)
  int last_ran_ = -1;
};

// Convenience: run `threads` logical threads over fn(id) under the given
// scheduler options; returns total virtual cycles.
std::uint64_t run_sim(int threads, std::function<void(int)> fn,
                      Scheduler::Options opts = {});

// Real-mode counterpart: spawns OS threads, each registered as a logical
// thread, and joins them.
void run_threads(int threads, const std::function<void(int)>& fn);

}  // namespace demotx::vt
