// Virtual-time scheduler: the testbed substitute.
//
// The paper's evaluation ran on a 64-way Niagara 2.  This container has a
// single core, so wall-clock scalability is unmeasurable; instead the
// scheduler executes N logical threads (fibers) under a deterministic
// interleaving where each shared-memory access costs one virtual cycle and
// all runnable threads advance in parallel in virtual time (round-robin =
// an ideal N-way machine with uniform memory cost).  Throughput at N
// threads is committed-operations / virtual-cycles.  Because the real STM
// and lock code runs under a faithful access-granularity interleaving,
// aborts, elastic cuts, snapshot fallbacks and lock hand-overs arise
// exactly as they would under true concurrency.
//
// Policies:
//   RoundRobin — every runnable fiber advances one access per cycle;
//                used by all figure benchmarks.
//   Random     — uniformly random runnable fiber each step (seeded);
//                used by property tests as a deterministic adversary.
//   Scripted   — an explicit sequence of logical-thread steps, falling
//                back to RoundRobin when exhausted; used by tests that
//                need one exact interleaving (e.g. the paper's history H).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "vt/context.hpp"
#include "vt/fiber.hpp"

namespace demotx::vt {

class Scheduler {
 public:
  enum class Policy { kRoundRobin, kRandom, kScripted };

  struct Options {
    Policy policy = Policy::kRoundRobin;
    std::uint64_t seed = 1;                  // for kRandom
    std::uint64_t max_cycles = UINT64_MAX;   // safety stop (deadlock brake)
    std::vector<int> script;                 // for kScripted
    std::size_t stack_bytes = kDefaultFiberStack;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Adds a logical thread running fn(id).  Must be called before run().
  // Returns the logical thread id (0-based, dense).
  int spawn(std::function<void(int)> fn);

  // Runs all fibers to completion (or to max_cycles, after which fibers
  // are unwound via FiberStopped at their next access).
  void run();

  // Current virtual time.  Callable from inside fibers (e.g. by a
  // benchmark loop deciding when to stop) and from outside after run().
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  // True if run() hit max_cycles before all fibers finished.
  [[nodiscard]] bool hit_cycle_limit() const { return hit_limit_; }

  // Asks all fibers to unwind at their next access.  Callable from inside
  // a fiber.
  void request_stop() { stop_ = true; }

  // Called by vt::access() from fibers; charges virtual time and yields.
  void on_access(Context& c, unsigned weight);

 private:
  struct Task {
    std::unique_ptr<Fiber> fiber;
    Context ctx;
    std::uint64_t due = 0;  // virtual time at which this task runs next
    bool finished = false;
  };

  int pick_next();  // -1 when nothing runnable
  void resume_task(int id);

  Options opts_;
  std::vector<std::unique_ptr<Task>> tasks_;
  // Min-heap of (due, id); rebuilt incrementally as tasks yield.
  using HeapEntry = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::size_t script_pos_ = 0;
  std::uint64_t rng_ = 1;
  std::uint64_t cycles_ = 0;
  std::size_t live_ = 0;
  bool running_ = false;
  bool stop_ = false;
  bool hit_limit_ = false;
};

// Convenience: run `threads` logical threads over fn(id) under the given
// scheduler options; returns total virtual cycles.
std::uint64_t run_sim(int threads, std::function<void(int)> fn,
                      Scheduler::Options opts = {});

// Real-mode counterpart: spawns OS threads, each registered as a logical
// thread, and joins them.
void run_threads(int threads, const std::function<void(int)>& fn);

}  // namespace demotx::vt
