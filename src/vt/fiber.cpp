#include "vt/fiber.hpp"

#ifndef DEMOTX_USE_UCONTEXT

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <utility>

#ifdef DEMOTX_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" void demotx_fiber_switch(void** save_sp, void* load_sp);

namespace demotx::vt {

namespace {

thread_local Fiber* tls_running = nullptr;

[[noreturn]] void die(const char* msg) {
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

Fiber* Fiber::running() { return tls_running; }

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  const std::size_t ps = page_size();
  const std::size_t usable = (stack_bytes + ps - 1) / ps * ps;
  map_bytes_ = usable + ps;  // one guard page below the stack
  void* mem = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc{};
  if (mprotect(mem, ps, PROT_NONE) != 0) {
    munmap(mem, map_bytes_);
    throw std::bad_alloc{};
  }
  stack_base_ = mem;

  // Craft an initial frame so that the first resume() "returns" into
  // Fiber::entry.  Layout, ascending from sp_: r15 r14 r13 r12 rbx rbp
  // [return address = entry] [16-byte alignment filler].
  auto top = reinterpret_cast<std::uintptr_t>(mem) + map_bytes_;
  top &= ~std::uintptr_t{15};
  auto* slots = reinterpret_cast<void**>(top) - 8;
  for (int i = 0; i < 6; ++i) slots[i] = nullptr;
  slots[6] = reinterpret_cast<void*>(&Fiber::entry);
  slots[7] = nullptr;  // never used: entry() does not return
  sp_ = slots;
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, map_bytes_);
}

void Fiber::resume() {
  if (finished_) die("demotx::vt::Fiber: resume() on a finished fiber");
  Fiber* prev = tls_running;
  tls_running = this;
#ifdef DEMOTX_ASAN_FIBERS
  const std::size_t ps = page_size();
  __sanitizer_start_switch_fiber(
      &asan_fake_caller_, static_cast<const char*>(stack_base_) + ps,
      map_bytes_ - ps);
#endif
  demotx_fiber_switch(&caller_sp_, sp_);
#ifdef DEMOTX_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(asan_fake_caller_, nullptr, nullptr);
#endif
  tls_running = prev;
}

void Fiber::yield() {
  if (tls_running != this) die("demotx::vt::Fiber: yield() outside the fiber");
#ifdef DEMOTX_ASAN_FIBERS
  // A finished fiber never runs again: pass nullptr so ASan frees its
  // fake-stack bookkeeping instead of saving it.
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fake_self_,
                                 asan_caller_bottom_, asan_caller_size_);
#endif
  demotx_fiber_switch(&sp_, caller_sp_);
#ifdef DEMOTX_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(asan_fake_self_, &asan_caller_bottom_,
                                  &asan_caller_size_);
#endif
}

void Fiber::entry() {
  Fiber* self = tls_running;
#ifdef DEMOTX_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_caller_bottom_,
                                  &self->asan_caller_size_);
#endif
  try {
    self->fn_();
  } catch (const FiberStopped&) {
    // Cooperative early termination requested by the scheduler.
  } catch (...) {
    die("demotx::vt::Fiber: uncaught exception escaped a fiber");
  }
  self->finished_ = true;
  self->yield();
  die("demotx::vt::Fiber: finished fiber resumed");
}

}  // namespace demotx::vt

#endif  // !DEMOTX_USE_UCONTEXT
