#include "vt/scheduler.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace demotx::vt {

namespace {

[[noreturn]] void die(const char* msg) {
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

Scheduler::Scheduler(Options opts) : opts_(std::move(opts)) {
  rng_ = opts_.seed != 0 ? opts_.seed : 0x9e3779b97f4a7c15ULL;
}

Scheduler::~Scheduler() {
  // Fibers must not outlive in a suspended state with live RAII frames;
  // run() unwinds them.  If run() was never called there is nothing to do.
}

int Scheduler::spawn(std::function<void(int)> fn) {
  if (running_) die("demotx::vt::Scheduler: spawn() during run()");
  const int id = static_cast<int>(tasks_.size());
  if (id >= kMaxThreads) die("demotx::vt::Scheduler: too many logical threads");
  auto task = std::make_unique<Task>();
  task->ctx.id = id;
  task->ctx.sched = this;
  Task* t = task.get();
  task->fiber = std::make_unique<Fiber>(
      [fn = std::move(fn), id] { fn(id); }, opts_.stack_bytes);
  task->ctx.fiber = task->fiber.get();
  tasks_.push_back(std::move(task));
  heap_.emplace(t->due, id);
  ++live_;
  return id;
}

void Scheduler::on_access(Context& c, unsigned weight) {
  if (c.stopping) return;  // unwinding: don't throw from destructors
  if (stop_) {
    c.stopping = true;
    throw FiberStopped{};
  }
  Task& t = *tasks_[static_cast<std::size_t>(c.id)];
  t.due += weight;
  c.fiber->yield();
}

int Scheduler::pick_next() {
  switch (opts_.policy) {
    case Policy::kScripted:
      while (script_pos_ < opts_.script.size()) {
        const int id = opts_.script[script_pos_++];
        if (id >= 0 && static_cast<std::size_t>(id) < tasks_.size() &&
            !tasks_[static_cast<std::size_t>(id)]->finished)
          return id;
      }
      [[fallthrough]];  // script exhausted: finish round-robin
    case Policy::kRoundRobin: {
      while (!heap_.empty()) {
        auto [due, id] = heap_.top();
        heap_.pop();
        Task& t = *tasks_[static_cast<std::size_t>(id)];
        if (t.finished || t.due != due) continue;  // stale entry
        return id;
      }
      return -1;
    }
    case Policy::kRandom: {
      // Collect runnable ids; fine for test-scale thread counts.
      int runnable[kMaxThreads];
      int n = 0;
      for (const auto& t : tasks_)
        if (!t->finished) runnable[n++] = t->ctx.id;
      if (n == 0) return -1;
      return runnable[xorshift64(rng_) % static_cast<std::uint64_t>(n)];
    }
  }
  return -1;
}

void Scheduler::resume_task(int id) {
  Task& t = *tasks_[static_cast<std::size_t>(id)];
  cycles_ = std::max(cycles_, t.due);
  Context* prev = current();
  set_current(&t.ctx);
  t.fiber->resume();
  set_current(prev);
  if (t.fiber->finished()) {
    t.finished = true;
    --live_;
  } else if (opts_.policy != Policy::kRandom) {
    heap_.emplace(t.due, id);
  }
}

void Scheduler::run() {
  if (Fiber::running() != nullptr)
    die("demotx::vt::Scheduler: run() called from inside a fiber");
  running_ = true;
  while (live_ > 0) {
    if (!stop_ && cycles_ >= opts_.max_cycles) {
      hit_limit_ = true;
      stop_ = true;
    }
    const int id = pick_next();
    if (id < 0) {
      if (live_ > 0)
        die("demotx::vt::Scheduler: no runnable fiber but tasks remain");
      break;
    }
    resume_task(id);
  }
  running_ = false;
}

std::uint64_t run_sim(int threads, std::function<void(int)> fn,
                      Scheduler::Options opts) {
  Scheduler sched(std::move(opts));
  for (int i = 0; i < threads; ++i) sched.spawn(fn);
  sched.run();
  return sched.cycles();
}

void run_threads(int threads, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    ts.emplace_back([&fn, i] {
      ThreadRegistration reg(i);
      fn(i);
    });
  }
  for (auto& t : ts) t.join();
}

}  // namespace demotx::vt
