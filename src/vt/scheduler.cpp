#include "vt/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace demotx::vt {

namespace {

[[noreturn]] void die(const char* msg) {
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

Scheduler::Scheduler(Options opts) : opts_(std::move(opts)) {
  rng_ = opts_.seed != 0 ? opts_.seed : 0x9e3779b97f4a7c15ULL;
}

Scheduler::~Scheduler() {
  // Fibers must not outlive in a suspended state with live RAII frames;
  // run() unwinds them.  If run() was never called there is nothing to do.
}

int Scheduler::spawn(std::function<void(int)> fn) {
  if (running_) die("demotx::vt::Scheduler: spawn() during run()");
  const int id = static_cast<int>(tasks_.size());
  if (id >= kMaxThreads) die("demotx::vt::Scheduler: too many logical threads");
  auto task = std::make_unique<Task>();
  task->ctx.id = id;
  task->ctx.sched = this;
  Task* t = task.get();
  task->fiber = std::make_unique<Fiber>(
      [fn = std::move(fn), id] { fn(id); }, opts_.stack_bytes);
  task->ctx.fiber = task->fiber.get();
  tasks_.push_back(std::move(task));
  heap_.emplace(t->due, id);
  ++live_;
  return id;
}

void Scheduler::on_access(Context& c, unsigned weight) {
  if (c.stopping) return;  // unwinding: don't throw from destructors
  if (stop_ && c.no_unwind == 0) {  // pinned sections finish first
    c.stopping = true;
    throw FiberStopped{};
  }
  Task& t = *tasks_[static_cast<std::size_t>(c.id)];
  t.due += weight;
  c.fiber->yield();
}

void Scheduler::on_sleep(Context& c, std::uint64_t wake_at) {
  if (c.stopping) return;
  if (stop_ && c.no_unwind == 0) {
    c.stopping = true;
    throw FiberStopped{};
  }
  Task& t = *tasks_[static_cast<std::size_t>(c.id)];
  if (opts_.policy == Policy::kRoundRobin ||
      opts_.policy == Policy::kScripted) {
    // Heap policies resume by earliest due, and resume_task advances the
    // virtual clock to the resumed task's due — so pushing the due to
    // wake_at IS the timer: every other runnable fiber drains its cycles
    // first, then time jumps straight to the wake point (an idle machine
    // sleeps for free).  Always charge at least one cycle so a
    // past-deadline sleep still makes progress.
    t.due = std::max(t.due + 1, wake_at);
  } else {
    // Exploration policies ignore due times by design (the schedule IS
    // the subject under test): a sleep is one schedulable yield, and
    // callers loop on sim_now() when the deadline must have passed.
    t.due += 1;
  }
  c.fiber->yield();
}

int Scheduler::pick_next() {
  switch (opts_.policy) {
    case Policy::kScripted:
      while (script_pos_ < opts_.script.size()) {
        const int id = opts_.script[script_pos_++];
        if (id >= 0 && static_cast<std::size_t>(id) < tasks_.size() &&
            !tasks_[static_cast<std::size_t>(id)]->finished)
          return id;
      }
      [[fallthrough]];  // script exhausted: finish round-robin
    case Policy::kRoundRobin: {
      while (!heap_.empty()) {
        auto [due, id] = heap_.top();
        heap_.pop();
        Task& t = *tasks_[static_cast<std::size_t>(id)];
        if (t.finished || t.due != due) continue;  // stale entry
        return id;
      }
      return -1;
    }
    case Policy::kRandom: {
      // Collect runnable ids; fine for test-scale thread counts.
      int runnable[kMaxThreads];
      int n = 0;
      for (const auto& t : tasks_)
        if (!t->finished) runnable[n++] = t->ctx.id;
      if (n == 0) return -1;
      const int id =
          runnable[xorshift64(rng_) % static_cast<std::uint64_t>(n)];
      log_decision(runnable, n, id);
      return id;
    }
    case Policy::kPct: {
      int runnable[kMaxThreads];
      int n = 0;
      for (const auto& t : tasks_)
        if (!t->finished) runnable[n++] = t->ctx.id;
      if (n == 0) return -1;
      const int id = pct_pick(runnable, n);
      log_decision(runnable, n, id);
      return id;
    }
    case Policy::kChoice: {
      int runnable[kMaxThreads];
      int n = 0;
      for (const auto& t : tasks_)
        if (!t->finished) runnable[n++] = t->ctx.id;
      if (n == 0) return -1;
      if (n == 1) return runnable[0];  // forced: consumes no choice index
      if (!opts_.choice_fn)
        die("demotx::vt::Scheduler: kChoice policy without choice_fn");
      ChoicePoint cp{runnable, n, last_ran_, choice_index_};
      const int id = opts_.choice_fn(cp);
      bool ok = false;
      for (int i = 0; i < n; ++i) ok = ok || runnable[i] == id;
      if (!ok) die("demotx::vt::Scheduler: choice_fn picked a blocked task");
      ++choice_index_;
      log_decision(runnable, n, id);
      return id;
    }
  }
  return -1;
}

// Lazily assigns the PCT initial priorities and change points: every task
// gets a distinct priority in [d, d+n) via a seeded Fisher-Yates shuffle,
// and the d-1 change points get the descending priorities d-1 .. 1 at
// step numbers drawn uniformly from [1, pct_horizon].
void Scheduler::pct_init() {
  const std::size_t n = tasks_.size();
  const auto d = static_cast<std::uint64_t>(
      opts_.pct_change_points < 0 ? 0 : opts_.pct_change_points);
  pct_prio_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    pct_prio_[i] = static_cast<std::int64_t>(d + 1 + i);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = xorshift64(rng_) % i;
    std::swap(pct_prio_[i - 1], pct_prio_[j]);
  }
  const std::uint64_t horizon = opts_.pct_horizon == 0 ? 1 : opts_.pct_horizon;
  pct_change_steps_.clear();
  for (std::uint64_t k = 0; k < d; ++k)
    pct_change_steps_.push_back(1 + xorshift64(rng_) % horizon);
  std::sort(pct_change_steps_.begin(), pct_change_steps_.end());
  pct_ready_ = true;
}

int Scheduler::pct_pick(const int* runnable, int n) {
  if (!pct_ready_) pct_init();
  auto highest = [&] {
    int best = runnable[0];
    for (int i = 1; i < n; ++i)
      if (pct_prio_[static_cast<std::size_t>(runnable[i])] >
          pct_prio_[static_cast<std::size_t>(best)])
        best = runnable[i];
    return best;
  };
  int id = highest();
  // At a change point, the task about to run is demoted to the change
  // point's own priority (d-1 for the first, down to 1) and the pick is
  // redone — this is what lets PCT context-switch at a bug's d-1
  // in-between points regardless of where they fall.
  while (!pct_change_steps_.empty() && steps_ >= pct_change_steps_.front()) {
    pct_change_steps_.erase(pct_change_steps_.begin());
    pct_prio_[static_cast<std::size_t>(id)] =
        static_cast<std::int64_t>(pct_change_steps_.size() + 1);
    id = highest();
  }
  // Spin-breaker: a task picked opts_.pct_fair_window times in a row
  // while others are runnable is busy-waiting on one of them (strict
  // priorities otherwise livelock on STM retry loops); demote it below
  // everything so the waited-on task can advance.
  if (n > 1 && id == pct_streak_task_ &&
      ++pct_streak_ >= opts_.pct_fair_window) {
    pct_prio_[static_cast<std::size_t>(id)] = --pct_fair_next_;
    id = highest();
  }
  if (id != pct_streak_task_) {
    pct_streak_task_ = id;
    pct_streak_ = 1;
  }
  ++steps_;
  return id;
}

void Scheduler::log_decision(const int* runnable, int n, int chosen) {
  if (opts_.decision_log == nullptr || n < 2) return;
  std::uint64_t mask = 0;
  for (int i = 0; i < n; ++i)
    if (runnable[i] < 64) mask |= 1ULL << runnable[i];
  opts_.decision_log->push_back({mask, chosen, last_ran_});
}

void Scheduler::resume_task(int id) {
  Task& t = *tasks_[static_cast<std::size_t>(id)];
  cycles_ = std::max(cycles_, t.due);
  last_ran_ = id;
  Context* prev = current();
  set_current(&t.ctx);
  t.fiber->resume();
  set_current(prev);
  if (t.fiber->finished()) {
    t.finished = true;
    --live_;
  } else if (opts_.policy == Policy::kRoundRobin ||
             opts_.policy == Policy::kScripted) {
    heap_.emplace(t.due, id);
  }
}

void Scheduler::run() {
  if (Fiber::running() != nullptr)
    die("demotx::vt::Scheduler: run() called from inside a fiber");
  running_ = true;
  while (live_ > 0) {
    // Crash injector: fires once, on the scheduler's own stack between
    // fiber steps, freezing whatever durable image exists at this exact
    // virtual instant (a half-forced group commit stays half-forced).
    // The fibers then unwind like a brake hit — except fibers pinned by
    // ScopedCritical, which finish their wait-free commit bookkeeping;
    // their post-crash stores are VOLATILE state only and never reach
    // the image on_crash captured, which is what makes the injected
    // crash point exact.
    if (!stop_ && cycles_ >= opts_.crash_at_cycle) {
      crashed_ = true;
      stop_ = true;
      if (opts_.on_crash) opts_.on_crash();
    }
    if (!stop_ && cycles_ >= opts_.max_cycles) {
      hit_limit_ = true;
      stop_ = true;
    }
    const int id = pick_next();
    if (id < 0) {
      if (live_ > 0)
        die("demotx::vt::Scheduler: no runnable fiber but tasks remain");
      break;
    }
    resume_task(id);
  }
  running_ = false;
}

std::uint64_t run_sim(int threads, std::function<void(int)> fn,
                      Scheduler::Options opts) {
  Scheduler sched(std::move(opts));
  for (int i = 0; i < threads; ++i) sched.spawn(fn);
  sched.run();
  return sched.cycles();
}

void run_threads(int threads, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    ts.emplace_back([&fn, i] {
      ThreadRegistration reg(i);
      fn(i);
    });
  }
  for (auto& t : ts) t.join();
}

}  // namespace demotx::vt
