// Logical-thread execution contexts.
//
// All concurrent code in demotx (the STM, the lock-based and lock-free
// baselines, the benchmark drivers) runs on *logical threads*.  A logical
// thread is either a plain OS thread (real mode) or a fiber driven by the
// virtual-time Scheduler (simulation mode).  Code identifies itself with
// vt::thread_id() and marks every shared-memory access with vt::access(),
// which is a no-op in real mode and a one-cycle yield point in simulation
// mode.  This lets the exact same synchronization code run under real
// preemption and under deterministic simulated interleavings.
#pragma once

#include <cstdint>

namespace demotx::vt {

class Scheduler;
class Fiber;

// Upper bound on concurrently registered logical threads; sized for the
// paper's 64-way testbed with headroom.
inline constexpr int kMaxThreads = 192;

struct Context {
  int id = -1;                  // logical thread id, 0-based
  Scheduler* sched = nullptr;   // non-null iff running under simulation
  Fiber* fiber = nullptr;       // non-null iff running on a fiber
  bool stopping = false;        // scheduler asked this fiber to unwind
};

// The context of the current logical thread, or nullptr if the calling OS
// thread never registered (e.g. main() before any driver runs).
Context* current();

// As current(), but aborts if unregistered.
Context& ctx();

// Logical thread id of the caller; 0 if unregistered (so single-threaded
// test and example code can use the library without ceremony).
int thread_id();

// True when the caller runs under the virtual-time scheduler.
bool in_sim();

// Marks `weight` shared-memory access steps.  Under simulation this
// charges virtual time and yields to the scheduler; in real mode it is
// free.  Every load/store of shared data in the STM and the baselines
// passes through here — this is what makes simulated contention faithful.
void access(unsigned weight = 1);

// Virtual cycles elapsed in the current simulation; 0 in real mode.
std::uint64_t sim_now();

// RAII registration of a plain OS thread as a logical thread (real mode).
// The simulator registers its fibers itself.
class ThreadRegistration {
 public:
  explicit ThreadRegistration(int id);
  ~ThreadRegistration();
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;

 private:
  Context ctx_;
};

// Used by the scheduler when switching fibers.
void set_current(Context* c);

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace demotx::vt
