// Logical-thread execution contexts.
//
// All concurrent code in demotx (the STM, the lock-based and lock-free
// baselines, the benchmark drivers) runs on *logical threads*.  A logical
// thread is either a plain OS thread (real mode) or a fiber driven by the
// virtual-time Scheduler (simulation mode).  Code identifies itself with
// vt::thread_id() and marks every shared-memory access with vt::access(),
// which is a no-op in real mode and a one-cycle yield point in simulation
// mode.  This lets the exact same synchronization code run under real
// preemption and under deterministic simulated interleavings.
#pragma once

#include <cstdint>

namespace demotx::vt {

class Scheduler;
class Fiber;

// Upper bound on concurrently registered logical threads; sized for the
// 256-way commit-scaling sweeps (PR 6) with headroom.
inline constexpr int kMaxThreads = 320;

struct Context {
  int id = -1;                  // logical thread id, 0-based
  Scheduler* sched = nullptr;   // non-null iff running under simulation
  Fiber* fiber = nullptr;       // non-null iff running on a fiber
  bool stopping = false;        // scheduler asked this fiber to unwind
  int no_unwind = 0;            // >0: defer the cycle-brake unwind
};

// The context of the current logical thread, or nullptr if the calling OS
// thread never registered (e.g. main() before any driver runs).
Context* current();

// As current(), but aborts if unregistered.
Context& ctx();

// Logical thread id of the caller; 0 if unregistered (so single-threaded
// test and example code can use the library without ceremony).
int thread_id();

// True when the caller runs under the virtual-time scheduler.
bool in_sim();

// Marks `weight` shared-memory access steps.  Under simulation this
// charges virtual time and yields to the scheduler; in real mode it is
// free.  Every load/store of shared data in the STM and the baselines
// passes through here — this is what makes simulated contention faithful.
void access(unsigned weight = 1);

// Timer facility: parks the calling fiber until virtual time `wake_at`
// (svc open-loop arrival pacing, per-request deadlines).  Under the
// virtual-time policies that honor due times (RoundRobin / Scripted)
// the fiber next runs at exactly max(now, wake_at); under the
// exploration policies (Random / Pct / Choice) it degenerates to one
// yield — schedule exploration deliberately owns the interleaving, so
// callers that need the deadline to have PASSED must loop on sim_now().
// No-op in real mode.  Unwinds via FiberStopped on a stopping
// simulation exactly like vt::access.
void sleep_until(std::uint64_t wake_at);

// Virtual cycles elapsed in the current simulation; 0 in real mode.
std::uint64_t sim_now();

// True once the current simulation is stopping (cycle brake or injected
// crash); false in real mode.  Pinned code that WAITS on another fiber's
// progress (rather than doing wait-free work) must poll this and bail
// out: after stop the scheduler only guarantees that fibers it happens
// to resume run — a pinned spin that needs a specific other fiber can
// otherwise live-lock the whole simulation.
bool stop_requested();

// RAII registration of a plain OS thread as a logical thread (real mode).
// The simulator registers its fibers itself.
class ThreadRegistration {
 public:
  explicit ThreadRegistration(int id);
  ~ThreadRegistration();
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;

 private:
  Context ctx_;
};

// Pins the current fiber against the scheduler's cycle-brake unwind
// (FiberStopped) for a wait-free critical section that must run to
// completion once entered — e.g. an STM commit past its decision point,
// or a rollback — so a brake-interrupted schedule can never leave a
// half-applied commit or a half-released transaction behind.  The pinned
// code keeps yielding and charging cycles; it only defers the unwind.
// arm() may be called late (after construction), so one guard can scope
// "the rest of this function" from the instruction that makes the work
// irreversible.  No-op outside the simulator.
class ScopedCritical {
 public:
  ScopedCritical() = default;
  explicit ScopedCritical(bool arm_now) {
    if (arm_now) arm();
  }
  ~ScopedCritical() { disarm(); }
  ScopedCritical(const ScopedCritical&) = delete;
  ScopedCritical& operator=(const ScopedCritical&) = delete;

  void arm() {
    if (ctx_ != nullptr) return;
    ctx_ = current();
    if (ctx_ != nullptr) ++ctx_->no_unwind;
  }
  void disarm() {
    if (ctx_ == nullptr) return;
    --ctx_->no_unwind;
    ctx_ = nullptr;
  }

 private:
  Context* ctx_ = nullptr;
};

// Used by the scheduler when switching fibers.
void set_current(Context* c);

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace demotx::vt
