#include "vt/context.hpp"

#include <cstdio>
#include <cstdlib>

#include "vt/scheduler.hpp"

namespace demotx::vt {

namespace {
thread_local Context* tls_current = nullptr;
}

Context* current() { return tls_current; }

Context& ctx() {
  if (tls_current == nullptr) {
    std::fputs("demotx::vt: no logical-thread context registered\n", stderr);
    std::abort();
  }
  return *tls_current;
}

int thread_id() { return tls_current != nullptr ? tls_current->id : 0; }

bool in_sim() { return tls_current != nullptr && tls_current->sched != nullptr; }

void access(unsigned weight) {
  Context* c = tls_current;
  if (c != nullptr && c->sched != nullptr) c->sched->on_access(*c, weight);
}

void sleep_until(std::uint64_t wake_at) {
  Context* c = tls_current;
  if (c != nullptr && c->sched != nullptr) c->sched->on_sleep(*c, wake_at);
}

std::uint64_t sim_now() {
  Context* c = tls_current;
  return (c != nullptr && c->sched != nullptr) ? c->sched->cycles() : 0;
}

bool stop_requested() {
  Context* c = tls_current;
  return c != nullptr && c->sched != nullptr && c->sched->stop_requested();
}

void set_current(Context* c) { tls_current = c; }

ThreadRegistration::ThreadRegistration(int id) {
  if (tls_current != nullptr) {
    std::fputs("demotx::vt: thread registered twice\n", stderr);
    std::abort();
  }
  ctx_.id = id;
  tls_current = &ctx_;
}

ThreadRegistration::~ThreadRegistration() { tls_current = nullptr; }

}  // namespace demotx::vt
