// Per-semantics correctness oracles over recorded histories.
//
// certify() checks every attempt of a recorded execution against the
// guarantee its semantics promises (DESIGN.md "Schedule exploration"):
//
//  * version-chain integrity — committed writes form one version chain
//    per location (no two commits publish the same version of a cell:
//    that would mean the write lock was violated);
//  * read-value certification — every read (committed OR aborted: opacity
//    is about what running transactions can observe) returned exactly the
//    value the committed chain holds for the version it observed;
//  * update certification (classic, and elastic after strengthening) —
//    no OTHER transaction committed a write to a read-set location at a
//    version strictly inside (observed, wv): commit-time validation must
//    have caught it.  "Inside" is measured in TIMESTAMP GROUPS
//    (stm::Runtime::timestamp_group): single timestamps under GV1/GV4,
//    whole epochs under the sharded clock, whose per-shard grants carry
//    no cross-shard order within an epoch.  At the upper end, commits
//    sharing a group (GV4 adoption; any same-epoch sharded commits) are
//    ordered by their read-write conflicts and the constraint graph must
//    be acyclic — a cycle is the GV4 write-skew shape, where each commit
//    holds a read the other invalidated at the shared timestamp;
//  * snapshot / read-only consistency — the reads admit a single
//    serialization point S: each (loc, version) read is the latest
//    committed version at S;
//  * elastic cut-consistency — the window contents after every elastic
//    read admit serialization points that are NON-DECREASING across
//    pieces (hand-over-hand atomicity, paper Algorithm 3): each window
//    snapshot was consistent at some instant, and those instants advance.
//
// export_history() bridges recorded executions into sched::History so the
// offline checkers (sched/checkers.hpp) can cross-examine small runs.
#pragma once

#include <string>
#include <vector>

#include "check/recorder.hpp"
#include "sched/history.hpp"

namespace demotx::check {

struct OracleResult {
  bool ok = true;
  std::string what;  // first violation, human-readable
};

OracleResult certify(const std::vector<Attempt>& attempts);

// Committed transactions as a sched::History: each read at its recorded
// position, each committed write at its transaction's commit point (lazy
// versioning).  Tx ids are indices into the committed subsequence.
sched::History export_history(const std::vector<Attempt>& attempts);

}  // namespace demotx::check
