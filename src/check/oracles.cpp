// demotx:expert-file: systematic-exploration infrastructure: drives and certifies every semantics tier
#include "check/oracles.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>

#include "stm/runtime.hpp"
#include "stm/semantics.hpp"

namespace demotx::check {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct ChainEntry {
  std::uint64_t value;
  std::size_t writer;  // index into attempts
};

// loc -> version -> (value, writer).  Ordered by version so successor
// lookups are one upper_bound.
using Chain = std::unordered_map<int, std::map<std::uint64_t, ChainEntry>>;

// Object-ops tier: (object id, key) -> version -> (value, writer).  One
// chain per container key (sentinels included), mirroring the per-key
// version rings the real implementation scans.
using ObjChain =
    std::map<std::pair<int, std::uint64_t>, std::map<std::uint64_t, ChainEntry>>;

std::string obj_key_ver(int obj, std::uint64_t key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "obj=%d key=%llu v=%llu", obj,
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(v));
  return buf;
}

std::string describe(const Attempt& a, std::size_t idx) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "attempt#%zu slot=%d serial=%llu sem=%d",
                idx, a.slot, static_cast<unsigned long long>(a.serial),
                static_cast<int>(a.sem));
  return buf;
}

std::string loc_ver(int loc, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "loc=%d v=%llu", loc,
                static_cast<unsigned long long>(v));
  return buf;
}

// The feasible serialization interval of one read against the committed
// chain: [version, next committed version by another writer - 1].  A read
// of version v is "current" at S iff v <= S and no other commit published
// a newer version of the location at or before S.
struct Interval {
  std::uint64_t lo;
  std::uint64_t hi;
};

Interval interval_of(const Chain& chain, const ReadRec& r, std::size_t self) {
  Interval iv{r.version, kInf};
  const auto cit = chain.find(r.loc);
  if (cit == chain.end()) return iv;
  for (auto it = cit->second.upper_bound(r.version); it != cit->second.end();
       ++it) {
    if (it->second.writer == self) continue;  // own write: no constraint
    iv.hi = it->first - 1;
    break;
  }
  return iv;
}

}  // namespace

OracleResult certify(const std::vector<Attempt>& attempts) {
  OracleResult res;
  auto fail = [&res](std::string what) {
    if (res.ok) {
      res.ok = false;
      res.what = std::move(what);
    }
  };

  // ---- version-chain integrity ---------------------------------------
  Chain chain;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    if (!a.committed() || !a.update()) continue;
    for (const WriteRec& w : a.commit_writes) {
      auto [it, inserted] = chain[w.loc].try_emplace(a.wv, ChainEntry{w.value, i});
      if (!inserted) {
        fail("version-chain violation: two commits published " +
             loc_ver(w.loc, a.wv) + " (" + describe(attempts[it->second.writer],
             it->second.writer) + " and " + describe(a, i) +
             ") — the write lock admitted two owners");
        return res;
      }
    }
  }

  // ---- object version-chain integrity (object-ops tier) ---------------
  // Net object commit writes build per-(object, key) chains exactly like
  // cell writes: two commits publishing the same (object, key, wv) means
  // the object lock admitted two owners.
  ObjChain ochain;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    if (!a.committed()) continue;
    for (const ObjWriteRec& w : a.obj_commit_writes) {
      auto [it, inserted] =
          ochain[{w.obj, w.key}].try_emplace(a.wv, ChainEntry{w.value, i});
      if (!inserted) {
        fail("object version-chain violation: two commits published " +
             obj_key_ver(w.obj, w.key, a.wv) + " (" +
             describe(attempts[it->second.writer], it->second.writer) +
             " and " + describe(a, i) +
             ") — the object lock admitted two owners");
        return res;
      }
    }
  }

  // ---- read-value certification --------------------------------------
  // Versions not in the chain are pre-existing state: the first read of
  // (loc, version) defines its value, later reads must agree.
  std::unordered_map<int, std::map<std::uint64_t, std::uint64_t>> baseline;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    for (const ReadRec& r : a.reads) {
      const auto cit = chain.find(r.loc);
      if (cit != chain.end()) {
        const auto vit = cit->second.find(r.version);
        if (vit != cit->second.end()) {
          if (vit->second.value != r.value) {
            fail("read-value violation: " + describe(a, i) + " read " +
                 loc_ver(r.loc, r.version) + " as " + std::to_string(r.value) +
                 " but the committed chain holds " +
                 std::to_string(vit->second.value));
            return res;
          }
          continue;
        }
      }
      auto [bit, inserted] =
          baseline[r.loc].try_emplace(r.version, r.value);
      if (!inserted && bit->second != r.value) {
        fail("read-value violation: " + describe(a, i) + " read " +
             loc_ver(r.loc, r.version) + " as " + std::to_string(r.value) +
             " but an earlier observation of the same version saw " +
             std::to_string(bit->second) + " — a torn or uncommitted value");
        return res;
      }
    }
  }

  // ---- object read-value certification (object-ops tier) --------------
  // An object read at a chain version must report that entry's value; a
  // read at an off-chain version (0 = the key's pre-history baseline, or
  // state committed before the recorder attached) is first-observation-
  // defines, like cell baselines.
  std::map<std::pair<std::pair<int, std::uint64_t>, std::uint64_t>,
           std::uint64_t>
      obaseline;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    for (const ObjReadRec& r : a.obj_reads) {
      const auto cit = ochain.find({r.obj, r.key});
      if (cit != ochain.end()) {
        const auto vit = cit->second.find(r.version);
        if (vit != cit->second.end()) {
          if (vit->second.value != r.value) {
            fail("object read-value violation: " + describe(a, i) + " read " +
                 obj_key_ver(r.obj, r.key, r.version) + " as " +
                 std::to_string(r.value) + " but the committed chain holds " +
                 std::to_string(vit->second.value));
            return res;
          }
          continue;
        }
      }
      auto [bit, inserted] =
          obaseline.try_emplace({{r.obj, r.key}, r.version}, r.value);
      if (!inserted && bit->second != r.value) {
        fail("object read-value violation: " + describe(a, i) + " read " +
             obj_key_ver(r.obj, r.key, r.version) + " as " +
             std::to_string(r.value) +
             " but an earlier observation of the same version saw " +
             std::to_string(bit->second) + " — a torn seqlock bracket");
        return res;
      }
    }
  }

  // Serialization constraints among commits whose timestamps carry no
  // mutual order: edge (x, y) = "x must serialize before y".  The group
  // of a timestamp is scheme-defined (stm::Runtime::timestamp_group):
  // GV1/GV4 groups are single timestamps — only GV4 adopters ever share
  // one — while the sharded clock orders only across EPOCHS, so a whole
  // epoch slice (every shard's grants) is one group and the GV4 adoption
  // rules apply to it wholesale.
  const auto group = [](std::uint64_t t) {
    return stm::Runtime::instance().timestamp_group(t);
  };
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::size_t, std::size_t>>>
      same_group_edges;

  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    if (a.branch_rollback) continue;  // orElse rolled reads back: weakened

    // ---- update certification (committed updates) --------------------
    if (a.committed() && a.update()) {
      for (const ReadRec& r : a.reads) {
        if (!r.in_read_set) continue;
        const auto cit = chain.find(r.loc);
        if (cit == chain.end()) continue;
        // group() is monotone in the timestamp (identity, or the epoch
        // prefix), so the version-ordered walk may stop at the first
        // version past our group.
        for (auto it = cit->second.upper_bound(r.version);
             it != cit->second.end() && group(it->first) <= group(a.wv);
             ++it) {
          if (it->second.writer == i) continue;
          if (group(it->first) < group(a.wv)) {
            // Strictly inside (observed, wv) in GROUP order: impossible
            // under sound TL2 validation for ANY clock scheme — the
            // invalidating writer held the lock or bumped the version
            // past rv (sharded: its whole epoch closed before our grant's
            // epoch was current, so validation must have seen it).
            fail("update-certification violation: " + describe(a, i) +
                 " committed at wv=" + std::to_string(a.wv) +
                 " while holding a read of " + loc_ver(r.loc, r.version) +
                 " that " + describe(attempts[it->second.writer],
                                     it->second.writer) +
                 " invalidated at v=" + std::to_string(it->first) +
                 " — commit-time validation was skipped or unsound");
            return res;
          }
          // Same group (GV4 shared wv / sharded same epoch): legal iff
          // this commit can serialize BEFORE that writer.  Record the
          // constraint; cycles are rejected below.
          same_group_edges[group(a.wv)].push_back({i, it->second.writer});
        }
        // Reading a same-group writer's OWN version orders it before us.
        const auto vit = cit->second.find(r.version);
        if (vit != cit->second.end() && vit->second.writer != i &&
            group(r.version) == group(a.wv)) {
          same_group_edges[group(a.wv)].push_back({vit->second.writer, i});
        }
      }

      // ---- object update certification (value-based) ------------------
      // The object-ops tier certifies by VALUE, not version: a commit may
      // overtake foreign commits on the same key as long as the key's
      // state when we serialize equals what we read (commuting ops — the
      // insert/insert-of-different-keys and flip-flop cases).  So the
      // version-interval rule above is deliberately NOT applied to object
      // reads; instead, replay the per-key chain.  Entries in groups
      // strictly before ours definitively serialize before us; the value
      // they leave behind must match our read unless a same-group entry
      // restores it — otherwise certification passed on a stale value (a
      // lost update; exactly what the obj-commute injection plants by
      // skipping the value re-check).
      for (const ObjReadRec& r : a.obj_reads) {
        const auto cit = ochain.find({r.obj, r.key});
        if (cit == ochain.end()) continue;
        std::uint64_t entering = r.value;  // value when our group starts
        bool before_seen = false;
        std::vector<const ChainEntry*> sg;  // same-group entries, ver order
        for (auto it = cit->second.upper_bound(r.version);
             it != cit->second.end() && group(it->first) <= group(a.wv);
             ++it) {
          if (it->second.writer == i) continue;
          if (group(it->first) < group(a.wv)) {
            entering = it->second.value;
            before_seen = true;
          } else {
            sg.push_back(&it->second);
          }
        }
        // The latest feasible serialization point inside our group: after
        // the last same-group entry whose value matches our read (that is
        // what commit-time certification actually compared against), else
        // at the group start.  An entry our own slot wrote LATER in
        // program order can never be that point — even when its flip-flop
        // value matches our read — and the per-key chain is written in
        // real order, so everything past it is after us too.
        std::ptrdiff_t anchor = -1;
        for (std::size_t k = 0; k < sg.size(); ++k) {
          const Attempt& w = attempts[sg[k]->writer];
          if (w.slot == a.slot && w.serial > a.serial) break;
          if (sg[k]->value == r.value)
            anchor = static_cast<std::ptrdiff_t>(k);
        }
        if (anchor < 0 && before_seen && entering != r.value) {
          fail("object update-certification violation: " + describe(a, i) +
               " committed at wv=" + std::to_string(a.wv) +
               " holding a semantic read of " +
               obj_key_ver(r.obj, r.key, r.version) + " = " +
               std::to_string(r.value) +
               " but prior commits left the key at value " +
               std::to_string(entering) +
               " — value-based certification passed on stale state (lost "
               "update)");
          return res;
        }
        for (std::ptrdiff_t k = 0;
             k < static_cast<std::ptrdiff_t>(sg.size()); ++k) {
          if (k <= anchor)
            same_group_edges[group(a.wv)].push_back(
                {sg[static_cast<std::size_t>(k)]->writer, i});
          else
            same_group_edges[group(a.wv)].push_back(
                {i, sg[static_cast<std::size_t>(k)]->writer});
        }
        // Reading a same-group writer's own version orders it before us.
        const auto vit = cit->second.find(r.version);
        if (vit != cit->second.end() && vit->second.writer != i &&
            group(r.version) == group(a.wv)) {
          same_group_edges[group(a.wv)].push_back({vit->second.writer, i});
        }
      }
    }

    // ---- piece / snapshot consistency ---------------------------------
    // Replay the attempt's reads: every elastic-window state must be
    // consistent at a serialization point that never moves backwards; the
    // final read set must admit one point after all of them.  Classic and
    // snapshot attempts are the 1-piece special case.
    std::uint64_t s_prev = 0;
    std::vector<const ReadRec*> window;
    auto check_set = [&](const std::vector<const ReadRec*>& set,
                         const char* kind) -> bool {
      std::uint64_t lo = s_prev, hi = kInf;
      for (const ReadRec* r : set) {
        const Interval iv = interval_of(chain, *r, i);
        lo = std::max(lo, iv.lo);
        hi = std::min(hi, iv.hi);
      }
      if (lo > hi) {
        fail(std::string(kind) + " consistency violation: " + describe(a, i) +
             " observed a read set with no common serialization point "
             "(needed S in [" + std::to_string(lo) + ", " +
             (hi == kInf ? std::string("inf") : std::to_string(hi)) + "])");
        return false;
      }
      s_prev = lo;  // smallest feasible point: optimal for monotonicity
      return true;
    };

    bool bad = false;
    std::vector<const ReadRec*> final_set;
    for (const ReadRec& r : a.reads) {
      if (r.released) continue;
      if (r.in_window) {
        if (r.cut_before != 0) {
          const std::size_t drop =
              std::min<std::size_t>(r.cut_before, window.size());
          window.erase(window.begin(),
                       window.begin() + static_cast<std::ptrdiff_t>(drop));
        }
        window.push_back(&r);
        if (!check_set(window, "elastic-window")) {
          bad = true;
          break;
        }
      } else {
        final_set.push_back(&r);
      }
    }
    if (bad) return res;
    // Surviving window entries (strengthened or still elastic at the end)
    // join the final piece.
    for (const ReadRec* r : window)
      if (r->in_read_set || !a.strengthened) final_set.push_back(r);
    if (!final_set.empty() &&
        !check_set(final_set, a.sem == stm::Semantics::kSnapshot
                                  ? "snapshot"
                                  : "final-piece")) {
      return res;
    }

    // ---- snapshot rv-pinning ------------------------------------------
    // A snapshot attempt does not merely need *some* common serialization
    // point: it must read exactly the state current at its start bound,
    // so every read's validity interval must CONTAIN a.rv.  This is
    // strictly stronger than the common-point check above and catches a
    // version-ring walk that returns an entry one generation too old (the
    // common point would silently slide earlier) or newer than the bound.
    // Sound for TL2 clocks: any committer with wv <= a.rv either released
    // its locks before the reader's seqlock bracket (so the read sees its
    // version) or overlaps it (lock word / head counter force a retry).
    if (a.sem == stm::Semantics::kSnapshot) {
      for (const ReadRec* r : final_set) {
        const Interval iv = interval_of(chain, *r, i);
        if (a.rv < iv.lo || a.rv > iv.hi) {
          fail("snapshot rv-pinning violation: " + describe(a, i) +
               " (rv=" + std::to_string(a.rv) + ") read " +
               loc_ver(r->loc, r->version) + " valid only in [" +
               std::to_string(iv.lo) + ", " +
               (iv.hi == kInf ? std::string("inf") : std::to_string(iv.hi)) +
               "] — the ring served a version not current at the bound");
          return res;
        }
      }
      // Object reads under snapshot pin to rv the same way, against the
      // per-key chain.  (They are excluded from the common-point interval
      // machinery above on purpose: value-based semantics admit commuting
      // interleavings — e.g. a key flipping absent->present->absent around
      // the read — that version-interval analysis would falsely reject.)
      for (const ObjReadRec& r : a.obj_reads) {
        if (r.version > a.rv) {
          fail("object snapshot rv-pinning violation: " + describe(a, i) +
               " (rv=" + std::to_string(a.rv) + ") read " +
               obj_key_ver(r.obj, r.key, r.version) +
               " — a version past its start bound");
          return res;
        }
        const auto cit = ochain.find({r.obj, r.key});
        if (cit == ochain.end()) continue;
        const auto it = cit->second.upper_bound(r.version);
        if (it != cit->second.end() && it->first <= a.rv) {
          fail("object snapshot rv-pinning violation: " + describe(a, i) +
               " (rv=" + std::to_string(a.rv) + ") read " +
               obj_key_ver(r.obj, r.key, r.version) + " but " +
               describe(attempts[it->second.writer], it->second.writer) +
               " published v=" + std::to_string(it->first) +
               " at or before the bound — the ring served a stale entry");
          return res;
        }
      }
    }
  }

  // ---- same-group serializability (GV4 shared wv / sharded epoch) -----
  // Within one wv the write sets are disjoint (version-chain check; a
  // sharded epoch additionally orders per-location by the sequence bits),
  // so the only hazard is a read-write cycle: every reader can go before
  // the writer that invalidated it unless those constraints loop — the
  // GV4 write-skew shape, where two commits each hold a read the other
  // invalidated at their shared timestamp (or, sharded, inside one epoch).
  for (const auto& [wv, edges] : same_group_edges) {
    std::unordered_map<std::size_t, std::vector<std::size_t>> adj;
    std::unordered_map<std::size_t, int> state;  // 0 new, 1 open, 2 done
    for (const auto& [x, y] : edges) adj[x].push_back(y);
    std::function<bool(std::size_t)> has_cycle = [&](std::size_t n) {
      state[n] = 1;
      for (std::size_t m : adj[n]) {
        const int s = state[m];
        if (s == 1) return true;
        if (s == 0 && has_cycle(m)) return true;
      }
      state[n] = 2;
      return false;
    };
    for (const auto& [x, y] : edges) {
      (void)y;
      if (state[x] == 0 && has_cycle(x)) {
        fail("update-certification violation: commits sharing timestamp "
             "group " +
             std::to_string(wv) + " (incl. " + describe(attempts[x], x) +
             ") have cyclic read-write conflicts — no serialization order "
             "exists within the shared timestamp/epoch");
        return res;
      }
    }
  }

  return res;
}

sched::History export_history(const std::vector<Attempt>& attempts) {
  struct Stamped {
    std::uint64_t seq;
    sched::Event ev;
  };
  std::vector<Stamped> events;
  int tx = 0;
  for (const Attempt& a : attempts) {
    if (!a.committed()) continue;
    for (const ReadRec& r : a.reads)
      events.push_back({r.seq, sched::rd(tx, r.loc)});
    for (const WriteRec& w : a.commit_writes)
      events.push_back({a.end_seq, sched::wr(tx, w.loc)});
    ++tx;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Stamped& x, const Stamped& y) {
                     return x.seq < y.seq;
                   });
  sched::History h;
  h.reserve(events.size());
  for (const Stamped& s : events) h.push_back(s.ev);
  return h;
}

}  // namespace demotx::check
