// Durability oracle over a captured crash (or quiescent) image.
//
// verify_durability() certifies the write-ahead log's contract from the
// Capture the scheduler's crash hook froze (dur/wal.hpp):
//
//  * ack containment — every transaction whose await_durable returned
//    acknowledged is inside the durable log prefix: an acknowledged
//    commit survives ANY crash after the acknowledgment;
//  * structural recovery — replaying the durable image parses cleanly
//    (no unsealed or overrunning record, no torn commit record, only
//    registered ids) and per-location versions strictly increase in log
//    order under every clock scheme (per-cell log order equals version
//    order by construction: the logger runs with the write locks held);
//  * byte-identical state — the recovered image equals the fold of the
//    side-recorded TRUE payloads of every durable commit onto the
//    initial image, word for word.  The side records never pass through
//    the log encoding, so any partial write-back, torn record the
//    structural pass missed, or checkpoint-fold divergence shows up as
//    the first differing word.
//
// Returns true when no logger was active (the capture is invalid) —
// non-durable workloads are vacuously durable.  Violation messages are
// deterministic (ids, versions, offsets — no pointers), so a replayed
// schedule fails with a byte-identical message.
#pragma once

#include <string>

namespace demotx::check {

bool verify_durability(std::string* why);

}  // namespace demotx::check
