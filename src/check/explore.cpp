#include "check/explore.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "check/durability.hpp"
#include "check/oracles.hpp"
#include "check/recorder.hpp"
#include "check/workloads.hpp"
#include "dur/wal.hpp"
#include "mem/epoch.hpp"
#include "stm/cell.hpp"
#include "stm/durability.hpp"
#include "stm/objstm.hpp"
#include "stm/runtime.hpp"

namespace demotx::check {

namespace {

// splitmix64: decorrelates per-iteration seeds derived from (seed, i).
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;
}

}  // namespace

int baseline_choice(const vt::Scheduler::ChoicePoint& cp) {
  for (int i = 0; i < cp.n; ++i)
    if (cp.runnable[i] == cp.last) return cp.last;
  return cp.runnable[0];  // runnable ids are ascending: lowest id
}

int baseline_of(const vt::Scheduler::Decision& d) {
  if (d.last >= 0 && d.last < 64 && ((d.runnable_mask >> d.last) & 1) != 0)
    return d.last;
  for (int i = 0; i < 64; ++i)
    if (((d.runnable_mask >> i) & 1) != 0) return i;
  return -1;
}

std::vector<Preemption> trace_from_log(
    const std::vector<vt::Scheduler::Decision>& log) {
  std::vector<Preemption> trace;
  for (std::size_t i = 0; i < log.size(); ++i)
    if (log[i].chosen != baseline_of(log[i]))
      trace.push_back({i, log[i].chosen});
  return trace;
}

std::string make_token(const std::string& workload,
                       const std::vector<Preemption>& trace,
                       std::uint64_t crash_at) {
  std::string s = "demotx:v1:" + workload + ":";
  if (trace.empty()) {
    s += "-";
  } else {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i != 0) s += ",";
      s += std::to_string(trace[i].index) + "@" +
           std::to_string(trace[i].task);
    }
  }
  if (crash_at != UINT64_MAX) s += ":crash=" + std::to_string(crash_at);
  return s;
}

bool parse_token(const std::string& token, std::string* workload,
                 std::vector<Preemption>* trace, std::uint64_t* crash_at) {
  if (crash_at != nullptr) *crash_at = UINT64_MAX;
  const std::string prefix = "demotx:v1:";
  if (token.rfind(prefix, 0) != 0) return false;
  const std::size_t wend = token.find(':', prefix.size());
  if (wend == std::string::npos) return false;
  *workload = token.substr(prefix.size(), wend - prefix.size());
  trace->clear();
  std::string rest = token.substr(wend + 1);
  // Split the crash suffix before trace parsing: the crash cycle is
  // part of the schedule, not a preemption.
  const std::string ctag = ":crash=";
  if (const std::size_t cpos = rest.find(ctag); cpos != std::string::npos) {
    char* end = nullptr;
    const std::uint64_t cycle =
        std::strtoull(rest.c_str() + cpos + ctag.size(), &end, 10);
    if (*end != '\0' || end == rest.c_str() + cpos + ctag.size())
      return false;
    if (crash_at != nullptr) *crash_at = cycle;
    rest.resize(cpos);
  }
  if (rest == "-" || rest.empty()) return true;
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string item = rest.substr(pos, comma - pos);
    const std::size_t at = item.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= item.size())
      return false;
    char* end = nullptr;
    const std::uint64_t idx = std::strtoull(item.c_str(), &end, 10);
    if (end != item.c_str() + at) return false;
    const long task = std::strtol(item.c_str() + at + 1, &end, 10);
    if (*end != '\0' || task < 0) return false;
    trace->push_back({idx, static_cast<int>(task)});
    pos = comma + 1;
  }
  return true;
}

ScheduleOutcome run_schedule(const std::string& workload,
                             vt::Scheduler::Options sopts,
                             bool check_oracles) {
  ScheduleOutcome out;
  // Fresh durable world per schedule: detach any previous logger, clear
  // the WAL, and restart the uid allocators so filter bits and log ids
  // are allocation-order determined — identical across replays no matter
  // what the heap hands out (durable workloads re-attach in setup()).
  stm::set_commit_logger(nullptr);
  dur::WalManager::instance().reset();
  stm::cell_uid_reset();
  stm::obj_uid_reset();
  // Idle simulated hardware per schedule: a coherence queue carried over
  // from the previous run would shift every early crash window and let
  // a replay diverge from the recorded schedule.
  stm::Runtime::instance().sim_lines_reset();
  std::unique_ptr<Workload> w = make_workload(workload);
  if (w == nullptr) {
    out.violation = true;
    out.what = "unknown workload: " + workload;
    return out;
  }
  // Pre-population runs before the recorder attaches, so its commits are
  // the oracles' baseline versions, not certified history.
  w->setup();

  Recorder rec;
  rec.attach();
  {
    sopts.decision_log = &out.log;
    sopts.on_crash = [] { dur::WalManager::instance().capture_crash_image(); };
    vt::Scheduler sched(std::move(sopts));
    Workload* wp = w.get();
    for (int t = 0; t < w->threads(); ++t)
      sched.spawn([wp](int id) { wp->body(id); });
    sched.run();
    out.cycles = sched.cycles();
    out.hung = sched.hit_cycle_limit();
    out.crashed = sched.crashed();
  }
  rec.detach();

  out.attempts = rec.attempts().size();
  for (const Attempt& a : rec.attempts())
    if (a.committed()) ++out.commits;

  if (check_oracles) {
    const OracleResult r = certify(rec.attempts());
    if (!r.ok) {
      out.violation = true;
      out.what = r.what;
    }
  }
  // Durability oracle: at a crash the capture is the frozen image the
  // on_crash hook grabbed; at quiescence verify the same rules against
  // the final durable state (every commit acked, replay reproduces it).
  if (!out.violation && dur::WalManager::instance().active()) {
    if (!out.crashed) dur::WalManager::instance().capture_quiescent_image();
    std::string why;
    if (!verify_durability(&why)) {
      out.violation = true;
      out.what = why;
    }
  }
  // The quiescent invariant only means something if every body finished
  // (a crashed schedule deliberately didn't).
  if (!out.violation && !out.hung && !out.crashed) {
    std::string why;
    if (!w->invariant(&why)) {
      out.violation = true;
      out.what = why;
    }
  }

  stm::set_commit_logger(nullptr);     // before the registered cells die
  w.reset();                           // quiescent teardown
  mem::EpochManager::instance().drain();  // free retired nodes eagerly
  return out;
}

ScheduleOutcome run_trace(const std::string& workload,
                          const std::vector<Preemption>& trace,
                          std::uint64_t max_cycles, bool check_oracles,
                          std::uint64_t crash_at) {
  vt::Scheduler::Options sopts;
  sopts.policy = vt::Scheduler::Policy::kChoice;
  sopts.max_cycles = max_cycles;
  sopts.crash_at_cycle = crash_at;
  sopts.choice_fn = [trace](const vt::Scheduler::ChoicePoint& cp) {
    for (const Preemption& p : trace) {
      if (p.index != cp.index) continue;
      for (int i = 0; i < cp.n; ++i)
        if (cp.runnable[i] == p.task) return p.task;
      break;  // preempted-to task not runnable here: fall to baseline
    }
    return baseline_choice(cp);
  };
  return run_schedule(workload, std::move(sopts), check_oracles);
}

namespace {

void tally(ExploreResult& res, const ScheduleOutcome& out) {
  ++res.schedules_run;
  res.attempts_seen += out.attempts;
  res.commits_seen += out.commits;
  if (out.hung) ++res.hung;
}

// Greedy delta debugging: drop one preemption at a time and keep every
// drop that leaves the schedule failing; repeat until a full pass sticks.
std::vector<Preemption> minimize_trace(const ExploreOptions& opts,
                                       std::vector<Preemption> trace,
                                       std::string* what,
                                       ExploreResult& res) {
  bool shrunk = true;
  while (shrunk && !trace.empty()) {
    shrunk = false;
    for (std::size_t i = 0; i < trace.size();) {
      std::vector<Preemption> cand = trace;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      const ScheduleOutcome out = run_trace(opts.workload, cand,
                                            opts.max_cycles,
                                            opts.check_oracles,
                                            opts.crash_at);
      tally(res, out);
      if (out.violation) {
        trace = std::move(cand);
        *what = out.what;
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return trace;
}

// A failing schedule was found: turn its decision log into a trace,
// verify the trace reproduces the failure, minimize, emit the token.
// opts.crash_at carries the schedule's crash cycle (if any) so the
// trace replays — and minimizes — under the identical crash point.
void report_failure(const ExploreOptions& opts, const ScheduleOutcome& out,
                    ExploreResult& res) {
  res.found_violation = true;
  res.what = out.what;
  std::vector<Preemption> trace = trace_from_log(out.log);
  const ScheduleOutcome rep =
      run_trace(opts.workload, trace, opts.max_cycles, opts.check_oracles,
                opts.crash_at);
  tally(res, rep);
  if (rep.violation) {
    res.replay_verified = true;
    res.what = rep.what;
    if (opts.minimize)
      trace = minimize_trace(opts, std::move(trace), &res.what, res);
  }
  res.token = make_token(opts.workload, trace, opts.crash_at);
}

ExploreResult explore_seeded(const ExploreOptions& opts, bool pct) {
  ExploreResult res;
  // Horizon auto-measure: one baseline schedule tells us how long (in
  // scheduling steps ~ cycles) a run of this workload is, so the PCT
  // change points — and the hunted crash cycles — are sampled inside
  // the execution rather than past it.
  std::uint64_t horizon = 2048;
  if (pct || opts.crash_hunt) {
    const ScheduleOutcome base =
        run_trace(opts.workload, {}, opts.max_cycles, /*check_oracles=*/false);
    horizon = std::max<std::uint64_t>(64, base.cycles);
  }
  for (std::uint64_t i = 0; i < opts.schedules; ++i) {
    vt::Scheduler::Options sopts;
    sopts.policy = pct ? vt::Scheduler::Policy::kPct
                       : vt::Scheduler::Policy::kRandom;
    sopts.seed = mix(opts.seed, i);
    sopts.max_cycles = opts.max_cycles;
    sopts.pct_change_points = opts.pct_change_points;
    sopts.pct_horizon = horizon;
    // The crash cycle is drawn from its own stream (decorrelated from
    // the schedule seed) so the hunt covers the (schedule, crash-point)
    // product, not a diagonal of it.
    std::uint64_t crash_at = opts.crash_at;
    if (opts.crash_hunt)
      crash_at = 1 + mix(opts.seed ^ 0x6372617368ULL, i) % horizon;
    sopts.crash_at_cycle = crash_at;
    const ScheduleOutcome out =
        run_schedule(opts.workload, std::move(sopts), opts.check_oracles);
    tally(res, out);
    if (out.violation) {
      ExploreOptions eff = opts;
      eff.crash_at = crash_at;
      report_failure(eff, out, res);
      return res;
    }
  }
  return res;
}

ExploreResult explore_dfs(const ExploreOptions& opts) {
  ExploreResult res;
  // A preempted schedule can livelock: the baseline rule keeps running a
  // spinner that waits on the preempted lock holder forever.  Those
  // schedules are legal (they count as hung), but at the global brake
  // they would dominate wall time — so the DFS brake is a multiple of
  // the baseline schedule's length instead.
  const ScheduleOutcome base =
      run_trace(opts.workload, {}, opts.max_cycles, /*check_oracles=*/false);
  const std::uint64_t brake =
      std::min<std::uint64_t>(opts.max_cycles, 16 * base.cycles + 4096);
  std::vector<std::vector<Preemption>> frontier;
  frontier.push_back({});
  const auto bound = static_cast<std::size_t>(
      opts.dfs_preemptions < 0 ? 0 : opts.dfs_preemptions);
  while (!frontier.empty() && res.schedules_run < opts.schedules) {
    std::vector<Preemption> trace = std::move(frontier.back());
    frontier.pop_back();
    const ScheduleOutcome out =
        run_trace(opts.workload, trace, brake, opts.check_oracles,
                  opts.crash_at);
    tally(res, out);
    if (out.violation) {
      res.found_violation = true;
      res.what = out.what;
      std::vector<Preemption> final_trace = trace;
      if (opts.minimize)
        final_trace = minimize_trace(opts, std::move(final_trace),
                                     &res.what, res);
      // DFS schedules are already trace-driven: re-run once to confirm
      // determinism of the (possibly minimized) token.
      const ScheduleOutcome rep = run_trace(opts.workload, final_trace,
                                            opts.max_cycles,
                                            opts.check_oracles,
                                            opts.crash_at);
      tally(res, rep);
      res.replay_verified = rep.violation;
      res.token = make_token(opts.workload, final_trace, opts.crash_at);
      return res;
    }
    if (trace.size() >= bound) continue;
    // Extend only past the last existing preemption so each trace is
    // generated exactly once, and only within the depth cap.
    const std::uint64_t first =
        trace.empty() ? 0 : trace.back().index + 1;
    const std::uint64_t depth =
        std::min<std::uint64_t>(out.log.size(), opts.dfs_depth);
    for (std::uint64_t i = first; i < depth; ++i) {
      const vt::Scheduler::Decision& d = out.log[i];
      for (int t = 0; t < 64; ++t) {
        if (((d.runnable_mask >> t) & 1) == 0 || t == d.chosen) continue;
        std::vector<Preemption> next = trace;
        next.push_back({i, t});
        frontier.push_back(std::move(next));
      }
    }
  }
  return res;
}

ExploreResult explore_replay(const ExploreOptions& opts) {
  ExploreResult res;
  std::string workload;
  std::vector<Preemption> trace;
  std::uint64_t crash_at = UINT64_MAX;
  if (!parse_token(opts.replay_token, &workload, &trace, &crash_at)) {
    res.ok = false;
    res.error = "malformed replay token: " + opts.replay_token;
    return res;
  }
  res.workload = workload;
  const ScheduleOutcome out =
      run_trace(workload, trace, opts.max_cycles, opts.check_oracles,
                crash_at);
  tally(res, out);
  if (out.violation) {
    res.found_violation = true;
    res.replay_verified = true;
    res.what = out.what;
    res.token = make_token(workload, trace, crash_at);
  }
  return res;
}

}  // namespace

ExploreResult explore(const ExploreOptions& opts) {
  if (make_workload(opts.workload) == nullptr &&
      opts.strategy != "replay") {
    ExploreResult res;
    res.ok = false;
    res.error = "unknown workload: " + opts.workload;
    return res;
  }
  ExploreResult res;
  if (opts.strategy == "pct") {
    res = explore_seeded(opts, /*pct=*/true);
  } else if (opts.strategy == "random") {
    res = explore_seeded(opts, /*pct=*/false);
  } else if (opts.strategy == "dfs") {
    res = explore_dfs(opts);
  } else if (opts.strategy == "replay") {
    res = explore_replay(opts);
  } else {
    res.ok = false;
    res.error = "unknown strategy: " + opts.strategy;
  }
  if (res.workload.empty()) res.workload = opts.workload;
  return res;
}

}  // namespace demotx::check
