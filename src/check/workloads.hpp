// Exploration workloads: small fixed scenarios whose every interleaving
// the explorer drives through the vt scheduler.  Bodies are deliberately
// tiny (a handful of transactions each) so the schedule space stays dense
// in interesting commit/validation races, and each scenario carries a
// sequential-outcome invariant checked at quiescence on top of the
// recorded-history oracles.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace demotx::check {

class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual int threads() const = 0;
  // Builds initial structure state.  Runs on the driver thread BEFORE the
  // recorder attaches: pre-population commits become baseline versions.
  virtual void setup() {}
  // One logical thread's transactions; runs inside the simulator.
  virtual void body(int tid) = 0;
  // Quiescent post-run model check (after the recorder detaches).
  virtual bool invariant(std::string* why) {
    (void)why;
    return true;
  }
};

// nullptr for an unknown name.
std::unique_ptr<Workload> make_workload(const std::string& name);
const std::vector<std::string>& workload_names();

}  // namespace demotx::check
