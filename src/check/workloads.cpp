// demotx:expert-file: systematic-exploration infrastructure: drives and certifies every semantics tier
#include "check/workloads.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <optional>
#include <sstream>

#include "ds/tx_hashset.hpp"
#include "ds/tx_list.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_skiplist.hpp"
#include "dur/wal.hpp"
#include "stm/durability.hpp"
#include "stm/objstm.hpp"
#include "stm/stm.hpp"
#include "svc/kvservice.hpp"

namespace demotx::check {

namespace {

// The Fig. 7/9 mix over ONE list: elastic updaters, a classic updater
// (joining via nesting), elastic membership tests and snapshot iteration
// all composed on the same nodes.  Keys are disjoint per thread, so the
// final contents are schedule-independent: {2,4,6,8} +5 -4 +3 -6 =
// {2,3,5,8}.
class ListMixed final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 4; }

  void setup() override {
    for (const long k : {2L, 4L, 6L, 8L}) list_.add(k);
  }

  void body(int tid) override {
    switch (tid) {
      case 0:  // elastic updater
        list_.add(5);
        list_.remove(4);
        break;
      case 1:  // classic updater: the list's elastic ops join a classic tx
        stm::atomically(stm::Semantics::kClassic,
                        [&](stm::Tx&) { list_.add(3); });
        stm::atomically(stm::Semantics::kClassic,
                        [&](stm::Tx&) { list_.remove(6); });
        break;
      case 2:  // elastic readers
        (void)list_.contains(5);
        (void)list_.contains(7);
        break;
      case 3:  // snapshot readers (atomic size + iteration)
        (void)list_.size();
        (void)list_.to_vector();
        break;
      default:
        break;
    }
  }

  bool invariant(std::string* why) override {
    const std::vector<long> got = list_.to_vector();
    const std::vector<long> want{2, 3, 5, 8};
    if (got != want) {
      std::ostringstream os;
      os << "list-mixed: final contents {";
      for (const long k : got) os << ' ' << k;
      os << " } != expected { 2 3 5 8 }";
      *why = os.str();
      return false;
    }
    return true;
  }

 private:
  ds::TxList list_{{stm::Semantics::kElastic, stm::Semantics::kSnapshot}};
};

// Classic write-skew shape: both transactions read both accounts and each
// withdraws from its own if the joint balance allows.  Serializably the
// second withdrawal must see the first and decline, so the only legal
// quiescent total is 20; a validation hole (e.g. the injected GV4
// adoption skip) lets both commit at one timestamp and the total goes
// negative.
class BankSkew final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 2; }

  void body(int tid) override {
    stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& tx) {
      const long x = a_.get(tx);
      const long y = b_.get(tx);
      if (x + y >= 100) {
        if (tid == 0) {
          a_.set(tx, x - 100);
        } else {
          b_.set(tx, y - 100);
        }
      }
    });
  }

  bool invariant(std::string* why) override {
    const long total = a_.unsafe_load() + b_.unsafe_load();
    if (total != 20) {
      *why = "bank-skew: quiescent total a+b = " + std::to_string(total) +
             ", expected 20 (both withdrawals committed: write skew)";
      return false;
    }
    return true;
  }

 private:
  stm::TVar<long> a_{60};
  stm::TVar<long> b_{60};
};

// Summary-ring race shape (needs validation_scheme=summary): a classic
// reader-updater whose commit validates a read of x through the ring
// while a writer commits x and a decoy thread burns timestamps so the
// reader's validation range is never empty.  With the torn-publish
// injection the reader can trust a slot whose summary has not landed yet
// and keep an invalidated read.
class SummaryRace final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void body(int tid) override {
    switch (tid) {
      case 0:  // the victim: read x, publish into z, validate at commit
        stm::atomically([&](stm::Tx& tx) {
          const long vx = x_.get(tx);
          z_.set(tx, vx + 1);
        });
        break;
      case 1:  // the conflicting writer
        stm::atomically([&](stm::Tx& tx) { x_.set(tx, x_.get(tx) + 10); });
        break;
      case 2:  // disjoint traffic: keeps the clock moving
        stm::atomically([&](stm::Tx& tx) { w_.set(tx, w_.get(tx) + 1); });
        break;
      default:
        break;
    }
  }

 private:
  stm::TVar<long> x_{0};
  stm::TVar<long> z_{0};
  stm::TVar<long> w_{0};
};

// FIFO queue: two producers, one draining consumer.  No element may be
// lost or duplicated, and each producer's elements must come out in its
// program order.
class QueuePC final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void body(int tid) override {
    if (tid < 2) {
      q_.enqueue(10 * (tid + 1) + 1);
      q_.enqueue(10 * (tid + 1) + 2);
    } else {
      for (int i = 0; i < 4; ++i) {
        if (std::optional<long> v = q_.dequeue()) popped_.push_back(*v);
      }
    }
  }

  bool invariant(std::string* why) override {
    std::vector<long> all = popped_;
    while (std::optional<long> v = q_.dequeue()) all.push_back(*v);
    std::vector<long> sorted = all;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != std::vector<long>{11, 12, 21, 22}) {
      *why = "queue: drained elements are not exactly {11,12,21,22} "
             "(lost or duplicated element)";
      return false;
    }
    // Per-producer FIFO order within the popped prefix.
    for (const long lo : {11L, 21L}) {
      const auto i1 = std::find(all.begin(), all.end(), lo);
      const auto i2 = std::find(all.begin(), all.end(), lo + 1);
      if (i2 < i1) {
        *why = "queue: " + std::to_string(lo + 1) + " dequeued before " +
               std::to_string(lo);
        return false;
      }
    }
    return true;
  }

 private:
  ds::TxQueue q_;
  std::vector<long> popped_;
};

// Elastic skiplist + snapshot size over the same structure: a second
// mixed-semantics shape with taller parse paths (more cut boundaries).
class SkiplistMixed final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void setup() override {
    for (const long k : {10L, 20L, 30L, 40L}) list_.add(k);
  }

  void body(int tid) override {
    switch (tid) {
      case 0:
        list_.add(25);
        list_.remove(20);
        break;
      case 1:
        (void)list_.contains(30);
        list_.add(35);
        break;
      case 2:
        (void)list_.size();
        break;
      default:
        break;
    }
  }

  bool invariant(std::string* why) override {
    for (const long k : {10L, 25L, 30L, 35L, 40L}) {
      if (!list_.contains(k)) {
        *why = "skiplist-mixed: missing key " + std::to_string(k);
        return false;
      }
    }
    if (list_.contains(20)) {
      *why = "skiplist-mixed: key 20 should have been removed";
      return false;
    }
    return true;
  }

 private:
  ds::TxSkipList list_{{stm::Semantics::kElastic, stm::Semantics::kSnapshot}};
};

// Snapshot-vs-churn: writers repeatedly overwrite EVERY cell inside one
// transaction (so all cells are equal in each committed state), fast
// enough that a slow snapshot reader finds the current version beyond its
// bound and must be served from the per-cell version ring — including
// after the ring wraps, because each writer commits more generations than
// the deepest configured ring keeps (9 > kMaxSnapshotBackups).  The
// workload invariant is that every snapshot sees all cells equal; on top
// of that the oracle's rv-pinning check certifies each ring-served read
// is exactly the version current at the reader's bound.
class SnapshotChurn final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 4; }

  void body(int tid) override {
    if (tid < 2) {
      for (long g = 1; g <= 9; ++g) {
        const long v = tid * 100 + g;
        stm::atomically([&](stm::Tx& tx) {
          for (auto& c : cells_) c.set(tx, v);
        });
      }
    } else {
      for (int it = 0; it < 3; ++it) {
        const bool equal = stm::atomically(
            stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
              const long first = cells_[0].get(tx);
              for (auto& c : cells_)
                if (c.get(tx) != first) return false;
              return true;
            });
        if (!equal) torn_.store(true, std::memory_order_relaxed);
      }
    }
  }

  bool invariant(std::string* why) override {
    if (torn_.load(std::memory_order_relaxed)) {
      *why = "snapshot-churn: a snapshot observed unequal cells";
      return false;
    }
    const long v0 = cells_[0].unsafe_load();
    for (auto& c : cells_) {
      if (c.unsafe_load() != v0) {
        *why = "snapshot-churn: final cells unequal after quiescence";
        return false;
      }
    }
    return true;
  }

 private:
  std::array<stm::TVar<long>, 4> cells_{};
  std::atomic<bool> torn_{false};
};

// Container churn through the object-ops tier (run with
// DEMOTX_OBJECT_OPS=1; the containers latch the opt-in at construction
// from the environment-derived runtime config, so the row's environment
// decides the representation).  Disjoint update keys make the final set
// schedule-independent while the readers' semantic contains/size reads
// and the queue's head/tail observations exercise every object
// certification path; the recorded history feeds the object-level
// oracle rules.
class ObjsetChurn final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void setup() override {
    for (const long k : {1L, 2L, 3L}) set_.add(k);
  }

  void body(int tid) override {
    switch (tid) {
      case 0:
        set_.add(10);
        set_.remove(1);
        q_.enqueue(5);
        break;
      case 1:
        set_.remove(2);
        set_.add(20);
        q_.enqueue(6);
        break;
      case 2:  // semantic readers + a racing consumer
        (void)set_.contains(3);
        (void)set_.size();  // snapshot tier: served from the size ring
        if (std::optional<long> v = q_.dequeue())
          popped_.push_back(*v);
        break;
      default:
        break;
    }
  }

  bool invariant(std::string* why) override {
    for (const long k : {3L, 10L, 20L}) {
      if (!set_.contains(k)) {
        *why = "objset-churn: missing key " + std::to_string(k);
        return false;
      }
    }
    for (const long k : {1L, 2L}) {
      if (set_.contains(k)) {
        *why = "objset-churn: key " + std::to_string(k) +
               " should have been removed";
        return false;
      }
    }
    if (set_.unsafe_size() != 3) {
      *why = "objset-churn: quiescent size " +
             std::to_string(set_.unsafe_size()) + " != 3";
      return false;
    }
    std::vector<long> all = popped_;
    while (std::optional<long> v = q_.dequeue()) all.push_back(*v);
    std::sort(all.begin(), all.end());
    if (all != std::vector<long>{5, 6}) {
      *why = "objset-churn: queue drained to something other than {5,6} "
             "(lost or duplicated element)";
      return false;
    }
    return true;
  }

 private:
  ds::TxHashSet set_;
  ds::TxQueue q_;
  std::vector<long> popped_;
};

// Object-level write-skew (the BankSkew analogue for semantic
// certification): each thread guard-checks that NEITHER reservation key
// is taken, then inserts its own.  Serializably the second committer's
// guard must see the first insert and decline, so exactly one key is
// ever present.  The obj-commute injection certifies a guard read by
// assuming commutativity without the value re-check, letting both
// commit — the quiescent size hits 2 and the object update-certification
// oracle sees a read of "absent" that prior commits invalidated.
class ObjReserve final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 2; }

  void body(int tid) override {
    const std::uint64_t mine = 100 + static_cast<std::uint64_t>(tid);
    const std::uint64_t other = 100 + static_cast<std::uint64_t>(1 - tid);
    stm::atomically(stm::Semantics::kClassic, [&](stm::Tx& tx) {
      if (tx.obj_contains(set_, mine) || tx.obj_contains(set_, other))
        return;
      (void)tx.obj_insert(set_, mine);
    });
  }

  bool invariant(std::string* why) override {
    const std::size_t n = set_.unsafe_size();
    if (n != 1) {
      *why = "obj-reserve: " + std::to_string(n) +
             " reservations committed, expected exactly 1 (object-level "
             "write skew)";
      return false;
    }
    return true;
  }

 private:
  stm::ObjSet set_;
};

// Durable transfers over raw registered cells: every commit appends a
// redo record and blocks in await_durable until the group flush reaches
// it.  The quiescent invariant (total conserved) holds on non-crashed
// schedules; under crash injection the durability oracle takes over —
// acknowledged transfers survive, the recovered image is byte-identical
// to the acknowledged history.  One unregistered scratch cell checks the
// logger's registry filter: its writes must never reach the log.
class BankDurable final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void setup() override {
    for (auto& a : acct_) a.unsafe_store(100);
    dur::WalManager& wal = dur::WalManager::instance();
    for (auto& a : acct_) wal.register_cell(&a);
    stm::set_commit_logger(&wal);
  }

  void body(int tid) override {
    auto transfer = [&](std::size_t from, std::size_t to, std::uint64_t amt) {
      stm::atomically([&](stm::Tx& tx) {
        const std::uint64_t f = tx.read_word(acct_[from]);
        if (f < amt) return;
        tx.write_word(acct_[from], f - amt);
        tx.write_word(acct_[to], tx.read_word(acct_[to]) + amt);
        tx.write_word(scratch_, f);  // volatile: must not be logged
      });
    };
    switch (tid) {
      case 0:
        transfer(0, 1, 10);
        transfer(1, 2, 5);
        break;
      case 1:
        transfer(2, 3, 7);
        transfer(3, 0, 3);
        break;
      case 2:
        transfer(0, 2, 1);
        break;
      default:
        break;
    }
  }

  bool invariant(std::string* why) override {
    std::uint64_t total = 0;
    for (auto& a : acct_) total += a.unsafe_value();
    if (total != 400) {
      *why = "bank-dur: quiescent total " + std::to_string(total) +
             " != 400 (transfer atomicity broken)";
      return false;
    }
    return true;
  }

 private:
  std::array<stm::Cell, 4> acct_{};
  stm::Cell scratch_{};
};

// Durable object-tier churn: the set registers EMPTY, then even its
// pre-population runs transactionally AFTER the logger attaches — the
// setup commits exercise the non-sim synchronous flush path, and the
// in-sim bodies exercise object net-op records under group commit.
class ObjsetDurable final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 3; }

  void setup() override {
    dur::WalManager& wal = dur::WalManager::instance();
    wal.register_obj(&set_);
    stm::set_commit_logger(&wal);
    for (const std::uint64_t k : {1u, 2u, 3u})
      stm::atomically([&](stm::Tx& tx) { (void)tx.obj_insert(set_, k); });
  }

  void body(int tid) override {
    switch (tid) {
      case 0:
        stm::atomically([&](stm::Tx& tx) { (void)tx.obj_insert(set_, 10); });
        stm::atomically([&](stm::Tx& tx) { (void)tx.obj_erase(set_, 1); });
        break;
      case 1:
        stm::atomically([&](stm::Tx& tx) { (void)tx.obj_erase(set_, 2); });
        stm::atomically([&](stm::Tx& tx) { (void)tx.obj_insert(set_, 20); });
        break;
      case 2:
        stm::atomically([&](stm::Tx& tx) {
          (void)tx.obj_contains(set_, 3);
          (void)tx.obj_insert(set_, 30);
        });
        break;
      default:
        break;
    }
  }

  bool invariant(std::string* why) override {
    for (const std::uint64_t k : {3u, 10u, 20u, 30u}) {
      const bool in = stm::atomically(
          [&](stm::Tx& tx) { return tx.obj_contains(set_, k); });
      if (!in) {
        *why = "objset-dur: missing key " + std::to_string(k);
        return false;
      }
    }
    if (set_.unsafe_size() != 4) {
      *why = "objset-dur: quiescent size " +
             std::to_string(set_.unsafe_size()) + " != 4";
      return false;
    }
    return true;
  }

 private:
  stm::ObjSet set_;
};

// Durable churn under snapshot readers (the crash-in-spin workload):
// writers overwrite every registered cell in one durable commit — each
// holds its write locks through the WAL append and parks in the pinned
// await_durable — while snapshot readers race those write-backs, so the
// bounded reader spins (read_snapshot's locked/torn branches) are live
// in almost every schedule.  An injected crash landing inside such a
// spin window must not hang the capture: the spin polls observe
// vt::stop_requested() (ISSUE 9 satellite).  Non-crashed schedules keep
// SnapshotChurn's invariant (all cells equal); crashed ones are
// certified by the durability oracle.
class SnapshotDurable final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 4; }

  void setup() override {
    for (auto& c : cells_) c.unsafe_store(1);
    dur::WalManager& wal = dur::WalManager::instance();
    for (auto& c : cells_) wal.register_cell(&c);
    stm::set_commit_logger(&wal);
  }

  void body(int tid) override {
    if (tid < 2) {
      for (std::uint64_t g = 1; g <= 4; ++g) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(tid) * 100 + g;
        stm::atomically([&](stm::Tx& tx) {
          for (auto& c : cells_) tx.write_word(c, v);
        });
      }
    } else {
      for (int it = 0; it < 3; ++it) {
        const bool equal = stm::atomically(
            stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
              const std::uint64_t first = tx.read_word(cells_[0]);
              for (auto& c : cells_)
                if (tx.read_word(c) != first) return false;
              return true;
            });
        if (!equal) torn_.store(true, std::memory_order_relaxed);
      }
    }
  }

  bool invariant(std::string* why) override {
    if (torn_.load(std::memory_order_relaxed)) {
      *why = "snapshot-dur: a snapshot observed unequal cells";
      return false;
    }
    const std::uint64_t v0 = cells_[0].unsafe_value();
    for (auto& c : cells_) {
      if (c.unsafe_value() != v0) {
        *why = "snapshot-dur: final cells unequal after quiescence";
        return false;
      }
    }
    return true;
  }

 private:
  std::array<stm::Cell, 4> cells_{};
  std::atomic<bool> torn_{false};
};

// ObjRing wrap-exhaustion (non-durable): a snapshot reader pins its rv
// on a dummy cell read, then walks the set's striped size rings; the
// writer meanwhile flips ONE key snapshot_depth + 2 times, so a schedule
// that packs every flip into the pin-to-walk window wraps that stripe's
// ring past the reader's bound.  The only legal outcome is a
// kSnapshotRace abort and retry — never a stale size — which the
// history oracle certifies on every interleaving; the driving test
// additionally asserts the race path actually fired.
class ObjRingWrap final : public Workload {
 public:
  [[nodiscard]] int threads() const override { return 2; }

  void setup() override {
    for (const std::uint64_t k : {1u, 2u, 3u})
      stm::atomically([&](stm::Tx& tx) { (void)tx.obj_insert(set_, k); });
  }

  void body(int tid) override {
    if (tid == 0) {
      const std::size_t depth = std::min(
          std::max<std::size_t>(
              stm::Runtime::instance().config.snapshot_depth, 1),
          stm::kMaxSnapshotDepth);
      for (std::size_t i = 0; i < depth + 2; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          if (i % 2 == 0) {
            (void)tx.obj_insert(set_, kFlipKey);
          } else {
            (void)tx.obj_erase(set_, kFlipKey);
          }
        });
      }
      flips_ = depth + 2;
    } else {
      const std::uint64_t n = stm::atomically(
          stm::Semantics::kSnapshot, [&](stm::Tx& tx) {
            (void)dummy_.get(tx);  // pins rv before the ring walk
            return tx.obj_size(set_);
          });
      seen_ = n;
    }
  }

  bool invariant(std::string* why) override {
    if (seen_ != 3 && seen_ != 4) {
      *why = "objring-wrap: snapshot size read " + std::to_string(seen_) +
             " is neither 3 nor 4 (stale ring entry served)";
      return false;
    }
    const bool in = stm::atomically(
        [&](stm::Tx& tx) { return tx.obj_contains(set_, kFlipKey); });
    if (in != (flips_ % 2 == 1)) {
      *why = "objring-wrap: flip key parity wrong after " +
             std::to_string(flips_) + " flips";
      return false;
    }
    return true;
  }

 private:
  static constexpr std::uint64_t kFlipKey = 40;
  stm::ObjSet set_;
  stm::TVar<long> dummy_{0};
  std::uint64_t seen_ = 3;
  std::size_t flips_ = 0;
};

// KV service scenario (src/svc/): a miniature open-loop run inside the
// explorer.  Two worker fibers and the injector drive a mixed request
// stream through the FOM tick loop, so every schedule exercises the
// per-session in-flight guard, the one-attempt-per-tick re-parking and
// all four semantics tiers at once; the recorded-history oracles certify
// each attempt against its tier's rules, and the quiescent invariant is
// the service's own reply oracle (monotone sessions, conserved scans,
// no acked-then-lost, no shed effects).  The durable variant registers
// the whole table with the WAL, so under --crash-at / --crash-hunt the
// durability oracle additionally checks that acknowledged puts survive
// the recovered image.
class KvServiceCheck final : public Workload {
 public:
  explicit KvServiceCheck(bool durable) {
    svc::SvcConfig cfg;
    cfg.workers = 2;
    cfg.sessions = 3;
    cfg.queue_cap = 16;   // roomy: admission shedding is the tests' job
    cfg.deadline_cycles = 0;
    cfg.mean_interarrival = 6;
    cfg.total_requests = 12;
    cfg.bank_keys = 4;
    cfg.keys_per_session = 2;
    cfg.initial_balance = 20;
    // Flat-ish mix so a dozen arrivals usually cover all five classes.
    cfg.get_pct = 25;
    cfg.put_pct = 25;
    cfg.scan_pct = 20;
    cfg.transfer_pct = 20;  // remaining 10% admin
    cfg.durable = durable;
    svc_ = std::make_unique<svc::KvService>(cfg, /*seed=*/4242);
  }

  [[nodiscard]] int threads() const override { return 3; }

  void setup() override { svc_->setup(); }

  void body(int tid) override {
    if (tid == 2) {
      svc_->injector_body();
    } else {
      svc_->worker_body(tid);
    }
  }

  bool invariant(std::string* why) override {
    std::string w;
    if (!svc_->check_replies(&w)) {
      *why = w;
      return false;
    }
    return true;
  }

 private:
  std::unique_ptr<svc::KvService> svc_;
};

const std::vector<std::string> kNames = {
    "list-mixed",     "bank-skew",      "summary-race", "queue",
    "skiplist-mixed", "snapshot-churn", "objset-churn", "obj-reserve",
    "bank-dur",       "objset-dur",     "snapshot-dur", "objring-wrap",
    "kv-service",     "kv-service-dur"};

}  // namespace

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "list-mixed") return std::make_unique<ListMixed>();
  if (name == "bank-skew") return std::make_unique<BankSkew>();
  if (name == "summary-race") return std::make_unique<SummaryRace>();
  if (name == "queue") return std::make_unique<QueuePC>();
  if (name == "skiplist-mixed") return std::make_unique<SkiplistMixed>();
  if (name == "snapshot-churn") return std::make_unique<SnapshotChurn>();
  if (name == "objset-churn") return std::make_unique<ObjsetChurn>();
  if (name == "obj-reserve") return std::make_unique<ObjReserve>();
  if (name == "bank-dur") return std::make_unique<BankDurable>();
  if (name == "objset-dur") return std::make_unique<ObjsetDurable>();
  if (name == "snapshot-dur") return std::make_unique<SnapshotDurable>();
  if (name == "objring-wrap") return std::make_unique<ObjRingWrap>();
  if (name == "kv-service")
    return std::make_unique<KvServiceCheck>(/*durable=*/false);
  if (name == "kv-service-dur")
    return std::make_unique<KvServiceCheck>(/*durable=*/true);
  return nullptr;
}

const std::vector<std::string>& workload_names() { return kNames; }

}  // namespace demotx::check
