// Live history recorder: turns the stm::TxObserver callback stream of a
// real (simulated) execution into per-attempt records the oracles in
// oracles.hpp can certify.
//
// One Recorder instance is attached around a run_sim() call (the sim is
// single-OS-threaded, so no synchronization is needed) and accumulates
// every transaction attempt: its semantics, start timestamp, each read
// with the (version, value) it returned, elastic cuts/strengthening, the
// final write set and wv of committed updates, and the abort reason of
// failed attempts.  Cell addresses are mapped to dense location ids;
// a destruction hook retires ids before the allocator can reuse an
// address, so reclaimed-and-reallocated nodes never alias.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stm/observer.hpp"

namespace demotx::check {

struct ReadRec {
  int loc;
  std::uint64_t version;  // version the read observed
  std::uint64_t value;    // value it returned to the body
  std::uint64_t seq = 0;  // global event order (for history export)
  // Window entries evicted (cuts) immediately before this elastic read.
  std::uint32_t cut_before = 0;
  bool in_window = false;   // elastic-phase read (sliding window)
  bool in_read_set = false; // survives to commit-time validation
  bool released = false;    // dropped by early release
};

struct WriteRec {
  int loc;
  std::uint64_t value;
};

// Object-ops tier (PR 7): semantic observations and net commit writes
// against participating containers.  `obj` is a dense object id; `key`
// a container key or an objops.hpp sentinel (size/head/tail).  Both
// sides are uniform (key, version, value) records, so the object-level
// oracle shares one value-based rule across sets and queues.
struct ObjReadRec {
  int obj;
  std::uint64_t key;
  std::uint64_t version;  // per-key ring version observed (0 = baseline)
  std::uint64_t value;    // observed presence / size / index
  std::uint64_t seq = 0;
};

struct ObjWriteRec {
  int obj;
  std::uint64_t key;
  std::uint64_t value;
};

struct Attempt {
  int slot = -1;
  std::uint64_t serial = 0;
  stm::Semantics sem = stm::Semantics::kClassic;
  std::uint64_t rv = 0;  // start timestamp (re-sampled at strengthening)
  std::uint64_t wv = 0;  // published write version (committed updates)

  enum class Outcome : std::uint8_t { kActive, kCommitted, kAborted };
  Outcome outcome = Outcome::kActive;
  stm::AbortReason abort_reason = stm::AbortReason::kExplicit;

  bool strengthened = false;     // elastic phase ended with a write
  bool used_release = false;     // early release happened (weakens oracles)
  bool branch_rollback = false;  // orElse rolled a branch back

  std::uint64_t begin_seq = 0;   // global event order stamps
  std::uint64_t end_seq = 0;

  std::vector<ReadRec> reads;          // program order
  std::vector<WriteRec> commit_writes; // final write set (committed updates)
  std::vector<ObjReadRec> obj_reads;   // semantic reads, program order
  std::vector<ObjWriteRec> obj_commit_writes;  // net object changes

  [[nodiscard]] bool committed() const { return outcome == Outcome::kCommitted; }
  [[nodiscard]] bool update() const {
    return !commit_writes.empty() || !obj_commit_writes.empty();
  }
};

class Recorder final : public stm::TxObserver {
 public:
  Recorder() = default;
  ~Recorder() override;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Installs/removes this recorder as the process-wide observer (and the
  // cell-destruction hook).  Single-threaded use only.
  void attach();
  void detach();

  // Drops all recorded state (attempts, location map) for the next run.
  void reset();

  // Finished attempts in completion order.
  [[nodiscard]] const std::vector<Attempt>& attempts() const {
    return attempts_;
  }
  [[nodiscard]] std::uint64_t events() const { return seq_; }
  [[nodiscard]] int num_locs() const { return next_loc_; }

  // ---- stm::TxObserver -------------------------------------------------
  void on_begin(int slot, std::uint64_t serial, stm::Semantics sem,
                std::uint64_t rv) override;
  void on_read(int slot, const stm::Cell* c, std::uint64_t version,
               std::uint64_t value, bool in_window) override;
  void on_elastic_cut(int slot, unsigned evicted) override;
  void on_strengthen(int slot, std::uint64_t new_rv) override;
  void on_write(int slot, const stm::Cell* c, std::uint64_t value) override;
  void on_release(int slot, const stm::Cell* c) override;
  void on_branch_rollback(int slot) override;
  void on_commit_write(int slot, const stm::Cell* c,
                       std::uint64_t value) override;
  void on_commit(int slot, std::uint64_t wv) override;
  void on_abort(int slot, stm::AbortReason why) override;
  void on_obj_read(int slot, const void* obj, std::uint64_t key,
                   std::uint64_t version, std::uint64_t value) override;
  void on_obj_commit_write(int slot, const void* obj, std::uint64_t key,
                           std::uint64_t value) override;

 private:
  struct Open {
    Attempt att;
    // Mirror of the descriptor's elastic window: indices into att.reads.
    std::vector<std::size_t> window;
    std::uint32_t cut_pending = 0;
  };

  Open* open_for(int slot);
  int loc_of(const stm::Cell* c);
  int obj_of(const void* obj);
  void finish(int slot, Attempt::Outcome outcome, stm::AbortReason why);

  std::vector<Attempt> attempts_;
  std::unordered_map<int, Open> open_;
  std::unordered_map<const stm::Cell*, int> locs_;
  // Object descriptors are workload-lifetime (containers outlive the
  // run), so unlike cells they need no destruction hook to avoid
  // address-reuse aliasing.
  std::unordered_map<const void*, int> objs_;
  int next_loc_ = 0;
  int next_obj_ = 0;
  std::uint64_t seq_ = 0;
  bool attached_ = false;

  friend void recorder_cell_hook(const stm::Cell* c);
};

}  // namespace demotx::check
