#include "check/durability.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dur/wal.hpp"

namespace demotx::check {

bool verify_durability(std::string* why) {
  dur::WalManager& wal = dur::WalManager::instance();
  const dur::Capture& cap = wal.capture();
  if (!cap.valid) return true;

  // Rule 1: acknowledged commits are inside the durable prefix.
  for (const dur::SideRec& s : cap.side) {
    if (s.acked && s.lsn_end > cap.durable_lsn) {
      *why = "durability: acknowledged commit (wv " + std::to_string(s.wv) +
             ", slot " + std::to_string(s.slot) + ", lsn " +
             std::to_string(s.lsn_end) + ") lost: durable lsn is only " +
             std::to_string(cap.durable_lsn);
      return false;
    }
  }

  // Rule 2: the durable image replays cleanly.
  const dur::RecoveryResult r = dur::WalManager::replay(cap);
  if (!r.ok) {
    *why = "durability: recovery replay failed: " + r.what;
    return false;
  }

  // Rule 3: recovered state is byte-identical to the fold of the TRUE
  // payloads of every durable commit (side records, in log order) onto
  // the initial image.
  dur::Image expected = wal.initial_image();
  std::vector<const dur::SideRec*> durable;
  durable.reserve(cap.side.size());
  for (const dur::SideRec& s : cap.side)
    if (s.lsn_end <= cap.durable_lsn) durable.push_back(&s);
  // Side records are pushed in append-completion order; fold in log
  // (lsn) order instead, matching replay.  Per-location the two orders
  // agree anyway — the logger holds the write locks.
  std::sort(durable.begin(), durable.end(),
            [](const dur::SideRec* a, const dur::SideRec* b) {
              return a->lsn_end < b->lsn_end;
            });
  for (const dur::SideRec* s : durable) {
    for (std::size_t i = 0; i + 1 < s->cells.size(); i += 2)
      expected.cells[s->cells[i]] = {s->wv, s->cells[i + 1]};
    for (std::size_t i = 0; i + 2 < s->objs.size(); i += 3)
      expected.objs[{s->objs[i], s->objs[i + 1]}] = {s->wv, s->objs[i + 2]};
  }
  const std::vector<std::uint64_t> want = expected.serialize();
  if (want != r.image) {
    std::size_t i = 0;
    while (i < want.size() && i < r.image.size() && want[i] == r.image[i]) ++i;
    *why = "durability: recovered state diverges from the acknowledged "
           "history at word " +
           std::to_string(i) + " (recovered " +
           (i < r.image.size() ? std::to_string(r.image[i]) : "<end>") +
           ", expected " +
           (i < want.size() ? std::to_string(want[i]) : "<end>") +
           "; recovered " + std::to_string(r.image.size()) + " words, expected " +
           std::to_string(want.size()) + ")";
    return false;
  }
  return true;
}

}  // namespace demotx::check
