// Systematic concurrency exploration over the vt simulator.
//
// A *schedule* is one deterministic run of a workload (workloads.hpp)
// under a scheduler policy, with the live recorder (recorder.hpp)
// attached and the per-semantics oracles (oracles.hpp) certifying the
// observed history afterwards.  Strategies:
//
//   pct     — N independent PCT schedules (Scheduler::Policy::kPct), each
//             with a seed derived from (seed, iteration).  The horizon is
//             auto-measured from a baseline run so the change points land
//             inside the execution.
//   random  — N uniformly random schedules (Policy::kRandom).
//   dfs     — bounded-exhaustive search (Policy::kChoice): a stateless
//             replay-based DFS over preemption traces.  The baseline
//             schedule is "continue the last-run thread, else the lowest
//             runnable id"; a trace is the set of choice points where the
//             schedule deviates.  New preemptions are only added after
//             the last existing one, bounded by --preemptions and a
//             choice-depth cap, so the frontier is finite and each trace
//             is visited once.
//   replay  — re-execute one schedule from a replay token.
//
// When a schedule fails an oracle or a workload invariant, the decision
// log is converted into a preemption trace, greedily minimized (drop one
// preemption, re-run, keep the drop if the failure survives) and emitted
// as a replay token:
//
//   demotx:v1:<workload>:<idx>@<task>,<idx>@<task>,...      (or ":-")
//
// with an optional ":crash=<cycle>" suffix when the schedule ran under
// the crash injector (the cycle is part of the schedule's identity: the
// same trace with a different crash point is a different schedule).
//
// A token replays deterministically in a fresh process: the sim is
// single-threaded, the workload fixes its own initial state, the
// baseline rule pins every non-preempted decision, and every schedule
// starts from idle simulated hardware (Runtime::sim_lines_reset) so its
// timing never depends on which runs preceded it.  Durable workloads
// additionally reset the WAL and the uid allocators before every
// schedule, so filter bits, log ids and failure messages are
// allocation-order (not allocator-address) determined and a replayed
// violation message is byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vt/scheduler.hpp"

namespace demotx::check {

// One forced deviation from the baseline schedule: at choice point
// `index`, run `task` instead of the baseline pick.
struct Preemption {
  std::uint64_t index;
  int task;
};

// The deterministic default at a choice point: keep running the thread
// that ran last if it still can, else the lowest runnable id.
int baseline_choice(const vt::Scheduler::ChoicePoint& cp);

// The baseline pick a Decision record implies (same rule, reconstructed
// from the logged runnable mask and `last`).
int baseline_of(const vt::Scheduler::Decision& d);

// The preemption trace equivalent to a recorded decision log: every
// choice point whose pick differs from the baseline rule.  Replaying the
// trace under kChoice reproduces the logged schedule exactly.
std::vector<Preemption> trace_from_log(
    const std::vector<vt::Scheduler::Decision>& log);

std::string make_token(const std::string& workload,
                       const std::vector<Preemption>& trace,
                       std::uint64_t crash_at = UINT64_MAX);
// False on malformed input.  `crash_at` (may be null) receives the
// ":crash=" suffix cycle, or UINT64_MAX when the token has none.
bool parse_token(const std::string& token, std::string* workload,
                 std::vector<Preemption>* trace,
                 std::uint64_t* crash_at = nullptr);

// ---- one schedule ----------------------------------------------------

struct ScheduleOutcome {
  bool violation = false;  // oracle or invariant failure
  bool hung = false;       // hit the max_cycles brake
  bool crashed = false;    // the crash injector fired
  std::string what;        // first failure message
  std::uint64_t cycles = 0;
  std::uint64_t attempts = 0;  // transaction attempts observed
  std::uint64_t commits = 0;
  std::vector<vt::Scheduler::Decision> log;
};

// Runs one schedule of `workload` under `sopts`: fresh workload instance,
// setup() before the recorder attaches, oracles + invariant after it
// detaches, epoch drain at teardown.  sopts.decision_log is redirected
// into the returned outcome.
ScheduleOutcome run_schedule(const std::string& workload,
                             vt::Scheduler::Options sopts,
                             bool check_oracles = true);

// Convenience: one schedule driven by a preemption trace, optionally
// crashing at virtual cycle `crash_at`.
ScheduleOutcome run_trace(const std::string& workload,
                          const std::vector<Preemption>& trace,
                          std::uint64_t max_cycles,
                          bool check_oracles = true,
                          std::uint64_t crash_at = UINT64_MAX);

// ---- the exploration loop --------------------------------------------

struct ExploreOptions {
  std::string workload = "list-mixed";
  std::string strategy = "pct";  // pct | random | dfs | replay
  std::uint64_t seed = 1;
  std::uint64_t schedules = 1000;  // budget (pct/random) or cap (dfs)
  int pct_change_points = 2;
  int dfs_preemptions = 2;      // preemption bound
  std::uint64_t dfs_depth = 48; // choice-point depth cap for extensions
  std::uint64_t max_cycles = 1 << 20;  // per-schedule deadlock brake
  std::string replay_token;     // for strategy == "replay"
  bool minimize = true;
  bool check_oracles = true;
  // Crash injection: a fixed crash cycle for every schedule, or a
  // per-schedule random crash cycle (crash_hunt) drawn from
  // (seed, iteration) inside the auto-measured horizon — the random
  // crash-schedule hunt the durability oracle certifies.
  std::uint64_t crash_at = UINT64_MAX;
  bool crash_hunt = false;
};

struct ExploreResult {
  bool ok = true;                  // false on usage errors (bad token...)
  std::string error;
  std::string workload;            // what actually ran (token may override)
  std::uint64_t schedules_run = 0;
  std::uint64_t attempts_seen = 0;
  std::uint64_t commits_seen = 0;
  std::uint64_t hung = 0;
  bool found_violation = false;
  std::string what;                // the (minimized) failure message
  std::string token;               // replay token reproducing it
  bool replay_verified = false;    // token re-ran and failed again
};

ExploreResult explore(const ExploreOptions& opts);

}  // namespace demotx::check
