// demotx:expert-file: systematic-exploration infrastructure: drives and certifies every semantics tier
#include "check/recorder.hpp"

#include "stm/cell.hpp"

namespace demotx::check {

namespace {
Recorder* g_active = nullptr;
}  // namespace

void recorder_cell_hook(const stm::Cell* c) {
  // A cell is being destroyed; retire its location id so the allocator
  // reusing the address cannot alias two logical locations.  The map keeps
  // no entry for never-observed cells, so most destructions are a miss.
  if (g_active != nullptr) g_active->locs_.erase(c);
}

Recorder::~Recorder() { detach(); }

void Recorder::attach() {
  if (attached_) return;
  stm::set_tx_observer(this);
  g_active = this;
  stm::g_cell_destroy_hook = &recorder_cell_hook;
  attached_ = true;
}

void Recorder::detach() {
  if (!attached_) return;
  stm::set_tx_observer(nullptr);
  stm::g_cell_destroy_hook = nullptr;
  g_active = nullptr;
  attached_ = false;
}

void Recorder::reset() {
  attempts_.clear();
  open_.clear();
  locs_.clear();
  objs_.clear();
  next_loc_ = 0;
  next_obj_ = 0;
  seq_ = 0;
}

Recorder::Open* Recorder::open_for(int slot) {
  auto it = open_.find(slot);
  return it == open_.end() ? nullptr : &it->second;
}

int Recorder::loc_of(const stm::Cell* c) {
  auto [it, inserted] = locs_.try_emplace(c, next_loc_);
  if (inserted) ++next_loc_;
  return it->second;
}

int Recorder::obj_of(const void* obj) {
  auto [it, inserted] = objs_.try_emplace(obj, next_obj_);
  if (inserted) ++next_obj_;
  return it->second;
}

void Recorder::finish(int slot, Attempt::Outcome outcome,
                      stm::AbortReason why) {
  Open* o = open_for(slot);
  if (o == nullptr) return;  // attempt began before attach()
  o->att.outcome = outcome;
  o->att.abort_reason = why;
  o->att.end_seq = seq_;
  attempts_.push_back(std::move(o->att));
  open_.erase(slot);
}

void Recorder::on_begin(int slot, std::uint64_t serial, stm::Semantics sem,
                        std::uint64_t rv) {
  ++seq_;
  // A begin with an attempt still open means the previous one vanished
  // without commit/rollback (cannot happen via atomically; be safe).
  open_.erase(slot);
  Open& o = open_[slot];
  o.att.slot = slot;
  o.att.serial = serial;
  o.att.sem = sem;
  o.att.rv = rv;
  o.att.begin_seq = seq_;
}

void Recorder::on_read(int slot, const stm::Cell* c, std::uint64_t version,
                       std::uint64_t value, bool in_window) {
  ++seq_;
  Open* o = open_for(slot);
  if (o == nullptr) return;
  ReadRec r;
  r.loc = loc_of(c);
  r.version = version;
  r.value = value;
  r.seq = seq_;
  r.in_window = in_window;
  r.in_read_set = !in_window && o->att.sem != stm::Semantics::kSnapshot;
  if (in_window) {
    r.cut_before = o->cut_pending;
    o->cut_pending = 0;
    o->window.push_back(o->att.reads.size());
  }
  o->att.reads.push_back(r);
}

void Recorder::on_elastic_cut(int slot, unsigned evicted) {
  ++seq_;
  Open* o = open_for(slot);
  if (o == nullptr) return;
  o->cut_pending += evicted;
  // Cuts evict the oldest window entries.
  const std::size_t drop =
      evicted < o->window.size() ? evicted : o->window.size();
  o->window.erase(o->window.begin(),
                  o->window.begin() + static_cast<std::ptrdiff_t>(drop));
}

void Recorder::on_strengthen(int slot, std::uint64_t new_rv) {
  ++seq_;
  Open* o = open_for(slot);
  if (o == nullptr) return;
  // The surviving window becomes the read set of the final piece.
  for (const std::size_t i : o->window) o->att.reads[i].in_read_set = true;
  o->window.clear();
  o->cut_pending = 0;
  o->att.strengthened = true;
  o->att.rv = new_rv;
}

void Recorder::on_write(int slot, const stm::Cell* c, std::uint64_t value) {
  // The committed write set arrives via on_commit_write; the per-write
  // event only advances the global order.
  ++seq_;
  (void)slot;
  (void)c;
  (void)value;
}

void Recorder::on_release(int slot, const stm::Cell* c) {
  ++seq_;
  Open* o = open_for(slot);
  if (o == nullptr) return;
  o->att.used_release = true;
  const auto it = locs_.find(c);
  if (it == locs_.end()) return;
  const int loc = it->second;
  for (ReadRec& r : o->att.reads) {
    if (r.loc == loc) {
      r.released = true;
      r.in_read_set = false;
    }
  }
  std::size_t kept = 0;
  for (const std::size_t i : o->window)
    if (o->att.reads[i].loc != loc) o->window[kept++] = i;
  o->window.resize(kept);
}

void Recorder::on_branch_rollback(int slot) {
  ++seq_;
  if (Open* o = open_for(slot)) o->att.branch_rollback = true;
}

void Recorder::on_commit_write(int slot, const stm::Cell* c,
                               std::uint64_t value) {
  ++seq_;
  if (Open* o = open_for(slot))
    o->att.commit_writes.push_back({loc_of(c), value});
}

void Recorder::on_commit(int slot, std::uint64_t wv) {
  ++seq_;
  if (Open* o = open_for(slot)) o->att.wv = wv;
  finish(slot, Attempt::Outcome::kCommitted, stm::AbortReason::kExplicit);
}

void Recorder::on_abort(int slot, stm::AbortReason why) {
  ++seq_;
  finish(slot, Attempt::Outcome::kAborted, why);
}

void Recorder::on_obj_read(int slot, const void* obj, std::uint64_t key,
                           std::uint64_t version, std::uint64_t value) {
  ++seq_;
  Open* o = open_for(slot);
  if (o == nullptr) return;
  ObjReadRec r;
  r.obj = obj_of(obj);
  r.key = key;
  r.version = version;
  r.value = value;
  r.seq = seq_;
  o->att.obj_reads.push_back(r);
}

void Recorder::on_obj_commit_write(int slot, const void* obj,
                                   std::uint64_t key, std::uint64_t value) {
  ++seq_;
  if (Open* o = open_for(slot))
    o->att.obj_commit_writes.push_back({obj_of(obj), key, value});
}

}  // namespace demotx::check
