// demotx_explore: the systematic-exploration CLI (see explore.hpp).
//
//   demotx_explore --workload bank-skew --strategy pct --schedules 5000
//   demotx_explore --replay 'demotx:v1:bank-skew:3@1,9@0'
//
// Exit code 0 when the run matched expectation (clean by default, or a
// violation under --expect-violation), 1 on the mismatch, 2 on usage
// errors.  On a violation the output carries two stable grep anchors:
//
//   VIOLATION: <oracle/invariant message>
//   REPLAY <token>
//
// STM configuration comes from the usual DEMOTX_CLOCK / DEMOTX_GATE /
// DEMOTX_VALIDATION environment variables (plus DEMOTX_CHECK_INJECT for
// the mutation self-tests); the explorer itself adds no config axis, so
// one process explores exactly one configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/explore.hpp"
#include "check/workloads.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --workload NAME     scenario to explore (--list to enumerate)\n"
      "  --strategy S        pct | random | dfs | replay   [pct]\n"
      "  --seed N            base seed for pct/random      [1]\n"
      "  --schedules N       budget (pct/random), cap (dfs) [1000]\n"
      "  --change-points N   PCT priority change points    [2]\n"
      "  --preemptions N     DFS preemption bound          [2]\n"
      "  --depth N           DFS choice-depth cap          [48]\n"
      "  --max-cycles N      per-schedule deadlock brake   [1048576]\n"
      "  --crash-at N        inject a crash at virtual cycle N (or env\n"
      "                      DEMOTX_CRASH_AT)\n"
      "  --crash-hunt        pct/random: random crash cycle per schedule\n"
      "  --replay TOKEN      re-execute one schedule (sets --strategy)\n"
      "  --expect-violation  exit 0 iff a violation IS found\n"
      "  --no-minimize       keep the raw failing trace\n"
      "  --no-oracles        invariants only (skip history certification)\n"
      "  --list              print workload names and exit\n",
      argv0);
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  demotx::check::ExploreOptions opts;
  bool expect_violation = false;
  if (const char* e = std::getenv("DEMOTX_CRASH_AT")) {
    std::uint64_t n = 0;
    if (parse_u64(e, &n)) opts.crash_at = n;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--list") {
      for (const std::string& w : demotx::check::workload_names())
        std::printf("%s\n", w.c_str());
      return 0;
    } else if (arg == "--workload") {
      opts.workload = value();
    } else if (arg == "--strategy") {
      opts.strategy = value();
    } else if (arg == "--seed" && parse_u64(value(), &n)) {
      opts.seed = n;
    } else if (arg == "--schedules" && parse_u64(value(), &n)) {
      opts.schedules = n;
    } else if (arg == "--change-points" && parse_u64(value(), &n)) {
      opts.pct_change_points = static_cast<int>(n);
    } else if (arg == "--preemptions" && parse_u64(value(), &n)) {
      opts.dfs_preemptions = static_cast<int>(n);
    } else if (arg == "--depth" && parse_u64(value(), &n)) {
      opts.dfs_depth = n;
    } else if (arg == "--max-cycles" && parse_u64(value(), &n)) {
      opts.max_cycles = n;
    } else if (arg == "--crash-at" && parse_u64(value(), &n)) {
      opts.crash_at = n;
    } else if (arg == "--crash-hunt") {
      opts.crash_hunt = true;
    } else if (arg == "--replay") {
      opts.replay_token = value();
      opts.strategy = "replay";
    } else if (arg == "--expect-violation") {
      expect_violation = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (arg == "--no-oracles") {
      opts.check_oracles = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: bad option or value: %s\n", argv[0],
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const demotx::check::ExploreResult res = demotx::check::explore(opts);
  if (!res.ok) {
    std::fprintf(stderr, "%s: %s\n", argv[0], res.error.c_str());
    return 2;
  }

  std::printf("workload=%s strategy=%s schedules=%llu attempts=%llu "
              "commits=%llu hung=%llu\n",
              res.workload.c_str(), opts.strategy.c_str(),
              static_cast<unsigned long long>(res.schedules_run),
              static_cast<unsigned long long>(res.attempts_seen),
              static_cast<unsigned long long>(res.commits_seen),
              static_cast<unsigned long long>(res.hung));
  if (res.found_violation) {
    std::printf("VIOLATION: %s\n", res.what.c_str());
    std::printf("REPLAY %s\n", res.token.c_str());
    std::printf("replay-verified=%s\n", res.replay_verified ? "yes" : "no");
  } else {
    std::printf("CLEAN: no oracle or invariant violation found\n");
  }
  return res.found_violation == expect_violation ? 0 : 1;
}
