// The integer-set interface all competitors implement: the paper's
// Collection benchmark surface (contains / add / remove / size).
//
// Cost-model convention shared by every implementation (see DESIGN.md):
// visiting a node (reading its key and link) charges one vt::access()
// cycle; every synchronization action (lock word, CAS, version check,
// clock read, ...) charges its own cycles through the primitive that
// performs it.  Sequential code thus pays exactly one cycle per node and
// every synchronized variant pays its true overhead on top.
#pragma once

namespace demotx {

class ISet {
 public:
  virtual ~ISet() = default;

  virtual bool contains(long key) = 0;
  virtual bool add(long key) = 0;
  virtual bool remove(long key) = 0;

  // Number of elements.  Implementations document whether this is atomic
  // (STM classic/snapshot, COW, coarse) or a best-effort traversal
  // (hand-over-hand, lazy, lock-free — the very limitation that forced
  // the paper to benchmark against copyOnWriteArraySet).
  virtual long size() = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  // Quiescent (single-threaded) element count for post-run verification.
  virtual long unsafe_size() = 0;
};

}  // namespace demotx
