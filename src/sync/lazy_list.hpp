// Lazy list (Heller, Herlihy, Luchangco, Moir, Scherer, Shavit,
// OPODIS'05) — the paper's citation [29] for what lock-based experts must
// do to get a scalable set: wait-free unsynchronized traversal, logical
// deletion marks, per-node locks, and an explicit post-lock validation
// phase.  Unlinked nodes are retired to epoch-based reclamation because
// readers traverse without locks.
#pragma once

#include <atomic>
#include <climits>

#include "mem/epoch.hpp"
#include "sync/annotations.hpp"
#include "sync/set_interface.hpp"
#include "vt/context.hpp"
#include "vt/sync.hpp"

namespace demotx::sync {

class LazyList final : public ISet {
 public:
  LazyList() {
    tail_ = new Node(LONG_MAX, nullptr);
    head_ = new Node(LONG_MIN, tail_);
  }

  ~LazyList() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  LazyList(const LazyList&) = delete;
  LazyList& operator=(const LazyList&) = delete;

  bool contains(long key) override {
    mem::EpochManager::Guard g;
    Node* curr = head_;
    while (curr->key < key) curr = visit(curr);
    vt::access();
    return curr->key == key && !curr->marked.load(std::memory_order_acquire);
  }

  bool add(long key) override {
    mem::EpochManager::Guard g;
    for (;;) {
      auto [prev, curr] = locate(key);
      vt::SpinGuard lp(prev->lock);
      vt::SpinGuard lc(curr->lock);
      if (!validate(prev, curr)) continue;
      if (curr->key == key) return false;
      auto* n = new Node(key, curr);
      vt::access();
      prev->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool remove(long key) override {
    mem::EpochManager::Guard g;
    for (;;) {
      auto [prev, curr] = locate(key);
      vt::SpinGuard lp(prev->lock);
      vt::SpinGuard lc(curr->lock);
      if (!validate(prev, curr)) continue;
      if (curr->key != key) return false;
      vt::access();
      curr->marked.store(true, std::memory_order_release);  // logical
      vt::access();
      prev->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);  // physical
      mem::EpochManager::instance().retire(curr);
      return true;
    }
  }

  // Best-effort traversal count; NOT atomic.
  long size() override {
    mem::EpochManager::Guard g;
    long n = 0;
    for (Node* c = visit(head_); c != tail_; c = visit(c)) {
      vt::access();
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  long unsafe_size() override {
    long n = 0;
    for (Node* c = head_->next.load(std::memory_order_relaxed); c != tail_;
         c = c->next.load(std::memory_order_relaxed))
      ++n;
    return n;
  }

  [[nodiscard]] const char* name() const override { return "lazy-list"; }

 private:
  struct Node {
    long key;
    std::atomic<Node*> next;
    std::atomic<bool> marked{false};
    vt::SpinLock lock;
    Node(long k, Node* n) : key(k), next(n) {}
  };

  static Node* visit(Node* n) {
    vt::access();
    return n->next.load(std::memory_order_acquire);
  }

  std::pair<Node*, Node*> locate(long key) {
    Node* prev = head_;
    Node* curr = visit(prev);
    while (curr->key < key) {
      prev = curr;
      curr = visit(curr);
    }
    return {prev, curr};
  }

  // The post-lock validation phase: only meaningful with both node
  // locks held (that is what makes the re-check stable).
  static bool validate(Node* prev, Node* curr)
      DEMOTX_REQUIRES(prev->lock, curr->lock) {
    vt::access();
    return !prev->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           prev->next.load(std::memory_order_acquire) == curr;
  }

  Node* head_;
  Node* tail_;
};

}  // namespace demotx::sync
