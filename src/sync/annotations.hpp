// Clang Thread Safety Analysis (TSA) capability annotations.
//
// These macros expand to clang's `__attribute__((capability(...)))`
// family when compiling with clang and thread-safety analysis available,
// and to nothing elsewhere (GCC, MSVC), so annotated headers stay
// portable.  The ctest row `tsa.build` configures the tree with
// `clang++ -Wthread-safety -Werror` when a clang is present and proves
// the annotated lock discipline; see DESIGN.md "Static analysis" for the
// capability map (which lock guards which data).
//
// Naming: every macro is DEMOTX_-prefixed so the expansion never
// collides with other TSA macro sets (abseil's, LLVM's own) if a
// downstream embeds these headers.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
// NOLINTNEXTLINE(bugprone-macro-parentheses): x is an attribute name
// with arguments, not an expression — parenthesizing it breaks the
// __attribute__ grammar.
#define DEMOTX_TSA(x) __attribute__((x))
#endif
#endif
#ifndef DEMOTX_TSA
#define DEMOTX_TSA(x)  // no-op outside clang
#endif

// A type that is a lockable capability (e.g. a spin lock).
#define DEMOTX_CAPABILITY(name) DEMOTX_TSA(capability(name))

// A RAII type that acquires a capability in its constructor and releases
// it in its destructor (std::lock_guard itself carries no annotations in
// libstdc++, so demotx code uses the annotated vt::SpinGuard instead).
#define DEMOTX_SCOPED_CAPABILITY DEMOTX_TSA(scoped_lockable)

// Data members: which capability guards this field / the data behind
// this pointer.
#define DEMOTX_GUARDED_BY(x) DEMOTX_TSA(guarded_by(x))
#define DEMOTX_PT_GUARDED_BY(x) DEMOTX_TSA(pt_guarded_by(x))

// Function contracts: the caller must hold / must not hold the
// capability when calling.
#define DEMOTX_REQUIRES(...) \
  DEMOTX_TSA(requires_capability(__VA_ARGS__))
#define DEMOTX_REQUIRES_SHARED(...) \
  DEMOTX_TSA(requires_shared_capability(__VA_ARGS__))
#define DEMOTX_EXCLUDES(...) DEMOTX_TSA(locks_excluded(__VA_ARGS__))

// Function effects: the call acquires / releases the capability.
#define DEMOTX_ACQUIRE(...) DEMOTX_TSA(acquire_capability(__VA_ARGS__))
#define DEMOTX_ACQUIRE_SHARED(...) \
  DEMOTX_TSA(acquire_shared_capability(__VA_ARGS__))
#define DEMOTX_RELEASE(...) DEMOTX_TSA(release_capability(__VA_ARGS__))
#define DEMOTX_RELEASE_SHARED(...) \
  DEMOTX_TSA(release_shared_capability(__VA_ARGS__))
#define DEMOTX_TRY_ACQUIRE(...) \
  DEMOTX_TSA(try_acquire_capability(__VA_ARGS__))

// Returns a reference to the capability guarding the returned data.
#define DEMOTX_RETURN_CAPABILITY(x) DEMOTX_TSA(lock_returned(x))

// Opt-out for functions whose locking discipline is real but beyond
// TSA's lexical scope analysis (lock ownership transferred through
// return values, conditionally held capabilities).  Every use in this
// tree carries a written justification comment at the use site.
#define DEMOTX_NO_TSA DEMOTX_TSA(no_thread_safety_analysis)

// A zero-size tag used to NAME a logical capability that is not a
// literal lock object — e.g. the STM's commit permission, which update
// committers hold shared (the gate) and an irrevocable transaction
// holds exclusive (the token).  Outside clang it is an empty struct.
namespace demotx::sync {
class DEMOTX_CAPABILITY("role") LogicalCapability {};
}  // namespace demotx::sync

// Marks code as expert-tier for demotx-lint (check
// demotx-expert-api-tier).  Expands to nothing: the lint's token
// frontend recognizes the identifier; the comment-marker form
// `// demotx:expert: <why>` is equivalent and preferred because it
// forces a justification.
#define DEMOTX_EXPERT
