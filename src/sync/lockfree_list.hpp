// Harris–Michael lock-free sorted list (paper citations [36], [28]) with a
// pluggable reclamation policy: epoch-based (default) or hazard pointers
// (Michael's original scheme, including the publish/re-validate dance).
//
// This is the paper's Exhibit A for "lock-free techniques require subtle
// mechanisms, like logical deletion, to prevent inconsistent memory
// deallocations" (Sec. 2.1): the deletion mark lives in bit 0 of the next
// pointer, traversals help unlink marked nodes, and every dereference must
// be covered by a reclamation protocol.
#pragma once

#include <atomic>
#include <climits>
#include <cstdint>

#include "mem/epoch.hpp"
#include "mem/hazard.hpp"
#include "sync/set_interface.hpp"
#include "vt/context.hpp"

namespace demotx::sync {

namespace lf {

// Reclamation policy: EBR — a Guard covers the whole operation, no
// per-pointer work.
struct EbrPolicy {
  static constexpr const char* kName = "lock-free(ebr)";
  struct Guard {
    mem::EpochManager::Guard g;
    void publish(int /*slot*/, const void* /*p*/) {}
    template <typename T>
    void retire(T* p) {
      mem::EpochManager::instance().retire(p);
    }
  };
};

// Reclamation policy: hazard pointers — publication before dereference;
// the caller re-validates reachability after publish() (the list's
// `prev->next == curr` recheck), per Michael 2002.
struct HpPolicy {
  static constexpr const char* kName = "lock-free(hp)";
  struct Guard {
    mem::HazardDomain::Holder h;
    void publish(int slot, const void* p) {
      mem::HazardDomain::instance().publish(slot, p);
    }
    template <typename T>
    void retire(T* p) {
      mem::HazardDomain::instance().retire(p);
    }
  };
};

}  // namespace lf

template <typename Reclaimer>
class LockFreeListT final : public ISet {
 public:
  LockFreeListT() {
    tail_ = new Node{LONG_MAX, {}};
    head_ = new Node{LONG_MIN, {}};
    tail_->next.store(pack(nullptr, false), std::memory_order_relaxed);
    head_->next.store(pack(tail_, false), std::memory_order_relaxed);
  }

  ~LockFreeListT() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = ptr_of(n->next.load(std::memory_order_relaxed));
      delete n;
      n = next;
    }
  }

  LockFreeListT(const LockFreeListT&) = delete;
  LockFreeListT& operator=(const LockFreeListT&) = delete;

  bool contains(long key) override {
    typename Reclaimer::Guard g;
    Position p = find(g, key);
    return p.found;
  }

  bool add(long key) override {
    typename Reclaimer::Guard g;
    for (;;) {
      Position p = find(g, key);
      if (p.found) return false;
      auto* n = new Node{key, {}};
      n->next.store(pack(p.curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(p.curr, false);
      vt::access();
      if (p.prev->compare_exchange_strong(expected, pack(n, false),
                                          std::memory_order_acq_rel)) {
        return true;
      }
      delete n;  // never published
    }
  }

  bool remove(long key) override {
    typename Reclaimer::Guard g;
    for (;;) {
      Position p = find(g, key);
      if (!p.found) return false;
      const std::uintptr_t succ = p.curr->next.load(std::memory_order_acquire);
      vt::access();
      if (marked(succ)) continue;  // someone else is deleting it
      // Logical deletion: mark curr's next.
      std::uintptr_t expected = succ;
      vt::access();
      if (!p.curr->next.compare_exchange_strong(expected, succ | 1u,
                                                std::memory_order_acq_rel)) {
        continue;
      }
      // Physical unlink (best effort; find() helps if we fail).
      expected = pack(p.curr, false);
      vt::access();
      if (p.prev->compare_exchange_strong(expected, succ & ~std::uintptr_t{1},
                                          std::memory_order_acq_rel)) {
        g.retire(p.curr);
      } else {
        find(g, key);  // cleanup pass unlinks and retires
      }
      return true;
    }
  }

  // Best-effort traversal count; NOT atomic.
  long size() override {
    typename Reclaimer::Guard g;
    long n = 0;
    g.publish(2, head_);
    std::uintptr_t raw = head_->next.load(std::memory_order_acquire);
    vt::access();
    Node* curr = ptr_of(raw);
    while (curr != tail_) {
      g.publish(1, curr);
      const std::uintptr_t next = curr->next.load(std::memory_order_acquire);
      vt::access();
      if (!marked(next)) ++n;
      curr = ptr_of(next);
    }
    return n;
  }

  long unsafe_size() override {
    long n = 0;
    for (Node* c = ptr_of(head_->next.load(std::memory_order_relaxed));
         c != tail_; c = ptr_of(c->next.load(std::memory_order_relaxed)))
      ++n;
    return n;
  }

  [[nodiscard]] const char* name() const override { return Reclaimer::kName; }

 private:
  struct Node {
    long key;
    std::atomic<std::uintptr_t> next;  // bit 0: this node is deleted
  };

  struct Position {
    std::atomic<std::uintptr_t>* prev;  // link that pointed at curr
    Node* curr;                         // first node with key >= target
    bool found;
  };

  static std::uintptr_t pack(Node* p, bool mark) {
    return reinterpret_cast<std::uintptr_t>(p) | (mark ? 1u : 0u);
  }
  static Node* ptr_of(std::uintptr_t w) {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t w) { return (w & 1u) != 0; }

  // Michael's find: returns with hazard slots 1 (curr) and 2 (prev node)
  // published; unlinks marked nodes on the way.
  Position find(typename Reclaimer::Guard& g, long key) {
  retry:
    Node* prev_node = head_;
    g.publish(2, prev_node);
    std::atomic<std::uintptr_t>* prev = &head_->next;
    vt::access();
    std::uintptr_t curr_raw = prev->load(std::memory_order_acquire);
    Node* curr = ptr_of(curr_raw);
    for (;;) {
      g.publish(1, curr);
      // Re-validate after publication: prev must still point at curr,
      // unmarked (covers both HP safety and Michael's consistency check).
      vt::access();
      if (prev->load(std::memory_order_acquire) != pack(curr, false))
        goto retry;
      if (curr == tail_) return {prev, curr, false};
      vt::access();
      const std::uintptr_t next_raw = curr->next.load(std::memory_order_acquire);
      Node* next = ptr_of(next_raw);
      if (marked(next_raw)) {
        // curr is logically deleted: unlink it.
        std::uintptr_t expected = pack(curr, false);
        vt::access();
        if (!prev->compare_exchange_strong(expected, pack(next, false),
                                           std::memory_order_acq_rel)) {
          goto retry;
        }
        g.retire(curr);
        curr = next;
        continue;
      }
      if (curr->key >= key) return {prev, curr, curr->key == key};
      prev_node = curr;
      g.publish(2, prev_node);
      prev = &curr->next;
      curr = next;
    }
  }

  Node* head_;
  Node* tail_;
};

using LockFreeList = LockFreeListT<lf::EbrPolicy>;
using LockFreeListHp = LockFreeListT<lf::HpPolicy>;

}  // namespace demotx::sync
