// Coarse-grained locking: one lock around the whole sequential list.
// The simplest correct concurrent set — and a serialization bottleneck
// that every other competitor is trying to beat.
#pragma once

#include <climits>

#include "sync/annotations.hpp"
#include "sync/set_interface.hpp"
#include "vt/context.hpp"
#include "vt/sync.hpp"

namespace demotx::sync {

class CoarseList final : public ISet {
 public:
  CoarseList() {
    tail_ = new Node{LONG_MAX, nullptr};
    head_ = new Node{LONG_MIN, tail_};
  }

  ~CoarseList() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  CoarseList(const CoarseList&) = delete;
  CoarseList& operator=(const CoarseList&) = delete;

  bool contains(long key) override {
    vt::SpinGuard g(lock_);
    Node* curr = visit(head_);
    while (curr->key < key) curr = visit(curr);
    return curr->key == key;
  }

  bool add(long key) override {
    vt::SpinGuard g(lock_);
    auto [prev, curr] = locate(key);
    if (curr->key == key) return false;
    prev->next = new Node{key, curr};
    vt::access();
    ++count_;
    return true;
  }

  bool remove(long key) override {
    vt::SpinGuard g(lock_);
    auto [prev, curr] = locate(key);
    if (curr->key != key) return false;
    prev->next = curr->next;
    vt::access();
    delete curr;
    --count_;
    return true;
  }

  long size() override {  // atomic: O(1) under the lock
    vt::SpinGuard g(lock_);
    vt::access();
    return count_;
  }

  // Quiescent-only debug read; deliberately reads count_ without the
  // lock, which is exactly what the NO_TSA documents.
  long unsafe_size() override DEMOTX_NO_TSA { return count_; }

  [[nodiscard]] const char* name() const override { return "coarse-lock"; }

 private:
  struct Node {
    long key;
    Node* next;
  };

  static Node* visit(Node* n) {
    vt::access();
    return n->next;
  }

  std::pair<Node*, Node*> locate(long key) DEMOTX_REQUIRES(lock_) {
    Node* prev = head_;
    Node* curr = visit(prev);
    while (curr->key < key) {
      prev = curr;
      curr = visit(curr);
    }
    return {prev, curr};
  }

  vt::SpinLock lock_;
  // head_/tail_ and every Node reached from them are written only under
  // lock_; TSA can only express that for the direct members.
  Node* head_ DEMOTX_GUARDED_BY(lock_);
  Node* tail_ DEMOTX_GUARDED_BY(lock_);
  long count_ DEMOTX_GUARDED_BY(lock_) = 0;
};

}  // namespace demotx::sync
