// Sequential sorted linked-list set: the normalization baseline.
//
// No synchronization whatsoever — this is "the sequential code" every
// figure normalizes throughput against.  It still charges one vt::access()
// per visited node so that simulated cycle counts are comparable across
// all implementations (see set_interface.hpp).
#pragma once

#include <climits>

#include "sync/set_interface.hpp"
#include "vt/context.hpp"

namespace demotx::sync {

class SeqList final : public ISet {
 public:
  SeqList() {
    tail_ = new Node{LONG_MAX, nullptr};
    head_ = new Node{LONG_MIN, tail_};
  }

  ~SeqList() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  SeqList(const SeqList&) = delete;
  SeqList& operator=(const SeqList&) = delete;

  bool contains(long key) override {
    Node* curr = visit(head_);
    while (curr->key < key) curr = visit(curr);
    return curr->key == key;
  }

  bool add(long key) override {
    Node* prev = head_;
    Node* curr = visit(prev);
    while (curr->key < key) {
      prev = curr;
      curr = visit(curr);
    }
    if (curr->key == key) return false;
    prev->next = new Node{key, curr};
    vt::access();
    ++count_;
    return true;
  }

  bool remove(long key) override {
    Node* prev = head_;
    Node* curr = visit(prev);
    while (curr->key < key) {
      prev = curr;
      curr = visit(curr);
    }
    if (curr->key != key) return false;
    prev->next = curr->next;
    vt::access();
    delete curr;
    --count_;
    return true;
  }

  long size() override {
    vt::access();
    return count_;
  }

  long unsafe_size() override { return count_; }

  [[nodiscard]] const char* name() const override { return "sequential"; }

 private:
  struct Node {
    long key;
    Node* next;
  };

  static Node* visit(Node* n) {
    vt::access();  // one cycle per node visited: the common cost model
    return n->next;
  }

  Node* head_;
  Node* tail_;
  long count_ = 0;
};

}  // namespace demotx::sync
