// Copy-on-write array set — the C++ twin of java.util.concurrent's
// CopyOnWriteArraySet, which the paper used as "the existing concurrent
// collection" in Figs. 5/7/9 because it is the workaround the Java
// concurrency book recommends when an atomic size()/iterator is required
// ([37]): reads and size() run on an immutable array snapshot (size is
// O(1) and trivially atomic), while updates copy the whole array under a
// writer lock.
//
// Faithful to the OpenJDK class:
//   * the array is unsorted; contains() is a linear scan over a lock-free
//     snapshot;
//   * add()/remove() first scan the snapshot WITHOUT the lock and return
//     false lock-free when there is nothing to do (addIfAbsent/remove
//     fast path) — on a half-full key range that removes half the update
//     traffic from the writer lock;
//   * only mutating updates take the lock, re-scan the current array and
//     publish a copy.
//
// Cost model: scans charge one cycle per element (reference-chasing
// compares, like a list parse); the copy itself charges one cycle per 8
// elements (System.arraycopy-style streaming of one cache line of
// references at a time).
#pragma once

#include <memory>
#include <vector>

#include "sync/annotations.hpp"
#include "sync/set_interface.hpp"
#include "vt/context.hpp"
#include "vt/sync.hpp"

namespace demotx::sync {

class CowArraySet final : public ISet {
 public:
  CowArraySet() : snapshot_(std::make_shared<const Array>()) {}

  CowArraySet(const CowArraySet&) = delete;
  CowArraySet& operator=(const CowArraySet&) = delete;

  bool contains(long key) override {
    vt::access();  // snapshot pointer load
    const std::shared_ptr<const Array> snap =
        snapshot_.load(std::memory_order_acquire);
    return scan(*snap, key);
  }

  bool add(long key) override {
    {  // addIfAbsent fast path: present in the snapshot → lock-free false
      vt::access();
      const std::shared_ptr<const Array> snap =
          snapshot_.load(std::memory_order_acquire);
      if (scan(*snap, key)) return false;
    }
    vt::SpinGuard g(write_lock_);
    vt::access();
    const std::shared_ptr<const Array> curr =
        snapshot_.load(std::memory_order_acquire);
    if (scan(*curr, key)) return false;  // raced with another add
    auto next = std::make_shared<Array>();
    next->reserve(curr->size() + 1);
    copy_into(*curr, *next, /*skip_key=*/-1);
    next->push_back(key);
    vt::access();
    snapshot_.store(std::move(next), std::memory_order_release);
    return true;
  }

  bool remove(long key) override {
    {  // fast path: absent in the snapshot → lock-free false
      vt::access();
      const std::shared_ptr<const Array> snap =
          snapshot_.load(std::memory_order_acquire);
      if (!scan(*snap, key)) return false;
    }
    vt::SpinGuard g(write_lock_);
    vt::access();
    const std::shared_ptr<const Array> curr =
        snapshot_.load(std::memory_order_acquire);
    if (!scan(*curr, key)) return false;  // raced with another remove
    auto next = std::make_shared<Array>();
    next->reserve(curr->size());
    copy_into(*curr, *next, key);
    vt::access();
    snapshot_.store(std::move(next), std::memory_order_release);
    return true;
  }

  // O(1) and atomic: the snapshot array's length.
  long size() override {
    vt::access();
    return static_cast<long>(
        snapshot_.load(std::memory_order_acquire)->size());
  }

  long unsafe_size() override {
    return static_cast<long>(
        snapshot_.load(std::memory_order_relaxed)->size());
  }

  [[nodiscard]] const char* name() const override { return "cow-array"; }

 private:
  using Array = std::vector<long>;

  static bool scan(const Array& a, long key) {
    for (long v : a) {
      vt::access();  // one cycle per element visited, like a list parse
      if (v == key) return true;
    }
    return false;
  }

  static void copy_into(const Array& from, Array& to, long skip_key) {
    unsigned batch = 0;
    for (long v : from) {
      if (v == skip_key) continue;
      if (++batch == 8) {  // streaming copy: one cycle per cache line
        vt::access();
        batch = 0;
      }
      to.push_back(v);
    }
    if (batch != 0) vt::access();
  }

  // snapshot_ is deliberately NOT guarded: reads are lock-free on the
  // immutable array; write_lock_ only serializes the copy-and-publish.
  std::atomic<std::shared_ptr<const Array>> snapshot_;
  vt::SpinLock write_lock_;
};

}  // namespace demotx::sync
