// Hand-over-hand (lock-coupling) list — the paper's Algorithm 3.
//
// This is the expert lock-based program whose atomicity relation the paper
// analyzes in Sec. 3.1: at any instant only the chain pair (prev, curr) is
// protected, so earlier parts of the parse may change concurrently — the
// exact guarantee elastic transactions recover without exposing locks.
// Note what the paper's Algorithm 2 (right) points out: the programmer had
// to change the node layout to embed a lock and manage it explicitly.
#pragma once

#include <climits>

#include "sync/annotations.hpp"
#include "sync/set_interface.hpp"
#include "vt/context.hpp"
#include "vt/sync.hpp"

namespace demotx::sync {

class HohList final : public ISet {
 public:
  HohList() {
    tail_ = new Node(LONG_MAX, nullptr);
    head_ = new Node(LONG_MIN, tail_);
  }

  ~HohList() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  HohList(const HohList&) = delete;
  HohList& operator=(const HohList&) = delete;

  // NO_TSA: lock-coupling transfers ownership of two node locks out of
  // locate() through its return value, a hand-off thread-safety
  // analysis cannot express; PR 3's schedule checkers cover this class.
  bool contains(long key) override DEMOTX_NO_TSA {
    auto [prev, curr] = locate(key);
    const bool found = curr->key == key;
    curr->lock.unlock();
    prev->lock.unlock();
    return found;
  }

  bool add(long key) override DEMOTX_NO_TSA {  // NO_TSA: see contains()
    auto [prev, curr] = locate(key);
    bool added = false;
    if (curr->key != key) {
      prev->next = new Node(key, curr);
      vt::access();
      added = true;
    }
    curr->lock.unlock();
    prev->lock.unlock();
    return added;
  }

  bool remove(long key) override DEMOTX_NO_TSA {  // NO_TSA: see contains()
    auto [prev, curr] = locate(key);
    if (curr->key != key) {
      curr->lock.unlock();
      prev->lock.unlock();
      return false;
    }
    prev->next = curr->next;
    vt::access();
    // With both locks held nobody can be positioned at curr or be waiting
    // on its lock (they would need prev's lock first), so direct deletion
    // is safe — the one luxury lock-coupling buys over optimistic schemes.
    curr->lock.unlock();
    delete curr;
    prev->lock.unlock();
    return true;
  }

  // Best-effort traversal count; NOT atomic (concurrent updates behind the
  // crawl are missed) — the limitation that made the paper reach for
  // copyOnWriteArraySet as the comparable collection.
  long size() override DEMOTX_NO_TSA {  // NO_TSA: see contains()
    long n = 0;
    head_->lock.lock();
    Node* prev = head_;
    vt::access();
    Node* curr = prev->next;
    curr->lock.lock();
    while (curr != tail_) {
      ++n;
      prev->lock.unlock();
      prev = curr;
      vt::access();
      curr = prev->next;
      curr->lock.lock();
    }
    curr->lock.unlock();
    prev->lock.unlock();
    return n;
  }

  long unsafe_size() override {
    long n = 0;
    for (Node* c = head_->next; c != tail_; c = c->next) ++n;
    return n;
  }

  [[nodiscard]] const char* name() const override { return "hand-over-hand"; }

 private:
  struct Node {
    long key;
    Node* next;
    vt::SpinLock lock;
    Node(long k, Node* n) : key(k), next(n) {}
  };

  // Returns (prev, curr) with both locks held and curr->key >= key.
  std::pair<Node*, Node*> locate(long key) DEMOTX_NO_TSA {
    head_->lock.lock();
    Node* prev = head_;
    vt::access();
    Node* curr = prev->next;
    curr->lock.lock();
    while (curr->key < key) {
      prev->lock.unlock();
      prev = curr;
      vt::access();
      curr = prev->next;
      curr->lock.lock();
    }
    return {prev, curr};
  }

  Node* head_;
  Node* tail_;
};

}  // namespace demotx::sync
