file(REMOVE_RECURSE
  "../bench/fig9_snapshot_mix"
  "../bench/fig9_snapshot_mix.pdb"
  "CMakeFiles/fig9_snapshot_mix.dir/fig9_snapshot_mix.cpp.o"
  "CMakeFiles/fig9_snapshot_mix.dir/fig9_snapshot_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_snapshot_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
