# Empty compiler generated dependencies file for fig9_snapshot_mix.
# This may be replaced when dependencies are built.
