file(REMOVE_RECURSE
  "../bench/hybrid_htm"
  "../bench/hybrid_htm.pdb"
  "CMakeFiles/hybrid_htm.dir/hybrid_htm.cpp.o"
  "CMakeFiles/hybrid_htm.dir/hybrid_htm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
