# Empty dependencies file for hybrid_htm.
# This may be replaced when dependencies are built.
