file(REMOVE_RECURSE
  "../bench/ablation_hotspot"
  "../bench/ablation_hotspot.pdb"
  "CMakeFiles/ablation_hotspot.dir/ablation_hotspot.cpp.o"
  "CMakeFiles/ablation_hotspot.dir/ablation_hotspot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
