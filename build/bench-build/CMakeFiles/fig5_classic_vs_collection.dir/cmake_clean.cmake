file(REMOVE_RECURSE
  "../bench/fig5_classic_vs_collection"
  "../bench/fig5_classic_vs_collection.pdb"
  "CMakeFiles/fig5_classic_vs_collection.dir/fig5_classic_vs_collection.cpp.o"
  "CMakeFiles/fig5_classic_vs_collection.dir/fig5_classic_vs_collection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_classic_vs_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
