# Empty compiler generated dependencies file for fig5_classic_vs_collection.
# This may be replaced when dependencies are built.
