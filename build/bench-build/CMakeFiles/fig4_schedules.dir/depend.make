# Empty dependencies file for fig4_schedules.
# This may be replaced when dependencies are built.
