file(REMOVE_RECURSE
  "../bench/fig4_schedules"
  "../bench/fig4_schedules.pdb"
  "CMakeFiles/fig4_schedules.dir/fig4_schedules.cpp.o"
  "CMakeFiles/fig4_schedules.dir/fig4_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
