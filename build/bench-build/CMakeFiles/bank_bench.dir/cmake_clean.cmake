file(REMOVE_RECURSE
  "../bench/bank_bench"
  "../bench/bank_bench.pdb"
  "CMakeFiles/bank_bench.dir/bank_bench.cpp.o"
  "CMakeFiles/bank_bench.dir/bank_bench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
