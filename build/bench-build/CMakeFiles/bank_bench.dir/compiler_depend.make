# Empty compiler generated dependencies file for bank_bench.
# This may be replaced when dependencies are built.
