# Empty compiler generated dependencies file for ablation_cm.
# This may be replaced when dependencies are built.
