file(REMOVE_RECURSE
  "../bench/ablation_cm"
  "../bench/ablation_cm.pdb"
  "CMakeFiles/ablation_cm.dir/ablation_cm.cpp.o"
  "CMakeFiles/ablation_cm.dir/ablation_cm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
