# Empty dependencies file for ablation_stm.
# This may be replaced when dependencies are built.
