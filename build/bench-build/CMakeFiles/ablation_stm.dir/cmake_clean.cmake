file(REMOVE_RECURSE
  "../bench/ablation_stm"
  "../bench/ablation_stm.pdb"
  "CMakeFiles/ablation_stm.dir/ablation_stm.cpp.o"
  "CMakeFiles/ablation_stm.dir/ablation_stm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
