file(REMOVE_RECURSE
  "../bench/fig7_elastic_mix"
  "../bench/fig7_elastic_mix.pdb"
  "CMakeFiles/fig7_elastic_mix.dir/fig7_elastic_mix.cpp.o"
  "CMakeFiles/fig7_elastic_mix.dir/fig7_elastic_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_elastic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
