# Empty compiler generated dependencies file for fig7_elastic_mix.
# This may be replaced when dependencies are built.
