# Empty dependencies file for micro_stm_ops.
# This may be replaced when dependencies are built.
