file(REMOVE_RECURSE
  "../bench/micro_stm_ops"
  "../bench/micro_stm_ops.pdb"
  "CMakeFiles/micro_stm_ops.dir/micro_stm_ops.cpp.o"
  "CMakeFiles/micro_stm_ops.dir/micro_stm_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
