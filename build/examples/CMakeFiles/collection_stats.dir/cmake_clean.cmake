file(REMOVE_RECURSE
  "CMakeFiles/collection_stats.dir/collection_stats.cpp.o"
  "CMakeFiles/collection_stats.dir/collection_stats.cpp.o.d"
  "collection_stats"
  "collection_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collection_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
