# Empty dependencies file for collection_stats.
# This may be replaced when dependencies are built.
