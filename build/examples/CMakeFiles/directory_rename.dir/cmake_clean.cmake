file(REMOVE_RECURSE
  "CMakeFiles/directory_rename.dir/directory_rename.cpp.o"
  "CMakeFiles/directory_rename.dir/directory_rename.cpp.o.d"
  "directory_rename"
  "directory_rename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
