# Empty dependencies file for directory_rename.
# This may be replaced when dependencies are built.
