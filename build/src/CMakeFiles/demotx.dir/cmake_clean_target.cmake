file(REMOVE_RECURSE
  "libdemotx.a"
)
