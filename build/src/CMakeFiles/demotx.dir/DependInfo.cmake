
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/vt/fiber_switch_x86_64.S" "/root/repo/build/src/CMakeFiles/demotx.dir/vt/fiber_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/driver.cpp" "src/CMakeFiles/demotx.dir/harness/driver.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/harness/driver.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/demotx.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/demotx.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/harness/workload.cpp.o.d"
  "/root/repo/src/mem/epoch.cpp" "src/CMakeFiles/demotx.dir/mem/epoch.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/mem/epoch.cpp.o.d"
  "/root/repo/src/mem/hazard.cpp" "src/CMakeFiles/demotx.dir/mem/hazard.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/mem/hazard.cpp.o.d"
  "/root/repo/src/sched/atomicity.cpp" "src/CMakeFiles/demotx.dir/sched/atomicity.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/sched/atomicity.cpp.o.d"
  "/root/repo/src/sched/checkers.cpp" "src/CMakeFiles/demotx.dir/sched/checkers.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/sched/checkers.cpp.o.d"
  "/root/repo/src/sched/enumerate.cpp" "src/CMakeFiles/demotx.dir/sched/enumerate.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/sched/enumerate.cpp.o.d"
  "/root/repo/src/sched/history.cpp" "src/CMakeFiles/demotx.dir/sched/history.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/sched/history.cpp.o.d"
  "/root/repo/src/stm/classic.cpp" "src/CMakeFiles/demotx.dir/stm/classic.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/classic.cpp.o.d"
  "/root/repo/src/stm/cm/manager.cpp" "src/CMakeFiles/demotx.dir/stm/cm/manager.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/cm/manager.cpp.o.d"
  "/root/repo/src/stm/elastic.cpp" "src/CMakeFiles/demotx.dir/stm/elastic.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/elastic.cpp.o.d"
  "/root/repo/src/stm/runtime.cpp" "src/CMakeFiles/demotx.dir/stm/runtime.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/runtime.cpp.o.d"
  "/root/repo/src/stm/snapshot.cpp" "src/CMakeFiles/demotx.dir/stm/snapshot.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/snapshot.cpp.o.d"
  "/root/repo/src/stm/stats.cpp" "src/CMakeFiles/demotx.dir/stm/stats.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/stats.cpp.o.d"
  "/root/repo/src/stm/txdesc.cpp" "src/CMakeFiles/demotx.dir/stm/txdesc.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/stm/txdesc.cpp.o.d"
  "/root/repo/src/vt/context.cpp" "src/CMakeFiles/demotx.dir/vt/context.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/vt/context.cpp.o.d"
  "/root/repo/src/vt/fiber.cpp" "src/CMakeFiles/demotx.dir/vt/fiber.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/vt/fiber.cpp.o.d"
  "/root/repo/src/vt/scheduler.cpp" "src/CMakeFiles/demotx.dir/vt/scheduler.cpp.o" "gcc" "src/CMakeFiles/demotx.dir/vt/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
