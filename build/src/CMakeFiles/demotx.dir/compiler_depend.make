# Empty compiler generated dependencies file for demotx.
# This may be replaced when dependencies are built.
