file(REMOVE_RECURSE
  "CMakeFiles/stm_hybrid_test.dir/stm_hybrid_test.cpp.o"
  "CMakeFiles/stm_hybrid_test.dir/stm_hybrid_test.cpp.o.d"
  "stm_hybrid_test"
  "stm_hybrid_test.pdb"
  "stm_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
