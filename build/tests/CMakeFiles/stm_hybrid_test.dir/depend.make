# Empty dependencies file for stm_hybrid_test.
# This may be replaced when dependencies are built.
