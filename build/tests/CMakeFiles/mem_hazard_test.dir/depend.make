# Empty dependencies file for mem_hazard_test.
# This may be replaced when dependencies are built.
