file(REMOVE_RECURSE
  "CMakeFiles/mem_hazard_test.dir/mem_hazard_test.cpp.o"
  "CMakeFiles/mem_hazard_test.dir/mem_hazard_test.cpp.o.d"
  "mem_hazard_test"
  "mem_hazard_test.pdb"
  "mem_hazard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_hazard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
