# Empty compiler generated dependencies file for stm_elastic_test.
# This may be replaced when dependencies are built.
