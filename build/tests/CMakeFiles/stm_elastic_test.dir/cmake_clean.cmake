file(REMOVE_RECURSE
  "CMakeFiles/stm_elastic_test.dir/stm_elastic_test.cpp.o"
  "CMakeFiles/stm_elastic_test.dir/stm_elastic_test.cpp.o.d"
  "stm_elastic_test"
  "stm_elastic_test.pdb"
  "stm_elastic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_elastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
