file(REMOVE_RECURSE
  "CMakeFiles/stm_basic_test.dir/stm_basic_test.cpp.o"
  "CMakeFiles/stm_basic_test.dir/stm_basic_test.cpp.o.d"
  "stm_basic_test"
  "stm_basic_test.pdb"
  "stm_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
