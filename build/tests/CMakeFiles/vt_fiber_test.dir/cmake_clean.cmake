file(REMOVE_RECURSE
  "CMakeFiles/vt_fiber_test.dir/vt_fiber_test.cpp.o"
  "CMakeFiles/vt_fiber_test.dir/vt_fiber_test.cpp.o.d"
  "vt_fiber_test"
  "vt_fiber_test.pdb"
  "vt_fiber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vt_fiber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
