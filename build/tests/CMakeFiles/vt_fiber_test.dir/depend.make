# Empty dependencies file for vt_fiber_test.
# This may be replaced when dependencies are built.
