file(REMOVE_RECURSE
  "CMakeFiles/vt_scheduler_test.dir/vt_scheduler_test.cpp.o"
  "CMakeFiles/vt_scheduler_test.dir/vt_scheduler_test.cpp.o.d"
  "vt_scheduler_test"
  "vt_scheduler_test.pdb"
  "vt_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vt_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
