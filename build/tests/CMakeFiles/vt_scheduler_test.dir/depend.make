# Empty dependencies file for vt_scheduler_test.
# This may be replaced when dependencies are built.
