# Empty dependencies file for ds_queue_test.
# This may be replaced when dependencies are built.
