file(REMOVE_RECURSE
  "CMakeFiles/ds_queue_test.dir/ds_queue_test.cpp.o"
  "CMakeFiles/ds_queue_test.dir/ds_queue_test.cpp.o.d"
  "ds_queue_test"
  "ds_queue_test.pdb"
  "ds_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
