file(REMOVE_RECURSE
  "CMakeFiles/stm_eager_test.dir/stm_eager_test.cpp.o"
  "CMakeFiles/stm_eager_test.dir/stm_eager_test.cpp.o.d"
  "stm_eager_test"
  "stm_eager_test.pdb"
  "stm_eager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_eager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
