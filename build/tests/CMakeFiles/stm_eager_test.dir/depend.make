# Empty dependencies file for stm_eager_test.
# This may be replaced when dependencies are built.
