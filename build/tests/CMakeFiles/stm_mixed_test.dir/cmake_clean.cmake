file(REMOVE_RECURSE
  "CMakeFiles/stm_mixed_test.dir/stm_mixed_test.cpp.o"
  "CMakeFiles/stm_mixed_test.dir/stm_mixed_test.cpp.o.d"
  "stm_mixed_test"
  "stm_mixed_test.pdb"
  "stm_mixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_mixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
