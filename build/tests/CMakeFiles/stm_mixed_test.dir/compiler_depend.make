# Empty compiler generated dependencies file for stm_mixed_test.
# This may be replaced when dependencies are built.
