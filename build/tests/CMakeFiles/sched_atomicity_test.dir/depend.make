# Empty dependencies file for sched_atomicity_test.
# This may be replaced when dependencies are built.
