# Empty dependencies file for stm_classic_test.
# This may be replaced when dependencies are built.
