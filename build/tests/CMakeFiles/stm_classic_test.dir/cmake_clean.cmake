file(REMOVE_RECURSE
  "CMakeFiles/stm_classic_test.dir/stm_classic_test.cpp.o"
  "CMakeFiles/stm_classic_test.dir/stm_classic_test.cpp.o.d"
  "stm_classic_test"
  "stm_classic_test.pdb"
  "stm_classic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
