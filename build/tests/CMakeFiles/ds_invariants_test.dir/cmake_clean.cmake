file(REMOVE_RECURSE
  "CMakeFiles/ds_invariants_test.dir/ds_invariants_test.cpp.o"
  "CMakeFiles/ds_invariants_test.dir/ds_invariants_test.cpp.o.d"
  "ds_invariants_test"
  "ds_invariants_test.pdb"
  "ds_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
