# Empty dependencies file for stm_retry_test.
# This may be replaced when dependencies are built.
