file(REMOVE_RECURSE
  "CMakeFiles/stm_retry_test.dir/stm_retry_test.cpp.o"
  "CMakeFiles/stm_retry_test.dir/stm_retry_test.cpp.o.d"
  "stm_retry_test"
  "stm_retry_test.pdb"
  "stm_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
