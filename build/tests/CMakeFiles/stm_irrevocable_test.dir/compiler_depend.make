# Empty compiler generated dependencies file for stm_irrevocable_test.
# This may be replaced when dependencies are built.
