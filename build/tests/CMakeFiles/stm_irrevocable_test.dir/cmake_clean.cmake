file(REMOVE_RECURSE
  "CMakeFiles/stm_irrevocable_test.dir/stm_irrevocable_test.cpp.o"
  "CMakeFiles/stm_irrevocable_test.dir/stm_irrevocable_test.cpp.o.d"
  "stm_irrevocable_test"
  "stm_irrevocable_test.pdb"
  "stm_irrevocable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_irrevocable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
