file(REMOVE_RECURSE
  "CMakeFiles/mem_epoch_test.dir/mem_epoch_test.cpp.o"
  "CMakeFiles/mem_epoch_test.dir/mem_epoch_test.cpp.o.d"
  "mem_epoch_test"
  "mem_epoch_test.pdb"
  "mem_epoch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_epoch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
