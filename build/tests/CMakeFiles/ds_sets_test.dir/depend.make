# Empty dependencies file for ds_sets_test.
# This may be replaced when dependencies are built.
