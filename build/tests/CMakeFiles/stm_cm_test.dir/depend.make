# Empty dependencies file for stm_cm_test.
# This may be replaced when dependencies are built.
