file(REMOVE_RECURSE
  "CMakeFiles/stm_cm_test.dir/stm_cm_test.cpp.o"
  "CMakeFiles/stm_cm_test.dir/stm_cm_test.cpp.o.d"
  "stm_cm_test"
  "stm_cm_test.pdb"
  "stm_cm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_cm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
