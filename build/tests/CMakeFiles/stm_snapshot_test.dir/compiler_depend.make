# Empty compiler generated dependencies file for stm_snapshot_test.
# This may be replaced when dependencies are built.
