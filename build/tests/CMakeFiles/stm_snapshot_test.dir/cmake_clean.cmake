file(REMOVE_RECURSE
  "CMakeFiles/stm_snapshot_test.dir/stm_snapshot_test.cpp.o"
  "CMakeFiles/stm_snapshot_test.dir/stm_snapshot_test.cpp.o.d"
  "stm_snapshot_test"
  "stm_snapshot_test.pdb"
  "stm_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
