file(REMOVE_RECURSE
  "CMakeFiles/stm_containers_test.dir/stm_containers_test.cpp.o"
  "CMakeFiles/stm_containers_test.dir/stm_containers_test.cpp.o.d"
  "stm_containers_test"
  "stm_containers_test.pdb"
  "stm_containers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_containers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
