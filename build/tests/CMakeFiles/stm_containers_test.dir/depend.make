# Empty dependencies file for stm_containers_test.
# This may be replaced when dependencies are built.
