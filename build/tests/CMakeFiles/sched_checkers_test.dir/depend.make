# Empty dependencies file for sched_checkers_test.
# This may be replaced when dependencies are built.
