file(REMOVE_RECURSE
  "CMakeFiles/sched_checkers_test.dir/sched_checkers_test.cpp.o"
  "CMakeFiles/sched_checkers_test.dir/sched_checkers_test.cpp.o.d"
  "sched_checkers_test"
  "sched_checkers_test.pdb"
  "sched_checkers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_checkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
