# Empty compiler generated dependencies file for sched_protocol_diff_test.
# This may be replaced when dependencies are built.
