file(REMOVE_RECURSE
  "CMakeFiles/sched_protocol_diff_test.dir/sched_protocol_diff_test.cpp.o"
  "CMakeFiles/sched_protocol_diff_test.dir/sched_protocol_diff_test.cpp.o.d"
  "sched_protocol_diff_test"
  "sched_protocol_diff_test.pdb"
  "sched_protocol_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_protocol_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
