# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/vt_fiber_test[1]_include.cmake")
include("/root/repo/build/tests/vt_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/mem_epoch_test[1]_include.cmake")
include("/root/repo/build/tests/mem_hazard_test[1]_include.cmake")
include("/root/repo/build/tests/stm_basic_test[1]_include.cmake")
include("/root/repo/build/tests/stm_classic_test[1]_include.cmake")
include("/root/repo/build/tests/stm_elastic_test[1]_include.cmake")
include("/root/repo/build/tests/stm_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/stm_mixed_test[1]_include.cmake")
include("/root/repo/build/tests/stm_cm_test[1]_include.cmake")
include("/root/repo/build/tests/ds_sets_test[1]_include.cmake")
include("/root/repo/build/tests/ds_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sched_checkers_test[1]_include.cmake")
include("/root/repo/build/tests/sched_atomicity_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stm_retry_test[1]_include.cmake")
include("/root/repo/build/tests/sched_protocol_diff_test[1]_include.cmake")
include("/root/repo/build/tests/stm_containers_test[1]_include.cmake")
include("/root/repo/build/tests/stm_irrevocable_test[1]_include.cmake")
include("/root/repo/build/tests/stm_eager_test[1]_include.cmake")
include("/root/repo/build/tests/ds_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/stm_hybrid_test[1]_include.cmake")
