// Call-graph fixpoint, site classification, marker confirmation, and the
// svc request-class cross-check.
//
// Resolution is NAME-level (the frontend has no types): every definition
// that takes a `Tx&`, carries an effect tag, or is a Tx member is a
// candidate, and same-name candidates JOIN (pointwise max) — an
// over-approximation that can only make advice more conservative, never
// unsound.  Tarjan SCCs are emitted successors-first, so processing them
// in emission order guarantees every callee summary exists before its
// callers are scanned; cycles (and self-recursion) collapse to ⊤.

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"

namespace demotx::advise {

namespace {

using detail::Scanner;
using ff::TokKind;
using ff::Token;

// Alternative-definition join: overloads of one name may differ, callers
// cannot be told apart, so take the pointwise max.
void join_alt(Effects& dst, const Effects& src) {
  dst.top |= src.top;
  dst.side_effect |= src.side_effect;
  dst.irrevocable |= src.irrevocable;
  dst.release_call |= src.release_call;
  dst.raw_write |= src.raw_write;
  dst.search_write |= src.search_write;
  dst.has_search |= src.has_search;
  dst.raw_reads = std::max(dst.raw_reads, src.raw_reads);
  dst.loop_raw_read |= src.loop_raw_read;
  dst.write_before_search |= src.write_before_search;
  for (const auto& [k, v] : src.why)
    if (dst.why.count(k) == 0) dst.why[k] = v;
}

bool same_effects(const Effects& a, const Effects& b) {
  return a.top == b.top && a.side_effect == b.side_effect &&
         a.irrevocable == b.irrevocable && a.release_call == b.release_call &&
         a.raw_write == b.raw_write && a.search_write == b.search_write &&
         a.has_search == b.has_search && a.raw_reads == b.raw_reads &&
         a.loop_raw_read == b.loop_raw_read &&
         a.write_before_search == b.write_before_search;
}

std::set<std::string> tx_handles(const ff::FunctionDef& def) {
  std::set<std::string> h;
  for (const auto& p : def.params)
    if (p.is_tx && !p.name.empty()) h.insert(p.name);
  return h;
}

bool is_atomically(const std::string& s) {
  return s == "atomically" || s == "atomically_irrevocable" ||
         s == "atomically_hybrid";
}

struct TarjanState {
  const std::map<std::string, std::vector<std::string>>& edges;
  const std::set<std::string>& nodes;
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next = 0;
  std::vector<std::vector<std::string>> sccs;  // successors-first order

  void dfs(const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = edges.find(v);
    if (it != edges.end()) {
      for (const std::string& w : it->second) {
        if (nodes.count(w) == 0) continue;
        if (index.count(w) == 0) {
          dfs(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w) != 0) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

bool elastic_eligible(const Effects& e) {
  if (e.classic_only() || e.write_before_search) return false;
  // One non-loop raw read (a root/head load) rides the window safely;
  // loops of untagged raw reads cannot be proven hand-over-hand, and a
  // cut between two of them can tear a multi-read result.  A tagged
  // search shape vouches for its own reads.
  if (e.raw_reads == 0) return true;
  if (e.loop_raw_read) return false;
  return e.raw_reads == 1 || e.has_search;
}

bool snapshot_eligible(const Effects& e) {
  return !e.classic_only() && !e.any_write();
}

void Analyzer::add_file(std::string path, std::string source) {
  auto sf = std::make_unique<SourceFile>();
  sf->path = std::move(path);
  sf->lexed = ff::lex(source);
  sf->fns = ff::scan_functions(sf->lexed);
  files.push_back(std::move(sf));
}

void Analyzer::run() {
  build_table();
  build_callgraph_and_fixpoint();
  classify_sites();
  confirm_markers();
  cross_check_svc();
}

void Analyzer::build_table() {
  for (const auto& sf : files) {
    for (const auto& def : sf->fns.functions) {
      ++functions_total;
      if (is_atomically(def.name)) continue;  // the entry points themselves
      bool any_tx = false;
      for (const auto& p : def.params) any_tx |= p.is_tx;
      const bool tx_member = def.qual.find("Tx::") != std::string::npos;
      if (any_tx || !def.tags.empty() || tx_member)
        table[def.name].push_back(FuncDef{sf.get(), &def});
    }
  }
}

void Analyzer::build_callgraph_and_fixpoint() {
  std::set<std::string> nodes;
  std::set<std::string> leaves;  // tagged-wins: tags replace body analysis
  for (const auto& [name, defs] : table) {
    nodes.insert(name);
    for (const auto& fd : defs)
      if (!fd.def->tags.empty()) leaves.insert(name);
  }

  for (const auto& [name, defs] : table) {
    if (leaves.count(name) != 0) {
      edges_[name];  // leaf: no out-edges
      continue;
    }
    std::set<std::string> out;
    for (const auto& fd : defs) {
      if (!fd.def->has_body) continue;
      std::vector<std::string> callees;
      Scanner sc;
      sc.sf = fd.file;
      sc.callees = &callees;
      sc.scan(fd.def->body_begin, fd.def->body_end, tx_handles(*fd.def),
              fd.def->qual);
      for (const auto& c : callees)
        if (nodes.count(c) != 0) out.insert(c);
    }
    edges_[name].assign(out.begin(), out.end());
  }

  TarjanState tj{edges_, nodes, {}, {}, {}, {}, 0, {}};
  for (const auto& n : nodes)
    if (tj.index.count(n) == 0) tj.dfs(n);

  auto scan_all_defs = [&](const std::string& name) {
    Effects s;
    bool any = false;
    for (const auto& fd : table[name]) {
      if (!fd.def->has_body) continue;
      any = true;
      Scanner sc;
      sc.sf = fd.file;
      sc.summaries = &summary;
      join_alt(s, sc.scan(fd.def->body_begin, fd.def->body_end,
                          tx_handles(*fd.def), fd.def->qual));
    }
    if (!any) {
      s.top = true;
      s.why["top"] = {"declaration without body or tags: " + name};
    }
    return s;
  };

  for (const auto& scc : tj.sccs) {
    const auto& es = edges_[scc.front()];
    const bool self_loop =
        scc.size() == 1 &&
        std::find(es.begin(), es.end(), scc.front()) != es.end();
    for (const std::string& name : scc) {
      Effects s;
      if (leaves.count(name) != 0) {
        for (const auto& fd : table[name])
          if (!fd.def->tags.empty()) join_alt(s, detail::tag_effects(fd));
      } else if (scc.size() > 1 ||
                 (self_loop && table[name].size() <= 1)) {
        // A multi-name cycle, or genuine self-recursion, collapses to ⊤.
        s.top = true;
        std::string cycle;
        for (const auto& m : scc) cycle += (cycle.empty() ? "" : " <-> ") + m;
        s.why["top"] = {"call-graph cycle: " + cycle};
      } else if (self_loop) {
        // A name-level self-edge over SEVERAL definitions is almost
        // always cross-class delegation through a shared method name
        // (TxCounter::get calling TVar::get), not recursion.  The
        // lattice is finite, so a bounded Kleene iteration from ⊥
        // resolves it exactly; if it has not stabilized, fall to ⊤.
        summary[name] = Effects{};
        bool stable = false;
        for (int iter = 0; iter < 4 && !stable; ++iter) {
          Effects next = scan_all_defs(name);
          stable = same_effects(next, summary[name]);
          summary[name] = std::move(next);
        }
        if (!stable) {
          s.top = true;
          s.why["top"] = {"unstable self-referential summary: " + name};
          summary[name] = std::move(s);
        }
        continue;
      } else {
        s = scan_all_defs(name);
      }
      summary[name] = std::move(s);
    }
  }
}

void Analyzer::classify_sites() {
  for (const auto& sf : files) {
    const auto& toks = sf->lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !is_atomically(toks[i].text))
        continue;
      if (toks[i + 1].text != "(") continue;
      if (i > 0 && toks[i - 1].text == "auto") continue;  // a definition

      Site s;
      s.file = sf.get();
      s.line = toks[i].line;
      detail::ParsedSite ps;
      if (!detail::parse_site(*sf, i, &ps)) {
        s.ann_line = s.line;
        s.annotated = "dynamic";
        s.eff.top = true;
        s.eff.why["top"] = {"unparsable atomically call"};
      } else {
        s.ann_line = ps.ann_line;
        s.annotated =
            ps.annotated == "classic_literal" ? "classic" : ps.annotated;
        Scanner sc;
        sc.sf = sf.get();
        sc.summaries = &summary;
        if (ps.has_lambda) {
          s.eff = sc.scan(ps.body_begin, ps.body_end, ps.handles, "site");
        } else if (!ps.body_fn.empty()) {
          auto it = summary.find(ps.body_fn);
          if (it != summary.end()) {
            s.eff = it->second;
          } else {
            s.eff.top = true;
            s.eff.why["top"] = {"unresolved tx body '" + ps.body_fn + "'"};
          }
        } else {
          s.eff.top = true;
          s.eff.why["top"] = {"opaque atomically argument"};
        }
      }

      // Innermost enclosing function definition, for the report.
      s.enclosing = "<toplevel>";
      std::size_t best = 0;
      bool have = false;
      for (const auto& def : sf->fns.functions) {
        if (!def.has_body || def.body_begin > i || def.body_end < i) continue;
        if (!have || def.body_begin > best) {
          best = def.body_begin;
          have = true;
          s.enclosing = def.qual;
        }
      }

      s.elastic_ok = elastic_eligible(s.eff);
      s.snapshot_ok = snapshot_eligible(s.eff);
      s.inferred = s.snapshot_ok   ? "snapshot"
                   : s.elastic_ok ? "elastic"
                                  : "classic";
      if (s.annotated == "elastic") s.sound = s.elastic_ok;
      else if (s.annotated == "snapshot") s.sound = s.snapshot_ok;
      else s.sound = true;  // classic/dynamic/irrevocable/hybrid

      if (!s.sound) {
        for (const auto& m : sf->lexed.markers) {
          if (m.kind != ff::Marker::Kind::kAdvise || m.reason.empty())
            continue;
          if (m.line == s.ann_line || m.line + 1 == s.ann_line ||
              m.line == s.line || m.line + 1 == s.line) {
            s.justified = true;
            break;
          }
        }
      }
      sites.push_back(std::move(s));
    }
  }
  std::sort(sites.begin(), sites.end(), [](const Site& a, const Site& b) {
    if (a.file->path != b.file->path) return a.file->path < b.file->path;
    if (a.line != b.line) return a.line < b.line;
    return a.ann_line < b.ann_line;
  });
}

void Analyzer::confirm_markers() {
  for (const auto& sf : files) {
    const auto& toks = sf->lexed.tokens;
    const int last_line = toks.empty() ? 0 : toks.back().line;
    for (const auto& m : sf->lexed.markers) {
      int lo = 0, hi = 0;
      switch (m.kind) {
        case ff::Marker::Kind::kLine: lo = hi = m.line; break;
        case ff::Marker::Kind::kNext: lo = hi = m.line + 1; break;
        case ff::Marker::Kind::kFile: lo = 1; hi = last_line; break;
        case ff::Marker::Kind::kFn: {
          lo = m.line;
          hi = m.line;  // fall back to line form if no body follows
          for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].line < m.line || toks[i].text != "{") continue;
            hi = toks[detail::match_close(toks, i)].line;
            break;
          }
          break;
        }
        case ff::Marker::Kind::kAdvise:
          continue;  // advise justifications are not expert claims
      }
      ++markers.total;
      bool any_covered = false;
      bool all_sound = true;
      for (const Site& s : sites) {
        if (s.file != sf.get()) continue;
        if (s.annotated != "elastic" && s.annotated != "snapshot") continue;
        const bool in_range = (s.ann_line >= lo && s.ann_line <= hi) ||
                              (s.line >= lo && s.line <= hi);
        if (!in_range) continue;
        any_covered = true;
        all_sound &= s.sound;
      }
      if (!any_covered) {
        // Vacuous for tier purposes (the marker vouches for something
        // else, e.g. an unsafe_* access): counts as confirmed.
        ++markers.vacuous;
        ++markers.confirmed;
      } else if (all_sound) {
        ++markers.confirmed;
      } else {
        markers.unconfirmed.push_back(sf->path + ":" + std::to_string(m.line));
      }
    }
  }
}

void Analyzer::cross_check_svc() {
  const ff::FunctionDef* tier_for = nullptr;
  const ff::FunctionDef* run_body = nullptr;
  const SourceFile* tf_file = nullptr;
  const SourceFile* rb_file = nullptr;
  for (const auto& sf : files) {
    for (const auto& def : sf->fns.functions) {
      if (!def.has_body) continue;
      if (def.name == "tier_for" && tier_for == nullptr) {
        tier_for = &def;
        tf_file = sf.get();
      } else if (def.name == "run_body" && run_body == nullptr) {
        run_body = &def;
        rb_file = sf.get();
      }
    }
  }
  if (tier_for == nullptr || run_body == nullptr) return;
  svc_found = true;

  // Map request-class enumerators to tiers from tier_for's switch.
  std::map<std::string, std::string> mapped;
  {
    const auto& toks = tf_file->lexed.tokens;
    std::vector<std::string> pending;
    for (std::size_t i = tier_for->body_begin; i <= tier_for->body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "case") {
        std::string last;
        for (std::size_t j = i + 1;
             j <= tier_for->body_end && toks[j].text != ":"; ++j)
          if (toks[j].kind == TokKind::kIdent) last = toks[j].text;
        if (!last.empty()) pending.push_back(last);
      } else if (t.text == "return") {
        std::string tier;
        std::size_t j = i + 1;
        for (; j <= tier_for->body_end && toks[j].text != ";"; ++j) {
          const std::string& s = toks[j].text;
          if (s == "kElastic" || s == "kSnapshot" || s == "kClassic") tier = s;
        }
        if (!tier.empty())
          for (const auto& p : pending) mapped[p] = tier;
        pending.clear();
        i = j;
      }
    }
  }

  // Arm ranges of run_body's switch, one per case label.
  const auto& toks = rb_file->lexed.tokens;
  struct Arm { std::string req; std::size_t b, e; };
  std::vector<Arm> arms;
  for (std::size_t i = run_body->body_begin; i <= run_body->body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i].text != "case" && toks[i].text != "default") continue;
    if (!arms.empty()) arms.back().e = i - 1;
    if (toks[i].text == "default") {
      arms.push_back(Arm{"", i + 1, run_body->body_end - 1});
      continue;
    }
    std::string last;
    std::size_t j = i + 1;
    for (; j <= run_body->body_end && toks[j].text != ":"; ++j)
      if (toks[j].kind == TokKind::kIdent) last = toks[j].text;
    arms.push_back(Arm{last, j + 1, run_body->body_end - 1});
  }

  for (const Arm& a : arms) {
    if (a.req.empty() || mapped.count(a.req) == 0) continue;
    Scanner sc;
    sc.sf = rb_file;
    sc.summaries = &summary;
    const Effects eff = sc.scan(a.b, a.e, tx_handles(*run_body), "svc");
    SvcRow row;
    row.req = a.req;
    row.mapped = mapped[a.req];
    row.eligible.insert("kClassic");
    if (elastic_eligible(eff)) row.eligible.insert("kElastic");
    if (snapshot_eligible(eff)) row.eligible.insert("kSnapshot");
    row.ok = row.eligible.count(row.mapped) != 0;
    svc.push_back(std::move(row));
  }
}

}  // namespace demotx::advise
