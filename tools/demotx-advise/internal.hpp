// Internal scanner API shared by summary.cpp / fixpoint.cpp.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "advise.hpp"

namespace demotx::advise::detail {

// Index of the token matching the opener at `open` ("(", "[", "{").
std::size_t match_close(const std::vector<ff::Token>& toks, std::size_t open);

// Effects a tagged declaration asserts (replaces body analysis).
Effects tag_effects(const FuncDef& fd);

// Merges a callee summary (or nested-site summary) into a running body
// summary at one call position.  `in_loop`: the position sits inside a
// loop.  `suppress_shape`: drop the read-shape dimensions (used for
// nested literal-classic bodies and post-strengthen positions — the
// runtime validates those reads classically, so they cannot tear an
// elastic window).  `step` prefixes the evidence chains.
void merge_step(Effects& dst, const Effects& src, bool in_loop,
                bool suppress_shape, const std::string& step);

// One parsed atomically/atomically_irrevocable/atomically_hybrid call.
struct ParsedSite {
  std::size_t call_end = 0;  // index of the call's closing ')'
  std::string annotated;     // classic|classic_literal|elastic|snapshot|
                             // irrevocable|hybrid|dynamic
  int ann_line = 0;          // tier-literal line (else the call line)
  bool has_lambda = false;
  std::size_t body_begin = 0, body_end = 0;  // lambda body braces
  std::set<std::string> handles;             // lambda's Tx param names
  std::string body_fn;  // named-callable arg when there is no lambda
};

// Parses the call whose `atomically*` ident sits at `idx`.  Returns
// false if the shape is unrecognizable (caller treats the body as ⊤).
bool parse_site(const SourceFile& sf, std::size_t idx, ParsedSite* out);

// The body scanner.  One instance per analysis mode:
//  - edge mode: `callees` non-null, `summaries` null — records the
//    names of tx-passing calls, effects returned are meaningless;
//  - resolve mode: `summaries` non-null — computes the flattened
//    summary, treating unresolved tx-calls as ⊤.
struct Scanner {
  const SourceFile* sf = nullptr;
  const std::map<std::string, Effects>* summaries = nullptr;
  std::vector<std::string>* callees = nullptr;

  // Scans tokens [b, e] with the given transaction-handle names.
  // `where` labels evidence chains (usually the enclosing qual).
  Effects scan(std::size_t b, std::size_t e, std::set<std::string> handles,
               const std::string& where);
};

}  // namespace demotx::advise::detail
