// Per-function effect summaries: the positional body scanner.
//
// The scanner walks a token range (a function body, a site lambda, or an
// svc switch arm) and folds effects into the summary lattice.  It has two
// modes (internal.hpp): edge mode records the names of tx-passing calls
// for the call graph; resolve mode merges callee summaries positionally,
// so loop placement and write-then-search ordering are observed at the
// call site, not just in the callee.
//
// Precision boundary (documented in DESIGN.md §7): calls that do not
// carry a transaction handle are invisible — they cannot touch the
// transaction, so they cannot change tier eligibility.  Raw side effects
// (new/delete, IO, locks) ARE visible wherever they textually occur,
// because they escape any tier.

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"

namespace demotx::advise::detail {

namespace {

using ff::TokKind;
using ff::Token;

bool is_atomically(const std::string& s) {
  return s == "atomically" || s == "atomically_irrevocable" ||
         s == "atomically_hybrid";
}

// Idents whose bare use (streams) or call (allocators, IO, process state)
// is a side effect no tier can undo.  Kept in sync with demotx-lint's
// side-effect check, minus anything the runtime wraps (tx.alloc/retire
// are tagged DEMOTX_TX_SAFE and never reach this list).
const std::set<std::string>& stream_idents() {
  static const std::set<std::string> s{"cout", "cerr", "clog"};
  return s;
}
const std::set<std::string>& sideeffect_calls() {
  static const std::set<std::string> s{
      "printf", "fprintf", "puts",    "putchar", "fwrite", "fputs",
      "fopen",  "fclose",  "malloc",  "calloc",  "realloc", "free",
      "exit",   "system",  "setenv",  "srand"};
  return s;
}
const std::set<std::string>& lock_types() {
  static const std::set<std::string> s{"lock_guard", "unique_lock",
                                       "scoped_lock", "shared_lock"};
  return s;
}
const std::set<std::string>& lock_methods() {
  static const std::set<std::string> s{"lock", "unlock", "try_lock"};
  return s;
}

struct LoopRegions {
  std::vector<std::pair<std::size_t, std::size_t>> rs;
  bool contains(std::size_t i) const {
    for (const auto& r : rs)
      if (i >= r.first && i <= r.second) return true;
    return false;
  }
};

LoopRegions find_loops(const std::vector<Token>& toks, std::size_t b,
                       std::size_t e) {
  LoopRegions out;
  for (std::size_t i = b; i <= e && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if ((t == "for" || t == "while") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      std::size_t hc = match_close(toks, i + 1);
      if (hc == 0 || hc >= toks.size()) continue;
      std::size_t end = hc;
      if (hc + 1 < toks.size() && toks[hc + 1].text == "{") {
        end = match_close(toks, hc + 1);
      } else {
        // Single-statement body: run to the ';' at depth 0.
        int depth = 0;
        for (std::size_t j = hc + 1; j < toks.size() && j <= e; ++j) {
          const std::string& s = toks[j].text;
          if (s == "(" || s == "[" || s == "{") ++depth;
          else if (s == ")" || s == "]" || s == "}") --depth;
          else if (s == ";" && depth == 0) { end = j; break; }
        }
      }
      out.rs.emplace_back(i, end);
    } else if (t == "do" && i + 1 < toks.size() && toks[i + 1].text == "{") {
      out.rs.emplace_back(i, match_close(toks, i + 1));
    }
  }
  return out;
}

void set_why(Effects& dst, const Effects& src, const std::string& key,
             const std::string& step) {
  if (dst.why.count(key) != 0) return;
  std::vector<std::string> c{step};
  auto it = src.why.find(key);
  if (it != src.why.end())
    c.insert(c.end(), it->second.begin(), it->second.end());
  dst.why[key] = std::move(c);
}

}  // namespace

std::size_t match_close(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size() - 1;  // unbalanced file: clamp to the end
}

Effects tag_effects(const FuncDef& fd) {
  Effects e;
  const std::string at =
      fd.def->qual + " (" + fd.file->path + ":" + std::to_string(fd.def->line) +
      ")";
  for (const std::string& tag : fd.def->tags) {
    if (tag == "DEMOTX_TX_READ") {
      e.raw_reads = std::max(e.raw_reads, 1);
      e.why["read"] = {at + " [" + tag + "]"};
    } else if (tag == "DEMOTX_TX_WRITE") {
      e.raw_write = true;
      e.why["write"] = {at + " [" + tag + "]"};
    } else if (tag == "DEMOTX_TX_TRAVERSAL" || tag == "DEMOTX_TX_SEARCH_READ") {
      e.has_search = true;
      e.why["search"] = {at + " [" + tag + "]"};
    } else if (tag == "DEMOTX_TX_SEARCH_WRITE") {
      e.search_write = true;
      e.has_search = true;
      e.why["search-write"] = {at + " [" + tag + "]"};
      if (e.why.count("search") == 0) e.why["search"] = {at + " [" + tag + "]"};
    } else if (tag == "DEMOTX_TX_RELEASE") {
      e.release_call = true;
      e.why["release"] = {at + " [" + tag + "]"};
    } else if (tag == "DEMOTX_TX_IRREVOCABLE") {
      e.irrevocable = true;
      e.why["irrevocable"] = {at + " [" + tag + "]"};
    }
    // DEMOTX_TX_SAFE: asserts bottom — nothing to add.
  }
  return e;
}

void merge_step(Effects& dst, const Effects& src, bool in_loop,
                bool suppress_shape, const std::string& step) {
  const bool had_write = dst.raw_write || dst.search_write;
  // Global (tier-escaping) dimensions merge regardless of strengthening:
  // a side effect or a write in a nested classic phase still rules out
  // snapshot for the whole flat transaction.
  if (src.top && !dst.top) { dst.top = true; set_why(dst, src, "top", step); }
  if (src.side_effect && !dst.side_effect) {
    dst.side_effect = true;
    set_why(dst, src, "side-effect", step);
  }
  if (src.irrevocable && !dst.irrevocable) {
    dst.irrevocable = true;
    set_why(dst, src, "irrevocable", step);
  }
  if (src.release_call && !dst.release_call) {
    dst.release_call = true;
    set_why(dst, src, "release", step);
  }
  if (src.raw_write && !dst.raw_write) {
    dst.raw_write = true;
    set_why(dst, src, "write", step);
  }
  if (src.search_write && !dst.search_write) {
    dst.search_write = true;
    set_why(dst, src, "search-write", step);
  }
  if (suppress_shape) return;
  // Read-shape dimensions: these only matter for the elastic window, so
  // they are dropped once the transaction has been strengthened (the
  // runtime validates every later read classically — no cut can tear it).
  if (src.has_search && !dst.has_search) {
    dst.has_search = true;
    set_why(dst, src, "search", step);
  }
  if (src.write_before_search && !dst.write_before_search) {
    dst.write_before_search = true;
    set_why(dst, src, "write-before-search", step);
  }
  if (had_write && src.has_search && !dst.write_before_search) {
    dst.write_before_search = true;
    set_why(dst, src, "write-before-search", step);
  }
  if (src.raw_reads > 0) {
    dst.raw_reads = std::min(2, dst.raw_reads + (in_loop ? 2 : src.raw_reads));
    set_why(dst, src, "read", step);
    if ((in_loop || src.loop_raw_read) && !dst.loop_raw_read) {
      dst.loop_raw_read = true;
      set_why(dst, src, "loop-read",
              in_loop ? step + " [in loop]" : step);
    }
  }
}

bool parse_site(const SourceFile& sf, std::size_t idx, ParsedSite* out) {
  const auto& toks = sf.lexed.tokens;
  if (idx + 1 >= toks.size() || toks[idx + 1].text != "(") return false;
  const std::size_t open = idx + 1;
  const std::size_t close = match_close(toks, open);
  out->call_end = close;
  out->ann_line = toks[idx].line;

  // Walk the depth-1 prefix of the argument list up to the lambda intro.
  std::size_t lam = 0;
  bool have_lam = false;
  std::string tier;
  bool expr_arg = false;     // a non-literal tier expression was seen
  std::string last_ident;    // candidate named callable (no-lambda form)
  static const std::set<std::string> allow{"stm", "demotx", "Semantics"};
  int depth = 1;
  std::size_t j = open + 1;
  for (; j < close; ++j) {
    const std::string& s = toks[j].text;
    if (s == "(" || s == "{") { ++depth; continue; }
    if (s == ")" || s == "}") { --depth; continue; }
    if (s == "[") {
      // Lambda intro iff it begins an argument; otherwise a subscript.
      const std::string& prev = toks[j - 1].text;
      if (depth == 1 && (prev == "(" || prev == ",")) {
        lam = j;
        have_lam = true;
        break;
      }
      ++depth;
      continue;
    }
    if (s == "]") { --depth; continue; }
    if (depth != 1 || toks[j].kind != TokKind::kIdent) continue;
    if (s == "kElastic" || s == "kSnapshot" || s == "kClassic") {
      if (tier.empty()) {
        tier = s;
        out->ann_line = toks[j].line;
      }
    } else if (allow.count(s) == 0) {
      last_ident = s;
      // An ident before the body argument means the tier (or the body)
      // is computed — e.g. atomically(opts_.parse, ...).
      expr_arg = true;
    }
  }

  const std::string& fam = toks[idx].text;
  if (fam == "atomically_irrevocable") out->annotated = "irrevocable";
  else if (fam == "atomically_hybrid") out->annotated = "hybrid";
  else if (tier == "kClassic") out->annotated = "classic_literal";
  else if (tier == "kElastic") out->annotated = "elastic";
  else if (tier == "kSnapshot") out->annotated = "snapshot";
  else if (expr_arg && !have_lam && !last_ident.empty())
    out->annotated = "classic";  // atomically(named_fn): default tier
  else if (expr_arg) out->annotated = "dynamic";
  else out->annotated = "classic";

  if (!have_lam) {
    // atomically(fn) / atomically(sem, fn): the last depth-1 ident names
    // the body.  (std::forward<F>(fn) also lands on `fn` — resolved if
    // it is a known function, ⊤ otherwise.)
    out->body_fn = last_ident;
    // With a computed semantics argument we cannot tell tier from body
    // expression idents apart; stay conservative.
    if (tier.empty() && fam == "atomically" && expr_arg) {
      // Heuristic above already chose; nothing further to refine.
    }
    return true;
  }

  out->has_lambda = true;
  std::size_t cb = match_close(toks, lam);  // end of capture list
  std::size_t cursor = cb + 1;
  if (cursor < close && toks[cursor].text == "(") {
    std::size_t pclose = match_close(toks, cursor);
    for (std::size_t k = cursor + 1; k < pclose; ++k) {
      if (toks[k].kind == TokKind::kIdent && toks[k].text == "Tx") {
        std::size_t m = k + 1;
        while (m < pclose && (toks[m].text == "&" || toks[m].text == "*" ||
                              toks[m].text == "const"))
          ++m;
        if (m < pclose && toks[m].kind == TokKind::kIdent)
          out->handles.insert(toks[m].text);
      }
    }
    cursor = pclose + 1;
  }
  // Skip specifiers (mutable, noexcept, -> ret) to the body brace.
  while (cursor < close && toks[cursor].text != "{") ++cursor;
  if (cursor >= close) return false;
  out->body_begin = cursor;
  out->body_end = match_close(toks, cursor);
  return true;
}

Effects Scanner::scan(std::size_t b, std::size_t e,
                      std::set<std::string> handles,
                      const std::string& where) {
  Effects E;
  const auto& toks = sf->lexed.tokens;
  if (toks.empty()) return E;
  e = std::min(e, toks.size() - 1);

  // Function definitions nested strictly inside this range (named
  // lambdas, local helpers) are separate summaries: skip their bodies.
  std::vector<std::pair<std::size_t, std::size_t>> skips;
  for (const auto& def : sf->fns.functions)
    if (def.has_body && def.body_begin > b && def.body_end <= e)
      skips.emplace_back(def.body_begin, def.body_end);
  std::sort(skips.begin(), skips.end());

  const LoopRegions loops = find_loops(toks, b, e);
  bool strengthened = false;
  std::size_t skip_at = 0;

  for (std::size_t i = b; i <= e; ++i) {
    while (skip_at < skips.size() && skips[skip_at].second < i) ++skip_at;
    if (skip_at < skips.size() && i >= skips[skip_at].first &&
        i <= skips[skip_at].second) {
      i = skips[skip_at].second;
      continue;
    }
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool in_loop = loops.contains(i);
    const std::string loc = sf->path + ":" + std::to_string(t.line);

    // ---- nested atomically site -----------------------------------------
    if (is_atomically(t.text) && i + 1 <= e && toks[i + 1].text == "(" &&
        (i == b || toks[i - 1].text != "auto")) {
      ParsedSite ps;
      Effects ne;
      if (!parse_site(*sf, i, &ps)) {
        ne.top = true;
        ne.why["top"] = {"unparsable atomically call (" + loc + ")"};
        merge_step(E, ne, in_loop, strengthened, "nested tx (" + loc + ")");
        continue;
      }
      if (ps.has_lambda) {
        ne = scan(ps.body_begin, ps.body_end, ps.handles, where);
      } else if (!ps.body_fn.empty()) {
        if (callees != nullptr) callees->push_back(ps.body_fn);
        if (summaries != nullptr) {
          auto it = summaries->find(ps.body_fn);
          if (it != summaries->end()) ne = it->second;
          else {
            ne.top = true;
            ne.why["top"] = {"unresolved tx body '" + ps.body_fn + "' (" +
                             loc + ")"};
          }
        }
      } else {
        ne.top = true;
        ne.why["top"] = {"opaque atomically argument (" + loc + ")"};
      }
      if (t.text == "atomically_irrevocable") {
        ne.irrevocable = true;
        if (ne.why.count("irrevocable") == 0)
          ne.why["irrevocable"] = {"atomically_irrevocable (" + loc + ")"};
      }
      // Flat nesting (runtime.hpp adapt_nested_semantics): an inner
      // classic body strengthens the enclosing transaction — its reads,
      // and everything after it, validate classically, so they cannot
      // tear an elastic window.  Write/side-effect bits still merge.
      const bool strengthens =
          ps.annotated == "classic_literal" || ps.annotated == "classic";
      merge_step(E, ne, in_loop, strengthens || strengthened,
                 "nested tx (" + loc + ")");
      if (strengthens) strengthened = true;
      i = ps.call_end;
      continue;
    }

    // ---- tx-passing call ------------------------------------------------
    // ALL_CAPS names are macros (gtest EXPECT_*/ASSERT_*, wrappers):
    // transparent — their argument expressions are scanned, the macro
    // itself resolves to nothing.
    const bool macro_like =
        t.text.size() > 1 &&
        t.text.find_first_not_of("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") ==
            std::string::npos;
    if (i + 1 <= e && toks[i + 1].text == "(" && !macro_like &&
        !is_atomically(t.text)) {
      bool tx_call = false;
      if (i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          handles.count(toks[i - 2].text) != 0) {
        tx_call = true;  // tx.method(...)
      } else {
        // fn(..., tx, ...): a handle at argument depth 1 followed by
        // ',' or ')' — `decode(tx.read_word(c))` deliberately does NOT
        // count (the handle is followed by '.').
        const std::size_t open = i + 1;
        const std::size_t close = match_close(toks, open);
        int depth = 1;
        for (std::size_t k = open + 1; k < close; ++k) {
          const std::string& s = toks[k].text;
          if (s == "(" || s == "[" || s == "{") { ++depth; continue; }
          if (s == ")" || s == "]" || s == "}") { --depth; continue; }
          if (depth == 1 && toks[k].kind == TokKind::kIdent &&
              handles.count(s) != 0 && k + 1 < toks.size() &&
              (toks[k + 1].text == "," || toks[k + 1].text == ")")) {
            tx_call = true;
            break;
          }
        }
      }
      if (tx_call) {
        if (callees != nullptr) callees->push_back(t.text);
        if (summaries != nullptr) {
          auto it = summaries->find(t.text);
          const std::string step = t.text + " (" + loc + ")";
          if (it != summaries->end()) {
            merge_step(E, it->second, in_loop, strengthened, step);
          } else {
            Effects u;
            u.top = true;
            merge_step(E, u, false, false, "unresolved tx call " + step);
          }
        }
        // Keep scanning the argument tokens: they are separate
        // expressions and may contain further tx calls.
        continue;
      }
    }

    // ---- raw side effects ----------------------------------------------
    bool side = false;
    std::string desc;
    if ((t.text == "new" || t.text == "delete") && i > b &&
        toks[i - 1].text != "=" && toks[i - 1].text != "operator") {
      side = true;
      desc = "operator " + t.text;
    } else if (stream_idents().count(t.text) != 0) {
      side = true;
      desc = "std::" + t.text;
    } else if (i + 1 <= e && toks[i + 1].text == "(" &&
               sideeffect_calls().count(t.text) != 0) {
      side = true;
      desc = t.text + "()";
    } else if (lock_types().count(t.text) != 0) {
      side = true;
      desc = t.text;
    } else if (i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
               i + 1 <= e && toks[i + 1].text == "(" &&
               lock_methods().count(t.text) != 0 &&
               handles.count(i >= 2 ? toks[i - 2].text : "") == 0) {
      side = true;
      desc = "." + t.text + "()";
    }
    if (side) {
      Effects u;
      u.side_effect = true;
      merge_step(E, u, false, false, desc + " (" + loc + ")");
    }
  }
  (void)where;
  return E;
}

}  // namespace demotx::advise::detail
