// demotx-advise CLI.
//
//   demotx-advise [options] <file-or-dir>...
//
//   --json PATH        write the full advise report as JSON (- = stdout)
//   --verify           corpus mode: every atomically site must match the
//                      `// demotx-advise-expect: <tier>[ unsound]`
//                      comment on its line (tier = inferred tier)
//   --gate             CI mode: fail on any unjustified unsound site, on
//                      an expert-marker confirmation ratio below 0.9, or
//                      on a svc request-class mapping outside its arm's
//                      eligibility set
//   --exclude P        skip files whose path starts with P (repeatable)
//   --relative-to DIR  report paths relative to DIR (stable goldens)
//   --check-compile-commands PATH
//                      freshness assertion: every "file" entry in the
//                      compile database that falls under a scanned root
//                      must still exist on disk (a stale database means
//                      the lint/advise sweep and the build disagree on
//                      what the tree is)
//   --dump-summaries   print the resolved per-function summaries
//
// Exit codes: 0 clean/verified, 1 findings/mismatch, 2 usage or I/O.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "advise.hpp"

namespace fs = std::filesystem;
using namespace demotx::advise;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".cc" || e == ".cxx";
}

std::string normalize(const fs::path& p) {
  std::error_code ec;
  fs::path c = fs::weakly_canonical(p, ec);
  return (ec ? p : c).generic_string();
}

bool excluded(const std::string& file,
              const std::vector<std::string>& excludes) {
  for (const std::string& e : excludes)
    if (file.rfind(e, 0) == 0) return true;
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string eligible_json(const Site& s) {
  std::string out = "[\"classic\"";
  if (s.elastic_ok) out += ", \"elastic\"";
  if (s.snapshot_ok) out += ", \"snapshot\"";
  return out + "]";
}

std::string eligible_human(const Site& s) {
  std::string out = "{classic";
  if (s.elastic_ok) out += ", elastic";
  if (s.snapshot_ok) out += ", snapshot";
  return out + "}";
}

std::vector<std::string> evidence_lines(const Effects& e) {
  std::vector<std::string> out;
  for (const auto& [key, chain] : e.why) {
    std::string line = key + ": ";
    for (std::size_t i = 0; i < chain.size(); ++i)
      line += (i != 0 ? " -> " : "") + chain[i];
    out.push_back(std::move(line));
  }
  return out;
}

// The verdict string a corpus expectation must match.
std::string verdict_of(const Site& s) {
  return s.inferred + (s.sound ? "" : " unsound");
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool gate = false;
  bool dump = false;
  std::string json_path;
  std::string rel_to;
  std::string ccdb_path;
  std::vector<std::string> excludes;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_val = [&](const char* what) -> const char* {
      if (++i >= argc) {
        std::cerr << "demotx-advise: " << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--verify") verify = true;
    else if (arg == "--gate") gate = true;
    else if (arg == "--dump-summaries") dump = true;
    else if (arg == "--json") json_path = need_val("a path");
    else if (arg == "--relative-to") rel_to = normalize(need_val("a dir"));
    else if (arg == "--check-compile-commands")
      ccdb_path = need_val("a compile_commands.json path");
    else if (arg == "--exclude") excludes.push_back(normalize(need_val("a prefix")));
    else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "demotx-advise: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: demotx-advise [--json PATH] [--verify] [--gate] "
                 "[--exclude P]... [--relative-to DIR] "
                 "[--check-compile-commands PATH] <file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> paths;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && has_source_ext(it->path()))
          paths.push_back(normalize(it->path()));
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(normalize(root));
    } else {
      std::cerr << "demotx-advise: cannot read " << root << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  Analyzer az;
  int files_scanned = 0;
  for (const std::string& p : paths) {
    if (excluded(p, excludes)) continue;
    std::ifstream ifs(p, std::ios::binary);
    if (!ifs) {
      std::cerr << "demotx-advise: cannot open " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << ifs.rdbuf();
    std::string display = p;
    if (!rel_to.empty() && display.rfind(rel_to + "/", 0) == 0)
      display = display.substr(rel_to.size() + 1);
    az.add_file(std::move(display), buf.str());
    ++files_scanned;
  }
  az.run();

  // ---- compile_commands freshness --------------------------------------
  if (!ccdb_path.empty()) {
    std::ifstream ifs(ccdb_path, std::ios::binary);
    if (!ifs) {
      std::cerr << "demotx-advise: cannot open compile database " << ccdb_path
                << " (configure with CMAKE_EXPORT_COMPILE_COMMANDS)\n";
      return 2;
    }
    std::ostringstream buf;
    buf << ifs.rdbuf();
    const std::string text = buf.str();
    std::vector<std::string> root_prefixes;
    for (const fs::path& r : roots) root_prefixes.push_back(normalize(r));
    bool stale = false;
    const std::string key = "\"file\"";
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos + key.size())) {
      const std::size_t q1 = text.find('"', text.find(':', pos));
      if (q1 == std::string::npos) break;
      const std::size_t q2 = text.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      const std::string entry = text.substr(q1 + 1, q2 - q1 - 1);
      bool under_root = false;
      for (const std::string& r : root_prefixes)
        under_root |= entry.rfind(r, 0) == 0;
      if (under_root && !fs::exists(entry)) {
        std::cerr << "STALE-COMPILE-COMMANDS " << entry
                  << " is in " << ccdb_path
                  << " but not on disk — re-run cmake before trusting this "
                     "sweep\n";
        stale = true;
      }
    }
    if (stale) return 1;
  }

  if (dump) {
    for (const auto& [name, eff] : az.summary) {
      std::cout << name << ":";
      if (eff.top) std::cout << " TOP";
      if (eff.side_effect) std::cout << " side-effect";
      if (eff.irrevocable) std::cout << " irrevocable";
      if (eff.release_call) std::cout << " release";
      if (eff.raw_write) std::cout << " write";
      if (eff.search_write) std::cout << " search-write";
      if (eff.has_search) std::cout << " search";
      if (eff.raw_reads != 0) std::cout << " reads=" << eff.raw_reads;
      if (eff.loop_raw_read) std::cout << " loop-read";
      if (eff.write_before_search) std::cout << " write-before-search";
      std::cout << "\n";
      for (const std::string& ev : evidence_lines(eff))
        std::cout << "    " << ev << "\n";
    }
  }

  // ---- verify (corpus) mode --------------------------------------------
  if (verify) {
    bool failed = false;
    for (const auto& sf : az.files) {
      std::map<int, std::string> actual;
      for (const Site& s : az.sites)
        if (s.file == sf.get()) actual[s.line] = verdict_of(s);
      for (const auto& [line, expect] : sf->lexed.advise_expects) {
        auto it = actual.find(line);
        if (it == actual.end()) {
          std::cout << "VERIFY-MISSING " << sf->path << ":" << line
                    << " expected '" << expect << "' but no site there\n";
          failed = true;
        } else if (it->second != expect) {
          std::cout << "VERIFY-MISMATCH " << sf->path << ":" << line
                    << " expected '" << expect << "' got '" << it->second
                    << "'\n";
          failed = true;
        }
      }
      for (const auto& [line, got] : actual) {
        if (sf->lexed.advise_expects.count(line) == 0) {
          std::cout << "VERIFY-UNEXPECTED " << sf->path << ":" << line
                    << " site inferred '" << got
                    << "' has no demotx-advise-expect comment\n";
          failed = true;
        }
      }
    }
    if (!json_path.empty()) {
      // fall through so goldens can be diffed in the same run
    } else {
      return failed ? 1 : 0;
    }
    if (failed) return 1;
  }

  // ---- JSON report -----------------------------------------------------
  int unsound_unjustified = 0;
  for (const Site& s : az.sites)
    if (!s.sound && !s.justified) ++unsound_unjustified;
  const double ratio =
      az.markers.total == 0
          ? 1.0
          : static_cast<double>(az.markers.confirmed) / az.markers.total;

  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\n  \"files_scanned\": " << files_scanned
       << ",\n  \"functions\": " << az.functions_total
       << ",\n  \"sites\": [";
    bool first = true;
    for (const Site& s : az.sites) {
      js << (first ? "" : ",") << "\n    {\"file\": \""
         << json_escape(s.file->path) << "\", \"line\": " << s.line
         << ", \"enclosing\": \"" << json_escape(s.enclosing)
         << "\", \"annotated\": \"" << s.annotated << "\", \"inferred\": \""
         << s.inferred << "\", \"eligible\": " << eligible_json(s)
         << ", \"sound\": " << (s.sound ? "true" : "false")
         << ", \"justified\": " << (s.justified ? "true" : "false")
         << ", \"evidence\": [";
      bool efirst = true;
      for (const std::string& ev : evidence_lines(s.eff)) {
        js << (efirst ? "" : ", ") << "\"" << json_escape(ev) << "\"";
        efirst = false;
      }
      js << "]}";
      first = false;
    }
    char ratio_buf[32];
    std::snprintf(ratio_buf, sizeof ratio_buf, "%.2f", ratio);
    js << "\n  ],\n  \"markers\": {\"total\": " << az.markers.total
       << ", \"confirmed\": " << az.markers.confirmed
       << ", \"vacuous\": " << az.markers.vacuous << ", \"ratio\": "
       << ratio_buf << "},\n  \"svc\": [";
    first = true;
    for (const SvcRow& r : az.svc) {
      js << (first ? "" : ",") << "\n    {\"req\": \"" << r.req
         << "\", \"mapped\": \"" << r.mapped << "\", \"eligible\": [";
      bool efirst = true;
      for (const std::string& e : r.eligible) {
        js << (efirst ? "" : ", ") << "\"" << e << "\"";
        efirst = false;
      }
      js << "], \"ok\": " << (r.ok ? "true" : "false") << "}";
      first = false;
    }
    js << "\n  ],\n  \"unsound_unjustified\": " << unsound_unjustified
       << "\n}\n";
    if (json_path == "-") {
      std::cout << js.str();
    } else {
      std::ofstream ofs(json_path, std::ios::binary);
      if (!ofs) {
        std::cerr << "demotx-advise: cannot write " << json_path << "\n";
        return 2;
      }
      ofs << js.str();
    }
  }
  if (verify) return 0;

  // ---- human report / gate ---------------------------------------------
  bool fail = false;
  for (const Site& s : az.sites) {
    if (s.sound) continue;
    if (s.justified) {
      std::cerr << "note: " << s.file->path << ":" << s.ann_line
                << ": annotated " << s.annotated << " outside eligibility "
                << eligible_human(s) << " — justified by demotx:advise "
                   "marker\n";
      continue;
    }
    std::cout << s.file->path << ":" << s.ann_line
              << ": error: [demotx-advise-unsound] annotated " << s.annotated
              << " but the transitive effect set only allows "
              << eligible_human(s) << " (in " << s.enclosing << ")\n";
    for (const std::string& ev : evidence_lines(s.eff))
      std::cout << "    " << ev << "\n";
    fail = true;
  }

  if (gate) {
    if (ratio < 0.9) {
      std::cout << "MARKER-RATIO " << az.markers.confirmed << "/"
                << az.markers.total
                << " expert markers confirmed (< 0.9):";
      for (const std::string& u : az.markers.unconfirmed)
        std::cout << " " << u;
      std::cout << "\n";
      fail = true;
    }
    for (const SvcRow& r : az.svc) {
      if (r.ok) continue;
      std::cout << "SVC-MISMATCH " << r.req << " mapped to " << r.mapped
                << " but the run_body arm only allows {";
      bool first = true;
      for (const std::string& e : r.eligible) {
        std::cout << (first ? "" : ", ") << e;
        first = false;
      }
      std::cout << "}\n";
      fail = true;
    }
  }
  return fail ? 1 : 0;
}
