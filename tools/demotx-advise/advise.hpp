// demotx-advise: interprocedural effect summaries and static
// tier-placement inference over the shared token frontend.
//
// Pipeline (DESIGN.md §7 has the full contract):
//
//   1. per-function EFFECT SUMMARY — every function definition the
//      walker finds is summarized into the effect lattice below; tagged
//      accessors (src/stm/effects.hpp) are leaves whose tags replace
//      body analysis;
//   2. CALL-GRAPH FIXPOINT — tx-passing calls resolve by name across
//      every scanned TU; Tarjan SCCs collapse cycles to ⊤ (classic);
//      summaries propagate bottom-up in reverse-topological order;
//   3. TIER CLASSIFIER — each atomically/atomically_irrevocable site's
//      transitive effect set yields an ELIGIBILITY SET over
//      {classic, elastic, snapshot} (eligibility is a set, not a line:
//      a read-only loop is snapshot-eligible but NOT elastic-eligible,
//      because elastic cuts can tear a multi-read result);
//   4. CONSISTENCY GATE — a site whose annotated tier is outside its
//      eligibility set is demotx-advise-unsound unless a reasoned
//      `demotx:advise:` marker owns it; expert markers are confirmed
//      when every literal-tier site they cover is sound; the svc/
//      request-class map is cross-checked against arm summaries.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "frontend.hpp"

namespace demotx::advise {

namespace ff = demotx::frontend;

// The summary lattice.  Bools are may-effects (monotone OR); raw_reads
// saturates at 2 ("many"); ⊤ subsumes everything.
struct Effects {
  bool top = false;          // unresolved callee / call-graph cycle
  bool side_effect = false;  // raw new/delete, IO, locks
  bool irrevocable = false;  // atomically_irrevocable anywhere below
  bool release_call = false; // early release anywhere below
  bool raw_write = false;    // tx.write_word / TVar::set
  bool search_write = false; // obj_insert/erase/enqueue/dequeue
  bool has_search = false;   // any traversal / semantic container op
  int raw_reads = 0;         // raw cell reads: 0, 1, 2 (= many)
  bool loop_raw_read = false;      // a raw read under a loop
  bool write_before_search = false;  // raw write, then a traversal
  // effect name -> example call chain ("qual (file:line)" steps).
  std::map<std::string, std::vector<std::string>> why;

  bool any_write() const { return raw_write || search_write; }
  bool classic_only() const {
    return top || side_effect || irrevocable || release_call;
  }
};

struct SourceFile {
  std::string path;
  ff::LexedFile lexed;
  ff::FunctionIndex fns;
};

// One function definition bound to the file it came from.
struct FuncDef {
  const SourceFile* file;
  const ff::FunctionDef* def;
};

struct Site {
  const SourceFile* file = nullptr;
  int line = 0;      // line of the atomically token
  int ann_line = 0;  // line of the tier-literal token (else == line)
  std::string enclosing;  // qual of the enclosing function, or "<file>"
  std::string annotated;  // classic|elastic|snapshot|irrevocable|hybrid|dynamic
  Effects eff;
  bool elastic_ok = false;
  bool snapshot_ok = false;
  std::string inferred;  // strongest eligible: snapshot > elastic > classic
  bool sound = true;     // literal annotation within the eligibility set
  bool justified = false;  // a reasoned demotx:advise marker owns it
};

struct MarkerReport {
  int total = 0;
  int confirmed = 0;  // every covered literal-tier site is sound
  int vacuous = 0;    // confirmed markers that covered no literal site
  std::vector<std::string> unconfirmed;  // "file:line" of failures
};

struct SvcRow {
  std::string req;     // request-class enumerator, e.g. "kGet"
  std::string mapped;  // tier tier_for() maps it to
  std::set<std::string> eligible;  // from the arm's summary
  bool ok = false;
};

class Analyzer {
 public:
  // Registers one TU.  Call for every file, then run().
  void add_file(std::string path, std::string source);
  void run();

  // ---- results ---------------------------------------------------------
  std::vector<std::unique_ptr<SourceFile>> files;
  std::vector<Site> sites;              // sorted by (file, line)
  MarkerReport markers;
  std::vector<SvcRow> svc;              // empty unless tier_for+run_body seen
  bool svc_found = false;
  int functions_total = 0;              // definitions across all TUs
  // name -> resolved summary (after run()).
  std::map<std::string, Effects> summary;
  // name -> candidate definitions (tx-taking, tagged, or Tx members).
  std::map<std::string, std::vector<FuncDef>> table;

 private:
  void build_table();
  void build_callgraph_and_fixpoint();
  void classify_sites();
  void confirm_markers();
  void cross_check_svc();

  std::map<std::string, std::vector<std::string>> edges_;
};

// Eligibility predicates over a site-level (flattened) summary.
bool elastic_eligible(const Effects& e);
bool snapshot_eligible(const Effects& e);

}  // namespace demotx::advise
