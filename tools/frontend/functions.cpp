// Scope-aware function discovery over the token stream.
//
// A single pass tracks namespace/class/function brace scopes and
// recognizes function DEFINITIONS (declarator + body): free functions,
// member functions (in-class and out-of-class `Cls::f` spellings),
// constructors with init lists, destructors, operator overloads, gtest
// TEST(...) bodies (they register under the macro's name, which is
// harmless: nothing calls them), and named `auto f = [..](Tx&){...}`
// lambdas inside bodies.  Declarations without bodies are skipped.
//
// The walker also records the DEMOTX_TX_* effect tags written between a
// declarator and its body (src/stm/effects.hpp): the tag set is what
// lets demotx-advise treat an accessor as an effect leaf instead of
// pattern-matching on its name.
#include "frontend.hpp"

namespace demotx::frontend {

namespace {

bool is_keyword_not_callee(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "alignof" ||
         t == "alignas" || t == "decltype" || t == "static_assert" ||
         t == "new" || t == "delete" || t == "throw" || t == "co_return" ||
         t == "case" || t == "do" || t == "else" || t == "assert";
}

struct Walker {
  const std::vector<Token>& toks;
  FunctionIndex out;

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
    std::string name;  // class/namespace name ("" otherwise)
  };
  std::vector<Scope> scopes;

  explicit Walker(const LexedFile& lexed) : toks(lexed.tokens) {}

  const Token* tok(std::size_t i) const {
    return i < toks.size() ? &toks[i] : nullptr;
  }
  bool is(std::size_t i, const char* t) const {
    return i < toks.size() && toks[i].text == t;
  }

  // Index just past the matching closer for the opener at i.
  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (toks[i].text == open) ++depth;
      else if (toks[i].text == close && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  // Index just past the `>` matching the `<` at i (`>>` counts twice).
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "<" || t == "<<") depth += (t == "<<") ? 2 : 1;
      else if (t == ">" || t == ">>") {
        depth -= (t == ">>") ? 2 : 1;
        if (depth <= 0) return i + 1;
      } else if (t == ";" || t == "{") {
        return i;  // not a template argument list after all
      }
    }
    return toks.size();
  }

  bool inside_function() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
      if (it->kind == Scope::kFunction || it->kind == Scope::kBlock)
        return true;
    return false;
  }

  std::string scope_prefix() const {
    std::string p;
    for (const Scope& s : scopes)
      if (!s.name.empty()) p += s.name + "::";
    return p;
  }

  std::vector<ParamInfo> parse_params(std::size_t open,
                                      std::size_t close) const {
    std::vector<ParamInfo> params;
    std::size_t start = open + 1;
    int paren = 0, angle = 0, brace = 0;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const std::string& t = toks[i].text;
      const bool at_end = (i == close);
      if (!at_end) {
        if (t == "(") ++paren;
        else if (t == ")") --paren;
        else if (t == "<") ++angle;
        else if (t == ">" && angle > 0) --angle;
        else if (t == "{") ++brace;
        else if (t == "}") --brace;
      }
      if (at_end || (t == "," && paren == 0 && angle == 0 && brace == 0)) {
        if (i > start) {
          ParamInfo p;
          bool past_default = false;
          for (std::size_t j = start; j < i; ++j) {
            if (toks[j].text == "=") past_default = true;
            if (past_default) continue;
            if (toks[j].kind == TokKind::kIdent) {
              if (toks[j].text == "Tx") p.is_tx = true;
              else p.name = toks[j].text;  // last ident wins
            }
          }
          params.push_back(std::move(p));
        }
        start = i + 1;
      }
    }
    return params;
  }

  // At toks[i] == the declarator name whose `(` is at i+1 (already
  // checked).  Returns the index to resume at; registers a FunctionDef
  // if a body follows.  `name` may differ from toks[i].text (operators,
  // destructors).
  std::size_t try_function(std::size_t i, std::string name,
                           std::size_t paren_open) {
    const std::size_t paren_close = skip_balanced(paren_open, "(", ")") - 1;
    if (paren_close >= toks.size()) return toks.size();

    // Walk the specifier region between `)` and the body.
    std::vector<std::string> tags;
    std::size_t j = paren_close + 1;
    int angle = 0;
    bool in_init_list = false;
    while (j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[") {  // noexcept(...), attributes, init args
        j = skip_balanced(j, t == "(" ? "(" : "[", t == "(" ? ")" : "]");
        continue;
      }
      if (t == "<") { ++angle; ++j; continue; }
      if (t == ">") { if (angle > 0) --angle; ++j; continue; }
      if (t == ">>") { angle -= 2; if (angle < 0) angle = 0; ++j; continue; }
      if (t == ":" && !in_init_list && angle == 0) {
        in_init_list = true;  // constructor member-init list
        ++j;
        continue;
      }
      if (t == "{") {
        if (in_init_list) {
          // A brace in the init list is an initializer (`f_{x}`) when it
          // directly follows an identifier or `>`; otherwise it is the
          // body.
          const Token* pv = j > 0 ? &toks[j - 1] : nullptr;
          if (pv != nullptr && (pv->kind == TokKind::kIdent ||
                                pv->text == ">" || pv->text == "::")) {
            j = skip_balanced(j, "{", "}");
            continue;
          }
        }
        break;  // the body
      }
      if (angle == 0 && (t == ";" || t == "=" || t == ")" || t == "}" ||
                         (t == "," && !in_init_list))) {
        // Declaration only.  If it carried effect tags it still
        // registers (as a bodiless leaf — the tags replace the body).
        if (!tags.empty() && t == ";") {
          FunctionDef def;
          def.name = std::move(name);
          def.line = toks[i].line;
          def.params = parse_params(paren_open, paren_close);
          def.tags = std::move(tags);
          def.qual = scope_prefix() + def.name;
          out.functions.push_back(std::move(def));
        }
        return j;  // resume at the terminator
      }
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("DEMOTX_TX_", 0) == 0)
        tags.push_back(toks[j].text);
      ++j;  // const, noexcept, override, ->, ::, *, &, idents, commas...
    }
    if (j >= toks.size() || toks[j].text != "{") return j;

    FunctionDef def;
    def.name = std::move(name);
    def.line = toks[i].line;
    def.params = parse_params(paren_open, paren_close);
    def.tags = std::move(tags);
    def.body_begin = j;
    def.body_end = skip_balanced(j, "{", "}") - 1;
    def.has_body = true;

    // Out-of-class qualifier: `Cls::~Cls` / `ns::Cls::f`.
    std::string back_qual;
    {
      std::size_t k = i;
      if (k > 0 && toks[k - 1].text == "~") --k;
      while (k >= 2 && toks[k - 1].text == "::" &&
             toks[k - 2].kind == TokKind::kIdent) {
        back_qual = toks[k - 2].text + "::" + back_qual;
        k -= 2;
      }
    }
    def.qual = scope_prefix() + back_qual + def.name;
    out.functions.push_back(def);

    scopes.push_back({Scope::kFunction, ""});
    return j + 1;  // continue INTO the body (named lambdas, local defs)
  }

  void run() {
    const std::size_t n = toks.size();
    std::size_t i = 0;
    // Scope names pending for the next `{`.
    std::vector<std::pair<Scope::Kind, std::string>> pending;
    while (i < n) {
      const Token& t = toks[i];

      if (t.text == "{") {
        if (!pending.empty()) {
          scopes.push_back({pending.back().first, pending.back().second});
          pending.pop_back();
        } else {
          scopes.push_back({Scope::kBlock, ""});
        }
        ++i;
        continue;
      }
      if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        ++i;
        continue;
      }
      if (t.text == ";") {
        pending.clear();  // `class X;` forward declaration etc.
        ++i;
        continue;
      }

      if (t.kind == TokKind::kIdent) {
        if (t.text == "namespace") {
          std::string nsname;
          std::size_t j = i + 1;
          while (j < n && (toks[j].kind == TokKind::kIdent ||
                           toks[j].text == "::")) {
            if (toks[j].kind == TokKind::kIdent)
              nsname += (nsname.empty() ? "" : "::") + toks[j].text;
            ++j;
          }
          if (j < n && toks[j].text == "{")
            pending.push_back({Scope::kNamespace, nsname});
          i = j;
          continue;
        }
        if (t.text == "class" || t.text == "struct" || t.text == "union") {
          // Find the class name (first plain ident, skipping attribute
          // macros with arguments) and whether a body follows.
          std::string cname;
          std::size_t j = i + 1;
          while (j < n && toks[j].text != "{" && toks[j].text != ";" &&
                 toks[j].text != "(") {
            if (toks[j].kind == TokKind::kIdent && cname.empty() &&
                toks[j].text != "final" && toks[j].text != "alignas")
              cname = toks[j].text;
            if (toks[j].text == ":") {  // base list: skip to `{`
              while (j < n && toks[j].text != "{" && toks[j].text != ";") ++j;
              break;
            }
            if (j + 1 < n && toks[j].kind == TokKind::kIdent &&
                toks[j + 1].text == "(") {  // attribute macro(...)
              j = skip_balanced(j + 1, "(", ")");
              continue;
            }
            ++j;
          }
          if (j < n && toks[j].text == "{")
            pending.push_back({Scope::kClass, cname});
          i = j;
          continue;
        }
        if (t.text == "enum") {
          std::size_t j = i + 1;
          while (j < n && toks[j].text != "{" && toks[j].text != ";") ++j;
          if (j < n && toks[j].text == "{") j = skip_balanced(j, "{", "}");
          i = j;
          continue;
        }
        if (t.text == "template" && is(i + 1, "<")) {
          i = skip_angles(i + 1);
          continue;
        }
        if (t.text == "using" || t.text == "typedef") {
          while (i < n && toks[i].text != ";") ++i;
          continue;
        }

        if (!inside_function()) {
          // operator overloads: name = "operator" + symbol tokens.
          if (t.text == "operator") {
            std::string name = "operator";
            std::size_t j = i + 1;
            while (j < n && toks[j].text != "(" &&
                   toks[j].kind == TokKind::kPunct) {
              name += toks[j].text;
              ++j;
            }
            if (j < n && toks[j].text == "(") {
              i = try_function(i, name, j);
              continue;
            }
          }
          if (is(i + 1, "(") && !is_keyword_not_callee(t.text) &&
              !(i > 0 && (toks[i - 1].text == "." ||
                          toks[i - 1].text == "->"))) {
            std::string name = t.text;
            if (i > 0 && toks[i - 1].text == "~") name = "~" + name;
            i = try_function(i, std::move(name), i + 1);
            continue;
          }
        } else {
          // Inside a body: register `[auto] name = [cap](..Tx&..){...}`
          // named lambdas so later `name(tx)` calls resolve.
          if (is(i + 1, "=") && is(i + 2, "[")) {
            const std::size_t cap_end = skip_balanced(i + 2, "[", "]");
            if (cap_end < n && toks[cap_end].text == "(") {
              const std::size_t close =
                  skip_balanced(cap_end, "(", ")") - 1;
              std::vector<ParamInfo> params = parse_params(cap_end, close);
              bool has_tx = false;
              for (const ParamInfo& p : params) has_tx |= p.is_tx;
              if (has_tx) {
                std::size_t j = close + 1;
                while (j < n && toks[j].text != "{" && toks[j].text != ";") {
                  if (toks[j].text == "(")
                    j = skip_balanced(j, "(", ")");
                  else
                    ++j;
                }
                if (j < n && toks[j].text == "{") {
                  FunctionDef def;
                  def.name = t.text;
                  def.qual = scope_prefix() + t.text;
                  def.line = t.line;
                  def.params = std::move(params);
                  def.body_begin = j;
                  def.body_end = skip_balanced(j, "{", "}") - 1;
                  def.has_body = true;
                  out.functions.push_back(std::move(def));
                  // Do not descend specially: the body is scanned as
                  // part of the enclosing walk.
                }
              }
            }
          }
        }
      }
      ++i;
    }
  }
};

}  // namespace

FunctionIndex scan_functions(const LexedFile& lexed) {
  Walker w(lexed);
  w.run();
  return std::move(w.out);
}

}  // namespace demotx::frontend
