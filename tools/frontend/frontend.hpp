// Shared C++ token frontend for the demotx static-analysis tools
// (tools/demotx-lint, tools/demotx-advise).
//
// The frontend is a self-contained lexer plus a scope-aware function
// walker: it builds and runs with the repo's host toolchain alone (no
// LLVM), so every analysis row runs in CI everywhere.  The analysis
// layer on top is lexical and scope-aware (brace/paren tracking,
// declarator recognition), deliberately NOT a full parser: every
// consumer defines its checks in terms the token stream can decide
// exactly, and the regression corpora in tests/lint/ and tests/advise/
// pin those definitions.
//
// Comment grammar understood here (consumers pick what they honour):
//
//   // demotx:expert: <why>         this line is expert code
//   // demotx:expert-next: <why>    the next line is
//   // demotx:expert-fn: <why>      the next function/brace block is
//   // demotx:expert-file: <why>    the whole file is expert TIER
//   // demotx:advise: <why>         justifies a demotx-advise-unsound
//                                   finding on this or the next line
//   // demotx-expect: <check-id>[, ...]          lint corpus expectation
//   // demotx-advise-expect: <tier>[ unsound]    advise corpus expectation
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace demotx::frontend {

// ---- lexer -----------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Marker {
  enum class Kind { kLine, kNext, kFn, kFile, kAdvise };
  Kind kind;
  int line;             // line the marker comment starts on
  bool has_reason;      // a non-empty justification followed the marker
  std::string reason;
};

// One file's lexed form: the token stream plus everything the comments
// said (markers and corpus expectations).
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Marker> markers;
  // line -> expected lint check ids on that line (lint corpus files).
  std::map<int, std::set<std::string>> expects;
  // line -> expected advise verdict, e.g. "snapshot" or "classic unsound"
  // (advise corpus files).
  std::map<int, std::string> advise_expects;
};

// Tokenizes C++ source.  Comments and preprocessor directives do not
// produce tokens; comments are scanned for markers/expectations.
// String/char/raw-string literals (including u8R"( )" and friends) each
// collapse to one placeholder token so keywords inside literals never
// reach the analyses, and digit separators (1'000) stay inside one
// number token.
LexedFile lex(const std::string& source);

// ---- function walker -------------------------------------------------

struct ParamInfo {
  std::string name;
  bool is_tx = false;  // declared `Tx&` (however qualified)
};

// One function (or Tx-taking named lambda) definition with a body.
struct FunctionDef {
  std::string name;   // bare declarator name
  std::string qual;   // Enclosing::scopes::name when derivable
  int line = 0;       // line the declarator's name sits on
  std::vector<ParamInfo> params;
  // DEMOTX_TX_* effect tags written between the parameter list and the
  // body (src/stm/effects.hpp) — an expert assertion that replaces body
  // analysis for this function.
  std::vector<std::string> tags;
  // Token index range of the body: tokens[body_begin] == "{",
  // tokens[body_end] == the matching "}".  Meaningful only when
  // has_body; tagged declarations register without one (the tags make
  // the body irrelevant to the analyses).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  bool has_body = false;
};

struct FunctionIndex {
  std::vector<FunctionDef> functions;
};

// Scope-aware single pass over the token stream: finds every function
// definition at namespace/class scope (free functions, member
// functions, out-of-class `Cls::f` definitions, gtest TEST bodies) plus
// named `auto f = [..](Tx& tx){...}` lambdas inside function bodies.
// Declarations without bodies are skipped — unless they carry
// DEMOTX_TX_* tags, which register as bodiless effect leaves.
FunctionIndex scan_functions(const LexedFile& lexed);

}  // namespace demotx::frontend
