// Token frontend: a small C++ lexer that understands comments (where
// the markers live), string/char/raw-string literals in every encoding
// spelling (so check keywords inside literals never fire and a
// u8R"( )" body cannot swallow the lines after it), preprocessor lines
// (skipped, with continuation handling), digit separators (1'000 stays
// one number token and a quote that is not a separator is left for the
// char-literal scanner), and multi-character punctuators (so `->` and
// `::` arrive as single tokens).
#include "frontend.hpp"

#include <cctype>

namespace demotx::frontend {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses one comment's text for markers and expectations.
void scan_comment(const std::string& text, int line, LexedFile& out) {
  struct Variant {
    const char* tag;
    Marker::Kind kind;
  };
  // Longest tags first so "demotx:expert" does not shadow its suffixes.
  static const Variant kVariants[] = {
      {"demotx:expert-file", Marker::Kind::kFile},
      {"demotx:expert-next", Marker::Kind::kNext},
      {"demotx:expert-fn", Marker::Kind::kFn},
      {"demotx:expert", Marker::Kind::kLine},
      {"demotx:advise", Marker::Kind::kAdvise},
  };
  for (const Variant& v : kVariants) {
    const std::size_t pos = text.find(v.tag);
    if (pos == std::string::npos) continue;
    Marker m{v.kind, line, false, ""};
    std::size_t after = pos + std::string(v.tag).size();
    // A suffixed variant match ("demotx:expert" inside
    // "demotx:expert-file") is not a kLine marker: require the tag to
    // end at a non-ident, non-'-' boundary.
    if (after < text.size() && (text[after] == '-')) continue;
    if (after < text.size() && text[after] == ':') {
      m.reason = trim(text.substr(after + 1));
      m.has_reason = !m.reason.empty();
    }
    out.markers.push_back(m);
    break;  // one marker per comment
  }

  const std::size_t epos = text.find("demotx-expect:");
  if (epos != std::string::npos) {
    std::string rest = text.substr(epos + std::string("demotx-expect:").size());
    std::size_t start = 0;
    while (start <= rest.size()) {
      std::size_t comma = rest.find(',', start);
      std::string id = trim(rest.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (!id.empty()) out.expects[line].insert(id);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  const std::size_t apos = text.find("demotx-advise-expect:");
  if (apos != std::string::npos) {
    const std::string verdict = trim(
        text.substr(apos + std::string("demotx-advise-expect:").size()));
    if (!verdict.empty()) out.advise_expects[line] = verdict;
  }
}

// Encoding prefixes that may precede a string/char literal.  A raw
// string is any of these followed by R, then `"`.
bool is_encoding_prefix(const std::string& s) {
  return s == "u8" || s == "u" || s == "U" || s == "L";
}
bool is_raw_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

}  // namespace

LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace so far on this line

  auto push = [&](TokKind k, std::string text) {
    out.tokens.push_back(Token{k, std::move(text), line});
  };

  // Consumes a raw string body starting at the `"` after the R prefix.
  auto scan_raw_string = [&](std::size_t quote) {
    std::size_t j = quote + 1;
    std::string delim;
    while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() <= 16)
      delim += src[j++];
    const std::string close = ")" + delim + "\"";
    std::size_t end = src.find(close, j);
    if (end == std::string::npos) end = n;
    for (std::size_t k = quote; k < end && k < n; ++k)
      if (src[k] == '\n') ++line;
    push(TokKind::kString, "<raw-string>");
    i = (end == n) ? n : end + close.size();
  };

  // Consumes a plain string or char literal starting at its quote.
  auto scan_quoted = [&](std::size_t quote) {
    const char q = src[quote];
    std::size_t j = quote + 1;
    while (j < n && src[j] != q) {
      if (src[j] == '\\' && j + 1 < n) ++j;
      if (src[j] == '\n') ++line;  // unterminated; keep line count sane
      ++j;
    }
    push(q == '"' ? TokKind::kString : TokKind::kChar, "<literal>");
    i = (j < n) ? j + 1 : n;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring \-splices.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      scan_comment(src.substr(i + 2, j - i - 2), start_line, out);
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      scan_comment(src.substr(i + 2, j - i - 2), start_line, out);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Identifier / keyword — and, by C++ max munch, the encoding
    // prefixes of string/char literals: u8R"(...)", LR"(...)", L'x',
    // u8"..." must each collapse into a single literal token, or the
    // literal's body leaks into the token stream and every diagnostic
    // after it is misattributed.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      const std::string text = src.substr(i, j - i);
      if (j < n && src[j] == '"' && is_raw_prefix(text)) {
        scan_raw_string(j);
        continue;
      }
      if (j < n && src[j] == '"' && is_encoding_prefix(text)) {
        scan_quoted(j);
        continue;
      }
      if (j < n && src[j] == '\'' && is_encoding_prefix(text)) {
        scan_quoted(j);
        continue;
      }
      push(TokKind::kIdent, text);
      i = j;
      continue;
    }
    // String / char literal (unprefixed).
    if (c == '"' || c == '\'') {
      scan_quoted(i);
      continue;
    }
    // Number (good enough: digits, dots, exponents, suffixes, 0x...,
    // digit separators).  A separator quote is only consumed when an
    // alphanumeric follows (1'000, 0xF'8); a bare trailing quote is
    // left for the char-literal scanner rather than swallowed.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])) ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      push(TokKind::kNumber, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Multi-character punctuators we care about, longest first.
    static const char* kPuncts[] = {
        "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
        "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
        "|=",  "^=",  "++",  "--",
    };
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::string(p).size();
      if (src.compare(i, len, p) == 0) {
        push(TokKind::kPunct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace demotx::frontend
