// demotx-lint CLI.
//
//   demotx-lint [options] <file-or-dir>...
//
//   --verify         corpus mode: diagnostics must exactly match the
//                    `// demotx-expect: <check-id>[, ...]` comments in
//                    each file (good files carry none and must be clean)
//   --stats          print per-check hit counts / suppression counts /
//                    scanned-TU totals as JSON on stdout (diagnostics go
//                    to stderr), so suppression creep is trackable
//   --exclude P      skip files whose path starts with P (repeatable;
//                    used to keep the known-bad corpus out of tree runs)
//   --budget FILE    suppression-creep gate: compare this run's per-check
//                    suppression counts against the committed --stats
//                    baseline (tests/lint/stats_baseline.json) and fail
//                    if any count grew.  Every suppression already
//                    requires a reasoned marker (reasonless markers
//                    suppress nothing), so growth is legal only by
//                    re-baselining in the same change — which puts the
//                    new markers and the new baseline in front of review
//                    together.
//   --list-checks    print the check ids and exit
//
// Exit codes: 0 clean/verified, 1 diagnostics/mismatch/over budget,
// 2 usage or I/O.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace demotx::lint;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".cc" || e == ".cxx";
}

std::string normalize(const fs::path& p) {
  std::error_code ec;
  fs::path c = fs::weakly_canonical(p, ec);
  return (ec ? p : c).generic_string();
}

bool excluded(const std::string& file,
              const std::vector<std::string>& excludes) {
  for (const std::string& e : excludes)
    if (file.rfind(e, 0) == 0) return true;
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Minimal extraction of `"<key>": <int>` pairs under the "suppressed"
// object of a --stats JSON file (we only ever read our own output).
std::map<std::string, int> read_baseline_suppressed(const std::string& path,
                                                    bool& ok) {
  std::map<std::string, int> out;
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) {
    ok = false;
    return out;
  }
  std::ostringstream buf;
  buf << ifs.rdbuf();
  const std::string text = buf.str();
  const std::size_t sec = text.find("\"suppressed\"");
  if (sec == std::string::npos) {
    ok = false;
    return out;
  }
  const std::size_t open = text.find('{', sec);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) {
    ok = false;
    return out;
  }
  std::size_t i = open;
  while (true) {
    const std::size_t q1 = text.find('"', i);
    if (q1 == std::string::npos || q1 > close) break;
    const std::size_t q2 = text.find('"', q1 + 1);
    const std::size_t colon = text.find(':', q2);
    if (q2 == std::string::npos || colon == std::string::npos) break;
    const std::string key = text.substr(q1 + 1, q2 - q1 - 1);
    out[key] = std::atoi(text.c_str() + colon + 1);
    i = colon + 1;
  }
  ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool stats = false;
  std::string budget_path;
  std::vector<std::string> excludes;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exclude") {
      if (++i >= argc) {
        std::cerr << "demotx-lint: --exclude needs a path prefix\n";
        return 2;
      }
      excludes.push_back(normalize(argv[i]));
    } else if (arg == "--budget") {
      if (++i >= argc) {
        std::cerr << "demotx-lint: --budget needs a baseline JSON path\n";
        return 2;
      }
      budget_path = argv[i];
    } else if (arg == "--list-checks") {
      for (const std::string& id : check_ids()) std::cout << id << "\n";
      return 0;
    } else if (arg == "--version") {
      std::cout << "demotx-lint 1.0 (token frontend"
#ifdef DEMOTX_LINT_HAVE_CLANG
                << ", LLVM/Clang dev present"
#endif
                << ")\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "demotx-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: demotx-lint [--verify] [--stats] [--exclude P]... "
                 "<file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && has_source_ext(it->path()))
          files.push_back(normalize(it->path()));
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(normalize(root));
    } else {
      std::cerr << "demotx-lint: cannot read " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::ostream& diag_out = stats ? std::cerr : std::cout;
  int files_scanned = 0;
  int tx_contexts = 0;
  std::map<std::string, int> totals;
  std::map<std::string, int> suppressed;
  int m_line = 0, m_next = 0, m_fn = 0, m_file = 0;
  bool any_diag = false;
  bool verify_failed = false;

  for (const std::string& file : files) {
    if (excluded(file, excludes)) continue;
    std::ifstream ifs(file, std::ios::binary);
    if (!ifs) {
      std::cerr << "demotx-lint: cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << ifs.rdbuf();
    const LexedFile lexed = lex(buf.str());
    FileResult r = analyze(file, lexed);

    ++files_scanned;
    tx_contexts += r.tx_contexts;
    m_line += r.markers_line;
    m_next += r.markers_next;
    m_fn += r.markers_fn;
    m_file += r.markers_file;
    for (const auto& [check, count] : r.suppressed) suppressed[check] += count;
    for (const Diagnostic& d : r.diags) ++totals[d.check];

    if (verify) {
      // Exact match between emitted diagnostics and expect comments.
      std::map<int, std::set<std::string>> got;
      for (const Diagnostic& d : r.diags) got[d.line].insert(d.check);
      for (const auto& [line, checks] : r.expects) {
        for (const std::string& c : checks) {
          if (got.count(line) == 0 || got[line].count(c) == 0) {
            std::cout << "VERIFY-MISSING " << file << ":" << line << " " << c
                      << "\n";
            verify_failed = true;
          }
        }
      }
      for (const auto& [line, checks] : got) {
        for (const std::string& c : checks) {
          if (r.expects.count(line) == 0 || r.expects.at(line).count(c) == 0) {
            std::cout << "VERIFY-UNEXPECTED " << file << ":" << line << " "
                      << c << "\n";
            verify_failed = true;
          }
        }
      }
    } else {
      for (const Diagnostic& d : r.diags) {
        diag_out << d.file << ":" << d.line << ": error: [" << d.check << "] "
                 << d.message << "\n";
        any_diag = true;
      }
    }
  }

  if (stats) {
    int total = 0;
    std::cout << "{\n  \"files_scanned\": " << files_scanned
              << ",\n  \"tx_contexts\": " << tx_contexts
              << ",\n  \"diagnostics\": {";
    bool first = true;
    for (const std::string& id : check_ids()) {
      const int c = totals.count(id) ? totals.at(id) : 0;
      total += c;
      std::cout << (first ? "" : ",") << "\n    \"" << json_escape(id)
                << "\": " << c;
      first = false;
    }
    std::cout << "\n  },\n  \"diagnostics_total\": " << total
              << ",\n  \"suppressed\": {";
    first = true;
    for (const std::string& id : check_ids()) {
      const int c = suppressed.count(id) ? suppressed.at(id) : 0;
      std::cout << (first ? "" : ",") << "\n    \"" << json_escape(id)
                << "\": " << c;
      first = false;
    }
    std::cout << "\n  },\n  \"markers\": { \"file\": " << m_file
              << ", \"fn\": " << m_fn << ", \"line\": " << m_line
              << ", \"next\": " << m_next << " }\n}\n";
  }

  if (!budget_path.empty()) {
    bool ok = false;
    const std::map<std::string, int> baseline =
        read_baseline_suppressed(budget_path, ok);
    if (!ok) {
      std::cerr << "demotx-lint: cannot read baseline " << budget_path
                << " (regenerate with --stats)\n";
      return 2;
    }
    bool over = false;
    for (const std::string& id : check_ids()) {
      const int now = suppressed.count(id) ? suppressed.at(id) : 0;
      const int base = baseline.count(id) ? baseline.at(id) : 0;
      if (now > base) {
        std::cerr << "BUDGET-EXCEEDED " << id << ": " << now
                  << " suppressions (baseline " << base
                  << "); justify the new markers and re-baseline "
                  << budget_path << " in the same change\n";
        over = true;
      } else if (now < base) {
        std::cerr << "budget-note " << id << ": " << now
                  << " suppressions, below baseline " << base
                  << " — consider re-baselining downward\n";
      }
    }
    if (over) return 1;
  }

  if (verify) return verify_failed ? 1 : 0;
  return any_diag ? 1 : 0;
}
