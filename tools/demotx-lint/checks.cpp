// The demotx-lint checks: a single scope-aware walk over the token
// stream.  Transactional contexts are lambda bodies / function bodies
// whose parameter list declares a `Tx&` (however qualified); the four
// checks fire inside (or, for the tier check, around) those contexts.
#include "lint.hpp"

#include <array>
#include <utility>

namespace demotx::lint {

namespace {

const char* kUnsafe = "demotx-unsafe-in-tx";
const char* kEscape = "demotx-tx-escape";
const char* kSideEffect = "demotx-side-effect-in-tx";
const char* kTier = "demotx-expert-api-tier";
const char* kMarker = "demotx-expert-marker";
const char* kSnapshotWrite = "demotx-snapshot-write";

bool in_set(const std::set<std::string>& s, const std::string& v) {
  return s.find(v) != s.end();
}

// Calls that perform irreversible side effects when the body re-executes.
const std::set<std::string>& side_effect_calls() {
  static const std::set<std::string> s = {
      "malloc", "calloc", "realloc", "free",    "fopen",  "fclose",
      "fread",  "fwrite", "fflush",  "printf",  "fprintf", "puts",
      "fputs",  "putchar", "getchar", "fgets",  "scanf",  "system",
      "setenv", "putenv",
  };
  return s;
}

// Lock types whose mere construction inside a transaction couples the
// abort/retry loop to blocking synchronization.
const std::set<std::string>& lock_types() {
  static const std::set<std::string> s = {
      "mutex",       "timed_mutex", "recursive_mutex",    "shared_mutex",
      "lock_guard",  "unique_lock", "scoped_lock",        "shared_lock",
      "condition_variable", "SpinLock", "SpinGuard",
  };
  return s;
}

struct Analyzer {
  const std::string& path;
  const LexedFile& in;
  FileResult out;

  // Suppression state derived from the markers.
  std::set<int> expert_lines;
  std::vector<std::pair<int, int>> fn_regions;  // [from_line, to_line]
  bool file_expert = false;

  std::set<std::pair<int, std::string>> emitted;

  explicit Analyzer(const std::string& p, const LexedFile& lexed)
      : path(p), in(lexed) {
    out.expects = lexed.expects;
    // The DEMOTX_EXPERT annotation macro (sync/annotations.hpp) is the
    // in-code equivalent of a line marker; the macro name itself is the
    // greppable justification.
    for (const Token& t : lexed.tokens) {
      if (t.kind == TokKind::kIdent && t.text == "DEMOTX_EXPERT") {
        expert_lines.insert(t.line);
        ++out.markers_line;
      }
    }
    for (const Marker& m : lexed.markers) {
      if (!m.has_reason) {
        out.diags.push_back(
            {path, m.line, kMarker,
             "expert marker without a justification suppresses nothing; "
             "write `demotx:expert...: <one-line reason>`"});
        continue;
      }
      switch (m.kind) {
        case Marker::Kind::kLine:
          expert_lines.insert(m.line);
          ++out.markers_line;
          break;
        case Marker::Kind::kNext:
          expert_lines.insert(m.line + 1);
          ++out.markers_next;
          break;
        case Marker::Kind::kFn:
          fn_regions.push_back({m.line, find_fn_region_end(m.line)});
          ++out.markers_fn;
          break;
        case Marker::Kind::kFile:
          file_expert = true;
          ++out.markers_file;
          break;
        case Marker::Kind::kAdvise:
          // demotx:advise markers justify demotx-advise findings (see
          // tools/demotx-advise); they suppress nothing here.  The
          // reason requirement above still applies — a reasonless one
          // already emitted demotx-expert-marker.
          break;
      }
    }
  }

  // The expert-fn marker covers everything from the marker to the close
  // of the first brace block opening at or after it (the annotated
  // function's body).
  int find_fn_region_end(int marker_line) const {
    std::size_t i = 0;
    const std::size_t n = in.tokens.size();
    while (i < n && !(in.tokens[i].text == "{" &&
                      in.tokens[i].line >= marker_line))
      ++i;
    if (i == n) return marker_line;  // no body follows: cover the line
    int depth = 0;
    for (; i < n; ++i) {
      if (in.tokens[i].text == "{") ++depth;
      if (in.tokens[i].text == "}" && --depth == 0) return in.tokens[i].line;
    }
    return in.tokens.empty() ? marker_line : in.tokens.back().line;
  }

  bool in_fn_region(int line) const {
    for (const auto& [from, to] : fn_regions)
      if (line >= from && line <= to) return true;
    return false;
  }

  void emit(const char* check, int line, std::string msg) {
    if (!emitted.insert({line, check}).second) return;
    if (expert_lines.count(line) != 0 || in_fn_region(line)) {
      ++out.suppressed[check];
      return;
    }
    if (check == std::string(kTier) && file_expert) {
      ++out.suppressed[check];
      return;
    }
    out.diags.push_back({path, line, check, std::move(msg)});
  }

  // ---- the walk ------------------------------------------------------

  struct ParenFrame {
    std::string callee;                  // identifier before the '('
    std::vector<std::string> tx_params;  // names of `Tx&` params inside
    bool saw_snapshot = false;           // literal kSnapshot among the args
  };
  struct TxCtx {
    std::set<std::string> params;
    int entry_depth;  // brace depth of the context body
    bool irrevocable;
    bool snapshot;    // body annotated Semantics::kSnapshot at the site
  };

  std::vector<ParenFrame> parens;
  std::vector<TxCtx> txs;
  int brace_depth = 0;

  // Pending transactional-context opener: a param list declaring Tx&
  // just closed; we skip specifier/return-type tokens until its body's
  // `{` (or a terminator proving it was a mere declaration).
  bool pending = false;
  std::vector<std::string> pending_params;
  bool pending_irrevocable = false;
  bool pending_snapshot = false;
  int pending_angle = 0;
  int pending_paren = 0;

  const Token* tok(std::size_t i) const {
    return i < in.tokens.size() ? &in.tokens[i] : nullptr;
  }

  std::set<std::string> active_params() const {
    std::set<std::string> s;
    for (const TxCtx& c : txs) s.insert(c.params.begin(), c.params.end());
    return s;
  }
  bool irrevocable_now() const {
    for (const TxCtx& c : txs)
      if (c.irrevocable) return true;
    return false;
  }
  // Flat nesting folds inner bodies into the outer transaction, so a
  // write anywhere under a snapshot-annotated context hits the
  // snapshot runtime.
  bool snapshot_now() const {
    for (const TxCtx& c : txs)
      if (c.snapshot) return true;
    return false;
  }

  void run() {
    const std::size_t n = in.tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Token& t = in.tokens[i];

      if (pending && step_pending(t)) continue;

      if (t.text == "{") {
        ++brace_depth;
        continue;
      }
      if (t.text == "}") {
        --brace_depth;
        while (!txs.empty() && brace_depth < txs.back().entry_depth)
          txs.pop_back();
        continue;
      }
      if (t.text == "(") {
        ParenFrame f;
        if (i > 0 && in.tokens[i - 1].kind == TokKind::kIdent)
          f.callee = in.tokens[i - 1].text;
        parens.push_back(std::move(f));
        continue;
      }
      if (t.text == ")") {
        if (!parens.empty()) {
          ParenFrame f = std::move(parens.back());
          parens.pop_back();
          if (!f.tx_params.empty()) arm_pending(std::move(f.tx_params));
        }
        continue;
      }

      // A literal kSnapshot argument marks the innermost call's frame so
      // the context opened by its lambda knows its annotated tier.
      if (t.kind == TokKind::kIdent && t.text == "kSnapshot" &&
          !parens.empty()) {
        parens.back().saw_snapshot = true;
      }

      // `Tx & name` inside a parameter list -> context candidate.
      if (t.kind == TokKind::kIdent && t.text == "Tx" && !parens.empty()) {
        const Token* amp = tok(i + 1);
        const Token* name = tok(i + 2);
        if (amp != nullptr && amp->text == "&" && name != nullptr &&
            name->kind == TokKind::kIdent) {
          parens.back().tx_params.push_back(name->text);
        }
      }

      check_tier(i);
      if (!txs.empty()) {
        check_unsafe(i);
        check_escape(i);
        if (!irrevocable_now()) check_side_effect(i);
        if (snapshot_now()) check_snapshot_write(i);
      }
    }
  }

  void arm_pending(std::vector<std::string> params) {
    pending = true;
    pending_params = std::move(params);
    pending_irrevocable = false;
    pending_snapshot = false;
    pending_angle = 0;
    pending_paren = 0;
    for (const ParenFrame& f : parens) {
      if (f.callee == "atomically_irrevocable") pending_irrevocable = true;
      if (f.callee == "atomically" && f.saw_snapshot) pending_snapshot = true;
    }
  }

  // Consumes one token while looking for the context body.  Returns true
  // if the token was fully handled here.
  bool step_pending(const Token& t) {
    if (pending_paren > 0) {
      if (t.text == "(") ++pending_paren;
      if (t.text == ")") --pending_paren;
      return true;
    }
    if (t.text == "(") {  // noexcept(...), attribute args
      ++pending_paren;
      return true;
    }
    if (t.text == "<") {
      ++pending_angle;
      return true;
    }
    if (t.text == ">") {
      if (pending_angle > 0) --pending_angle;
      return true;
    }
    if (t.text == "{" && pending_angle == 0) {
      pending = false;
      ++brace_depth;
      TxCtx ctx;
      ctx.params.insert(pending_params.begin(), pending_params.end());
      ctx.entry_depth = brace_depth;
      ctx.irrevocable = pending_irrevocable;
      ctx.snapshot = pending_snapshot;
      txs.push_back(std::move(ctx));
      ++out.tx_contexts;
      return true;
    }
    if (t.text == ";" || t.text == "=" || t.text == ")" || t.text == "}" ||
        (t.text == "," && pending_angle == 0)) {
      pending = false;  // declaration only / lambda passed as argument
      return false;     // reprocess in the main walk
    }
    // const, noexcept, override, ->, ::, [, ], *, &, identifiers...
    return true;
  }

  // ---- checks --------------------------------------------------------

  void check_unsafe(std::size_t i) {
    const Token& t = in.tokens[i];
    const Token* nx = tok(i + 1);
    if (t.kind == TokKind::kIdent && t.text.rfind("unsafe_", 0) == 0 &&
        nx != nullptr && nx->text == "(") {
      emit(kUnsafe, t.line,
           t.text + "() bypasses versioning inside a transaction (breaks "
                    "opacity); use get/set through the Tx, or mark the line "
                    "`demotx:expert: <why tx-private or quiescent>`");
    }
  }

  void check_escape(std::size_t i) {
    const Token& t = in.tokens[i];
    const std::set<std::string> params = active_params();

    // Address-of the transaction handle.
    if (t.text == "&" && t.kind == TokKind::kPunct) {
      const Token* nx = tok(i + 1);
      const Token* pv = i > 0 ? &in.tokens[i - 1] : nullptr;
      const bool prev_is_value =
          pv != nullptr && (pv->kind == TokKind::kIdent ||
                            pv->kind == TokKind::kNumber || pv->text == ")" ||
                            pv->text == "]");
      if (nx != nullptr && in_set(params, nx->text) && !prev_is_value) {
        emit(kEscape, t.line,
             "taking the address of the Tx& lets it outlive its "
             "transaction; pass the reference itself instead");
      }
    }

    // static / thread_local storage initialized from the handle.
    if (t.kind == TokKind::kIdent &&
        (t.text == "static" || t.text == "thread_local")) {
      for (std::size_t j = i + 1; j < in.tokens.size() && j < i + 200; ++j) {
        if (in.tokens[j].text == ";") break;
        if (in.tokens[j].kind == TokKind::kIdent &&
            in_set(params, in.tokens[j].text)) {
          emit(kEscape, t.line,
               "storing the Tx& in static/thread_local state outlives the "
               "transaction attempt (the descriptor is re-armed per retry)");
          break;
        }
      }
    }

    // A lambda capturing the handle that is stored or returned (direct
    // call arguments are composition and stay legal).
    if (t.text == "[" && i > 0 &&
        (in.tokens[i - 1].text == "=" || in.tokens[i - 1].text == "return")) {
      std::size_t j = i + 1;
      int bracket = 1;
      bool captures = false;
      for (; j < in.tokens.size() && bracket > 0; ++j) {
        if (in.tokens[j].text == "[") ++bracket;
        else if (in.tokens[j].text == "]") --bracket;
        else if (in.tokens[j].text == "&" ||
                 (in.tokens[j].kind == TokKind::kIdent &&
                  in_set(params, in.tokens[j].text)))
          captures = true;
      }
      if (!captures || j >= in.tokens.size()) return;
      // Skip optional parameter list / specifiers to the body.
      int par = 0;
      while (j < in.tokens.size() && in.tokens[j].text != "{") {
        if (in.tokens[j].text == "(") ++par;
        if (in.tokens[j].text == ")" && par > 0) --par;
        if (par == 0 && (in.tokens[j].text == ";")) return;
        ++j;
      }
      int depth = 0;
      for (; j < in.tokens.size(); ++j) {
        if (in.tokens[j].text == "{") ++depth;
        if (in.tokens[j].text == "}" && --depth == 0) break;
        if (depth > 0 && in.tokens[j].kind == TokKind::kIdent &&
            in_set(params, in.tokens[j].text)) {
          emit(kEscape, t.line,
               "a stored/returned lambda capturing the Tx& escapes the "
               "transaction body; pass it directly to the combinator or "
               "re-enter via stm::atomically");
          return;
        }
      }
    }
  }

  void check_side_effect(std::size_t i) {
    const Token& t = in.tokens[i];
    const Token* nx = tok(i + 1);
    const Token* pv = i > 0 ? &in.tokens[i - 1] : nullptr;
    if (t.kind != TokKind::kIdent) return;

    if (t.text == "new") {
      emit(kSideEffect, t.line,
           "raw `new` inside a transaction leaks on abort; allocate with "
           "tx.alloc<T>(...) (freed on abort, handed over on commit)");
      return;
    }
    if (t.text == "delete") {
      emit(kSideEffect, t.line,
           "raw `delete` inside a transaction frees memory concurrent "
           "optimistic readers may still dereference; use tx.retire(p) "
           "(epoch-based reclamation at commit)");
      return;
    }
    if (nx != nullptr && nx->text == "(" &&
        in_set(side_effect_calls(), t.text)) {
      emit(kSideEffect, t.line,
           t.text + "() inside a transaction re-executes on abort; move it "
                    "outside, or run the body under atomically_irrevocable");
      return;
    }
    if (t.text == "cout" || t.text == "cerr" || t.text == "clog") {
      emit(kSideEffect, t.line,
           "stream I/O inside a transaction re-executes on abort; move it "
           "outside, or run the body under atomically_irrevocable");
      return;
    }
    if (pv != nullptr && (pv->text == "." || pv->text == "->") &&
        nx != nullptr && nx->text == "(" &&
        (t.text == "lock" || t.text == "unlock" || t.text == "try_lock")) {
      emit(kSideEffect, t.line,
           "explicit lock operations inside a transaction deadlock with "
           "the abort/retry loop (an aborted attempt re-locks); use TVars "
           "or an irrevocable transaction");
      return;
    }
    if (in_set(lock_types(), t.text)) {
      emit(kSideEffect, t.line,
           "blocking synchronization (" + t.text +
               ") inside a transaction couples retries to lock ownership; "
               "use TVars or an irrevocable transaction");
    }
  }

  // Raw cell writes inside a body annotated Semantics::kSnapshot: the
  // snapshot tier is read-only by contract (DESIGN.md §3) and aborts on
  // its first write, so the write can only ever waste the attempt.
  void check_snapshot_write(std::size_t i) {
    const Token& t = in.tokens[i];
    if (t.kind != TokKind::kIdent) return;
    const Token* nx = tok(i + 1);
    const Token* pv = i > 0 ? &in.tokens[i - 1] : nullptr;
    const bool is_method_call =
        pv != nullptr && (pv->text == "." || pv->text == "->") &&
        nx != nullptr && nx->text == "(";
    if (!is_method_call) return;
    if (t.text == "write_word") {
      emit(kSnapshotWrite, t.line,
           "tx.write_word inside a Semantics::kSnapshot body always aborts "
           "(the snapshot tier is read-only); use the classic default for "
           "writers, or drop the write");
      return;
    }
    if (t.text == "set") {
      const Token* arg = tok(i + 2);
      if (arg != nullptr && in_set(active_params(), arg->text)) {
        emit(kSnapshotWrite, t.line,
             "TVar::set inside a Semantics::kSnapshot body always aborts "
             "(the snapshot tier is read-only); use the classic default "
             "for writers, or drop the write");
      }
    }
  }

  void check_tier(std::size_t i) {
    const Token& t = in.tokens[i];
    if (t.kind != TokKind::kIdent) return;
    const Token* nx = tok(i + 1);
    const Token* pv = i > 0 ? &in.tokens[i - 1] : nullptr;

    if (t.text == "kElastic" || t.text == "kSnapshot") {
      emit(kTier, t.line,
           "relaxed semantics (" + t.text +
               ") are the expert tier (paper Sec. 5); novice code keeps the "
               "opaque default — opt in with a demotx:expert marker");
      return;
    }
    if (t.text == "atomically_irrevocable" || t.text == "atomically_hybrid") {
      emit(kTier, t.line,
           t.text + " is the expert tier (serial irrevocability / HTM "
                    "tuning); opt in with a demotx:expert marker");
      return;
    }
    if (t.text == "release" && nx != nullptr && nx->text == "(") {
      const Token* arg = tok(i + 2);
      if (arg != nullptr && in_set(active_params(), arg->text)) {
        emit(kTier, t.line,
             "early release breaks composition (paper Sec. 4.1) and is the "
             "expert tier; opt in with a demotx:expert marker");
      }
      return;
    }
    if (t.text == "config" && pv != nullptr &&
        (pv->text == "." || pv->text == "->")) {
      emit(kTier, t.line,
           "overriding the runtime Config (clock/gate/validation schemes, "
           "eager writes...) is the expert tier; opt in with a "
           "demotx:expert marker");
      return;
    }
    if (t.text == "Config" && nx != nullptr && nx->kind == TokKind::kIdent &&
        (pv == nullptr || (pv->text != "struct" && pv->text != "class" &&
                           pv->text != "enum"))) {
      emit(kTier, t.line,
           "constructing an stm::Config override is the expert tier; opt "
           "in with a demotx:expert marker");
      return;
    }
    // Object-ops tier opt-ins: the raw object descriptors and the
    // semantic-op methods on Tx bypass the typed containers' invariants
    // (key mapping, latched representation choice), and Config::object_ops
    // flips the representation process-wide.  Novice code opts in through
    // DEMOTX_OBJECT_OPS and the ds:: containers instead.
    if ((t.text == "ObjDesc" || t.text == "ObjSet" || t.text == "ObjQueue") &&
        (pv == nullptr || (pv->text != "struct" && pv->text != "class"))) {
      emit(kTier, t.line,
           "the raw object-ops descriptor " + t.text +
               " is the expert tier (semantic certification contract); use "
               "the ds:: containers with DEMOTX_OBJECT_OPS, or opt in with "
               "a demotx:expert marker");
      return;
    }
    if (t.text == "object_ops") {
      emit(kTier, t.line,
           "Config::object_ops switches every participating container to "
           "semantic conflict detection process-wide — the expert tier; "
           "opt in with a demotx:expert marker");
      return;
    }
    if (t.text.rfind("obj_", 0) == 0 && pv != nullptr &&
        (pv->text == "." || pv->text == "->") && nx != nullptr &&
        nx->text == "(") {
      emit(kTier, t.line,
           "raw semantic operations (Tx::" + t.text +
               ") bypass the containers' key mapping and latched "
               "representation — the expert tier; opt in with a "
               "demotx:expert marker");
    }
  }
};

}  // namespace

FileResult analyze(const std::string& path, const LexedFile& lexed) {
  Analyzer a(path, lexed);
  a.run();
  return std::move(a.out);
}

const std::vector<std::string>& check_ids() {
  static const std::vector<std::string> ids = {
      kUnsafe, kEscape, kSideEffect, kTier, kMarker, kSnapshotWrite,
  };
  return ids;
}

}  // namespace demotx::lint
