// demotx-lint: compile-time transactional-correctness checks for the
// demotx STM (clang-tidy-style check ids, expected-diagnostic corpus
// testing, NOLINT-like expert markers).
//
// The lexer and scope walker live in tools/frontend (shared with
// demotx-advise); this header aliases them into demotx::lint and adds
// the lint-specific analysis layer.  Everything builds and runs with
// the repo's host toolchain alone; when LLVM/Clang dev packages are
// present CMake reports them and additionally arms the clang-only rows
// (tsa.build, clang-tidy in the `lint` target).  The analysis is lexical
// and scope-aware (brace/paren tracking, transactional-context
// detection), deliberately NOT a full parser: every check is defined in
// terms the token stream can decide exactly, and the regression corpus
// in tests/lint/ pins those definitions.
//
// Checks (see DESIGN.md "Static analysis" for the full contract):
//
//   demotx-unsafe-in-tx     unsafe_load/unsafe_store/unsafe_value/...
//                           called inside a transactional context.
//   demotx-tx-escape        the Tx& handle leaks out of its context:
//                           address-of, static/thread_local storage, or
//                           a stored/returned lambda capturing it.
//   demotx-side-effect-in-tx raw new/delete/malloc/free, stdio/iostream,
//                           or lock operations inside a body that can
//                           re-execute on abort (irrevocable bodies are
//                           exempt).
//   demotx-expert-api-tier  expert APIs (elastic/snapshot semantics,
//                           early release, irrevocability, hybrid HTM,
//                           Config overrides) used outside code opted in
//                           via a demotx:expert marker.
//   demotx-expert-marker    an expert marker without the mandatory
//                           one-line justification (and such a marker
//                           suppresses nothing).
//   demotx-snapshot-write   a raw cell write (tx.write_word / .set(tx,..))
//                           inside a body annotated Semantics::kSnapshot —
//                           snapshot transactions abort on their first
//                           write, so the write can only ever waste work.
//
// Expert-tier markers (comment text, line- or block-comment):
//
//   // demotx:expert: <why>        this line is expert code
//   // demotx:expert-next: <why>   the next line is
//   // demotx:expert-fn: <why>     the next function/brace block is
//   // demotx:expert-file: <why>   the whole file is expert TIER —
//                                  only demotx-expert-api-tier is
//                                  disabled; the safety checks stay on
//
// demotx:advise markers (see tools/demotx-advise) are parsed by the
// shared frontend but ignored here: they justify advise-unsound
// findings and never suppress lint diagnostics.
//
// Corpus expectations (used by --verify):
//
//   ... // demotx-expect: demotx-unsafe-in-tx[, demotx-tx-escape...]
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "frontend.hpp"

namespace demotx::lint {

// The token/marker layer is the shared frontend's.
using TokKind = demotx::frontend::TokKind;
using Token = demotx::frontend::Token;
using Marker = demotx::frontend::Marker;
using LexedFile = demotx::frontend::LexedFile;
using demotx::frontend::lex;

// ---- analysis --------------------------------------------------------

struct Diagnostic {
  std::string file;
  int line;
  std::string check;
  std::string message;
};

struct FileResult {
  std::vector<Diagnostic> diags;
  std::map<int, std::set<std::string>> expects;  // copied from the lex
  int tx_contexts = 0;
  std::map<std::string, int> suppressed;  // check id -> suppressed hits
  int markers_line = 0;
  int markers_next = 0;
  int markers_fn = 0;
  int markers_file = 0;
};

// Runs every check over one lexed file.
FileResult analyze(const std::string& path, const LexedFile& lexed);

// All check ids the tool can emit, for --list-checks and the stats JSON.
const std::vector<std::string>& check_ids();

}  // namespace demotx::lint
