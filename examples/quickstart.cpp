// Quickstart — the demotx API in five minutes.
//
//   build/examples/quickstart
//
// Shows: transactional variables, the default (classic) semantics, the
// expert semantics (elastic, snapshot), composition by nesting, and the
// per-operation semantics choice on a ready-made data structure.
#include <iostream>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

int main() {
  // --- 1. Transactional variables and the classic default --------------
  stm::TVar<long> x{10};
  stm::TVar<long> y{20};

  stm::atomically([&](stm::Tx& tx) {  // classic: opaque, novice-safe
    const long v = x.get(tx);
    x.set(tx, v - 5);
    y.set(tx, y.get(tx) + 5);
  });
  std::cout << "after transfer: x=" << x.unsafe_load()
            << " y=" << y.unsafe_load() << "\n";

  // --- 2. Snapshot semantics: consistent read-only views ---------------
  const long sum = stm::atomically(
      stm::Semantics::kSnapshot,  // demotx:expert: teaching the expert tier (consistent read-only snapshot)
      [&](stm::Tx& tx) { return x.get(tx) + y.get(tx); });
  std::cout << "snapshot sum = " << sum << " (never blocks updaters)\n";

  // --- 3. Composition: nested operations join the outer transaction ----
  auto increment_both = [&](stm::Tx& tx) {
    x.set(tx, x.get(tx) + 1);
    y.set(tx, y.get(tx) + 1);
  };
  stm::atomically([&](stm::Tx& tx) {
    stm::atomically([&](stm::Tx& inner) { increment_both(inner); });
    // Still one atomic transaction: either everything commits or nothing.
    stm::atomically([&](stm::Tx& inner) { increment_both(inner); });
  });
  std::cout << "after composed increments: x=" << x.unsafe_load()
            << " y=" << y.unsafe_load() << "\n";

  // --- 4. A transactional set with per-operation semantics -------------
  // parse ops (contains/add/remove) elastic, size snapshot: the paper's
  // Fig. 9 configuration.
  ds::TxList set(ds::TxList::Options{stm::Semantics::kElastic,   // demotx:expert: teaching the expert tier (elastic parse)
                                     stm::Semantics::kSnapshot});  // demotx:expert: teaching the expert tier (snapshot size)
  for (long k : {3L, 1L, 4L, 1L, 5L}) set.add(k);
  std::cout << "set size = " << set.size() << " (1 deduplicated)\n";

  // --- 5. Real concurrency, or deterministic simulated concurrency -----
  // The same code runs on OS threads (vt::run_threads) or on the
  // virtual-time simulator (vt::run_sim) used by the paper-figure
  // benchmarks.
  auto counter = std::make_unique<stm::TVar<long>>(0);
  vt::run_sim(8, [&](int) {
    for (int i = 0; i < 1000; ++i)
      stm::atomically(
          [&](stm::Tx& tx) { counter->set(tx, counter->get(tx) + 1); });
  });
  std::cout << "8 simulated threads x 1000 increments = "
            << counter->unsafe_load() << "\n";

  const stm::TxStats stats = stm::Runtime::instance().aggregate_stats();
  std::cout << "\nruntime statistics:\n" << stats.summary();
  return 0;
}
