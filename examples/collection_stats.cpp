// Mixed semantics in one application — the paper's Sec. 5 vision, live.
//
// A shared collection is hammered by updater threads (elastic parses),
// while a statistics thread continuously takes atomic whole-structure
// snapshots (size + a consistency probe) that would abort forever as
// classic transactions.  Each thread picked the semantics its role
// needs; none of them knows or breaks the others'.
#include <atomic>
#include <iostream>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

int main() {
  // The Fig. 9 configuration: elastic updates, snapshot reads.
  ds::TxList set(ds::TxList::Options{stm::Semantics::kElastic,   // demotx:expert: teaching the expert tier (Fig. 9 elastic updates)
                                     stm::Semantics::kSnapshot});  // demotx:expert: teaching the expert tier (Fig. 9 snapshot reads)
  for (long k = 0; k < 100; k += 2) set.add(k);  // 50 even keys

  stm::Runtime::instance().reset_stats();

  std::atomic<long> snapshots_taken{0};
  std::atomic<long> min_seen{1'000'000};
  std::atomic<long> max_seen{-1};
  std::atomic<bool> parity_violated{false};

  constexpr int kUpdaters = 6;
  vt::Scheduler sched;
  // Updaters: each toggles a private block of ODD keys, so the set always
  // holds exactly the 50 even keys plus however many odd toggles are "in".
  for (int u = 0; u < kUpdaters; ++u) {
    sched.spawn([&, u](int) {
      const long base = 1001 + 100 * u;
      for (int round = 0; round < 60; ++round) {
        const long k = base + 2 * (round % 11);
        set.add(k);
        set.remove(k);
      }
    });
  }
  // Statistics thread: snapshot size, plus a stronger probe — since every
  // updater adds then removes, any *consistent* size must lie between 50
  // and 50 + kUpdaters (each updater contributes at most one in-flight
  // key).  An inconsistent (torn) view could violate that.
  sched.spawn([&](int) {
    for (int i = 0; i < 80; ++i) {
      const long s = set.size();
      ++snapshots_taken;
      if (s < min_seen) min_seen = s;
      if (s > max_seen) max_seen = s;
      if (s < 50 || s > 50 + kUpdaters) parity_violated = true;
    }
  });
  sched.run();

  const stm::TxStats stats = stm::Runtime::instance().aggregate_stats();
  std::cout << "snapshots taken:          " << snapshots_taken << "\n"
            << "sizes observed:           [" << min_seen << ", " << max_seen
            << "]  (must stay within [50, " << 50 + kUpdaters << "])\n"
            << "consistency violated:     "
            << (parity_violated ? "YES - BUG" : "no") << "\n"
            << "final size:               " << set.unsafe_size() << "\n\n"
            << "how the mix behaved:\n"
            << "  elastic cuts:           " << stats.elastic_cuts
            << "   (false conflicts the updaters shrugged off)\n"
            << "  snapshot old-reads:     " << stats.snapshot_old_reads
            << "   (overwritten values served from the version history)\n"
            << "  aborts:                 " << stats.aborts << " across "
            << stats.starts << " attempts\n\n"
            << stats.summary();
  return parity_violated ? 1 : 0;
}
