// Bank — the classic STM showcase, with the paper's twist: the auditor.
//
// Transfer transactions are short classic read-modify-writes.  The audit
// ("sum every balance") is the paper's toxic transaction: as a classic
// transaction over all accounts it conflicts with every transfer and, at
// scale, starves.  As a snapshot transaction it reads the balances as of
// its start time and always commits — and the invariant (total money
// constant) must hold in every view, which this example verifies.
#include <atomic>
#include <iostream>
#include <memory>
#include <vector>

#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

int main() {
  constexpr int kAccounts = 32;
  constexpr long kTotal = 32'000;
  constexpr int kTellers = 7;

  std::vector<std::unique_ptr<stm::TVar<long>>> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(std::make_unique<stm::TVar<long>>(kTotal / kAccounts));

  auto transfer = [&](int from, int to, long amount) {
    stm::atomically([&](stm::Tx& tx) {
      accounts[from]->set(tx, accounts[from]->get(tx) - amount);
      accounts[to]->set(tx, accounts[to]->get(tx) + amount);
    });
  };

  auto audit = [&](stm::Semantics sem) {
    return stm::atomically(sem, [&](stm::Tx& tx) {
      long sum = 0;
      for (auto& a : accounts) sum += a->get(tx);
      return sum;
    });
  };

  stm::Runtime::instance().reset_stats();
  std::atomic<long> audits_ok{0};
  std::atomic<long> audits_bad{0};

  vt::Scheduler sched;
  for (int t = 0; t < kTellers; ++t) {
    sched.spawn([&, t](int) {
      std::uint64_t rng = 0x1234 + static_cast<std::uint64_t>(t);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < 200; ++i) {
        const int a = static_cast<int>(next() % kAccounts);
        const int b = static_cast<int>(next() % kAccounts);
        transfer(a, b, static_cast<long>(next() % 50));
      }
    });
  }
  sched.spawn([&](int) {  // the auditor
    for (int i = 0; i < 100; ++i) {
      const long sum = audit(stm::Semantics::kSnapshot);  // demotx:expert: teaching the expert tier (snapshot audit, Fig. 5)
      if (sum == kTotal) {
        ++audits_ok;
      } else {
        ++audits_bad;
      }
    }
  });
  sched.run();

  const stm::TxStats stats = stm::Runtime::instance().aggregate_stats();
  long final_sum = 0;
  for (auto& a : accounts) final_sum += a->unsafe_load();

  std::cout << "tellers: " << kTellers << " x 200 transfers over "
            << kAccounts << " accounts\n"
            << "audits consistent:   " << audits_ok << "\n"
            << "audits inconsistent: " << audits_bad
            << (audits_bad == 0 ? "   (snapshot semantics: every view is a "
                                  "moment in time)"
                                : "   BUG!")
            << "\n"
            << "final total:         " << final_sum << " (expected " << kTotal
            << ")\n"
            << "snapshot old-reads:  " << stats.snapshot_old_reads
            << "  — audits that would have aborted as classic transactions\n"
            << "aborts overall:      " << stats.aborts << "\n";
  return (audits_bad == 0 && final_sum == kTotal) ? 0 : 1;
}
