// The paper's Fig. 3: Bob composes Alice's operations.
//
// A directory maps names to files.  Alice ships `remove` and `create`
// (elastic transactions inside).  Bob — without reading a line of Alice's
// synchronization, without a lock-ordering document like the Google File
// System's, without the 50-line locking comment of mm/filemap.c — builds
// an atomic `rename` by wrapping the two calls in a transaction.
//
// The demo runs the adversarial scenario from the paper: two concurrent
// renames moving a file between directories d1 and d2 in opposite
// directions.  With locks this is the textbook deadlock; here one
// transaction simply aborts and retries, and the file ends up in exactly
// one directory.
#include <atomic>
#include <iostream>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

// ---- Alice's component (library author) -------------------------------
class Directory {
 public:
  // Alice picked elastic internally: parses of the name index cut instead
  // of conflicting.  Her choice is invisible to callers.
  Directory()
      : names_(ds::TxList::Options{stm::Semantics::kElastic,   // demotx:expert: the expert choice is hidden inside this class
                                   stm::Semantics::kSnapshot}) {}  // demotx:expert: the expert choice is hidden inside this class

  bool create(long name) { return names_.add(name); }
  bool remove(long name) { return names_.remove(name); }
  bool lookup(long name) { return names_.contains(name); }
  long count() { return names_.size(); }

 private:
  ds::TxList names_;
};

// ---- Bob's composite (application author) ------------------------------
bool rename_file(Directory& from, Directory& to, long name) {
  // One transaction around two component calls: atomicity and deadlock-
  // freedom are inherited, not engineered.
  return stm::atomically([&](stm::Tx&) {
    if (!from.remove(name)) return false;
    to.create(name);
    return true;
  });
}

}  // namespace

int main() {
  Directory d1;
  Directory d2;
  d1.create(7001);  // "report.txt"

  std::cout << "initial: d1 has the file, d2 empty  (d1=" << d1.count()
            << ", d2=" << d2.count() << ")\n\n";

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // Reset: make sure the file starts in d1.
    rename_file(d2, d1, 7001);

    std::atomic<int> succeeded{0};
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;  // adversarial interleaving
    opts.seed = seed;
    vt::Scheduler sched(opts);
    sched.spawn([&](int) {
      if (rename_file(d1, d2, 7001)) ++succeeded;  // d1 -> d2
    });
    sched.spawn([&](int) {
      if (rename_file(d2, d1, 7001)) ++succeeded;  // d2 -> d1 (reverse!)
    });
    sched.run();

    const long total = d1.count() + d2.count();
    std::cout << "schedule " << seed << ": " << succeeded
              << " rename(s) committed, file lives in "
              << (d1.lookup(7001) ? "d1" : "d2")
              << ", total copies = " << total
              << (total == 1 ? "  [atomic]" : "  [BROKEN]") << "\n";
  }

  std::cout << "\nwith per-directory locks this pattern deadlocks unless "
               "every caller agrees on a\nglobal lock order (the paper cites "
               "GFS and mm/filemap.c); with transactions the\nconflict is "
               "detected and one rename retries.\n";
  return 0;
}
