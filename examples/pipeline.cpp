// A transactional processing pipeline — the "expert toolbox" in one demo:
//
//   producers --> [q_high, q_low]  --> workers --> [q_done] --> shipper
//
//  * workers BLOCK on empty queues with stm::retry (no condition
//    variables, no lost wake-ups) and prefer the high-priority queue via
//    stm::or_else — alternatives compose;
//  * moving an item between queues is one atomic transaction: a crash-free
//    guarantee that no item is ever lost or duplicated mid-pipeline;
//  * the shipper runs atomically_irrevocable: its body has a side effect
//    (printing the manifest) that must not re-execute, so it takes the
//    irrevocability token and is guaranteed a single execution per commit.
#include <atomic>
#include <iostream>

#include "ds/tx_queue.hpp"
#include "stm/stm.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;

int main() {
  ds::TxQueue q_high, q_low, q_done;
  constexpr long kHigh = 20, kLow = 30, kTotal = kHigh + kLow;
  std::atomic<long> shipped{0};
  std::atomic<long> shipped_sum{0};
  std::atomic<long> high_first{0};

  vt::Scheduler sched;
  // Two producers.
  sched.spawn([&](int) {
    for (long i = 0; i < kHigh; ++i) q_high.enqueue(1000 + i);
  });
  sched.spawn([&](int) {
    for (long i = 0; i < kLow; ++i) q_low.enqueue(2000 + i);
  });
  // Three workers: take high-priority first, else low, else block.
  std::atomic<long> worked{0};
  for (int w = 0; w < 3; ++w) {
    sched.spawn([&](int) {
      while (worked.load() < kTotal) {
        const long item = stm::atomically([&](stm::Tx& tx) {
          return stm::or_else(
              tx, [&](stm::Tx& t) { return q_high.dequeue_or_retry(t); },
              [&](stm::Tx& t) { return q_low.dequeue_or_retry(t); });
        });
        if (item < 0) break;  // shutdown sentinel from a finished sibling
        if (item < 2000) ++high_first;
        // "Process" and forward atomically.
        stm::atomically([&](stm::Tx& tx) { q_done.enqueue(tx, item * 2); });
        if (worked.fetch_add(1) + 1 == kTotal) {
          // Unblock any sibling still parked on the empty input queues.
          q_high.enqueue(-1);
          q_high.enqueue(-1);
          q_low.enqueue(-1);
        }
      }
    });
  }
  // The shipper: irrevocable drain of finished items.
  sched.spawn([&](int) {
    while (shipped.load() < kTotal) {
      const long got = stm::atomically([&](stm::Tx& tx) {
        return q_done.dequeue_or_retry(tx);
      });
      // Side-effecting commit: guaranteed to run exactly once.
      stm::atomically_irrevocable([&](stm::Tx&) {  // demotx:expert: teaching the expert tier (irrevocable side-effecting commit)
        shipped_sum += got;
        ++shipped;
      });
    }
  });
  sched.run();

  long expect = 0;
  for (long i = 0; i < kHigh; ++i) expect += (1000 + i) * 2;
  for (long i = 0; i < kLow; ++i) expect += (2000 + i) * 2;

  std::cout << "shipped items:        " << shipped << " / " << kTotal << "\n"
            << "manifest checksum:    " << shipped_sum << " (expected "
            << expect << ")"
            << (shipped_sum == expect ? "  [exact]" : "  [BROKEN]") << "\n"
            << "high-priority first:  " << high_first << " of " << kHigh
            << " high items taken via the first orElse branch\n"
            << "virtual cycles:       " << sched.cycles() << "\n";
  return shipped_sum == expect ? 0 : 1;
}
