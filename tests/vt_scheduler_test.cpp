// Virtual-time scheduler: round-robin fairness, weighted accesses, the
// random adversary's determinism, scripted interleavings, cycle limits.
#include "vt/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vt/context.hpp"
#include "vt/sync.hpp"

using namespace demotx;

TEST(Scheduler, RoundRobinInterleavesPerAccess) {
  std::vector<int> trace;
  vt::Scheduler sched;
  for (int t = 0; t < 3; ++t) {
    sched.spawn([&](int id) {
      for (int s = 0; s < 4; ++s) {
        trace.push_back(id);
        vt::access();
      }
    });
  }
  sched.run();
  // Every thread steps once per cycle, in id order.
  const std::vector<int> expect{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(trace, expect);
}

TEST(Scheduler, CyclesCountAccessSteps) {
  vt::Scheduler sched;
  sched.spawn([](int) {
    for (int i = 0; i < 10; ++i) vt::access();
  });
  sched.run();
  EXPECT_EQ(sched.cycles(), 10u);
}

TEST(Scheduler, WeightedAccessChargesMoreTime) {
  // A thread doing one weight-5 access should let a peer run 5 steps.
  std::vector<int> trace;
  vt::Scheduler sched;
  sched.spawn([&](int id) {
    trace.push_back(id);
    vt::access(5);
    trace.push_back(id);
  });
  sched.spawn([&](int id) {
    for (int i = 0; i < 5; ++i) {
      trace.push_back(id);
      vt::access();
    }
  });
  sched.run();
  // Thread 0 runs at cycle 0, then rejoins at cycle 5 — after all of
  // thread 1's five unit steps.
  const std::vector<int> expect{0, 1, 1, 1, 1, 1, 0};
  EXPECT_EQ(trace, expect);
}

TEST(Scheduler, ThreadIdAndInSimAreVisibleInside) {
  std::vector<int> seen;
  bool in_sim = false;
  vt::Scheduler sched;
  sched.spawn([&](int id) {
    seen.push_back(vt::thread_id());
    in_sim = vt::in_sim();
    EXPECT_EQ(vt::thread_id(), id);
  });
  sched.run();
  EXPECT_EQ(seen, std::vector<int>{0});
  EXPECT_TRUE(in_sim);
  EXPECT_FALSE(vt::in_sim());
}

TEST(Scheduler, RandomPolicyIsDeterministicPerSeed) {
  auto run_trace = [](std::uint64_t seed) {
    std::vector<int> trace;
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;
    opts.seed = seed;
    vt::Scheduler sched(opts);
    for (int t = 0; t < 4; ++t) {
      sched.spawn([&](int id) {
        for (int s = 0; s < 20; ++s) {
          trace.push_back(id);
          vt::access();
        }
      });
    }
    sched.run();
    return trace;
  };
  EXPECT_EQ(run_trace(7), run_trace(7));
  EXPECT_NE(run_trace(7), run_trace(8));
}

TEST(Scheduler, ScriptedPolicyFollowsScript) {
  std::vector<int> trace;
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kScripted;
  opts.script = {1, 1, 0, 1, 0};
  vt::Scheduler sched(opts);
  for (int t = 0; t < 2; ++t) {
    sched.spawn([&](int id) {
      for (int s = 0; s < 3; ++s) {
        trace.push_back(id);
        vt::access();
      }
    });
  }
  sched.run();
  // Script drives the first five steps; round-robin finishes the sixth.
  EXPECT_EQ(trace.size(), 6u);
  EXPECT_EQ((std::vector<int>{trace.begin(), trace.begin() + 5}),
            (std::vector<int>{1, 1, 0, 1, 0}));
}

TEST(Scheduler, MaxCyclesStopsRunawayFibers) {
  vt::Scheduler::Options opts;
  opts.max_cycles = 1000;
  vt::Scheduler sched(opts);
  bool unwound = false;
  sched.spawn([&](int) {
    struct Mark {
      bool* b;
      ~Mark() { *b = true; }
    } mark{&unwound};
    for (;;) vt::access();  // never terminates on its own
  });
  sched.run();
  EXPECT_TRUE(sched.hit_cycle_limit());
  EXPECT_TRUE(unwound);  // RAII ran: fiber was unwound, not abandoned
}

TEST(Scheduler, RequestStopFromInsideAFiber) {
  vt::Scheduler sched;
  int completed = 0;
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](int id) {
      if (id == 0) {
        vt::access();
        sched.request_stop();
        return;
      }
      for (;;) vt::access();
    });
  }
  sched.run();
  completed = 1;  // run() returned: all fibers finished or unwound
  EXPECT_EQ(completed, 1);
  EXPECT_FALSE(sched.hit_cycle_limit());
}

TEST(Scheduler, SpinLockMutualExclusionUnderSim) {
  vt::SpinLock lock;
  long counter = 0;
  vt::Scheduler sched;
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&](int) {
      for (int i = 0; i < 50; ++i) {
        lock.lock();
        const long before = counter;
        vt::access();  // give the scheduler a chance to interleave
        counter = before + 1;
        vt::access();
        lock.unlock();
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter, 8 * 50);
}

TEST(Scheduler, RunSimHelperReturnsCycles) {
  const std::uint64_t cycles = vt::run_sim(2, [](int) {
    for (int i = 0; i < 5; ++i) vt::access();
  });
  EXPECT_EQ(cycles, 5u);  // both threads advance in parallel
}

TEST(Scheduler, RealThreadsRegisterContexts) {
  std::vector<int> ids(4, -1);
  vt::run_threads(4, [&](int id) { ids[static_cast<std::size_t>(id)] = vt::thread_id(); });
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, SleepUntilIsAnExactTimerUnderRoundRobin) {
  // A sleeping fiber resumes at exactly its wake time, and an otherwise
  // idle machine jumps the clock there for free (no spin cycles burned).
  std::uint64_t woke_at = 0;
  vt::Scheduler sched;
  sched.spawn([&](int) {
    vt::sleep_until(10'000);
    woke_at = vt::sim_now();
  });
  sched.run();
  EXPECT_EQ(woke_at, 10'000u);
  EXPECT_EQ(sched.cycles(), 10'000u);
}

TEST(Scheduler, SleepUntilLetsRunnableFibersDrainFirst) {
  // A busy fiber's accesses all land before the sleeper's wake time, so
  // the heap runs the busy fiber to completion before time jumps.
  std::uint64_t busy_done_at = 0;
  std::uint64_t woke_at = 0;
  vt::Scheduler sched;
  sched.spawn([&](int) {
    vt::sleep_until(5'000);
    woke_at = vt::sim_now();
  });
  sched.spawn([&](int) {
    for (int i = 0; i < 100; ++i) vt::access();
    busy_done_at = vt::sim_now();
  });
  sched.run();
  EXPECT_LE(busy_done_at, 5'000u);
  EXPECT_EQ(woke_at, 5'000u);
}

TEST(Scheduler, SleepUntilDegeneratesToAYieldUnderExploration) {
  // Exploration policies own the interleaving: a sleep is one
  // schedulable step, not a time warp — callers loop on sim_now().
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRandom;
  opts.seed = 5;
  std::uint64_t after = 0;
  vt::Scheduler sched(opts);
  sched.spawn([&](int) {
    vt::sleep_until(1'000'000'000);
    after = vt::sim_now();
  });
  sched.spawn([](int) {
    for (int i = 0; i < 10; ++i) vt::access();
  });
  sched.run();
  EXPECT_LT(after, 1'000u);  // returned after one yield, no warp
}
