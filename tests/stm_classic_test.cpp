// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Classic (opaque) semantics: conflict detection, commit validation,
// timebase extension, and opacity/atomicity properties under adversarial
// simulated interleavings.
//
// Protocol-level tests drive two transaction descriptors directly from one
// thread, which gives exact control over the interleaving of their reads,
// writes and commits.
#include <gtest/gtest.h>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::AbortReason;
using stm::AbortTx;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

// Runs `body(tx)` expecting an abort; rolls the descriptor back and
// returns the reason.
template <typename F>
AbortReason expect_abort(stm::Tx& tx, F&& body) {
  try {
    body(tx);
  } catch (const AbortTx& a) {
    tx.rollback(a.reason);
    return a.reason;
  }
  ADD_FAILURE() << "expected the transaction to abort";
  tx.rollback(AbortReason::kExplicit);
  return AbortReason::kExplicit;
}

}  // namespace

TEST(StmClassic, ReadValidationAbortsOnNewerVersion) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.enable_extension = false;
  // Extension-off abort semantics is a GV1/GV4 contract: under the
  // sharded clock too-new reads are the expected path and extension is
  // part of the scheme (not the LSA ablation), so the read below would
  // legitimately extend and succeed.  Pin the scheme instead of losing
  // the assertion on the sharded ctest row.
  stm::Runtime::instance().config.clock_scheme = stm::ClockScheme::kGv1;

  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);

  // A competing transaction commits a write to y.
  stm::Tx& t2 = rt.tx_for_slot(41);
  t2.begin(Semantics::kClassic, 0);
  y.set(t2, 20);
  t2.commit();

  // t1 now reads y: its version is newer than t1's snapshot → abort.
  const AbortReason r = expect_abort(t1, [&](stm::Tx& tx) { (void)y.get(tx); });
  EXPECT_EQ(r, AbortReason::kReadValidation);
}

TEST(StmClassic, TimebaseExtensionSlidesTheSnapshot) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.enable_extension = true;

  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);

  t2.begin(Semantics::kClassic, 0);
  y.set(t2, 20);
  t2.commit();

  // x is unchanged, so revalidation succeeds and rv slides forward: the
  // read returns the *new* value of y and the transaction commits.
  EXPECT_EQ(y.get(t1), 20);
  t1.commit();
  EXPECT_GE(rt.aggregate_stats().extensions, 1u);
}

TEST(StmClassic, ExtensionFailsWhenOwnReadChanged) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.enable_extension = true;

  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);

  t2.begin(Semantics::kClassic, 0);
  x.set(t2, 10);  // invalidates t1's read
  y.set(t2, 20);
  t2.commit();

  const AbortReason r = expect_abort(t1, [&](stm::Tx& tx) { (void)y.get(tx); });
  EXPECT_EQ(r, AbortReason::kReadValidation);
}

TEST(StmClassic, CommitValidationCatchesWriteAfterRead) {
  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);
  y.set(t1, 99);  // t1 is an updater: must validate reads at commit

  t2.begin(Semantics::kClassic, 0);
  x.set(t2, 10);
  t2.commit();

  const AbortReason r = expect_abort(t1, [&](stm::Tx& tx) { tx.commit(); });
  EXPECT_EQ(r, AbortReason::kCommitValidation);
  EXPECT_EQ(y.unsafe_load(), 2) << "aborted writes must not reach memory";
}

TEST(StmClassic, DisjointWritersBothCommit) {
  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  x.set(t1, 10);
  t2.begin(Semantics::kClassic, 0);
  y.set(t2, 20);
  t2.commit();
  t1.commit();
  EXPECT_EQ(x.unsafe_load(), 10);
  EXPECT_EQ(y.unsafe_load(), 20);
}

TEST(StmClassic, LostUpdatePrevented) {
  // Classic read-modify-write on one counter from many simulated threads;
  // every increment must survive.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto x = std::make_unique<stm::TVar<long>>(0);
    test::run_random_sim(6, seed, [&](int) {
      for (int i = 0; i < 50; ++i)
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
    });
    EXPECT_EQ(x->unsafe_load(), 6 * 50) << "seed " << seed;
  }
}

TEST(StmClassic, OpacityInvariantUnderTransfers) {
  // Bank property: transfers between accounts keep the total constant;
  // classic readers must always observe the invariant — including inside
  // the transaction body (opacity: no zombie observations).
  constexpr int kAccounts = 8;
  constexpr long kTotal = 8000;
  for (std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    std::vector<std::unique_ptr<stm::TVar<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
      acct.push_back(std::make_unique<stm::TVar<long>>(kTotal / kAccounts));
    std::atomic<bool> violated{false};

    test::run_random_sim(6, seed, [&](int id) {
      std::uint64_t rng = seed * 977 + static_cast<std::uint64_t>(id) + 1;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < 60; ++i) {
        if (id % 2 == 0) {  // transfer
          const int a = static_cast<int>(next() % kAccounts);
          const int b = static_cast<int>(next() % kAccounts);
          const long amt = static_cast<long>(next() % 20);
          stm::atomically([&](stm::Tx& tx) {
            acct[a]->set(tx, acct[a]->get(tx) - amt);
            acct[b]->set(tx, acct[b]->get(tx) + amt);
          });
        } else {  // audit
          stm::atomically([&](stm::Tx& tx) {
            long sum = 0;
            for (auto& v : acct) sum += v->get(tx);
            if (sum != kTotal) violated.store(true);
          });
        }
      }
    });
    EXPECT_FALSE(violated.load()) << "seed " << seed;
    long sum = 0;
    for (auto& v : acct) sum += v->unsafe_load();
    EXPECT_EQ(sum, kTotal);
  }
}

TEST(StmClassic, ReadOnlyTransactionsNeverValidateAtCommit) {
  // A read-only classic transaction's reads are validated at read time;
  // its commit must succeed even if the world changed afterwards.
  stm::TVar<long> x{1};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);

  t2.begin(Semantics::kClassic, 0);
  x.set(t2, 2);
  t2.commit();

  t1.commit();  // still fine: serialization point at its reads
}

TEST(StmClassic, EarlyReleaseSkipsValidation) {
  // After release(x), a conflicting write to x no longer aborts us.
  stm::TVar<long> x{1};
  stm::TVar<long> y{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& t1 = rt.tx_for_slot(40);
  stm::Tx& t2 = rt.tx_for_slot(41);

  t1.begin(Semantics::kClassic, 0);
  EXPECT_EQ(x.get(t1), 1);
  x.release(t1);  // expert move (paper Sec. 4.1)
  y.set(t1, 99);

  t2.begin(Semantics::kClassic, 0);
  x.set(t2, 10);
  t2.commit();

  t1.commit();  // x's change is ignored by design
  EXPECT_EQ(y.unsafe_load(), 99);
  EXPECT_GE(rt.aggregate_stats().early_releases, 1u);
}
