// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Differential and soundness testing on random histories:
//
//  1. model vs implementation — drive the REAL transaction descriptors
//     through a random interleaving, event by event, and require the
//     outcome (accept / which transaction aborts / why) to match the
//     protocol_accepts() replay model exactly;
//  2. soundness — whenever the classic protocol accepts a history, that
//     history must be view-strictly-serializable (opacity for committed
//     histories); with timebase extension too;
//  3. checker lattice — conflict_opaque ⇒ view_strict ⇒ conflict_serializable.
#include <gtest/gtest.h>

#include <optional>

#include "sched/checkers.hpp"
#include "sched/history.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using namespace demotx::sched;
using stm::Semantics;

namespace {

struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// Random history: 2-4 transactions, 2-4 locations, 1-5 events each,
// randomly interleaved.
History random_history(Rng& rng, int* out_ntx, int* out_nlocs) {
  const int ntx = 2 + static_cast<int>(rng.below(3));
  const int nlocs = 2 + static_cast<int>(rng.below(3));
  std::vector<Program> programs;
  for (int t = 0; t < ntx; ++t) {
    Program p;
    const int len = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < len; ++i) {
      const int loc = static_cast<int>(rng.below(nlocs));
      p.push_back(rng.below(100) < 65 ? rd(t, loc) : wr(t, loc));
    }
    programs.push_back(std::move(p));
  }
  // Random interleave.
  History h;
  std::vector<std::size_t> at(programs.size(), 0);
  for (;;) {
    std::vector<int> live;
    for (int t = 0; t < ntx; ++t)
      if (at[static_cast<std::size_t>(t)] <
          programs[static_cast<std::size_t>(t)].size())
        live.push_back(t);
    if (live.empty()) break;
    const int t = live[rng.below(live.size())];
    h.push_back(programs[static_cast<std::size_t>(t)]
                        [at[static_cast<std::size_t>(t)]++]);
  }
  *out_ntx = ntx;
  *out_nlocs = nlocs;
  return h;
}

// Assigns semantics: variant 0 = all classic; 1 = tx0 elastic; 2 = every
// read-only tx runs as snapshot (writers classic).
std::vector<Semantics> assign_semantics(const History& h, int ntx,
                                        int variant) {
  std::vector<Semantics> sems(static_cast<std::size_t>(ntx),
                              Semantics::kClassic);
  if (variant == 1) sems[0] = Semantics::kElastic;
  if (variant == 2) {
    std::vector<bool> writes(static_cast<std::size_t>(ntx), false);
    for (const Event& e : h)
      if (e.op == Op::kWrite) writes[static_cast<std::size_t>(e.tx)] = true;
    for (int t = 0; t < ntx; ++t)
      if (!writes[static_cast<std::size_t>(t)])
        sems[static_cast<std::size_t>(t)] = Semantics::kSnapshot;
  }
  return sems;
}

struct LiveOutcome {
  bool accepted = true;
  int aborted_tx = -1;
  stm::AbortReason reason = stm::AbortReason::kExplicit;
};

// Drives the real STM descriptors through the interleaving; stops at the
// first abort (mirroring the replay model).
LiveOutcome drive_live(const History& h, int ntx, int nlocs,
                       const std::vector<Semantics>& sems) {
  auto& rt = stm::Runtime::instance();
  std::vector<std::unique_ptr<stm::Cell>> cells;
  for (int l = 0; l < nlocs; ++l) cells.push_back(std::make_unique<stm::Cell>());

  std::vector<stm::Tx*> txs;
  std::vector<bool> started(static_cast<std::size_t>(ntx), false);
  for (int t = 0; t < ntx; ++t) txs.push_back(&rt.tx_for_slot(100 + t));

  std::vector<std::size_t> last(static_cast<std::size_t>(ntx), 0);
  for (std::size_t i = 0; i < h.size(); ++i)
    last[static_cast<std::size_t>(h[i].tx)] = i;

  LiveOutcome out;
  auto cleanup = [&](int except) {
    for (int t = 0; t < ntx; ++t)
      if (t != except && started[static_cast<std::size_t>(t)] &&
          txs[static_cast<std::size_t>(t)]->active())
        txs[static_cast<std::size_t>(t)]->rollback(
            stm::AbortReason::kExplicit);
  };

  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    const auto t = static_cast<std::size_t>(e.tx);
    stm::Tx& tx = *txs[t];
    try {
      if (!started[t]) {
        tx.begin(sems[t], 0);
        tx.depth_ = 1;  // mark active for cleanup bookkeeping
        started[t] = true;
      }
      if (e.op == Op::kRead) {
        (void)tx.read_word(*cells[static_cast<std::size_t>(e.loc)]);
      } else {
        tx.write_word(*cells[static_cast<std::size_t>(e.loc)], 1000 + i);
      }
      if (i == last[t]) {
        tx.commit();
        tx.depth_ = 0;
      }
    } catch (const stm::AbortTx& a) {
      out.accepted = false;
      out.aborted_tx = e.tx;
      out.reason = a.reason;
      tx.depth_ = 0;
      tx.rollback(a.reason);
      cleanup(e.tx);
      return out;
    }
  }
  cleanup(-1);
  return out;
}

}  // namespace

class ProtocolDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolDiff, LiveStmMatchesTheReplayModel) {
  Rng rng{GetParam() * 0x9e3779b97f4a7c15ULL + 1};
  for (int iter = 0; iter < 120; ++iter) {
    int ntx = 0, nlocs = 0;
    const History h = random_history(rng, &ntx, &nlocs);
    for (int variant = 0; variant < 3; ++variant) {
      const auto sems = assign_semantics(h, ntx, variant);
      // Snapshot transactions must be read-only; variant 2 guarantees it.
      ProtocolOptions opts;
      opts.semantics = sems;
      const ProtocolResult model = protocol_accepts(h, opts);
      const LiveOutcome live = drive_live(h, ntx, nlocs, sems);
      ASSERT_EQ(live.accepted, model.accepted)
          << "variant " << variant << " history: " << to_string(h);
      if (!model.accepted) {
        ASSERT_EQ(live.aborted_tx, model.aborted_tx)
            << "variant " << variant << " history: " << to_string(h);
        ASSERT_EQ(live.reason, model.reason)
            << "variant " << variant << " history: " << to_string(h);
      }
    }
  }
}

TEST_P(ProtocolDiff, ClassicAcceptanceImpliesStrictSerializability) {
  Rng rng{GetParam() * 0xbf58476d1ce4e5b9ULL + 7};
  int accepted = 0;
  for (int iter = 0; iter < 150; ++iter) {
    int ntx = 0, nlocs = 0;
    const History h = random_history(rng, &ntx, &nlocs);
    ProtocolOptions plain;
    ProtocolOptions extended;
    extended.enable_extension = true;
    // demotx buffers writes until commit, so soundness is judged under
    // commit-time write visibility.
    if (protocol_accepts(h, plain).accepted) {
      ++accepted;
      EXPECT_TRUE(
          view_strictly_serializable(h, WriteVisibility::kAtCommit))
          << to_string(h);
    }
    if (protocol_accepts(h, extended).accepted) {
      EXPECT_TRUE(
          view_strictly_serializable(h, WriteVisibility::kAtCommit))
          << to_string(h);
    }
  }
  EXPECT_GT(accepted, 0) << "generator never produced an acceptable history";
}

TEST_P(ProtocolDiff, CheckerLatticeHolds) {
  Rng rng{GetParam() * 0x2545f4914f6cdd1dULL + 3};
  for (int iter = 0; iter < 150; ++iter) {
    int ntx = 0, nlocs = 0;
    const History h = random_history(rng, &ntx, &nlocs);
    if (conflict_opaque(h)) {
      EXPECT_TRUE(view_strictly_serializable(h)) << to_string(h);
    }
    if (view_strictly_serializable(h)) {
      // View-strict implies plain serializability in spirit; our
      // conflict-based checker can be stricter than view equivalence, so
      // only the conflict_opaque ⇒ view_strict edge is a theorem here.
      SUCCEED();
    }
    if (!conflict_serializable(h)) {
      EXPECT_FALSE(conflict_opaque(h)) << to_string(h);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolDiff,
                         ::testing::Values(1, 2, 3, 4, 5, 6));
