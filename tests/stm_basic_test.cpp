// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Basic STM behaviour: typed TVars, read-own-write, retry loop,
// transactional allocation/retirement, usage errors, statistics.
#include <gtest/gtest.h>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

TEST(StmBasic, TVarTypes) {
  stm::TVar<long> l{-5};
  stm::TVar<int> i{7};
  stm::TVar<bool> b{true};
  stm::TVar<double> d{2.5};
  stm::TVar<const char*> p{"hello"};
  struct Pair {
    short a;
    short b;
  };
  stm::TVar<Pair> pr{Pair{1, 2}};

  stm::atomically([&](stm::Tx& tx) {
    EXPECT_EQ(l.get(tx), -5);
    EXPECT_EQ(i.get(tx), 7);
    EXPECT_TRUE(b.get(tx));
    EXPECT_DOUBLE_EQ(d.get(tx), 2.5);
    EXPECT_STREQ(p.get(tx), "hello");
    EXPECT_EQ(pr.get(tx).b, 2);
    l.set(tx, 100);
    d.set(tx, -0.125);
    pr.set(tx, Pair{3, 4});
  });
  EXPECT_EQ(l.unsafe_load(), 100);
  EXPECT_DOUBLE_EQ(d.unsafe_load(), -0.125);
  EXPECT_EQ(pr.unsafe_load().a, 3);
}

TEST(StmBasic, ReadOwnWrite) {
  stm::TVar<long> x{1};
  const long seen = stm::atomically([&](stm::Tx& tx) {
    x.set(tx, 42);
    return x.get(tx);  // must observe the buffered write
  });
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(x.unsafe_load(), 42);
}

TEST(StmBasic, WritesInvisibleUntilCommit) {
  stm::TVar<long> x{1};
  stm::atomically([&](stm::Tx& tx) {
    x.set(tx, 2);
    // Direct (unsynchronized) inspection still sees the old value: writes
    // are buffered until commit (lazy versioning).
    EXPECT_EQ(x.unsafe_load(), 1);  // demotx:expert: asserts write-buffering — the unsynchronized view must still see the pre-tx value
  });
  EXPECT_EQ(x.unsafe_load(), 2);
}

TEST(StmBasic, ReturnValuesFlowThrough) {
  stm::TVar<long> x{10};
  const long doubled =
      stm::atomically([&](stm::Tx& tx) { return x.get(tx) * 2; });
  EXPECT_EQ(doubled, 20);
}

TEST(StmBasic, ExplicitAbortRetries) {
  stm::TVar<long> x{0};
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.set(tx, attempts);
    if (attempts < 3) tx.abort_self();  // first two attempts abort
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(x.unsafe_load(), 3);  // only the final attempt committed
}

TEST(StmBasic, UserExceptionAbortsAndPropagates) {
  stm::TVar<long> x{5};
  EXPECT_THROW(stm::atomically([&](stm::Tx& tx) {
                 x.set(tx, 99);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(x.unsafe_load(), 5);  // the write rolled back
}

TEST(StmBasic, SnapshotWriteIsAUsageError) {
  stm::TVar<long> x{1};
  // demotx:advise: deliberate write under snapshot — the probe pins the runtime's write-abort contract
  EXPECT_THROW(stm::atomically(Semantics::kSnapshot,
                               // demotx:expert-next: deliberately writes to pin the snapshot tier's write-abort contract
                               [&](stm::Tx& tx) { x.set(tx, 2); }),
               stm::TxUsageError);
  EXPECT_EQ(x.unsafe_load(), 1);
}

namespace {
struct CountedNode {
  static inline int live = 0;
  CountedNode() { ++live; }
  ~CountedNode() { --live; }
};
}  // namespace

TEST(StmBasic, AbortedAllocationsAreDeleted) {
  const int live0 = CountedNode::live;
  int attempts = 0;
  CountedNode* kept = nullptr;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    kept = tx.alloc<CountedNode>();
    if (attempts == 1) tx.abort_self();
  });
  // The committed attempt hands its node to the caller, the aborted
  // attempt's node was deleted.
  EXPECT_EQ(CountedNode::live, live0 + 1);
  EXPECT_EQ(attempts, 2);
  delete kept;
}

TEST(StmBasic, RetiredObjectsFreedAfterCommitAndDrain) {
  const int live0 = CountedNode::live;
  auto* n = new CountedNode();
  stm::atomically([&](stm::Tx& tx) { tx.retire(n); });
  mem::EpochManager::instance().drain();
  EXPECT_EQ(CountedNode::live, live0);
}

TEST(StmBasic, RetireIsUndoneOnAbort) {
  const int live0 = CountedNode::live;
  auto* n = new CountedNode();
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    if (attempts == 1) {
      tx.retire(n);
      tx.abort_self();  // retire must not take effect
    }
  });
  mem::EpochManager::instance().drain();
  EXPECT_EQ(CountedNode::live, live0 + 1);  // n still alive
  delete n;
}

TEST(StmBasic, StatsCountCommitsAndSemantics) {
  stm::Runtime::instance().reset_stats();
  stm::TVar<long> x{0};
  stm::atomically([&](stm::Tx& tx) { x.set(tx, 1); });
  stm::atomically(Semantics::kElastic, [&](stm::Tx& tx) { (void)x.get(tx); });
  stm::atomically(Semantics::kSnapshot, [&](stm::Tx& tx) { (void)x.get(tx); });
  const stm::TxStats s = stm::Runtime::instance().aggregate_stats();
  EXPECT_EQ(s.commits, 3u);
  EXPECT_EQ(s.commits_by_sem[static_cast<int>(Semantics::kClassic)], 1u);
  EXPECT_EQ(s.commits_by_sem[static_cast<int>(Semantics::kElastic)], 1u);
  EXPECT_EQ(s.commits_by_sem[static_cast<int>(Semantics::kSnapshot)], 1u);
  EXPECT_GE(s.reads, 2u);
  EXPECT_GE(s.writes, 1u);
}

TEST(StmBasic, NestedTransactionIsFlat) {
  stm::TVar<long> x{0};
  stm::atomically([&](stm::Tx& outer) {
    x.set(outer, 1);
    stm::atomically([&](stm::Tx& inner) {
      // Same descriptor: flat nesting.
      EXPECT_EQ(&inner, &outer);  // demotx:expert: asserts flat nesting by descriptor identity; the address does not escape the tx
      EXPECT_EQ(x.get(inner), 1);  // sees the outer buffered write
      x.set(inner, 2);
    });
    EXPECT_EQ(x.get(outer), 2);
  });
  EXPECT_EQ(x.unsafe_load(), 2);
}

TEST(StmBasic, VersionClockAdvancesOnUpdateCommitsOnly) {
  auto& rt = stm::Runtime::instance();
  // The +1-per-update-commit contract is specific to the flat GV1 clock
  // (GV4 adopters share timestamps; sharded grants move per-shard words,
  // not the peeked epoch floor) — pin the scheme so the alt-scheme ctest
  // rows still exercise the rest of this suite.
  struct ConfigGuard {
    stm::Config saved = stm::Runtime::instance().config;
    ~ConfigGuard() { stm::Runtime::instance().config = saved; }
  } guard;
  rt.config.clock_scheme = stm::ClockScheme::kGv1;
  stm::TVar<long> x{3};
  const auto c0 = rt.clock_peek();
  stm::atomically([&](stm::Tx& tx) { (void)x.get(tx); });  // read-only
  EXPECT_EQ(rt.clock_peek(), c0);
  stm::atomically([&](stm::Tx& tx) { x.set(tx, 4); });
  EXPECT_EQ(rt.clock_peek(), c0 + 1);
}
