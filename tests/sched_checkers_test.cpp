// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Schedule theory: the Fig. 4 counts (20 schedules; 3 precluded by
// opacity — see the note on the paper's "four"), the Sec. 4.2 history H
// verdicts, and cross-validation of the semantic checkers against the
// operational protocol replay.
#include <gtest/gtest.h>

#include "sched/checkers.hpp"
#include "sched/enumerate.hpp"
#include "sched/history.hpp"
#include "stm/semantics.hpp"

using namespace demotx::sched;
using demotx::stm::Semantics;

namespace {

// Pt = transaction{r(x) r(y) r(z)}, P1 = transaction{w(x)},
// P2 = transaction{w(z)}; locations x=0, y=1, z=2; Pt=0, P1=1, P2=2.
std::vector<Program> fig4_programs() {
  return {
      {rd(0, 0), rd(0, 1), rd(0, 2)},
      {wr(1, 0)},
      {wr(2, 2)},
  };
}

// H = r(h)i r(n)i r(h)j r(n)j w(h)j r(t)i w(n)i with h=0, n=1, t=2;
// i=0, j=1.
History paper_history_h() {
  return {rd(0, 0), rd(0, 1), rd(1, 0), rd(1, 1),
          wr(1, 0), rd(0, 2), wr(0, 1)};
}

}  // namespace

TEST(Enumerate, Fig4HasTwentySchedules) {
  const auto programs = fig4_programs();
  EXPECT_EQ(interleaving_count(programs), 20u);
  EXPECT_EQ(all_interleavings(programs).size(), 20u);
}

TEST(Enumerate, CountMatchesEnumerationOnVariousShapes) {
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 3; ++b) {
      std::vector<Program> ps;
      Program p1, p2;
      for (int i = 0; i < a; ++i) p1.push_back(rd(0, i));
      for (int i = 0; i < b; ++i) p2.push_back(wr(1, i));
      ps = {p1, p2};
      EXPECT_EQ(all_interleavings(ps).size(), interleaving_count(ps))
          << a << "x" << b;
    }
  }
}

// The paper says opacity precludes "four of these schedules" (Fig. 4:
// 20%) and characterizes them as Pt≺P1 ∧ P1≺P2 ∧ P2≺Pt.  Exact
// enumeration shows that characterization matches THREE schedules
// (rx<wx<wz<rz admits only three placements), i.e. 15% — the paper's
// count of four is internally inconsistent with its own condition.  We
// assert the exact value; EXPERIMENTS.md discusses the discrepancy.
TEST(Checkers, Fig4ExactlyThreeSchedulesPrecludedByOpacity) {
  const auto programs = fig4_programs();
  int total = 0, correct = 0, opaque_ok = 0, strict_ok = 0;
  for_each_interleaving(programs, [&](const History& h) {
    ++total;
    if (conflict_serializable(h)) ++correct;
    if (conflict_opaque(h)) ++opaque_ok;
    if (view_strictly_serializable(h)) ++strict_ok;
  });
  EXPECT_EQ(total, 20);
  EXPECT_EQ(correct, 20) << "all Fig. 4 schedules are correct";
  EXPECT_EQ(opaque_ok, 17) << "opacity precludes 3 of 20 (15%)";
  EXPECT_EQ(strict_ok, 17) << "exact strict serializability agrees";
}

TEST(Checkers, Fig4PrecludedSchedulesAreThePaperDescribedOnes) {
  // Precluded ⇔ Pt reads x before w(x)1, P1 entirely before P2, and
  // w(z)2 before Pt reads z.
  const auto programs = fig4_programs();
  for_each_interleaving(programs, [&](const History& h) {
    auto index_of = [&](const Event& e) {
      for (std::size_t i = 0; i < h.size(); ++i)
        if (h[i] == e) return i;
      ADD_FAILURE();
      return std::size_t{0};
    };
    const bool pt_before_p1 = index_of(rd(0, 0)) < index_of(wr(1, 0));
    const bool p1_before_p2 = index_of(wr(1, 0)) < index_of(wr(2, 2));
    const bool p2_before_pt = index_of(wr(2, 2)) < index_of(rd(0, 2));
    const bool described = pt_before_p1 && p1_before_p2 && p2_before_pt;
    EXPECT_EQ(!conflict_opaque(h), described) << to_string(h);
  });
}

// Input acceptance of the operational protocols on the Fig. 4 family.
// The semantic bound (opacity) precludes 4/20; the TL2-style classic
// protocol is strictly more conservative (it rejects whenever w(z)
// intervenes between r(x) and r(z)): it accepts 10/20, or 14/20 with
// timebase extension.  The elastic protocol accepts 15/20 with the
// default 2-entry window and all 20 with a 1-entry window — reads falling
// out of the window are cuts and stop constraining acceptance.
TEST(Checkers, Fig4ProtocolAcceptanceLadder) {
  const auto programs = fig4_programs();
  ProtocolOptions classic;  // all classic, no extension
  ProtocolOptions extended;
  extended.enable_extension = true;
  ProtocolOptions elastic2;
  elastic2.semantics = {Semantics::kElastic, Semantics::kClassic,
                        Semantics::kClassic};
  ProtocolOptions elastic1 = elastic2;
  elastic1.elastic_window = 1;

  int classic_ok = 0, extended_ok = 0, elastic2_ok = 0, elastic1_ok = 0;
  for_each_interleaving(programs, [&](const History& h) {
    if (protocol_accepts(h, classic).accepted) ++classic_ok;
    if (protocol_accepts(h, extended).accepted) ++extended_ok;
    if (protocol_accepts(h, elastic2).accepted) ++elastic2_ok;
    if (protocol_accepts(h, elastic1).accepted) ++elastic1_ok;
  });
  EXPECT_EQ(classic_ok, 10);
  EXPECT_EQ(extended_ok, 14);
  EXPECT_EQ(elastic2_ok, 15);
  EXPECT_EQ(elastic1_ok, 20);
}

TEST(Checkers, HistoryHIsNotSerializableNorOpaque) {
  const History h = paper_history_h();
  EXPECT_FALSE(conflict_serializable(h));
  EXPECT_FALSE(view_strictly_serializable(h));
  EXPECT_FALSE(conflict_opaque(h));
}

TEST(Checkers, HistoryHAcceptedWithElasticI) {
  const History h = paper_history_h();
  ProtocolOptions opts;
  opts.semantics = {Semantics::kElastic, Semantics::kClassic};
  const ProtocolResult r = protocol_accepts(h, opts);
  EXPECT_TRUE(r.accepted);
  EXPECT_GE(r.total_cuts, 1) << "i must be cut into s1, s2";
}

TEST(Checkers, HistoryHRejectedWhenAllClassic) {
  const History h = paper_history_h();
  ProtocolOptions opts;  // all classic
  const ProtocolResult r = protocol_accepts(h, opts);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.aborted_tx, 0);  // transaction i is the victim
}

TEST(Checkers, SerializableButNotOpaqueExample) {
  // Pt reads old x, new z, with P1 finishing before P2 starts: plainly
  // serializable (P2 Pt P1) yet not strictly so.
  const History h = {rd(0, 0), wr(1, 0), wr(2, 2), rd(0, 1), rd(0, 2)};
  EXPECT_TRUE(conflict_serializable(h));
  EXPECT_FALSE(conflict_opaque(h));
  EXPECT_FALSE(view_strictly_serializable(h));
}

TEST(Checkers, SnapshotSemanticsAcceptsOverwrittenReads) {
  // Snapshot transaction 0 reads x after an update committed: accepted
  // via the backup version (one overwrite)...
  const History one_overwrite = {rd(0, 1), wr(1, 0), rd(0, 0)};
  ProtocolOptions opts;
  opts.semantics = {Semantics::kSnapshot, Semantics::kClassic,
                    Semantics::kClassic};
  EXPECT_TRUE(protocol_accepts(one_overwrite, opts).accepted);

  // ...but aborted after two overwrites (only two versions kept).
  const History two_overwrites = {rd(0, 1), wr(1, 0), wr(2, 0), rd(0, 0)};
  const ProtocolResult r = protocol_accepts(two_overwrites, opts);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, demotx::stm::AbortReason::kSnapshotTooOld);
}

TEST(Checkers, ClassicRejectsWhatSnapshotAccepts) {
  const History h = {rd(0, 1), wr(1, 0), rd(0, 0)};
  ProtocolOptions classic;  // all classic, no extension
  EXPECT_FALSE(protocol_accepts(h, classic).accepted);
  ProtocolOptions extended = classic;
  extended.enable_extension = true;
  // Extension saves it here: the earlier read of loc 1 is unchanged.
  EXPECT_TRUE(protocol_accepts(h, extended).accepted);
}

TEST(Checkers, AcceptanceRatioGrowsWithMoreSemantics) {
  // Monotonicity on the Fig. 4 family with k reads: elastic accepts at
  // least as much as classic for every k.
  for (int k = 2; k <= 5; ++k) {
    Program pt;
    for (int i = 0; i < k; ++i) pt.push_back(rd(0, i));
    const std::vector<Program> programs{pt, {wr(1, 0)}, {wr(2, k - 1)}};
    int classic_ok = 0, elastic_ok = 0, elastic1_ok = 0, total = 0;
    ProtocolOptions classic;
    ProtocolOptions elastic;
    elastic.semantics = {Semantics::kElastic, Semantics::kClassic,
                         Semantics::kClassic};
    ProtocolOptions elastic1 = elastic;
    elastic1.elastic_window = 1;
    for_each_interleaving(programs, [&](const History& h) {
      ++total;
      if (protocol_accepts(h, classic).accepted) ++classic_ok;
      if (protocol_accepts(h, elastic).accepted) ++elastic_ok;
      if (protocol_accepts(h, elastic1).accepted) ++elastic1_ok;
    });
    EXPECT_EQ(total, (k + 1) * (k + 2));
    EXPECT_GE(elastic_ok, classic_ok) << "k=" << k;
    EXPECT_EQ(elastic1_ok, total) << "k=" << k;
  }
}
