// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// GV4 ("pass on failure") commit-clock properties.
//
// Under GV4 a committer that loses the clock CAS adopts the winner's
// value instead of retrying, so transactions with DISJOINT write sets
// may publish the same wv.  What must still hold — and what these tests
// check across simulated interleavings:
//
//   * commit timestamps are monotonic: each thread's successive update
//     commits carry strictly increasing wv, and the global clock never
//     runs backwards,
//   * two transactions never publish the same wv for OVERLAPPING write
//     sets (they serialize on the write locks, and the later one's clock
//     access happens after the earlier one's bump),
//   * adopted timestamps actually occur under contention and are counted,
//   * mixed-semantics invariants (snapshot consistency over concurrent
//     transfers) survive shared timestamps.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::ClockScheme;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

std::uint64_t my_last_wv() {
  return stm::Runtime::instance().tx_for_current_thread().last_commit_version();
}

}  // namespace

TEST(StmGv4, OverlappingWritersNeverShareAWv) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kGv4;

  constexpr int kThreads = 8;
  constexpr int kTxs = 40;
  auto x = std::make_unique<stm::TVar<long>>(0);
  std::vector<std::vector<std::uint64_t>> wvs(kThreads);

  test::run_rr_sim(kThreads, [&](int id) {
    for (int i = 0; i < kTxs; ++i) {
      stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      wvs[static_cast<std::size_t>(id)].push_back(my_last_wv());
    }
  });

  // Every write set here is {x}: all overlapping, so every commit must
  // have a distinct timestamp even under GV4.
  std::set<std::uint64_t> distinct;
  for (const auto& per_thread : wvs) {
    for (std::uint64_t wv : per_thread) distinct.insert(wv);
  }
  EXPECT_EQ(distinct.size(),
            static_cast<std::size_t>(kThreads) * kTxs)
      << "two overlapping commits shared a wv";
  EXPECT_EQ(x->unsafe_load(), static_cast<long>(kThreads) * kTxs);
  test::drain_memory();
}

TEST(StmGv4, DisjointWritersAdoptTimestampsAndStayMonotonic) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kGv4;
  rt.reset_stats();

  constexpr int kThreads = 8;
  constexpr int kTxs = 200;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kThreads; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(0));
  std::vector<std::vector<std::uint64_t>> wvs(kThreads);

  const std::uint64_t clock_before = rt.clock_peek();
  test::run_rr_sim(kThreads, [&](int id) {
    auto& mine = *v[static_cast<std::size_t>(id)];
    for (int i = 0; i < kTxs; ++i) {
      stm::atomically([&](stm::Tx& tx) { mine.set(tx, mine.get(tx) + 1); });
      wvs[static_cast<std::size_t>(id)].push_back(my_last_wv());
    }
  });
  const std::uint64_t clock_after = rt.clock_peek();

  // Per-thread commit timestamps are strictly increasing even when some
  // were adopted from a concurrent winner.
  for (const auto& per_thread : wvs) {
    for (std::size_t i = 1; i < per_thread.size(); ++i) {
      ASSERT_LT(per_thread[i - 1], per_thread[i])
          << "a thread's commit timestamps went non-monotonic";
    }
  }

  // Round-robin stepping interleaves the commit windows, so clock CASes
  // must collide: adoptions happen, are counted, and each one is one
  // clock bump shared between commits.
  const stm::TxStats agg = rt.aggregate_stats();
  EXPECT_GT(agg.clock_adopts, 0u)
      << "no adoption under a contended disjoint-write run";
  EXPECT_EQ(clock_after - clock_before, agg.commits - agg.clock_adopts)
      << "every commit should either bump the clock once or adopt";
  test::drain_memory();
}

TEST(StmGv4, Gv1NeverAdopts) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kGv1;
  rt.reset_stats();

  constexpr int kThreads = 8;
  constexpr int kTxs = 50;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kThreads; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(0));

  const std::uint64_t clock_before = rt.clock_peek();
  test::run_rr_sim(kThreads, [&](int id) {
    auto& mine = *v[static_cast<std::size_t>(id)];
    for (int i = 0; i < kTxs; ++i)
      stm::atomically([&](stm::Tx& tx) { mine.set(tx, mine.get(tx) + 1); });
  });
  const stm::TxStats agg = rt.aggregate_stats();
  EXPECT_EQ(agg.clock_adopts, 0u);
  EXPECT_EQ(rt.clock_peek() - clock_before, agg.commits);
  test::drain_memory();
}

TEST(StmGv4, SnapshotInvariantsSurviveSharedTimestamps) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.clock_scheme = ClockScheme::kGv4;

  // Transfers keep the total at zero; snapshot sums must always see a
  // consistent cut even when concurrent disjoint commits share a wv.
  constexpr int kAccounts = 8;
  std::vector<std::unique_ptr<stm::TVar<long>>> acct;
  for (int i = 0; i < kAccounts; ++i)
    acct.push_back(std::make_unique<stm::TVar<long>>(0));

  test::run_random_sim(8, /*seed=*/7, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 60; ++i) {
        const long sum = stm::atomically(Semantics::kSnapshot,
                                         [&](stm::Tx& tx) {
                                           long s = 0;
                                           for (auto& a : acct)
                                             s += a->get(tx);
                                           return s;
                                         });
        EXPECT_EQ(sum, 0) << "snapshot observed an inconsistent cut";
      }
    } else {
      for (int i = 0; i < 60; ++i) {
        const int from = (id + i) % kAccounts;
        const int to = (id + i + 1) % kAccounts;
        stm::atomically([&](stm::Tx& tx) {
          acct[from]->set(tx, acct[from]->get(tx) - 1);
          acct[to]->set(tx, acct[to]->get(tx) + 1);
        });
      }
    }
  });

  long total = 0;
  for (auto& a : acct) total += a->unsafe_load();
  EXPECT_EQ(total, 0);
  test::drain_memory();
}
