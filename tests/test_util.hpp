// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Shared helpers for the demotx test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ds/tx_hashset.hpp"
#include "ds/tx_list.hpp"
#include "ds/tx_bst.hpp"
#include "ds/tx_skiplist.hpp"
#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "sync/coarse_list.hpp"
#include "sync/cow_array_set.hpp"
#include "sync/hoh_list.hpp"
#include "sync/lazy_list.hpp"
#include "sync/lockfree_list.hpp"
#include "sync/seq_list.hpp"
#include "vt/scheduler.hpp"

namespace demotx::test {

// Runs fn on `threads` logical threads under the seeded random-interleaving
// scheduler — a deterministic concurrency adversary.
inline std::uint64_t run_random_sim(int threads, std::uint64_t seed,
                                    std::function<void(int)> fn,
                                    std::uint64_t max_cycles = 80'000'000) {
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRandom;
  opts.seed = seed;
  opts.max_cycles = max_cycles;
  return vt::run_sim(threads, std::move(fn), opts);
}

// Round-robin (fair) simulation.
inline std::uint64_t run_rr_sim(int threads, std::function<void(int)> fn,
                                std::uint64_t max_cycles = 80'000'000) {
  vt::Scheduler::Options opts;
  opts.policy = vt::Scheduler::Policy::kRoundRobin;
  opts.max_cycles = max_cycles;
  return vt::run_sim(threads, std::move(fn), opts);
}

// Quiesce reclamation between tests so leak checkers stay happy.
inline void drain_memory() { mem::EpochManager::instance().drain(); }

// Factory registry covering every set implementation, for parameterized
// suites that must hold for all of them.
struct SetFactory {
  std::string label;
  std::function<std::unique_ptr<ISet>()> make;
};

inline std::vector<SetFactory> all_set_factories() {
  using stm::Semantics;
  std::vector<SetFactory> f;
  f.push_back({"seq", [] { return std::make_unique<sync::SeqList>(); }});
  f.push_back({"coarse", [] { return std::make_unique<sync::CoarseList>(); }});
  f.push_back({"hoh", [] { return std::make_unique<sync::HohList>(); }});
  f.push_back({"lazy", [] { return std::make_unique<sync::LazyList>(); }});
  f.push_back(
      {"lockfree-ebr", [] { return std::make_unique<sync::LockFreeList>(); }});
  f.push_back({"lockfree-hp",
               [] { return std::make_unique<sync::LockFreeListHp>(); }});
  f.push_back({"cow", [] { return std::make_unique<sync::CowArraySet>(); }});
  f.push_back({"tx-classic", [] {
                 return std::make_unique<ds::TxList>(ds::TxList::Options{
                     Semantics::kClassic, Semantics::kClassic});
               }});
  f.push_back({"tx-elastic", [] {
                 return std::make_unique<ds::TxList>(ds::TxList::Options{
                     Semantics::kElastic, Semantics::kClassic});
               }});
  f.push_back({"tx-mixed", [] {
                 return std::make_unique<ds::TxList>(ds::TxList::Options{
                     Semantics::kElastic, Semantics::kSnapshot});
               }});
  f.push_back({"tx-hashset", [] {
                 return std::make_unique<ds::TxHashSet>();
               }});
  f.push_back({"tx-skiplist", [] {
                 return std::make_unique<ds::TxSkipList>();
               }});
  f.push_back({"tx-bst", [] { return std::make_unique<ds::TxBst>(); }});
  return f;
}

// Concurrent implementations only (sequential list excluded).
inline std::vector<SetFactory> concurrent_set_factories() {
  auto f = all_set_factories();
  f.erase(f.begin());  // "seq"
  return f;
}

}  // namespace demotx::test
