// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// End-to-end integration: the paper's Collection benchmark run across all
// competitors under the simulator with full consistency checking — the
// same pipeline the figure benches use, at a smaller scale — plus shape
// assertions on the benchmark's own mechanics (abort profile of the
// classic configuration, old-version reads of the mixed one).
#include <gtest/gtest.h>

#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "test_util.hpp"

using namespace demotx;
using namespace demotx::harness;

namespace {

WorkloadConfig small_cfg() {
  WorkloadConfig cfg;
  cfg.initial_size = 48;
  cfg.key_range = 96;
  return cfg;
}

}  // namespace

class CollectionIntegration : public ::testing::TestWithParam<test::SetFactory> {
 protected:
  void TearDown() override { test::drain_memory(); }
};

TEST_P(CollectionIntegration, WorkloadLeavesTheSetConsistent) {
  if (GetParam().label == "seq") GTEST_SKIP() << "not thread-safe";
  const WorkloadConfig cfg = small_cfg();
  SimOptions opts;
  opts.duration_cycles = 40'000;

  for (int threads : {2, 4}) {
    auto set = GetParam().make();
    prefill(*set, cfg);
    ASSERT_EQ(set->unsafe_size(), cfg.initial_size);
    const DriverResult r = run_sim_workload(*set, cfg, threads, opts);
    EXPECT_GT(r.total_ops, 0u) << GetParam().label;
    EXPECT_EQ(set->unsafe_size(), cfg.initial_size + r.net_adds)
        << GetParam().label << " @" << threads;
    test::drain_memory();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSets, CollectionIntegration,
                         ::testing::ValuesIn(test::concurrent_set_factories()),
                         [](const auto& info) {
                           std::string n = info.param.label;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(CollectionShapes, ClassicSizeAbortsMixedSizeCommits) {
  // The mechanism behind Figs. 7 and 9: with updaters running, classic
  // whole-list size transactions suffer validation aborts, while snapshot
  // sizes commit using old versions.
  // The paper's effect needs parallelism: at 16 simulated threads the
  // classic configuration wastes a growing share of its work on aborted
  // size/parse transactions while the mix keeps committing.
  WorkloadConfig cfg = small_cfg();
  cfg.initial_size = 128;
  cfg.key_range = 256;
  SimOptions opts;
  opts.duration_cycles = 120'000;
  constexpr int kThreads = 16;

  auto classic = std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kClassic, stm::Semantics::kClassic});
  prefill(*classic, cfg);
  const DriverResult rc = run_sim_workload(*classic, cfg, kThreads, opts);
  test::drain_memory();

  auto mixed = std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kSnapshot});
  prefill(*mixed, cfg);
  const DriverResult rm = run_sim_workload(*mixed, cfg, kThreads, opts);

  EXPECT_GT(rc.stm.aborts, 0u) << "classic config must contend";
  EXPECT_GT(rm.stm.snapshot_old_reads, 0u)
      << "snapshot sizes must exploit old versions";
  EXPECT_LT(rm.stm.abort_ratio(), rc.stm.abort_ratio())
      << "the mixed configuration aborts less (the paper's whole point)";
  EXPECT_GT(rm.throughput, rc.throughput)
      << "mixed beats classic on the collection workload at 16 threads";
  test::drain_memory();
}

TEST(CollectionShapes, MixedScalesWithThreads) {
  // Throughput of the full mix must grow with simulated parallelism
  // (Fig. 9's scaling claim, in miniature).
  const WorkloadConfig cfg = small_cfg();
  SimOptions opts;
  opts.duration_cycles = 60'000;

  double tp1 = 0, tp8 = 0;
  {
    auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
        stm::Semantics::kElastic, stm::Semantics::kSnapshot});
    prefill(*set, cfg);
    tp1 = run_sim_workload(*set, cfg, 1, opts).throughput;
    test::drain_memory();
  }
  {
    auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
        stm::Semantics::kElastic, stm::Semantics::kSnapshot});
    prefill(*set, cfg);
    tp8 = run_sim_workload(*set, cfg, 8, opts).throughput;
    test::drain_memory();
  }
  EXPECT_GT(tp8, tp1 * 2.0) << "expected clear scaling from 1 to 8 threads";
}

TEST(CollectionShapes, ElasticCutsHappenOnTheParseWorkload) {
  const WorkloadConfig cfg = small_cfg();
  SimOptions opts;
  opts.duration_cycles = 30'000;
  auto set = std::make_unique<ds::TxList>(ds::TxList::Options{
      stm::Semantics::kElastic, stm::Semantics::kClassic});
  prefill(*set, cfg);
  const DriverResult r = run_sim_workload(*set, cfg, 4, opts);
  EXPECT_GT(r.stm.elastic_cuts, 0u);
  test::drain_memory();
}
