// advise.verify fixture: the planted-unsound TU.
//
// A snapshot annotation sits on a body whose write is TWO calls deep
// (bump_mid -> bump_leaf -> tx.write_word): the consistency gate must
// catch it through the summary chain, and the evidence must name the
// chain.  The second site carries the same defect with a reasoned
// `demotx:advise:` justification, which flips `justified` in the JSON
// but never the verdict.
//
// Scanned only — never compiled into the test binaries.
#include "stm/stm.hpp"

namespace demotx {

// Stand-alone tagged accessor leaf (see fixture_chain.cpp).
void write_word(stm::Cell& c, std::uint64_t v) DEMOTX_TX_WRITE;

void bump_leaf(stm::Tx& tx, stm::Cell& c) { tx.write_word(c, 7); }

void bump_mid(stm::Tx& tx, stm::Cell& c) { bump_leaf(tx, c); }

long refresh(stm::Cell& c) {
  return stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {  // demotx-advise-expect: elastic unsound
    bump_mid(tx, c);
    return 0L;
  });
}

long probe(stm::Cell& c) {
  // demotx:advise: deliberate write under snapshot — the probe pins the runtime's write-abort contract
  return stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {  // demotx-advise-expect: elastic unsound
    bump_leaf(tx, c);
    return 1L;
  });
}

}  // namespace demotx
