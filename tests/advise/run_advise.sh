#!/bin/sh
# Corpus driver for the advise.verify ctest row.
#
#   run_advise.sh <demotx-advise-binary> <corpus-dir>
#
# Asserts, in order:
#   1. every fixture TU declares at least one demotx-advise-expect
#      expectation (an expectation-free fixture would verify vacuously);
#   2. `demotx-advise --verify` passes: every atomically site's inferred
#      tier and soundness verdict matches its expectation comment,
#      and every expectation has a site;
#   3. the JSON report matches the committed golden byte-for-byte
#      (expected_advise.json pins site order, eligibility sets, evidence
#      chains, marker accounting, and the justified flag).
ADVISE="$1"
DIR="$2"
if [ -z "$ADVISE" ] || [ -z "$DIR" ]; then
  echo "usage: run_advise.sh <demotx-advise-binary> <corpus-dir>" >&2
  exit 2
fi

fail=0

for f in "$DIR"/fixture_*.cpp; do
  if ! grep -q "demotx-advise-expect:" "$f"; then
    echo "FAIL: $f carries no demotx-advise-expect expectations" >&2
    fail=1
  fi
done

out="${TMPDIR:-/tmp}/advise_report.$$.json"
if ! "$ADVISE" --verify --json "$out" --relative-to "$DIR" "$DIR"; then
  echo "FAIL: --verify mismatch (see VERIFY-* lines above)" >&2
  fail=1
fi

if [ -f "$out" ]; then
  if ! diff -u "$DIR/expected_advise.json" "$out"; then
    echo "FAIL: JSON report diverges from the committed golden" >&2
    echo "      (cp $out $DIR/expected_advise.json after reviewing)" >&2
    fail=1
  fi
  rm -f "$out"
else
  echo "FAIL: no JSON report produced" >&2
  fail=1
fi

[ "$fail" -eq 0 ] && echo "advise corpus OK"
exit "$fail"
