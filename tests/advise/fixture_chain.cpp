// advise.verify fixture: the helper-chain TU the golden JSON pins.
//
// Exercises, per Issue 10's checklist: a helper chain (one and two
// levels deep), a call-graph cycle (collapses to ⊤/classic), a tagged
// irrevocable leaf declaration (bodiless), and a read-only leaf.  Each
// atomically site carries an advise expectation comment stating the
// inferred tier (and soundness) demotx-advise must report for it.
//
// Scanned only — never compiled into the test binaries.
#include "stm/stm.hpp"

namespace demotx {

// The corpus is scanned stand-alone, so the fixtures carry their own
// tagged accessor leaves (the real tree resolves these from
// src/stm/txdesc.hpp).
std::uint64_t read_word(stm::Cell& c) DEMOTX_TX_READ;
void write_word(stm::Cell& c, std::uint64_t v) DEMOTX_TX_WRITE;

// Read-only leaf: a single raw read.
long read_leaf(stm::Tx& tx, stm::Cell& c) {
  return static_cast<long>(tx.read_word(c));
}

// Writing leaf.
void write_leaf(stm::Tx& tx, stm::Cell& c) { tx.write_word(c, 1); }

// Helper chain: the write is two calls away from the site.
void chain_mid(stm::Tx& tx, stm::Cell& c) { write_leaf(tx, c); }

// Mutual recursion: the SCC {ping, pong} must collapse to ⊤.
long ping(stm::Tx& tx, stm::Cell& c);
long pong(stm::Tx& tx, stm::Cell& c) { return ping(tx, c); }
long ping(stm::Tx& tx, stm::Cell& c) { return pong(tx, c) / 2 + read_leaf(tx, c); }

// Irrevocable leaf: a tagged declaration with no body — the tag alone
// carries the effect.
void log_commit(stm::Tx& tx) DEMOTX_TX_IRREVOCABLE;

long sums(stm::Cell& a) {
  return stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {  // demotx-advise-expect: snapshot
    return read_leaf(tx, a);
  });
}

bool touch(stm::Cell& a) {
  return stm::atomically([&](stm::Tx& tx) {  // demotx-advise-expect: elastic
    chain_mid(tx, a);
    return true;
  });
}

long spin(stm::Cell& a) {
  return stm::atomically([&](stm::Tx& tx) {  // demotx-advise-expect: classic
    return ping(tx, a);
  });
}

void audit() {
  stm::atomically_irrevocable([&](stm::Tx& tx) {  // demotx-advise-expect: classic
    log_commit(tx);
  });
}

long total(stm::Cell* cells, int n) {
  // demotx:expert-next: the loop sum is read-only by construction; snapshot keeps it abort-free
  return stm::atomically(stm::Semantics::kSnapshot, [&](stm::Tx& tx) {  // demotx-advise-expect: snapshot
    long s = 0;
    // A loop of raw reads is snapshot-eligible but NOT elastic-eligible:
    // a cut between two iterations could tear the sum.
    for (int i = 0; i < n; ++i) s += read_leaf(tx, cells[i]);
    return s;
  });
}

}  // namespace demotx
