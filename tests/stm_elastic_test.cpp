// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Elastic semantics (E-STM): the sliding window, cuts, the paper's
// history H, the transition to classic mode on first write, and
// correctness of elastic data-structure operations under adversarial
// schedules.
#include <gtest/gtest.h>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::AbortReason;
using stm::AbortTx;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

template <typename F>
AbortReason expect_abort(stm::Tx& tx, F&& body) {
  try {
    body(tx);
  } catch (const AbortTx& a) {
    tx.rollback(a.reason);
    return a.reason;
  }
  ADD_FAILURE() << "expected the transaction to abort";
  tx.rollback(AbortReason::kExplicit);
  return AbortReason::kExplicit;
}

}  // namespace

// The paper's Sec. 4.2 history, executed against the real protocol:
//   H = r(h)i r(n)i  r(h)j r(n)j w(h)j  r(t)i w(n)i
// H is neither serializable nor opaque, yet with i elastic it must
// commit: i is cut between r(n)i and r(t)i.
TEST(StmElastic, PaperHistoryHCommitsWhenIIsElastic) {
  stm::TVar<long> h{0};
  stm::TVar<long> n{0};
  stm::TVar<long> t{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(h.get(ti), 0);  // r(h)i
  EXPECT_EQ(n.get(ti), 0);  // r(n)i

  tj.begin(Semantics::kClassic, 0);
  EXPECT_EQ(h.get(tj), 0);  // r(h)j
  EXPECT_EQ(n.get(tj), 0);  // r(n)j
  h.set(tj, 1);             // w(h)j
  tj.commit();

  EXPECT_EQ(t.get(ti), 0);  // r(t)i — cuts h out of the window
  n.set(ti, 3);             // w(n)i
  ti.commit();              // must succeed

  EXPECT_EQ(h.unsafe_load(), 1);
  EXPECT_EQ(n.unsafe_load(), 3);
  EXPECT_GE(rt.aggregate_stats().elastic_cuts, 1u);
}

// The same interleaving with i classic must abort (H is not opaque).
TEST(StmElastic, PaperHistoryHAbortsWhenIIsClassic) {
  stm::TVar<long> h{0};
  stm::TVar<long> n{0};
  stm::TVar<long> t{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kClassic, 0);
  EXPECT_EQ(h.get(ti), 0);
  EXPECT_EQ(n.get(ti), 0);

  tj.begin(Semantics::kClassic, 0);
  EXPECT_EQ(h.get(tj), 0);
  EXPECT_EQ(n.get(tj), 0);
  h.set(tj, 1);
  tj.commit();

  EXPECT_EQ(t.get(ti), 0);  // version of t is still old: read succeeds
  n.set(ti, 3);
  const AbortReason r = expect_abort(ti, [&](stm::Tx& tx) { tx.commit(); });
  EXPECT_EQ(r, AbortReason::kCommitValidation);
}

// A write *inside* the window (no cut possible) must still abort the
// elastic transaction: cut consistency is not a free pass.
TEST(StmElastic, WindowInvalidationAborts) {
  stm::TVar<long> a{0};
  stm::TVar<long> b{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(a.get(ti), 0);  // window: {a}

  tj.begin(Semantics::kClassic, 0);
  a.set(tj, 1);  // invalidates the window entry
  tj.commit();

  const AbortReason r = expect_abort(ti, [&](stm::Tx& tx) { (void)b.get(tx); });
  EXPECT_EQ(r, AbortReason::kWindowInvalid);
}

// An update to a location already evicted from the window is tolerated
// (the exact false-conflict of the paper's Sec. 3.2 linked-list example).
TEST(StmElastic, EvictedEntriesAreCutAndTolerated) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.elastic_window = 2;

  stm::TVar<long> v0{0};
  stm::TVar<long> v1{0};
  stm::TVar<long> v2{0};
  stm::TVar<long> v3{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(v0.get(ti), 0);
  EXPECT_EQ(v1.get(ti), 0);
  EXPECT_EQ(v2.get(ti), 0);  // v0 evicted (cut)

  tj.begin(Semantics::kClassic, 0);
  v0.set(tj, 7);  // touches only the evicted entry
  tj.commit();

  EXPECT_EQ(v3.get(ti), 0);  // validates {v1, v2}: still fine
  ti.commit();
}

TEST(StmElastic, ReadOnlyElasticCommitIsTrivial) {
  stm::TVar<long> a{1};
  stm::TVar<long> b{2};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(a.get(ti), 1);
  EXPECT_EQ(b.get(ti), 2);

  tj.begin(Semantics::kClassic, 0);
  a.set(tj, 10);
  tj.commit();

  ti.commit();  // nothing to validate: reads were mutually consistent
}

// After the first write the transaction is classic: a conflicting commit
// on any location read since the transition must abort it.
TEST(StmElastic, PostWritePhaseIsClassic) {
  stm::TVar<long> a{0};
  stm::TVar<long> b{0};
  stm::TVar<long> c{0};
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  EXPECT_EQ(a.get(ti), 0);
  b.set(ti, 1);             // transition: now classic
  EXPECT_EQ(c.get(ti), 0);  // classic read, in the read set

  tj.begin(Semantics::kClassic, 0);
  c.set(tj, 9);
  tj.commit();

  const AbortReason r = expect_abort(ti, [&](stm::Tx& tx) { tx.commit(); });
  EXPECT_EQ(r, AbortReason::kCommitValidation);
}

TEST(StmElastic, WindowCapacityIsConfigurable) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.elastic_window = 4;

  stm::TVar<long> v[5];
  auto& rt = stm::Runtime::instance();
  stm::Tx& ti = rt.tx_for_slot(50);
  stm::Tx& tj = rt.tx_for_slot(51);

  ti.begin(Semantics::kElastic, 0);
  for (auto& x : v) EXPECT_EQ(x.get(ti), 0);  // 5 reads, window keeps 4

  tj.begin(Semantics::kClassic, 0);
  // v[2] survives the next eviction (only v[1], the oldest windowed
  // entry, is cut when the 6th read arrives), so this write must abort.
  v[2].set(tj, 1);
  tj.commit();

  stm::TVar<long> extra{0};
  const AbortReason r =
      expect_abort(ti, [&](stm::Tx& tx) { (void)extra.get(tx); });
  EXPECT_EQ(r, AbortReason::kWindowInvalid);
}

// Two elastic list adds interleaved as in the paper's Sec. 4.2 closing
// example commit together even though their low-level accesses do not
// commute.
TEST(StmElastic, ConcurrentListAddsBothCommit) {
  for (std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    auto list = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kClassic});
    for (long k : {10L, 20L, 30L, 40L}) ASSERT_TRUE(list->add(k));

    std::atomic<int> ok{0};
    test::run_random_sim(2, seed, [&](int id) {
      if (list->add(id == 0 ? 15 : 35)) ++ok;
    });
    EXPECT_EQ(ok.load(), 2);
    EXPECT_TRUE(list->contains(15));
    EXPECT_TRUE(list->contains(35));
    EXPECT_EQ(list->unsafe_size(), 6);
    test::drain_memory();
  }
}

// Elastic set operations against a per-key ground truth under the random
// adversary, across seeds (property test).
class ElasticListProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElasticListProperty, MatchesPerKeyAccounting) {
  const std::uint64_t seed = GetParam();
  constexpr long kRange = 32;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 120;

  auto list = std::make_unique<ds::TxList>(
      ds::TxList::Options{Semantics::kElastic, Semantics::kClassic});
  std::atomic<long> adds[kRange];
  std::atomic<long> removes[kRange];
  for (long k = 0; k < kRange; ++k) {
    adds[k] = 0;
    removes[k] = 0;
  }

  test::run_random_sim(kThreads, seed, [&](int id) {
    std::uint64_t rng = seed + static_cast<std::uint64_t>(id) * 131 + 17;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < kOpsPerThread; ++i) {
      const long k = static_cast<long>(next() % kRange);
      switch (next() % 3) {
        case 0:
          if (list->add(k)) ++adds[k];
          break;
        case 1:
          if (list->remove(k)) ++removes[k];
          break;
        default:
          list->contains(k);
      }
    }
  });

  long expect_size = 0;
  for (long k = 0; k < kRange; ++k) {
    const long net = adds[k].load() - removes[k].load();
    ASSERT_TRUE(net == 0 || net == 1)
        << "key " << k << ": successful adds/removes must alternate";
    EXPECT_EQ(list->contains(k), net == 1) << "key " << k;
    expect_size += net;
  }
  EXPECT_EQ(list->unsafe_size(), expect_size);
  test::drain_memory();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElasticListProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
