// Epoch-based reclamation: guards delay frees, quiescence allows them,
// and a use-after-free canary survives an adversarial simulated workload.
#include "mem/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "vt/scheduler.hpp"

using namespace demotx;

namespace {

struct Canary {
  explicit Canary(long v) : value(v) {}
  ~Canary() { value = kDead; }
  static constexpr long kDead = 0xdeadbeefL;
  long value;
};

}  // namespace

TEST(Epoch, DrainFreesEverythingAtQuiescence) {
  auto& mgr = mem::EpochManager::instance();
  const auto freed0 = mgr.freed_count();
  for (int i = 0; i < 10; ++i) mgr.retire(new Canary(i));
  mgr.drain();
  EXPECT_EQ(mgr.freed_count() - freed0, 10u);
}

TEST(Epoch, GuardIsReentrant) {
  auto& mgr = mem::EpochManager::instance();
  {
    mem::EpochManager::Guard a;
    {
      mem::EpochManager::Guard b;
      mgr.retire(new Canary(1));
    }
    // Inner guard exit must not end the critical section.
    mgr.retire(new Canary(2));
  }
  mgr.drain();
}

TEST(Epoch, ActiveReaderBlocksReclamationOfVisibleNodes) {
  // Single-threaded variant of the EBR contract: a node retired while a
  // guard is active (the reader entered before the retire) must survive
  // scans until the guard exits.
  auto& mgr = mem::EpochManager::instance();
  mgr.drain();
  auto* c = new Canary(42);
  {
    mem::EpochManager::Guard g;
    mgr.retire(c);
    // Force many scan attempts; our own announcement pins min_active.
    for (int i = 0; i < 1000; ++i) mgr.retire(new Canary(i));
    EXPECT_EQ(c->value, 42) << "node freed under an active guard";
  }
  mgr.drain();
}

TEST(Epoch, ConcurrentReadersNeverSeeFreedNodes) {
  // A writer repeatedly swaps a shared pointer and retires the old node;
  // readers hold guards while dereferencing.  Under the random-adversary
  // scheduler any unsafe reclamation shows up as the canary value.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::atomic<Canary*> shared{new Canary(0)};
    std::atomic<bool> bad{false};
    vt::Scheduler::Options opts;
    opts.policy = vt::Scheduler::Policy::kRandom;
    opts.seed = seed;
    vt::Scheduler sched(opts);
    // Writer.
    sched.spawn([&](int) {
      for (long i = 1; i <= 300; ++i) {
        auto* fresh = new Canary(i);
        vt::access();
        Canary* old = shared.exchange(fresh, std::memory_order_acq_rel);
        mem::EpochManager::instance().retire(old);
      }
    });
    // Readers.
    for (int r = 0; r < 3; ++r) {
      sched.spawn([&](int) {
        for (int i = 0; i < 400; ++i) {
          mem::EpochManager::Guard g;
          vt::access();
          Canary* c = shared.load(std::memory_order_acquire);
          vt::access();
          if (c->value == Canary::kDead) bad.store(true);
        }
      });
    }
    sched.run();
    EXPECT_FALSE(bad.load()) << "seed " << seed;
    delete shared.load();
    mem::EpochManager::instance().drain();
  }
}

TEST(Epoch, EpochAdvancesUnderChurn) {
  auto& mgr = mem::EpochManager::instance();
  const auto e0 = mgr.epoch();
  vt::Scheduler sched;
  sched.spawn([&](int) {
    for (int i = 0; i < 500; ++i) {
      mem::EpochManager::Guard g;
      mgr.retire(new Canary(i));
    }
  });
  sched.run();
  mgr.drain();
  EXPECT_GT(mgr.epoch(), e0);
}

TEST(Epoch, StatsCountRetiredAndFreed) {
  auto& mgr = mem::EpochManager::instance();
  mgr.drain();
  const auto r0 = mgr.retired_count();
  const auto f0 = mgr.freed_count();
  for (int i = 0; i < 17; ++i) mgr.retire(new Canary(i));
  EXPECT_EQ(mgr.retired_count() - r0, 17u);
  mgr.drain();
  EXPECT_EQ(mgr.freed_count() - f0, 17u);
}
