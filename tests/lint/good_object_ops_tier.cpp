// Corpus twin: the object-ops tier behind explicit opt-ins, plus the
// novice path that never names it.  The typed containers read the
// DEMOTX_OBJECT_OPS opt-in themselves, so novice code keeps the exact
// same call sites under either representation and diagnoses nothing.
#include "ds/tx_hashset.hpp"
#include "stm/objstm.hpp"
#include "stm/runtime.hpp"
#include "stm/stm.hpp"

namespace {

// Novice tier: representation is the container's concern.
bool member(demotx::ds::TxHashSet& s, long k) { return s.contains(k); }

// demotx:expert-fn: certification-contract test drives the raw ObjSet so the guard read and insert land in one op log
bool reserve(demotx::stm::ObjSet& set) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    if (tx.obj_contains(set, 1)) return false;
    return tx.obj_insert(set, 1);
  });
}

void opt_in_globally(demotx::stm::Config* cfg) {
  cfg->object_ops = true;  // demotx:expert: A/B harness comparing cell vs semantic conflict detection
}

}  // namespace
