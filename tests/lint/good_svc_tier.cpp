// Corpus twin: the same per-request-class tier map behind explicit
// markers, each naming the soundness argument the tier choice rests on
// (the src/svc/ discipline).  The transfer handler stays on the opaque
// default — cross-key read-modify-write needs full opacity, and novice
// code diagnoses nothing.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

struct Req {
  int cls = 0;        // 0 get, 1 put, 2 scan, 3 admin
  long key = 0;
  long value = 0;
  long result = 0;
};

// Novice tier: a cross-key transfer needs full opacity — no marker.
bool handle_transfer(demotx::stm::TVar<long>* table, long from, long to) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    const long f = table[from].get(tx);
    if (f <= 0) return false;
    table[from].set(tx, f - 1);
    table[to].set(tx, table[to].get(tx) + 1);
    return true;
  });
}

long handle_get(demotx::stm::TVar<long>* table, Req& r) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) { return table[r.key].get(tx); },
      demotx::stm::Semantics::kElastic);  // demotx:expert: single-key point read; elastic cuts are sound
}

void handle_put(demotx::stm::TVar<long>* table, Req& r) {
  demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) { table[r.key].set(tx, r.value); },
      demotx::stm::Semantics::kElastic);  // demotx:expert: single-key overwrite, one writer per key by session ownership
}

long handle_scan(demotx::stm::TVar<long>* table, int n) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) {
        long s = 0;
        for (int i = 0; i < n; ++i) s += table[i].get(tx);
        return s;
      },
      demotx::stm::Semantics::kSnapshot);  // demotx:expert: read-only scan; a consistent snapshot is the reply contract
}

void handle_admin(demotx::stm::TVar<long>& epoch, Req& r) {
  // demotx:expert-fn: admin epoch bump must run exactly once, never abort
  demotx::stm::atomically_irrevocable([&](demotx::stm::Tx& tx) {
    r.result = epoch.get(tx);
    epoch.set(tx, r.result + 1);
  });
}

}  // namespace
