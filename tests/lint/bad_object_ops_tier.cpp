// Corpus: object-ops tier opt-ins reached from unmarked (novice) code.
// The raw object descriptors and Tx semantic-op methods bypass the typed
// containers' key mapping and latched representation choice, and
// Config::object_ops flips the representation process-wide — all of it
// legal, supported, and expert-tier.
#include "stm/objstm.hpp"
#include "stm/runtime.hpp"
#include "stm/stm.hpp"

namespace {

bool reserve(demotx::stm::ObjSet& set) {  // demotx-expect: demotx-expert-api-tier
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    if (tx.obj_contains(set, 1)) return false;  // demotx-expect: demotx-expert-api-tier
    return tx.obj_insert(set, 1);  // demotx-expect: demotx-expert-api-tier
  });
}

long raw_queue_len(demotx::stm::ObjQueue& q) {  // demotx-expect: demotx-expert-api-tier
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    return static_cast<long>(tx.obj_queue_size(q));  // demotx-expect: demotx-expert-api-tier
  });
}

void opt_in_globally(demotx::stm::Config* cfg) {
  cfg->object_ops = true;  // demotx-expect: demotx-expert-api-tier
}

}  // namespace
