// Corpus: the Tx& handle escaping its transaction.  The descriptor is
// re-armed on every retry and recycled across transactions, so any
// reference that outlives the lambda dangles semantically even when the
// storage stays valid.
#include <functional>

#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

demotx::stm::Tx* g_leaked = nullptr;

void leak_through_global(demotx::stm::TVar<long>& v) {
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    g_leaked = &tx;  // demotx-expect: demotx-tx-escape
    return v.get(tx);
  });
}

void leak_through_static(demotx::stm::TVar<long>& v) {
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    static demotx::stm::Tx* cached = &tx;  // demotx-expect: demotx-tx-escape
    (void)cached;
    return v.get(tx);
  });
}

std::function<long()> leak_through_closure(demotx::stm::TVar<long>& v) {
  std::function<long()> reader;
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    reader = [&tx, &v] { return v.get(tx); };  // demotx-expect: demotx-tx-escape
    return 0L;
  });
  return reader;
}

}  // namespace
