// Thread-safety-analysis smoke TU: pulls every annotated header into
// one translation unit and exercises the capability types, so
//
//   clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror -Isrc \
//       tests/lint/tsa_smoke.cpp
//
// (the ctest row `tsa.build`) proves the annotated lock discipline
// type-checks.  Under GCC the attributes expand to nothing and this TU
// is an ordinary syntax check.
#include "sync/annotations.hpp"
#include "sync/coarse_list.hpp"
#include "sync/cow_array_set.hpp"
#include "sync/hoh_list.hpp"
#include "sync/lazy_list.hpp"
#include "vt/sync.hpp"

namespace {

// Minimal direct use of the capability machinery: a guarded counter
// accessed only through the scoped guard.  If SpinGuard lost its
// SCOPED_CAPABILITY (or SpinLock its CAPABILITY) this stops compiling
// under -Wthread-safety -Werror.
class GuardedCounter {
 public:
  void bump() {
    demotx::vt::SpinGuard g(lock_);
    ++n_;
  }

  long read() {
    demotx::vt::SpinGuard g(lock_);
    return n_;
  }

  // Manual lock/unlock balanced in one scope is also TSA-visible.
  void bump_manual() {
    lock_.lock();
    ++n_;
    lock_.unlock();
  }

 private:
  demotx::vt::SpinLock lock_;
  long n_ DEMOTX_GUARDED_BY(lock_) = 0;
};

void touch_everything() {
  GuardedCounter c;
  c.bump();
  c.bump_manual();
  (void)c.read();
  demotx::sync::CoarseList coarse;
  demotx::sync::HohList hoh;
  demotx::sync::LazyList lazy;
  demotx::sync::CowArraySet cow;
  coarse.add(1);
  hoh.add(2);
  lazy.add(3);
  cow.add(4);
}

}  // namespace

int main() {
  touch_everything();
  return 0;
}
