// Corpus twin: a justified marker suppresses exactly the line it
// covers and records why the relaxation is sound.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

struct Node {
  demotx::stm::TVar<long> key;
};

long init_private_node(demotx::stm::TVar<Node*>& head) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    Node* n = tx.alloc<Node>();
    n->key.unsafe_store(7);  // demotx:expert: n is tx-private until head.set() below publishes it
    head.set(tx, n);
    return n->key.unsafe_load();  // demotx:expert: still tx-private; the set() above is buffered until commit
  });
}

}  // namespace
