// Corpus: a reasonless expert marker.  The marker grammar REQUIRES a
// one-line justification; a bare marker diagnoses itself and suppresses
// nothing, so the unsafe call it was meant to cover still fires too.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

long peek_mid_tx(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    (void)tx;
    /* demotx:expert */ return v.unsafe_load();  // demotx-expect: demotx-expert-marker, demotx-unsafe-in-tx
  });
}

}  // namespace
