// Corpus: unsafe_* accessors called inside a transactional context.
// These bypass the versioned read/write protocol and see (or publish)
// uninstrumented state while the transaction may yet abort.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

long double_then_peek(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    const long cur = v.get(tx);
    v.set(tx, cur * 2);
    long peek = v.unsafe_load();  // demotx-expect: demotx-unsafe-in-tx
    return peek;
  });
}

void sneak_store(demotx::stm::TVar<long>& v, long x) {
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    v.unsafe_store(x);  // demotx-expect: demotx-unsafe-in-tx
    (void)tx;
  });
}

}  // namespace
