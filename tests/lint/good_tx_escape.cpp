// Corpus twin: passing the Tx& around legally.  Composition — handing
// the live reference down to helpers or directly into combinators — is
// the whole point of the API; only storage that outlives the lambda is
// an escape.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

// A helper taking Tx& is itself a transactional context, not an escape.
long read_both(demotx::stm::Tx& tx, demotx::stm::TVar<long>& a,
               demotx::stm::TVar<long>& b) {
  return a.get(tx) + b.get(tx);
}

long sum(demotx::stm::TVar<long>& a, demotx::stm::TVar<long>& b) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    return read_both(tx, a, b);
  });
}

long first_nonzero(demotx::stm::TVar<long>& a, demotx::stm::TVar<long>& b) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    // A lambda over tx passed DIRECTLY to a combinator runs inside the
    // same transaction attempt: legal composition, not an escape.
    return tx.or_else([&] { return a.get(tx); }, [&] { return b.get(tx); });
  });
}

}  // namespace
