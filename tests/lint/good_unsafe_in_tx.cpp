// Corpus twin: the same accessors used legally — instrumented get/set
// inside the transaction, unsafe_* only from quiescent code (no
// transaction can be live), plus a justified tx-private use.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

long double_and_return(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    const long cur = v.get(tx);
    v.set(tx, cur * 2);
    return cur * 2;
  });
}

// Quiescent: called after every worker joined, so no transaction is
// live and the unsynchronized view is exact.
long quiescent_total(demotx::stm::TVar<long>& a,
                     demotx::stm::TVar<long>& b) {
  return a.unsafe_load() + b.unsafe_load();
}

void seed(demotx::stm::TVar<long>& v, long x) { v.unsafe_store(x); }

}  // namespace
