// Corpus: raw cell writes inside bodies annotated Semantics::kSnapshot.
// The snapshot tier is read-only by contract — its runtime aborts the
// attempt on the first write — so a write under a kSnapshot annotation
// can only ever waste work.  (The kSnapshot annotations themselves also
// trip the tier check: this file deliberately carries no expert
// markers, pinning that the two checks fire independently.)
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

long snapshot_that_writes_raw(demotx::stm::Cell& c) {
  return demotx::stm::atomically(
      demotx::stm::Semantics::kSnapshot,  // demotx-expect: demotx-expert-api-tier
      [&](demotx::stm::Tx& tx) {
        const auto v = tx.read_word(c);
        tx.write_word(c, v + 1);  // demotx-expect: demotx-snapshot-write
        return static_cast<long>(v);
      });
}

long snapshot_that_sets_tvar(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically(
      demotx::stm::Semantics::kSnapshot,  // demotx-expect: demotx-expert-api-tier
      [&](demotx::stm::Tx& tx) {
        const long cur = v.get(tx);
        v.set(tx, cur + 1);  // demotx-expect: demotx-snapshot-write
        return cur;
      });
}

// Flat nesting folds the inner classic body into the enclosing snapshot
// transaction: the write still hits the snapshot runtime and aborts.
long nested_classic_inside_snapshot(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically(
      demotx::stm::Semantics::kSnapshot,  // demotx-expect: demotx-expert-api-tier
      [&](demotx::stm::Tx& tx) {
        const long cur = v.get(tx);
        demotx::stm::atomically([&](demotx::stm::Tx& inner) {
          v.set(inner, cur + 1);  // demotx-expect: demotx-snapshot-write
        });
        return cur;
      });
}

}  // namespace
