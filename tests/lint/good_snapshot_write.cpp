// Corpus (clean): the snapshot-write check stays quiet on read-only
// snapshot bodies, on classic bodies that write, and on writes a
// written expert justification explicitly owns.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

// Read-only snapshot body: the intended shape.
long snapshot_read_only(demotx::stm::TVar<long>& a,
                        demotx::stm::TVar<long>& b) {
  return demotx::stm::atomically(
      // demotx:expert-next: consistent read-only sum across cells
      demotx::stm::Semantics::kSnapshot,
      [&](demotx::stm::Tx& tx) { return a.get(tx) + b.get(tx); });
}

// Classic bodies write freely; the check is scoped to kSnapshot sites.
void classic_writer(demotx::stm::TVar<long>& v) {
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    v.set(tx, v.get(tx) + 1);
  });
}

// A deliberate write under kSnapshot (e.g. a test that the snapshot
// runtime aborts writers) opts in line-by-line, like every suppression.
long snapshot_abort_probe(demotx::stm::TVar<long>& v) {
  return demotx::stm::atomically(
      // demotx:expert-next: exercising the snapshot tier's write-abort path
      demotx::stm::Semantics::kSnapshot,
      [&](demotx::stm::Tx& tx) {
        const long cur = v.get(tx);
        // demotx:expert-next: write must abort; this probes that path
        v.set(tx, cur + 1);
        return cur;
      });
}

}  // namespace
