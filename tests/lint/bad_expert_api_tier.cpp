// Corpus: expert-tier APIs reached from unmarked (novice) code.  Every
// construct here is legal C++ and a supported demotx feature — the
// check enforces the paper's social contract, not the type system:
// relaxed semantics, early release and runtime tuning belong behind an
// explicit opt-in.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

long snapshot_sum(demotx::stm::TVar<long>* accts, int n) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) {
        long s = 0;
        for (int i = 0; i < n; ++i) s += accts[i].get(tx);
        return s;
      },
      demotx::stm::Semantics::kSnapshot);  // demotx-expect: demotx-expert-api-tier
}

long hand_over_hand_release(demotx::stm::TVar<long>& a,
                            demotx::stm::TVar<long>& b) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    const long x = a.get(tx);
    a.release(tx);  // demotx-expect: demotx-expert-api-tier
    return x + b.get(tx);
  });
}

void log_once(long v) {
  demotx::stm::atomically_irrevocable([&](demotx::stm::Tx&) {  // demotx-expect: demotx-expert-api-tier
    (void)v;
  });
}

void tune_runtime() {
  demotx::stm::Config cfg;  // demotx-expect: demotx-expert-api-tier
  auto& rt = demotx::stm::Runtime::instance();
  rt.config.eager_writes = true;  // demotx-expect: demotx-expert-api-tier
  (void)cfg;
}

}  // namespace
