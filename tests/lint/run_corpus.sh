#!/bin/sh
# Corpus driver for the lint.corpus ctest row.
#
#   run_corpus.sh <demotx-lint-binary> <corpus-dir>
#
# Asserts, in order:
#   1. every bad_*.cpp declares at least one demotx-expect expectation
#      (an expectation-free bad TU would verify vacuously);
#   2. `demotx-lint --verify <corpus-dir>` passes: each file's emitted
#      diagnostics match its expectations EXACTLY — good twins clean,
#      bad TUs hitting every expected (line, check-id) pair and nothing
#      else;
#   3. the --stats JSON is well-formed enough to track suppression
#      creep: it reports the corpus TU count and a nonzero diagnostic
#      total.
LINT="$1"
DIR="$2"
if [ -z "$LINT" ] || [ -z "$DIR" ]; then
  echo "usage: run_corpus.sh <demotx-lint-binary> <corpus-dir>" >&2
  exit 2
fi

fail=0

for f in "$DIR"/bad_*.cpp; do
  if ! grep -q "demotx-expect:" "$f"; then
    echo "FAIL: $f carries no demotx-expect expectations" >&2
    fail=1
  fi
done

if ! "$LINT" --verify "$DIR"; then
  echo "FAIL: --verify mismatch (see VERIFY-* lines above)" >&2
  fail=1
fi

ntu=$(ls "$DIR"/*.cpp | wc -l | tr -d ' ')
stats=$("$LINT" --stats "$DIR" 2>/dev/null)
echo "$stats"
if ! echo "$stats" | grep -q "\"files_scanned\": $ntu"; then
  echo "FAIL: --stats files_scanned != $ntu" >&2
  fail=1
fi
if echo "$stats" | grep -q '"diagnostics_total": 0'; then
  echo "FAIL: --stats reports zero diagnostics over a corpus with bad TUs" >&2
  fail=1
fi

[ "$fail" -eq 0 ] && echo "lint corpus OK ($ntu TUs)"
exit "$fail"
