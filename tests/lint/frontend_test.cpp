// Unit tests for the shared token frontend (tools/frontend).
//
// The lexer half pins the two bug classes Issue 10 called out — raw
// string literals and digit separators — plus the encoding-prefixed
// spellings (u8R"( )", LR"( )") that the pre-frontend lexer genuinely
// mis-scanned: the prefix was consumed as an identifier, the regular
// string scanner then terminated at the first embedded quote, and every
// line up to the next stray quote was swallowed into a phantom literal,
// misattributing (or suppressing) diagnostics after it.  The walker
// half pins scope handling: member functions, out-of-class definitions,
// constructor init lists, effect tags, and Tx-lambda registration.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend.hpp"

namespace ff = demotx::frontend;

namespace {

std::vector<std::string> texts(const ff::LexedFile& f) {
  std::vector<std::string> out;
  for (const ff::Token& t : f.tokens) out.push_back(t.text);
  return out;
}

const ff::Token* find_tok(const ff::LexedFile& f, const std::string& text) {
  for (const ff::Token& t : f.tokens)
    if (t.text == text) return &t;
  return nullptr;
}

const ff::FunctionDef* find_fn(const ff::FunctionIndex& idx,
                               const std::string& qual) {
  for (const ff::FunctionDef& d : idx.functions)
    if (d.qual == qual) return &d;
  return nullptr;
}

// ---- lexer: raw strings ----------------------------------------------

TEST(Lexer, RawStringCollapsesToOneToken) {
  const auto f = ff::lex("auto s = R\"(unsafe_load \" tx.write_word)\"; x();");
  const auto t = texts(f);
  // Nothing from the literal body leaks into the stream.
  EXPECT_EQ(std::count(t.begin(), t.end(), "unsafe_load"), 0);
  EXPECT_EQ(std::count(t.begin(), t.end(), "<raw-string>"), 1);
  // The tokens after the literal survive.
  EXPECT_NE(find_tok(f, "x"), nullptr);
}

TEST(Lexer, RawStringWithDelimiterAndNewlines) {
  const std::string src =
      "R\"delim(line one \")\" still inside\nline two)delim\"\nnext_ident";
  const auto f = ff::lex(src);
  ASSERT_NE(find_tok(f, "next_ident"), nullptr);
  // Two newlines inside/after the literal: next_ident is on line 3.
  EXPECT_EQ(find_tok(f, "next_ident")->line, 3);
}

TEST(Lexer, EncodingPrefixedRawStringsDoNotLeak) {
  // The historical bug: u8R consumed as ident, `"(...` scanned as a
  // regular string ending at the embedded quote, swallowing `after()`.
  for (const char* prefix : {"R", "u8R", "uR", "UR", "LR"}) {
    const std::string src =
        std::string(prefix) + "\"(has \" quote)\"; after();";
    const auto f = ff::lex(src);
    EXPECT_NE(find_tok(f, "after"), nullptr) << "prefix " << prefix;
    EXPECT_EQ(find_tok(f, "quote"), nullptr) << "prefix " << prefix;
  }
}

TEST(Lexer, EncodingPrefixedPlainLiterals) {
  const auto f = ff::lex("u8\"abc\" L\"def\" L'x' u'(' rest");
  const auto t = texts(f);
  EXPECT_EQ(std::count(t.begin(), t.end(), "<literal>"), 4);
  // `u8`, `L`, `u` never appear as identifiers, and the `(` inside the
  // char literal does not open a paren in the stream.
  EXPECT_EQ(find_tok(f, "u8"), nullptr);
  EXPECT_EQ(find_tok(f, "("), nullptr);
  EXPECT_NE(find_tok(f, "rest"), nullptr);
}

// ---- lexer: digit separators -----------------------------------------

TEST(Lexer, DigitSeparatorsStayInOneNumberToken) {
  const auto f = ff::lex("x = 1'000'000; y = 0xF'8; z = 0x1'8p-3;");
  EXPECT_NE(find_tok(f, "1'000'000"), nullptr);
  EXPECT_NE(find_tok(f, "0xF'8"), nullptr);
  EXPECT_NE(find_tok(f, "0x1'8p-3"), nullptr);
}

TEST(Lexer, NumberThenCharLiteralIsNotASeparator) {
  // The quote after `1` starts a char literal; a greedy separator rule
  // would swallow `'a'` into the number and derail everything after.
  const auto f = ff::lex("f(1,'a'); g(2 ,'b');");
  EXPECT_NE(find_tok(f, "g"), nullptr);
  const auto t = texts(f);
  EXPECT_EQ(std::count(t.begin(), t.end(), "<literal>"), 2);
  EXPECT_NE(find_tok(f, "1"), nullptr);
}

// ---- lexer: comments, markers, expectations --------------------------

TEST(Lexer, MarkersParsedWithReasons) {
  const auto f = ff::lex(
      "// demotx:expert-file: whole file\n"
      "int a; // demotx:expert: read-only probe\n"
      "// demotx:advise: loop is bounded by construction\n"
      "// demotx:expert-next\n");
  ASSERT_EQ(f.markers.size(), 4u);
  EXPECT_EQ(f.markers[0].kind, ff::Marker::Kind::kFile);
  EXPECT_EQ(f.markers[1].kind, ff::Marker::Kind::kLine);
  EXPECT_EQ(f.markers[1].line, 2);
  EXPECT_TRUE(f.markers[1].has_reason);
  EXPECT_EQ(f.markers[2].kind, ff::Marker::Kind::kAdvise);
  EXPECT_EQ(f.markers[2].reason, "loop is bounded by construction");
  EXPECT_EQ(f.markers[3].kind, ff::Marker::Kind::kNext);
  EXPECT_FALSE(f.markers[3].has_reason);
}

TEST(Lexer, AdviseExpectationsParsed) {
  const auto f = ff::lex(
      "a(); // demotx-advise-expect: snapshot\n"
      "b(); // demotx-advise-expect: classic unsound\n");
  ASSERT_EQ(f.advise_expects.size(), 2u);
  EXPECT_EQ(f.advise_expects.at(1), "snapshot");
  EXPECT_EQ(f.advise_expects.at(2), "classic unsound");
}

TEST(Lexer, KeywordsInsideLiteralsAndCommentsDoNotTokenize) {
  const auto f = ff::lex(
      "// tx.write_word in a comment\n"
      "log(\"tx.write_word in a string\");\n");
  EXPECT_EQ(find_tok(f, "write_word"), nullptr);
}

TEST(Lexer, PreprocessorLinesSkippedWithContinuations) {
  const auto f = ff::lex(
      "#define M(x) \\\n  tx.write_word(x)\n"
      "real_token\n");
  EXPECT_EQ(find_tok(f, "write_word"), nullptr);
  ASSERT_NE(find_tok(f, "real_token"), nullptr);
  EXPECT_EQ(find_tok(f, "real_token")->line, 3);
}

// ---- walker ----------------------------------------------------------

TEST(Walker, FreeAndMemberAndOutOfClassFunctions) {
  const auto f = ff::lex(
      "namespace demo {\n"
      "long free_fn(stm::Tx& tx, long k) { return k; }\n"
      "class Widget {\n"
      " public:\n"
      "  bool contains(stm::Tx& tx, long key) const { return key > 0; }\n"
      "  void decl_only(stm::Tx& tx);\n"
      "};\n"
      "void Widget::decl_only(stm::Tx& tx) { (void)tx; }\n"
      "}  // namespace demo\n");
  const auto idx = ff::scan_functions(f);
  const auto* free_fn = find_fn(idx, "demo::free_fn");
  ASSERT_NE(free_fn, nullptr);
  ASSERT_EQ(free_fn->params.size(), 2u);
  EXPECT_TRUE(free_fn->params[0].is_tx);
  EXPECT_EQ(free_fn->params[0].name, "tx");
  EXPECT_FALSE(free_fn->params[1].is_tx);
  EXPECT_EQ(free_fn->params[1].name, "k");
  EXPECT_NE(find_fn(idx, "demo::Widget::contains"), nullptr);
  // The in-class declaration has no body; only the out-of-class
  // definition registers.
  int decl_only_defs = 0;
  for (const auto& d : idx.functions)
    if (d.name == "decl_only") ++decl_only_defs;
  EXPECT_EQ(decl_only_defs, 1);
  EXPECT_NE(find_fn(idx, "demo::Widget::decl_only"), nullptr);
}

TEST(Walker, ConstructorInitListAndDestructor) {
  const auto f = ff::lex(
      "class TxList {\n"
      " public:\n"
      "  explicit TxList(long cap) : cap_{cap}, head_(nullptr) { setup(); }\n"
      "  ~TxList() { drain(); }\n"
      " private:\n"
      "  long cap_; void* head_;\n"
      "};\n");
  const auto idx = ff::scan_functions(f);
  const auto* ctor = find_fn(idx, "TxList::TxList");
  ASSERT_NE(ctor, nullptr);
  // The body is `{ setup(); }`, not the `cap_{cap}` initializer brace.
  EXPECT_EQ(f.tokens[ctor->body_begin + 1].text, "setup");
  EXPECT_NE(find_fn(idx, "TxList::~TxList"), nullptr);
}

TEST(Walker, EffectTagsCollected) {
  const auto f = ff::lex(
      "struct Tx {\n"
      "  std::uint64_t read_word(Cell& c) DEMOTX_TX_READ { return 0; }\n"
      "  void write_word(Cell& c, std::uint64_t v) DEMOTX_NO_TSA\n"
      "      DEMOTX_TX_WRITE { (void)c; (void)v; }\n"
      "};\n");
  const auto idx = ff::scan_functions(f);
  const auto* rd = find_fn(idx, "Tx::read_word");
  ASSERT_NE(rd, nullptr);
  ASSERT_EQ(rd->tags.size(), 1u);
  EXPECT_EQ(rd->tags[0], "DEMOTX_TX_READ");
  const auto* wr = find_fn(idx, "Tx::write_word");
  ASSERT_NE(wr, nullptr);
  // DEMOTX_NO_TSA is not a DEMOTX_TX_* tag and must not be collected.
  ASSERT_EQ(wr->tags.size(), 1u);
  EXPECT_EQ(wr->tags[0], "DEMOTX_TX_WRITE");
}

TEST(Walker, TaggedDeclarationRegistersAsBodilessLeaf) {
  const auto f = ff::lex(
      "class Tx {\n"
      "  std::uint64_t read_word(Cell& c) DEMOTX_TX_READ;\n"
      "  void release(Cell& c) DEMOTX_TX_RELEASE;\n"
      "  void plain_decl(Cell& c);\n"
      "};\n");
  const auto idx = ff::scan_functions(f);
  const auto* rd = find_fn(idx, "Tx::read_word");
  ASSERT_NE(rd, nullptr);
  EXPECT_FALSE(rd->has_body);
  ASSERT_EQ(rd->tags.size(), 1u);
  EXPECT_EQ(rd->tags[0], "DEMOTX_TX_READ");
  EXPECT_NE(find_fn(idx, "Tx::release"), nullptr);
  // Untagged declarations still do not register.
  EXPECT_EQ(find_fn(idx, "Tx::plain_decl"), nullptr);
}

TEST(Walker, NamedTxLambdaRegisters) {
  const auto f = ff::lex(
      "void outer() {\n"
      "  auto bump = [&](stm::Tx& tx) { tx.write_word(c, 1); };\n"
      "  auto plain = [&](int x) { return x; };\n"
      "  use(bump, plain);\n"
      "}\n");
  const auto idx = ff::scan_functions(f);
  const auto* bump = find_fn(idx, "bump");
  ASSERT_NE(bump, nullptr);
  EXPECT_TRUE(bump->params[0].is_tx);
  // Lambdas without a Tx parameter are not interesting to the analyses.
  EXPECT_EQ(find_fn(idx, "plain"), nullptr);
}

TEST(Walker, TemplatesEnumsAndAttributeMacrosDoNotConfuse) {
  const auto f = ff::lex(
      "enum class Semantics { kClassic = 0, kElastic = 1 };\n"
      "template <typename T, std::size_t N = sizeof(T)>\n"
      "T decode(stm::Tx& tx) { return T{}; }\n"
      "class SpinLock DEMOTX_CAPABILITY(\"mutex\") {\n"
      "  void lock() { }\n"
      "};\n");
  const auto idx = ff::scan_functions(f);
  EXPECT_NE(find_fn(idx, "decode"), nullptr);
  EXPECT_NE(find_fn(idx, "SpinLock::lock"), nullptr);
  // Enumerators never register as functions.
  EXPECT_EQ(find_fn(idx, "kClassic"), nullptr);
}

TEST(Walker, BodyRangeCoversWholeFunction) {
  const auto f = ff::lex(
      "int f(stm::Tx& tx) {\n"
      "  if (x) { g(tx); }\n"
      "  return h(tx);\n"
      "}\n"
      "int tail() { return 0; }\n");
  const auto idx = ff::scan_functions(f);
  const auto* fn = find_fn(idx, "f");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(f.tokens[fn->body_begin].text, "{");
  EXPECT_EQ(f.tokens[fn->body_end].text, "}");
  // The range covers the nested braces and stops before `tail`.
  bool saw_h = false;
  for (std::size_t i = fn->body_begin; i <= fn->body_end; ++i)
    saw_h |= (f.tokens[i].text == "h");
  EXPECT_TRUE(saw_h);
  EXPECT_NE(find_fn(idx, "tail"), nullptr);
}

}  // namespace
