// Corpus: irreversible side effects inside a re-executable body.  Every
// line here runs once per ATTEMPT, not once per transaction: leaks,
// double-frees, duplicated I/O and lock-coupled deadlock on retry.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

struct Node {
  long key;
};

std::mutex g_mu;

void all_the_sins(demotx::stm::TVar<long>& v) {
  demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    Node* n = new Node{v.get(tx)};  // demotx-expect: demotx-side-effect-in-tx
    std::printf("attempt!\n");  // demotx-expect: demotx-side-effect-in-tx
    std::cout << n->key;  // demotx-expect: demotx-side-effect-in-tx
    g_mu.lock();  // demotx-expect: demotx-side-effect-in-tx
    std::lock_guard<std::mutex> g(g_mu);  // demotx-expect: demotx-side-effect-in-tx
    delete n;  // demotx-expect: demotx-side-effect-in-tx
    return 0L;
  });
}

}  // namespace
