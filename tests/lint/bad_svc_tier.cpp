// Corpus: tier-annotation misuse inside service request bodies.  A
// request handler that quietly picks a relaxed tier per request class —
// exactly what src/svc/ does deliberately — is the highest-leverage
// place to forget the opt-in: the tier choice IS the service's
// correctness argument (snapshot scans are only sound because they are
// read-only; elastic point ops because they touch one key), and an
// unmarked choice hides that argument from review.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

struct Req {
  int cls = 0;        // 0 get, 1 put, 2 scan, 3 admin
  long key = 0;
  long value = 0;
  long result = 0;
};

long handle_get(demotx::stm::TVar<long>* table, Req& r) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) { return table[r.key].get(tx); },
      demotx::stm::Semantics::kElastic);  // demotx-expect: demotx-expert-api-tier
}

void handle_put(demotx::stm::TVar<long>* table, Req& r) {
  demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) { table[r.key].set(tx, r.value); },
      demotx::stm::Semantics::kElastic);  // demotx-expect: demotx-expert-api-tier
}

long handle_scan(demotx::stm::TVar<long>* table, int n) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) {
        long s = 0;
        for (int i = 0; i < n; ++i) s += table[i].get(tx);
        return s;
      },
      demotx::stm::Semantics::kSnapshot);  // demotx-expect: demotx-expert-api-tier
}

void handle_admin(demotx::stm::TVar<long>& epoch, Req& r) {
  demotx::stm::atomically_irrevocable([&](demotx::stm::Tx& tx) {  // demotx-expect: demotx-expert-api-tier
    r.result = epoch.get(tx);
    epoch.set(tx, r.result + 1);
  });
}

}  // namespace
