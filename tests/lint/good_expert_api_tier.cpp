// Corpus twin: the same expert APIs behind explicit opt-ins.  Each
// marker names WHY the relaxation is sound here, which is the contract
// the check enforces; unmarked novice code in the same file stays on
// the opaque default and diagnoses nothing.
#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

// Novice tier: opaque default, nothing to justify.
long opaque_sum(demotx::stm::TVar<long>* accts, int n) {
  return demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    long s = 0;
    for (int i = 0; i < n; ++i) s += accts[i].get(tx);
    return s;
  });
}

long snapshot_sum(demotx::stm::TVar<long>* accts, int n) {
  return demotx::stm::atomically(
      [&](demotx::stm::Tx& tx) {
        long s = 0;
        for (int i = 0; i < n; ++i) s += accts[i].get(tx);
        return s;
      },
      demotx::stm::Semantics::kSnapshot);  // demotx:expert: read-only audit; a consistent snapshot is all it needs
}

void log_once(long v) {
  // demotx:expert-fn: the body performs I/O and must run exactly once
  demotx::stm::atomically_irrevocable([&](demotx::stm::Tx&) {
    (void)v;
  });
}

void tune_runtime() {
  demotx::stm::Config cfg;  // demotx:expert: A/B harness comparing gate layouts
  auto& rt = demotx::stm::Runtime::instance();
  rt.config.eager_writes = true;  // demotx:expert: A/B harness comparing write policies
  (void)cfg;
}

}  // namespace
