// Corpus twin: the sanctioned ways to get the same effects.  Allocation
// through tx.alloc (freed on abort), reclamation through tx.retire
// (epoch-deferred at commit), I/O hoisted out of the body or run under
// an irrevocable transaction, which executes exactly once.
#include <cstdio>

#include "stm/runtime.hpp"
#include "stm/tvar.hpp"

namespace {

struct Node {
  long key;
};

long insert_and_report(demotx::stm::TVar<Node*>& head) {
  const long key = demotx::stm::atomically([&](demotx::stm::Tx& tx) {
    Node* n = tx.alloc<Node>();  // abort-safe allocation
    Node* old = head.get(tx);
    head.set(tx, n);
    tx.retire(old);  // epoch-deferred free at commit
    return n->key;
  });
  std::printf("inserted %ld\n", key);  // after commit: runs once
  return key;
}

long drain_counter(demotx::stm::TVar<long>& v) {
  // demotx:expert-next: the drain must print exactly once, so it runs irrevocably
  return demotx::stm::atomically_irrevocable([&](demotx::stm::Tx& tx) {
    const long got = v.get(tx);
    v.set(tx, 0);
    std::printf("drained %ld\n", got);  // irrevocable: cannot re-execute
    return got;
  });
}

}  // namespace
