// Unit tests for the STM's internal containers and encodings: lock words,
// write set (hashing, overwrite, truncation), read set, elastic window,
// TVar encode/decode, and the snapshot iterator built on top of them.
#include <gtest/gtest.h>

#include <set>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using namespace demotx::stm;

TEST(LockWord, EncodingRoundTrips) {
  const std::uint64_t v = lockword::make_version(12345);
  EXPECT_FALSE(lockword::locked(v));
  EXPECT_EQ(lockword::version_of(v), 12345u);

  const std::uint64_t l = lockword::make_locked(42);
  EXPECT_TRUE(lockword::locked(l));
  EXPECT_EQ(lockword::owner_of(l), 42);

  // Huge versions survive the shift encoding.
  const std::uint64_t big = lockword::make_version(1ULL << 60);
  EXPECT_EQ(lockword::version_of(big), 1ULL << 60);
}

TEST(WriteSetUnit, PutFindOverwrite) {
  WriteSet ws;
  Cell a, b;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);

  auto r1 = ws.put(&a, 10);
  EXPECT_FALSE(r1.overwrote);
  ASSERT_NE(ws.find(&a), nullptr);
  EXPECT_EQ(ws.find(&a)->value, 10u);

  auto r2 = ws.put(&a, 20);
  EXPECT_TRUE(r2.overwrote);
  EXPECT_EQ(r2.old_value, 10u);
  EXPECT_EQ(ws.find(&a)->value, 20u);
  EXPECT_EQ(ws.size(), 1u);

  ws.put(&b, 30);
  EXPECT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws.find(&b)->value, 30u);
}

TEST(WriteSetUnit, GrowsPastInitialCapacity) {
  WriteSet ws;
  std::vector<std::unique_ptr<Cell>> cells;
  for (int i = 0; i < 500; ++i) {
    cells.push_back(std::make_unique<Cell>());
    ws.put(cells.back().get(), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ws.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_NE(ws.find(cells[static_cast<std::size_t>(i)].get()), nullptr);
    EXPECT_EQ(ws.find(cells[static_cast<std::size_t>(i)].get())->value,
              static_cast<std::uint64_t>(i));
  }
}

TEST(WriteSetUnit, TruncateDropsTail) {
  WriteSet ws;
  Cell a, b, c;
  ws.put(&a, 1);
  ws.put(&b, 2);
  ws.put(&c, 3);
  ws.truncate(1);
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_NE(ws.find(&a), nullptr);
  EXPECT_EQ(ws.find(&b), nullptr);
  EXPECT_EQ(ws.find(&c), nullptr);
  // Re-inserting a truncated cell works.
  ws.put(&b, 22);
  EXPECT_EQ(ws.find(&b)->value, 22u);
}

TEST(WriteSetUnit, ClearResets) {
  WriteSet ws;
  Cell a;
  ws.put(&a, 1);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);
}

TEST(ReadSetUnit, AddReleaseTruncate) {
  ReadSet rs;
  Cell a, b;
  rs.add(&a, 1);
  rs.add(&b, 2);
  rs.add(&a, 3);  // duplicates allowed
  EXPECT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs.release(&a), 2u);
  EXPECT_EQ(rs.size(), 1u);
  rs.add(&a, 4);
  rs.truncate(1);
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.begin()->cell, &b);
}

TEST(ElasticWindowUnit, EvictionIsFifo) {
  ElasticWindow w(2);
  Cell a, b, c;
  EXPECT_EQ(w.evict_for_push(), 0u);
  w.push(&a, 1);
  EXPECT_EQ(w.evict_for_push(), 0u);
  w.push(&b, 2);
  EXPECT_EQ(w.evict_for_push(), 1u);  // a evicted (a cut)
  w.push(&c, 3);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.at(0).cell, &b);
  EXPECT_EQ(w.at(1).cell, &c);
}

TEST(ElasticWindowUnit, CapacityClampsToBounds) {
  ElasticWindow w(0);  // clamps to 1
  EXPECT_EQ(w.capacity(), 1u);
  w.set_capacity(100);  // clamps to kMaxCapacity
  EXPECT_EQ(w.capacity(), ElasticWindow::kMaxCapacity);
}

TEST(ElasticWindowUnit, ReleaseRemovesAllMatches) {
  ElasticWindow w(4);
  Cell a, b;
  w.push(&a, 1);
  w.push(&b, 2);
  w.push(&a, 3);
  EXPECT_EQ(w.release(&a), 2u);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.at(0).cell, &b);
}

TEST(TVarUnit, EncodeDecodeRoundTrips) {
  EXPECT_EQ(stm::TVar<long>::decode(stm::TVar<long>::encode(-123)), -123);
  EXPECT_EQ(stm::TVar<bool>::decode(stm::TVar<bool>::encode(true)), true);
  const double d = 3.25e-9;
  EXPECT_DOUBLE_EQ(stm::TVar<double>::decode(stm::TVar<double>::encode(d)), d);
  int dummy = 0;
  int* p = &dummy;
  EXPECT_EQ(stm::TVar<int*>::decode(stm::TVar<int*>::encode(p)), p);
}

TEST(CellUnit, UnsafeAccessors) {
  Cell c{77};
  EXPECT_EQ(c.unsafe_value(), 77u);
  EXPECT_EQ(c.unsafe_version(), 0u);
  c.unsafe_store(88);
  EXPECT_EQ(c.unsafe_value(), 88u);
}

TEST(SnapshotIterator, ToVectorIsSortedAndComplete) {
  ds::TxList list;
  for (long k : {5L, 1L, 9L, 3L}) list.add(k);
  const std::vector<long> v = list.to_vector();
  EXPECT_EQ(v, (std::vector<long>{1, 3, 5, 9}));
}

TEST(SnapshotIterator, ConsistentUnderConcurrentPairedUpdates) {
  // Updaters always add/remove keys in PAIRS within one transaction, so
  // every consistent snapshot contains an even number of odd keys.
  auto list = std::make_unique<ds::TxList>();
  for (long k = 0; k < 30; k += 2) list->add(k);  // 15 even keys

  std::atomic<bool> bad{false};
  test::run_random_sim(4, /*seed=*/88, [&](int id) {
    if (id == 0) {
      for (int i = 0; i < 20; ++i) {
        const std::vector<long> snap = list->to_vector();
        long odd = 0;
        for (long k : snap)
          if (k % 2 != 0) ++odd;
        if (odd % 2 != 0) bad.store(true);
        for (std::size_t j = 1; j < snap.size(); ++j)
          if (snap[j - 1] >= snap[j]) bad.store(true);
      }
    } else {
      const long base = 101 + id * 50;
      for (int i = 0; i < 25; ++i) {
        stm::atomically([&](stm::Tx&) {  // paired add: atomic
          list->add(base);
          list->add(base + 2);
        });
        stm::atomically([&](stm::Tx&) {  // paired remove: atomic
          list->remove(base);
          list->remove(base + 2);
        });
      }
    }
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(list->unsafe_size(), 15);
  test::drain_memory();
}
