// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Quiescent-teardown regression tests.
//
// Two related bugs are pinned here:
//
//  1. An elastic window of capacity 1 is unsound for the hand-over-hand
//     list protocol: a remove must validate *both* live links
//     (prev->next and curr->next) at commit.  With capacity 1 the
//     predecessor link is cut away, so two overlapping removes can both
//     commit while the second writes through a node the first already
//     retired — leaving a node that is simultaneously reachable from the
//     head and sitting in the epoch limbo.  Teardown then frees it twice
//     (ASan: heap-use-after-free / double free).  Tx::begin clamps the
//     window to >= 2; WindowClampKeepsUnlinkSound drives the exact
//     interleaving on OS threads and fails if the clamp is reverted.
//
//  2. Structure destructors used to walk the nodes with plain `delete`
//     without quiescing the epoch limbo first, so teardown raced the
//     reclaimer's deferred frees.  The destructors now drain; the
//     *DestructorDrainsLimbo tests destroy structures while the limbo is
//     still hot and assert it is empty afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <functional>

#include "ds/tx_bst.hpp"
#include "ds/tx_hashset.hpp"
#include "ds/tx_list.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_skiplist.hpp"
#include "mem/epoch.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"
#include "vt/scheduler.hpp"

using namespace demotx;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

// Minimal replica of the TxList node + remove protocol, so the test can
// place a handshake *inside* the transaction body (ds::TxList wraps its
// own atomically() and leaves no hook).
struct RNode {
  const long key;
  stm::TVar<RNode*> next;
  RNode(long k, RNode* n) : key(k), next(n) {}
};

}  // namespace

// The ISSUE's double-free mechanism, made deterministic.  List
// A(0) -> X(1) -> B(2) -> C(3); thread 1 parses remove(B) — its window
// must retain the predecessor link X.next — then parks; thread 0 removes
// X and commits; thread 1 resumes, reads B's successor and commits.  With
// the window clamped to 2 the commit revalidates X.next, sees thread 0's
// version bump and retries against the new list shape.  With a window of
// 1 (the config this test *requests*) the X.next read was cut away, both
// removes commit, and B stays reachable from A while already retired —
// the destructor walk would then free B twice.
TEST(DsTeardown, WindowClampKeepsUnlinkSound) {
  ConfigGuard guard;
  auto& rt = stm::Runtime::instance();
  rt.config.elastic_window = 1;  // unsound request; Tx::begin clamps to 2

  RNode* tail = new RNode(LONG_MAX, nullptr);
  RNode* c = new RNode(3, tail);
  RNode* b = new RNode(2, c);
  RNode* x = new RNode(1, b);
  RNode* a = new RNode(0, x);
  RNode* head = new RNode(LONG_MIN, a);

  auto remove = [&](long key, const std::function<void()>& after_parse) {
    // demotx:advise: the loop is a hand-over-hand list parse inlined for the teardown race; each read depends on the previous one, which is exactly the elastic cut contract
    return stm::atomically(Semantics::kElastic, [&](stm::Tx& tx) {
      RNode* prev = head;
      RNode* curr = prev->next.get(tx);
      while (curr->key < key) {
        prev = curr;
        curr = curr->next.get(tx);
      }
      if (curr->key != key) return false;
      if (after_parse) after_parse();
      RNode* succ = curr->next.get(tx);
      curr->next.set(tx, succ);  // victim-link self-write (version poison)
      prev->next.set(tx, succ);
      tx.retire(curr);
      return true;
    });
  };

  std::atomic<int> stage{0};
  bool removed_x = false;
  bool removed_b = false;
  vt::run_threads(2, [&](int id) {
    if (id == 0) {
      while (stage.load(std::memory_order_acquire) < 1) {
      }
      removed_x = remove(1, nullptr);
      stage.store(2, std::memory_order_release);
    } else {
      removed_b = remove(2, [&] {
        int expected = 0;  // only the first attempt parks (retries skip)
        stage.compare_exchange_strong(expected, 1,
                                      std::memory_order_acq_rel);
        while (stage.load(std::memory_order_acquire) < 2) {
        }
      });
    }
  });

  EXPECT_TRUE(removed_x);
  EXPECT_TRUE(removed_b);
  // Both removes committed: the list must be A -> C with X and B
  // unlinked.  Under the window-1 bug the second remove writes the dead
  // X's link instead, leaving A -> B (B retired *and* reachable).
  EXPECT_EQ(head->next.unsafe_load(), a);
  EXPECT_EQ(a->next.unsafe_load(), c) << "retired node still reachable";
  EXPECT_EQ(c->next.unsafe_load(), tail);

  // Mirror the structure destructors: quiesce the limbo (frees X and B),
  // then walk-and-delete what is still linked.  Pre-fix this walk revisits
  // the freed B — ASan flags the use-after-free/double-free.
  test::drain_memory();
  RNode* n = head;
  while (n != nullptr) {
    RNode* next = n->next.unsafe_load();
    delete n;
    n = next;
  }
}

// Destroying a structure right after committed removes — with no manual
// drain — must not leave anything in the epoch limbo: the destructor
// quiesces before its unsafe walk.
TEST(DsTeardown, ListDestructorDrainsLimbo) {
  auto& em = mem::EpochManager::instance();
  const std::uint64_t retired_before = em.retired_count();
  {
    ds::TxList list({Semantics::kElastic, Semantics::kSnapshot});
    test::run_random_sim(4, /*seed=*/808, [&](int id) {
      std::uint64_t rng = 17 + static_cast<std::uint64_t>(id) * 29;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < 120; ++i) {
        const long k = static_cast<long>(next() % 24);
        if ((next() & 1) != 0) {
          list.add(k);
        } else {
          list.remove(k);
        }
      }
    });
    // NOTE: no test::drain_memory() here — teardown itself must quiesce.
  }
  EXPECT_GT(em.retired_count(), retired_before) << "churn retired nothing";
  EXPECT_EQ(em.retired_count(), em.freed_count())
      << "destructor left retired nodes in the limbo";
}

TEST(DsTeardown, AllStructuresDrainOnDestruction) {
  auto& em = mem::EpochManager::instance();
  auto churn_and_drop = [&](auto&& make) {
    {
      auto s = make();
      test::run_random_sim(3, /*seed=*/909, [&](int id) {
        std::uint64_t rng = 41 + static_cast<std::uint64_t>(id) * 13;
        auto next = [&rng] {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          return rng;
        };
        for (int i = 0; i < 80; ++i) {
          const long k = static_cast<long>(next() % 16);
          if ((next() & 1) != 0) {
            s->add(k);
          } else {
            s->remove(k);
          }
        }
      });
    }
    EXPECT_EQ(em.retired_count(), em.freed_count());
  };
  churn_and_drop([] { return std::make_unique<ds::TxList>(); });
  churn_and_drop([] { return std::make_unique<ds::TxSkipList>(); });
  churn_and_drop([] { return std::make_unique<ds::TxBst>(); });
  churn_and_drop([] { return std::make_unique<ds::TxHashSet>(); });

  {
    ds::TxQueue q;
    test::run_random_sim(3, /*seed=*/910, [&](int id) {
      for (int i = 0; i < 60; ++i) {
        if ((i + id) % 3 == 0) {
          q.enqueue(i);
        } else {
          q.dequeue();
        }
      }
    });
  }
  EXPECT_EQ(em.retired_count(), em.freed_count());
}
