// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Contention managers: all policies guarantee progress on contended
// workloads; Greedy resolves conflicts by killing the younger transaction.
#include <gtest/gtest.h>

#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::CmPolicy;
using stm::Semantics;

namespace {

struct ConfigGuard {
  stm::Config saved = stm::Runtime::instance().config;
  ~ConfigGuard() { stm::Runtime::instance().config = saved; }
};

}  // namespace

class CmPolicyTest : public ::testing::TestWithParam<CmPolicy> {};

TEST_P(CmPolicyTest, ContendedCounterMakesProgress) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.cm = GetParam();

  auto x = std::make_unique<stm::TVar<long>>(0);
  const std::uint64_t cycles = test::run_rr_sim(
      8,
      [&](int) {
        for (int i = 0; i < 40; ++i)
          stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      },
      /*max_cycles=*/40'000'000);
  EXPECT_EQ(x->unsafe_load(), 8 * 40) << to_string(GetParam());
  EXPECT_LT(cycles, 40'000'000u) << "livelock brake tripped";
}

TEST_P(CmPolicyTest, ContendedMultiCellTransfersStaySound) {
  ConfigGuard cfg;
  stm::Runtime::instance().config.cm = GetParam();

  constexpr int kCells = 4;
  constexpr long kTotal = 400;
  std::vector<std::unique_ptr<stm::TVar<long>>> v;
  for (int i = 0; i < kCells; ++i)
    v.push_back(std::make_unique<stm::TVar<long>>(kTotal / kCells));

  test::run_random_sim(6, /*seed=*/97, [&](int id) {
    std::uint64_t rng = static_cast<std::uint64_t>(id) * 7919 + 3;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 40; ++i) {
      const int a = static_cast<int>(next() % kCells);
      const int b = static_cast<int>(next() % kCells);
      stm::atomically([&](stm::Tx& tx) {
        const long amt = static_cast<long>(next() % 5);
        v[a]->set(tx, v[a]->get(tx) - amt);
        v[b]->set(tx, v[b]->get(tx) + amt);
      });
    }
  });
  long sum = 0;
  for (auto& c : v) sum += c->unsafe_load();
  EXPECT_EQ(sum, kTotal) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CmPolicyTest,
                         ::testing::Values(CmPolicy::kSuicide,
                                           CmPolicy::kBackoff,
                                           CmPolicy::kPolite,
                                           CmPolicy::kGreedy, CmPolicy::kKarma),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(StmCm, GreedyKillsTheYoungerEnemy) {
  ConfigGuard cfg;
  auto& rt = stm::Runtime::instance();
  rt.config.cm = CmPolicy::kGreedy;

  stm::TVar<long> x{0};
  stm::Tx& older = rt.tx_for_slot(80);
  stm::Tx& younger = rt.tx_for_slot(81);

  older.begin(Semantics::kClassic, 0);  // earlier ticket → higher priority
  younger.begin(Semantics::kClassic, 0);

  // The younger transaction holds x's lock mid-commit; simulate by locking
  // manually through a conflicting commit race: younger writes x but we
  // drive the conflict from the older side via a read while the lock is
  // held.  Simpler deterministic check: older kills younger through the
  // status word directly.
  const std::uint64_t w = younger.status_word();
  EXPECT_TRUE(younger.try_kill(w));
  bool killed = false;
  int reads = 0;
  try {
    // check_killed() samples the status word every 8th poll, so a landed
    // kill MUST surface within one full poll period of reads — a bounded
    // guarantee, not a tuned spin count.
    for (int i = 0; i < 8; ++i) {
      ++reads;
      (void)x.get(younger);
    }
  } catch (const stm::AbortTx& a) {
    killed = a.reason == stm::AbortReason::kKilled;
    younger.rollback(a.reason);
  }
  EXPECT_TRUE(killed);
  EXPECT_LE(reads, 8) << "kill visibility exceeded the poll period";
  older.rollback(stm::AbortReason::kExplicit);
}

TEST(StmCm, KillCannotTouchALaterIncarnation) {
  auto& rt = stm::Runtime::instance();
  stm::Tx& t = rt.tx_for_slot(80);

  t.begin(Semantics::kClassic, 0);
  const std::uint64_t stale = t.status_word();
  t.commit();  // incarnation ends

  t.begin(Semantics::kClassic, 0);  // new serial
  EXPECT_FALSE(t.try_kill(stale)) << "stale kill must not land";
  t.commit();
}

TEST(StmCm, GreedyStatsRecordKills) {
  ConfigGuard cfg;
  auto& rt = stm::Runtime::instance();
  rt.config.cm = CmPolicy::kGreedy;
  rt.reset_stats();

  // Heavy symmetric contention: some kill must happen under Greedy.
  auto x = std::make_unique<stm::TVar<long>>(0);
  auto y = std::make_unique<stm::TVar<long>>(0);
  test::run_random_sim(6, /*seed=*/5, [&](int) {
    for (int i = 0; i < 60; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        x->set(tx, x->get(tx) + 1);
        y->set(tx, y->get(tx) + 1);
      });
    }
  });
  EXPECT_EQ(x->unsafe_load(), 6 * 60);
  EXPECT_EQ(y->unsafe_load(), 6 * 60);
  const auto s = rt.aggregate_stats();
  EXPECT_GT(s.aborts_by_reason[static_cast<int>(stm::AbortReason::kKilled)] +
                s.aborts_by_reason[static_cast<int>(
                    stm::AbortReason::kWriteLockTimeout)] +
                s.aborts_by_reason[static_cast<int>(
                    stm::AbortReason::kCommitValidation)] +
                s.aborts_by_reason[static_cast<int>(
                    stm::AbortReason::kReadValidation)],
            0u)
      << "expected some contention under 6 hammering threads";
}
