// demotx:expert-file: test suite: exercises the expert tier (semantics choices, config overrides, irrevocability) by design
// Eager (encounter-time locking / write-through) mode: isolation of
// in-place writes, undo on abort, early write-write conflict detection,
// snapshot backups stashed at acquire time, and the orElse limitation.
#include <gtest/gtest.h>

#include "ds/tx_list.hpp"
#include "stm/stm.hpp"
#include "test_util.hpp"

using namespace demotx;
using stm::Semantics;

namespace {

struct EagerGuard {
  stm::Config saved = stm::Runtime::instance().config;
  EagerGuard() { stm::Runtime::instance().config.eager_writes = true; }
  ~EagerGuard() { stm::Runtime::instance().config = saved; }
};

}  // namespace

TEST(StmEager, BasicReadWriteCommit) {
  EagerGuard eager;
  stm::TVar<long> x{1};
  stm::atomically([&](stm::Tx& tx) {
    x.set(tx, 2);
    EXPECT_EQ(x.get(tx), 2);  // read-own-write through the cell
    x.set(tx, 3);
  });
  EXPECT_EQ(x.unsafe_load(), 3);
}

TEST(StmEager, AbortUndoesInPlaceWrites) {
  EagerGuard eager;
  stm::TVar<long> x{10};
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.set(tx, 99);
    if (attempts == 1) tx.abort_self();
    x.set(tx, 20);
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(x.unsafe_load(), 20);
}

TEST(StmEager, UserExceptionUndoesInPlaceWrites) {
  EagerGuard eager;
  stm::TVar<long> x{10};
  EXPECT_THROW(stm::atomically([&](stm::Tx& tx) {
                 x.set(tx, 99);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(x.unsafe_load(), 10);
}

TEST(StmEager, InPlaceValuesInvisibleToOthersBeforeCommit) {
  EagerGuard eager;
  auto& rt = stm::Runtime::instance();
  stm::TVar<long> x{5};
  stm::Tx& writer = rt.tx_for_slot(95);
  stm::Tx& reader = rt.tx_for_slot(96);

  writer.begin(Semantics::kClassic, 0);
  x.set(writer, 42);  // in place, but the cell is locked

  reader.begin(Semantics::kClassic, 0);
  // The reader finds the cell locked; with the default backoff CM it
  // aborts rather than read the uncommitted 42.
  bool aborted = false;
  try {
    (void)x.get(reader);
  } catch (const stm::AbortTx& a) {
    aborted = true;
    EXPECT_EQ(a.reason, stm::AbortReason::kLockedByOther);
    reader.rollback(a.reason);
  }
  EXPECT_TRUE(aborted);
  writer.commit();
  EXPECT_EQ(x.unsafe_load(), 42);
}

TEST(StmEager, WriteWriteConflictDetectedAtEncounterTime) {
  EagerGuard eager;
  auto& rt = stm::Runtime::instance();
  stm::TVar<long> x{0};
  stm::Tx& t1 = rt.tx_for_slot(95);
  stm::Tx& t2 = rt.tx_for_slot(96);

  t1.begin(Semantics::kClassic, 0);
  x.set(t1, 1);  // t1 holds x's lock from now on

  t2.begin(Semantics::kClassic, 0);
  bool aborted = false;
  try {
    x.set(t2, 2);  // immediate conflict — no waiting until commit
  } catch (const stm::AbortTx& a) {
    aborted = true;
    EXPECT_EQ(a.reason, stm::AbortReason::kWriteLockTimeout);
    t2.rollback(a.reason);
  }
  EXPECT_TRUE(aborted);
  t1.commit();
  EXPECT_EQ(x.unsafe_load(), 1);
}

TEST(StmEager, SnapshotReadsBackupStashedAtAcquire) {
  EagerGuard eager;
  auto& rt = stm::Runtime::instance();
  stm::TVar<long> x{7};

  stm::Tx& snap = rt.tx_for_slot(95);
  snap.begin(Semantics::kSnapshot, 0);

  stm::Tx& writer = rt.tx_for_slot(96);
  writer.begin(Semantics::kClassic, 0);
  x.set(writer, 8);
  writer.commit();

  // The commit overwrote x after the snapshot's bound; the backup pair
  // stashed at eager-acquire time serves the old value.
  EXPECT_EQ(x.get(snap), 7);
  snap.commit();
}

TEST(StmEager, OrElseIsAUsageError) {
  EagerGuard eager;
  stm::TVar<long> x{0};
  EXPECT_THROW(stm::atomically([&](stm::Tx& tx) {
                 stm::or_else(
                     tx, [&](stm::Tx& t) { x.set(t, 1); },
                     [&](stm::Tx&) {});
               }),
               stm::TxUsageError);
  EXPECT_EQ(x.unsafe_load(), 0) << "locks must be released after the error";
  // Runtime still healthy.
  stm::atomically([&](stm::Tx& tx) { x.set(tx, 5); });
  EXPECT_EQ(x.unsafe_load(), 5);
}

TEST(StmEager, LostUpdatePreventedUnderContention) {
  EagerGuard eager;
  for (std::uint64_t seed : {301u, 302u, 303u}) {
    auto x = std::make_unique<stm::TVar<long>>(0);
    test::run_random_sim(6, seed, [&](int) {
      for (int i = 0; i < 40; ++i)
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
    });
    EXPECT_EQ(x->unsafe_load(), 6 * 40) << "seed " << seed;
  }
}

TEST(StmEager, DeadlockResolvedByContentionManager) {
  EagerGuard eager;
  // Two transactions acquire the same two cells in opposite orders: the
  // textbook deadlock.  The CM (backoff: abort on conflict) resolves it.
  auto x = std::make_unique<stm::TVar<long>>(0);
  auto y = std::make_unique<stm::TVar<long>>(0);
  test::run_rr_sim(2, [&](int id) {
    for (int i = 0; i < 25; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        if (id == 0) {
          x->set(tx, x->get(tx) + 1);
          y->set(tx, y->get(tx) + 1);
        } else {
          y->set(tx, y->get(tx) + 1);
          x->set(tx, x->get(tx) + 1);
        }
      });
    }
  });
  EXPECT_EQ(x->unsafe_load(), 50);
  EXPECT_EQ(y->unsafe_load(), 50);
}

TEST(StmEager, ListWorkloadStaysConsistent) {
  EagerGuard eager;
  for (std::uint64_t seed : {311u, 312u}) {
    auto list = std::make_unique<ds::TxList>(
        ds::TxList::Options{Semantics::kElastic, Semantics::kSnapshot});
    std::atomic<long> net{0};
    test::run_random_sim(4, seed, [&](int id) {
      std::uint64_t rng = seed + static_cast<std::uint64_t>(id) * 37;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < 60; ++i) {
        const long k = static_cast<long>(next() % 20);
        switch (next() % 4) {
          case 0:
            if (list->add(k)) ++net;
            break;
          case 1:
            if (list->remove(k)) --net;
            break;
          case 2:
            list->contains(k);
            break;
          default:
            (void)list->size();
        }
      }
    });
    EXPECT_EQ(list->unsafe_size(), net.load()) << "seed " << seed;
    test::drain_memory();
  }
}

TEST(StmEager, IrrevocableAndEagerCompose) {
  EagerGuard eager;
  auto x = std::make_unique<stm::TVar<long>>(0);
  test::run_rr_sim(4, [&](int id) {
    for (int i = 0; i < 20; ++i) {
      if (id == 0) {
        stm::atomically_irrevocable(
            [&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      } else {
        stm::atomically([&](stm::Tx& tx) { x->set(tx, x->get(tx) + 1); });
      }
    }
  });
  EXPECT_EQ(x->unsafe_load(), 4 * 20);
}
